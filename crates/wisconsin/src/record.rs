//! Fixed-width records in the style of the Wisconsin benchmark.
//!
//! The paper's microbenchmark uses "a schema of ten eight-byte integer
//! attributes for a total record size of 80 bytes. The key attribute
//! followed the key value permutation of the Wisconsin benchmark. The
//! values of the remaining attributes were computed based on the key
//! attribute through integer division and modulo computations." (§4)

use pmem_sim::Storable;

/// A sortable/joinable record with a `u64` key.
///
/// Records are plain fixed-width values; the `Send + Sync` bounds let
/// the partition-parallel executors move record batches between worker
/// threads and share collections across a scoped thread pool.
pub trait Record: Storable + Send + Sync + 'static {
    /// The ordering/join key.
    fn key(&self) -> u64;
}

impl Record for u64 {
    fn key(&self) -> u64 {
        *self
    }
}

impl Record for (u64, u64) {
    fn key(&self) -> u64 {
        self.0
    }
}

/// Number of attributes in a Wisconsin record.
pub const WISCONSIN_ATTRS: usize = 10;

/// An 80-byte Wisconsin-benchmark record: ten 8-byte integer attributes,
/// the first of which is the (permuted) unique key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WisconsinRecord {
    /// `attrs[0]` is `unique1` (the permuted key); the rest are derived
    /// from it by integer division and modulo, as in the benchmark.
    pub attrs: [u64; WISCONSIN_ATTRS],
}

impl WisconsinRecord {
    /// Builds the record whose key is `key`, deriving the remaining nine
    /// attributes through division/modulo (one/ten/hundred-percent
    /// selectivity columns and coarser groupings, following the Wisconsin
    /// schema's spirit).
    pub fn from_key(key: u64) -> Self {
        let mut attrs = [0u64; WISCONSIN_ATTRS];
        attrs[0] = key; // unique1
        attrs[1] = key; // unique2 (same domain, used as a carried payload)
        attrs[2] = key % 2; // two
        attrs[3] = key % 4; // four
        attrs[4] = key % 10; // ten
        attrs[5] = key % 20; // twenty
        attrs[6] = key % 100; // onePercent
        attrs[7] = (key / 10) % 100; // tenPercent-style grouping
        attrs[8] = (key / 100) % 100; // hundredth grouping
        attrs[9] = key / 1000; // coarse bucket
        Self { attrs }
    }

    /// Overrides the payload attribute (`unique2`), used by join workloads
    /// to distinguish the fanout copies that share a key.
    pub fn with_payload(mut self, payload: u64) -> Self {
        self.attrs[1] = payload;
        self
    }

    /// The payload attribute.
    pub fn payload(&self) -> u64 {
        self.attrs[1]
    }
}

impl Storable for WisconsinRecord {
    const SIZE: usize = WISCONSIN_ATTRS * 8;

    fn write_to(&self, buf: &mut [u8]) {
        for (i, a) in self.attrs.iter().enumerate() {
            buf[i * 8..(i + 1) * 8].copy_from_slice(&a.to_le_bytes());
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        let mut attrs = [0u64; WISCONSIN_ATTRS];
        for (i, a) in attrs.iter_mut().enumerate() {
            *a = u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        Self { attrs }
    }
}

impl Record for WisconsinRecord {
    #[inline]
    fn key(&self) -> u64 {
        self.attrs[0]
    }
}

/// A pair of joined records (the join's output tuple).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pair<L: Storable, R: Storable> {
    /// Left (build-side) record.
    pub left: L,
    /// Right (probe-side) record.
    pub right: R,
}

impl<L: Storable, R: Storable> Storable for Pair<L, R> {
    const SIZE: usize = L::SIZE + R::SIZE;

    fn write_to(&self, buf: &mut [u8]) {
        self.left.write_to(&mut buf[..L::SIZE]);
        self.right.write_to(&mut buf[L::SIZE..L::SIZE + R::SIZE]);
    }

    fn read_from(buf: &[u8]) -> Self {
        Self {
            left: L::read_from(&buf[..L::SIZE]),
            right: R::read_from(&buf[L::SIZE..L::SIZE + R::SIZE]),
        }
    }
}

impl<L: Record, R: Record> Record for Pair<L, R> {
    /// A joined pair is keyed by the (equal) join key.
    fn key(&self) -> u64 {
        self.left.key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wisconsin_record_is_80_bytes() {
        assert_eq!(WisconsinRecord::SIZE, 80);
    }

    #[test]
    fn roundtrip_preserves_all_attributes() {
        let r = WisconsinRecord::from_key(123_456);
        let mut buf = [0u8; WisconsinRecord::SIZE];
        r.write_to(&mut buf);
        assert_eq!(WisconsinRecord::read_from(&buf), r);
    }

    #[test]
    fn derived_attributes_follow_div_mod() {
        let r = WisconsinRecord::from_key(54_321);
        assert_eq!(r.key(), 54_321);
        assert_eq!(r.attrs[2], 1);
        assert_eq!(r.attrs[4], 1);
        assert_eq!(r.attrs[6], 21);
        assert_eq!(r.attrs[9], 54);
    }

    #[test]
    fn pair_roundtrips() {
        let p = Pair {
            left: WisconsinRecord::from_key(1),
            right: WisconsinRecord::from_key(2),
        };
        let mut buf = [0u8; 160];
        p.write_to(&mut buf);
        assert_eq!(Pair::<WisconsinRecord, WisconsinRecord>::read_from(&buf), p);
        assert_eq!(p.key(), 1);
    }

    #[test]
    fn payload_override() {
        let r = WisconsinRecord::from_key(5).with_payload(99);
        assert_eq!(r.key(), 5);
        assert_eq!(r.payload(), 99);
    }
}
