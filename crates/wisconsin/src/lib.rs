//! # wisconsin — Wisconsin-benchmark-style workload generator
//!
//! Inputs for the paper's microbenchmark (§4): 80-byte records of ten
//! 8-byte integer attributes whose key attribute follows a key-value
//! permutation, plus sort-order variants and equi-join workloads with
//! configurable fanout and skew.

#![warn(missing_docs)]

pub mod distributions;
pub mod permute;
pub mod record;
pub mod workload;

pub use distributions::Zipf;
pub use permute::Permutation;
pub use record::{Pair, Record, WisconsinRecord, WISCONSIN_ATTRS};
pub use workload::{
    join_input, join_input_skewed, join_right_input, skewed_input, sort_input, JoinWorkload,
    KeyOrder,
};
