//! Value distributions for skewed workloads.

use rand::Rng;

/// A Zipf(θ) sampler over `[0, n)` using a precomputed CDF and binary
/// search. θ = 0 degenerates to uniform; θ around 1 is the classic
/// heavy-skew setting used in database microbenchmarks.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` distinct values with exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one value in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform bucket off: {c}");
        }
    }

    #[test]
    fn high_theta_concentrates_on_small_values() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let head = (0..10_000).filter(|_| z.sample(&mut rng) < 5).count();
        assert!(head > 5_000, "head mass too small: {head}");
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..1_000).all(|_| z.sample(&mut rng) < 7));
    }
}
