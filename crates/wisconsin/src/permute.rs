//! Key-value permutations.
//!
//! The Wisconsin benchmark presents each unique key exactly once in a
//! scrambled order. We provide a seedable O(1)-per-index bijection over
//! `[0, n)` built from a four-round Feistel network with cycle walking:
//! the domain is padded to the next even power of two and out-of-range
//! outputs are re-encrypted until they land inside `[0, n)`. This is a
//! standard format-preserving-permutation construction; bijectivity is
//! guaranteed by construction and asserted by tests.

/// A seedable pseudo-random permutation of `[0, n)`.
#[derive(Clone, Debug)]
pub struct Permutation {
    n: u64,
    half_bits: u32,
    mask: u64,
    keys: [u64; ROUNDS],
}

const ROUNDS: usize = 4;

/// 64-bit mix (splitmix64 finalizer) used as the Feistel round function.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Permutation {
    /// Creates the permutation of `[0, n)` determined by `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "cannot permute an empty domain");
        // Smallest even 2·half_bits with 2^(2·half_bits) >= n.
        let bits = 64 - (n - 1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let mask = (1u64 << half_bits) - 1;
        let mut keys = [0u64; ROUNDS];
        let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        for k in &mut keys {
            s = mix(s);
            *k = s;
        }
        Self {
            n,
            half_bits,
            mask,
            keys,
        }
    }

    /// Domain size.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when the domain is the singleton `{0}`.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn encrypt_once(&self, x: u64) -> u64 {
        let mut left = x >> self.half_bits;
        let mut right = x & self.mask;
        for key in &self.keys {
            let new_left = right;
            right = left ^ (mix(right ^ key) & self.mask);
            left = new_left;
        }
        (left << self.half_bits) | right
    }

    /// The image of `i` under the permutation.
    ///
    /// # Panics
    /// Panics if `i >= n`.
    pub fn apply(&self, i: u64) -> u64 {
        assert!(i < self.n, "index {i} out of domain {}", self.n);
        // Cycle walking: the Feistel net permutes [0, 2^(2·half_bits));
        // re-encrypt until we fall back into [0, n). Expected iterations
        // < 4 because the padded domain is < 4n.
        let mut x = self.encrypt_once(i);
        while x >= self.n {
            x = self.encrypt_once(x);
        }
        x
    }

    /// Iterates the permuted sequence `apply(0), apply(1), …, apply(n-1)`.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.n).map(move |i| self.apply(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijective(n: u64, seed: u64) {
        let p = Permutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let v = p.apply(i);
            assert!(v < n, "image {v} out of range for n={n}");
            assert!(!seen[v as usize], "duplicate image {v} for n={n}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn bijective_on_assorted_sizes() {
        for n in [1, 2, 3, 7, 64, 100, 1000, 4096, 10_007] {
            assert_bijective(n, 42);
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a = Permutation::new(1000, 1);
        let b = Permutation::new(1000, 2);
        let same = (0..1000).filter(|&i| a.apply(i) == b.apply(i)).count();
        assert!(same < 100, "seeds should decorrelate ({same} fixed points)");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Permutation::new(500, 7);
        let b = Permutation::new(500, 7);
        assert!((0..500).all(|i| a.apply(i) == b.apply(i)));
    }

    #[test]
    fn output_is_scrambled_not_identity() {
        let p = Permutation::new(10_000, 3);
        let fixed = (0..10_000).filter(|&i| p.apply(i) == i).count();
        // A random permutation has ~1 fixed point in expectation.
        assert!(fixed < 50, "{fixed} fixed points looks like identity");
    }

    #[test]
    fn iter_yields_full_domain() {
        let p = Permutation::new(257, 9);
        let mut v: Vec<u64> = p.iter().collect();
        v.sort_unstable();
        assert_eq!(v, (0..257).collect::<Vec<_>>());
    }
}
