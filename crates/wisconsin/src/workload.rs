//! Sort and join workload builders.
//!
//! These reproduce the paper's microbenchmark inputs (§4): a ten-million
//! record relation with permuted unique keys for sorting; and a
//! one-million × ten-million equi-join where "each left input record
//! joined with ten right input records". Sizes are parameters here.

use crate::distributions::Zipf;
use crate::permute::Permutation;
use crate::record::WisconsinRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Physical ordering of generated sort inputs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyOrder {
    /// Pseudo-random permutation of the unique keys (the benchmark
    /// default).
    Random,
    /// Keys already in ascending order (best case for run generation).
    Sorted,
    /// Keys in descending order (worst case for replacement selection).
    Reverse,
    /// Ascending order with a fraction of adjacent-window swaps.
    NearlySorted {
        /// Fraction of records displaced, in `[0, 1]`.
        disorder: f64,
    },
    /// Keys drawn (with repetition) from a domain of `distinct` values.
    FewDistinct {
        /// Number of distinct key values.
        distinct: u64,
    },
}

/// Generates a sort input of `n` Wisconsin records in the given order.
pub fn sort_input(n: u64, order: KeyOrder, seed: u64) -> Vec<WisconsinRecord> {
    match order {
        KeyOrder::Random => {
            let p = Permutation::new(n, seed);
            p.iter().map(WisconsinRecord::from_key).collect()
        }
        KeyOrder::Sorted => (0..n).map(WisconsinRecord::from_key).collect(),
        KeyOrder::Reverse => (0..n).rev().map(WisconsinRecord::from_key).collect(),
        KeyOrder::NearlySorted { disorder } => {
            assert!((0.0..=1.0).contains(&disorder), "disorder must be in [0,1]");
            let mut v: Vec<WisconsinRecord> = (0..n).map(WisconsinRecord::from_key).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let swaps = ((n as f64) * disorder / 2.0) as u64;
            for _ in 0..swaps {
                let i = rng.gen_range(0..n as usize);
                let j = rng.gen_range(0..n as usize);
                v.swap(i, j);
            }
            v
        }
        KeyOrder::FewDistinct { distinct } => {
            assert!(distinct > 0, "need at least one distinct key");
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|i| WisconsinRecord::from_key(rng.gen_range(0..distinct)).with_payload(i))
                .collect()
        }
    }
}

/// A generated equi-join workload: a smaller left input `t` and a larger
/// right input `v`, where every left key matches `fanout` right records.
#[derive(Clone, Debug)]
pub struct JoinWorkload {
    /// Left (smaller) input, |T| records with unique keys `0..t_len`.
    pub left: Vec<WisconsinRecord>,
    /// Right (larger) input, `t_len · fanout` records (uniform fanout) or
    /// skew-distributed when built with [`join_input_skewed`].
    pub right: Vec<WisconsinRecord>,
    /// Number of output pairs the join must produce.
    pub expected_matches: u64,
}

/// Builds the paper's join microbenchmark: left has `t_len` unique keys,
/// right has `t_len · fanout` records, `fanout` per key, both sides in
/// permuted order.
pub fn join_input(t_len: u64, fanout: u64, seed: u64) -> JoinWorkload {
    assert!(t_len > 0 && fanout > 0, "degenerate join workload");
    let left_perm = Permutation::new(t_len, seed);
    let left: Vec<WisconsinRecord> = left_perm.iter().map(WisconsinRecord::from_key).collect();
    let right = join_right_input(t_len, fanout, seed);

    JoinWorkload {
        expected_matches: right.len() as u64,
        left,
        right,
    }
}

/// Just the right side of [`join_input`]: `t_len · fanout` permuted
/// records, `fanout` per key in `[0, t_len)`, payloads distinguishing
/// the copies. For callers that only need a fanout table (e.g.
/// `CREATE TABLE … AS WISCONSIN(n, f)`), this skips generating and
/// discarding the left side.
pub fn join_right_input(t_len: u64, fanout: u64, seed: u64) -> Vec<WisconsinRecord> {
    assert!(t_len > 0 && fanout > 0, "degenerate join workload");
    let v_len = t_len * fanout;
    Permutation::new(v_len, seed ^ 0xdead_beef)
        .iter()
        .map(|i| WisconsinRecord::from_key(i % t_len).with_payload(i))
        .collect()
}

/// A Zipf-skewed fanout table for `CREATE TABLE … AS WISCONSIN(n, f,
/// seed, skew)`: `n` records whose keys are drawn Zipf(`theta`) from the
/// domain `[0, n / fanout)` (at least one key), payloads distinguishing
/// the copies. `theta = 0` degrades to a uniform draw over the same
/// domain; larger `theta` concentrates mass on the low keys. Fully
/// deterministic in `(n, fanout, theta, seed)`.
///
/// # Panics
/// Panics when `fanout` is zero or `theta` is negative (the SQL layer
/// rejects both with span-carrying errors before reaching here).
pub fn skewed_input(n: u64, fanout: u64, theta: f64, seed: u64) -> Vec<WisconsinRecord> {
    assert!(fanout > 0, "degenerate skewed workload");
    let domain = (n / fanout).max(1);
    let zipf = Zipf::new(domain as usize, theta);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    (0..n)
        .map(|i| WisconsinRecord::from_key(zipf.sample(&mut rng) as u64).with_payload(i))
        .collect()
}

/// Join workload with Zipf-skewed right-side key frequencies; some left
/// keys match many right records, most match few or none.
pub fn join_input_skewed(t_len: u64, v_len: u64, theta: f64, seed: u64) -> JoinWorkload {
    assert!(t_len > 0 && v_len > 0, "degenerate join workload");
    let left_perm = Permutation::new(t_len, seed);
    let left: Vec<WisconsinRecord> = left_perm.iter().map(WisconsinRecord::from_key).collect();

    let zipf = Zipf::new(t_len as usize, theta);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let right: Vec<WisconsinRecord> = (0..v_len)
        .map(|i| WisconsinRecord::from_key(zipf.sample(&mut rng) as u64).with_payload(i))
        .collect();

    JoinWorkload {
        expected_matches: right.len() as u64, // every right key is in [0, t_len)
        left,
        right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    #[test]
    fn random_sort_input_has_all_keys_once() {
        let v = sort_input(1000, KeyOrder::Random, 11);
        let mut keys: Vec<u64> = v.iter().map(|r| r.key()).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_and_reverse_orders() {
        let s = sort_input(100, KeyOrder::Sorted, 0);
        assert!(s.windows(2).all(|w| w[0].key() <= w[1].key()));
        let r = sort_input(100, KeyOrder::Reverse, 0);
        assert!(r.windows(2).all(|w| w[0].key() >= w[1].key()));
    }

    #[test]
    fn nearly_sorted_is_mostly_ordered() {
        let v = sort_input(10_000, KeyOrder::NearlySorted { disorder: 0.01 }, 5);
        let inversions = v.windows(2).filter(|w| w[0].key() > w[1].key()).count();
        assert!(
            inversions > 0 && inversions < 1000,
            "inversions: {inversions}"
        );
    }

    #[test]
    fn few_distinct_restricts_domain() {
        let v = sort_input(1000, KeyOrder::FewDistinct { distinct: 5 }, 7);
        assert!(v.iter().all(|r| r.key() < 5));
    }

    #[test]
    fn join_input_has_exact_fanout() {
        let w = join_input(100, 10, 3);
        assert_eq!(w.left.len(), 100);
        assert_eq!(w.right.len(), 1000);
        assert_eq!(w.expected_matches, 1000);
        let mut counts = vec![0u64; 100];
        for r in &w.right {
            counts[r.key() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn join_payloads_distinguish_fanout_copies() {
        let w = join_input(10, 4, 1);
        let mut payloads: Vec<u64> = w.right.iter().map(|r| r.payload()).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_join_keys_stay_in_left_domain() {
        let w = join_input_skewed(50, 500, 1.0, 2);
        assert!(w.right.iter().all(|r| r.key() < 50));
        assert_eq!(w.expected_matches, 500);
    }

    #[test]
    fn skewed_input_is_deterministic_per_seed() {
        let a = skewed_input(2000, 4, 1.2, 77);
        let b = skewed_input(2000, 4, 1.2, 77);
        assert_eq!(a, b, "same seed must yield the identical table");
        let c = skewed_input(2000, 4, 1.2, 78);
        assert_ne!(a, c, "a different seed must permute the draw");
    }

    #[test]
    fn skewed_input_concentrates_mass_on_low_keys() {
        let v = skewed_input(10_000, 10, 1.2, 5);
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().all(|r| r.key() < 1000), "domain is n / fanout");
        let hot = v.iter().filter(|r| r.key() == 0).count();
        assert!(
            hot > 10 * v.len() / 1000,
            "key 0 must be far above the uniform share: {hot}"
        );
        // Payloads still distinguish every record.
        let mut payloads: Vec<u64> = v.iter().map(|r| r.payload()).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_input_with_zero_theta_is_a_uniform_draw() {
        let v = skewed_input(8000, 8, 0.0, 9);
        let mut counts = vec![0u64; 1000];
        for r in &v {
            counts[r.key() as usize] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        assert!(max < 30, "uniform draw must stay balanced: max {max}");
    }
}
