//! Cycle sort (Haddon, 1990) — the paper's reference write-optimal sort
//! \[10\]: every element is written **at most once**, directly at its final
//! position, at the cost of an unconstrained number of reads (O(n²)
//! comparisons). The paper cites it as the optimum the write-limited
//! sorts approach; we provide it as an in-memory utility and measure its
//! write count in tests and ablations.

/// Sorts `v` in place with at most one write per element; returns the
/// number of element writes performed (0 for an already-sorted slice).
pub fn cycle_sort<T: Ord + Copy>(v: &mut [T]) -> usize {
    let _span = pmem_sim::span::span("alg cycle-sort");
    let n = v.len();
    let mut writes = 0;
    for start in 0..n.saturating_sub(1) {
        let mut item = v[start];

        // Find where `item` belongs.
        let mut pos = start;
        for other in v.iter().skip(start + 1) {
            if *other < item {
                pos += 1;
            }
        }
        if pos == start {
            continue; // already in place, zero writes
        }
        // Skip duplicates of `item` already settled at their spot.
        while item == v[pos] {
            pos += 1;
        }
        std::mem::swap(&mut v[pos], &mut item);
        writes += 1;

        // Rotate the rest of the cycle.
        while pos != start {
            pos = start;
            for other in v.iter().skip(start + 1) {
                if *other < item {
                    pos += 1;
                }
            }
            while item == v[pos] {
                pos += 1;
            }
            std::mem::swap(&mut v[pos], &mut item);
            writes += 1;
        }
    }
    writes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_reversed_input() {
        let mut v: Vec<u32> = (0..100).rev().collect();
        cycle_sort(&mut v);
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_input_needs_zero_writes() {
        let mut v: Vec<u32> = (0..50).collect();
        assert_eq!(cycle_sort(&mut v), 0);
    }

    #[test]
    fn writes_bounded_by_length() {
        let mut v = vec![5u32, 3, 8, 1, 9, 2, 7, 0, 6, 4];
        let w = cycle_sort(&mut v);
        assert!(w <= 10, "writes {w} exceed n");
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_sort_with_at_most_one_write_each() {
        let mut v = vec![2u32, 1, 2, 0, 1, 0, 2, 1];
        let w = cycle_sort(&mut v);
        assert!(w <= v.len());
        assert_eq!(v, vec![0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn empty_and_singleton() {
        let mut e: Vec<u32> = vec![];
        assert_eq!(cycle_sort(&mut e), 0);
        let mut s = vec![42u32];
        assert_eq!(cycle_sort(&mut s), 0);
    }

    #[test]
    fn writes_below_comparison_sort_swap_count() {
        // A full random shuffle needs ≤ n writes with cycle sort, while a
        // swap-based sort performs up to 2·(n − cycles) element writes.
        let mut v: Vec<u64> = (0..200).map(|i| (i * 7919) % 200).collect();
        let w = cycle_sort(&mut v);
        assert!(w <= 200);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
