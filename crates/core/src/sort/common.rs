//! Shared sorting machinery: sort context, run generation via replacement
//! selection, and k-way merging.

use crate::parallel;
use pmem_sim::{BufferPool, LayerKind, PCollection, Pm};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use wisconsin::Record;

/// Execution context shared by every sort operator: the device, the
/// persistence layer for intermediate results and output, and the DRAM
/// budget.
///
/// The context is `Sync`, so merge passes can fan their independent
/// merge groups out across a scoped worker pool; `threads` is the degree
/// of parallelism (default: `WL_THREADS` or serial).
#[derive(Debug)]
pub struct SortContext<'p> {
    dev: Pm,
    kind: LayerKind,
    pool: &'p BufferPool,
    next_id: AtomicU64,
    threads: usize,
}

impl<'p> SortContext<'p> {
    /// Creates a context writing intermediates/output through `kind`.
    pub fn new(dev: &Pm, kind: LayerKind, pool: &'p BufferPool) -> Self {
        Self {
            dev: dev.clone(),
            kind,
            pool,
            next_id: AtomicU64::new(0),
            threads: parallel::degree_from_env(),
        }
    }

    /// Overrides the degree of parallelism for merge fan-ins.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Degree of parallelism merge passes fan out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Device handle.
    pub fn device(&self) -> &Pm {
        &self.dev
    }

    /// Persistence layer used for intermediates and output.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// DRAM budget.
    pub fn pool(&self) -> &'p BufferPool {
        self.pool
    }

    /// How many `R` records fit in the DRAM budget (the paper's `M`
    /// expressed in records).
    pub fn capacity_records<R: Record>(&self) -> usize {
        (self.pool.budget() / R::SIZE).max(1)
    }

    /// Allocates a fresh unique collection name (minted on the
    /// coordinating thread, so names stay deterministic at any degree of
    /// parallelism).
    pub fn fresh_name(&self, prefix: &str) -> String {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        format!("{prefix}-{id}")
    }

    /// Allocates a fresh uniquely-named collection for an intermediate
    /// result.
    pub fn fresh<R: Record>(&self, prefix: &str) -> PCollection<R> {
        PCollection::new(&self.dev, self.kind, self.fresh_name(prefix))
    }
}

/// A heap entry carrying the record, its key, and a tiebreak sequence so
/// duplicate keys retain a total order inside heaps.
#[derive(Clone, Copy, Debug)]
pub struct Entry<R> {
    /// Sort key.
    pub key: u64,
    /// Tiebreaker (input position), keeps heaps totally ordered.
    pub seq: u64,
    /// The record itself.
    pub record: R,
}

impl<R> Entry<R> {
    /// Wraps `record` with its key and a sequence number.
    pub fn new(record: R, seq: u64) -> Self
    where
        R: Record,
    {
        Self {
            key: record.key(),
            seq,
            record,
        }
    }
}

impl<R> PartialEq for Entry<R> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<R> Eq for Entry<R> {}
impl<R> PartialOrd for Entry<R> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<R> Ord for Entry<R> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.seq).cmp(&(other.key, other.seq))
    }
}

/// Generates sorted runs from `input` using replacement selection with a
/// DRAM heap of `capacity` records; runs average twice the heap size on
/// random input (the classic result the paper's Eq. 1 uses).
pub fn generate_runs_replacement<R: Record>(
    input: &PCollection<R>,
    capacity: usize,
    ctx: &SortContext<'_>,
) -> Vec<PCollection<R>> {
    generate_runs_replacement_range(input, 0..input.len(), capacity, ctx)
}

/// Range variant of [`generate_runs_replacement`], used by segment sort to
/// process only a slice of the input.
pub fn generate_runs_replacement_range<R: Record>(
    input: &PCollection<R>,
    range: std::ops::Range<usize>,
    capacity: usize,
    ctx: &SortContext<'_>,
) -> Vec<PCollection<R>> {
    generate_runs_with(input, range, capacity, || ctx.fresh::<R>("run"))
}

/// Chunk width for parallel run generation, in multiples of the DRAM
/// heap capacity `M`. Replacement selection emits runs averaging `2M` on
/// random input, so a `4M` chunk yields ~2 runs and the expected run
/// count (and with it the merge-pass count) matches the unchunked
/// generator; only run *boundaries* move. The width depends on `M` and
/// the input alone — never on the degree of parallelism — so the runs,
/// their names, and every counter are DoP-invariant.
const RUN_GEN_CHUNK_CAPACITIES: usize = 4;

/// Parallel run generation: splits the input into fixed `4M`-record
/// chunks and runs replacement selection on each chunk across the worker
/// pool. Chunk boundaries are a function of the DRAM budget only, so the
/// produced runs are identical at any degree of parallelism; inputs no
/// larger than one chunk fall back to the serial generator unchanged.
pub fn generate_runs_parallel<R: Record>(
    input: &PCollection<R>,
    capacity: usize,
    ctx: &SortContext<'_>,
) -> Vec<PCollection<R>> {
    let chunk = capacity.saturating_mul(RUN_GEN_CHUNK_CAPACITIES).max(1);
    if input.len() <= chunk {
        return generate_runs_replacement(input, capacity, ctx);
    }
    let n_chunks = input.len().div_ceil(chunk);
    // Mint one name prefix per chunk on the coordinating thread; workers
    // derive their run names locally, so naming stays deterministic.
    let prefixes: Vec<String> = (0..n_chunks).map(|_| ctx.fresh_name("run")).collect();
    let mut all: Vec<PCollection<R>> = Vec::with_capacity(n_chunks * 2);
    parallel::for_each_ordered(
        ctx.threads(),
        n_chunks,
        |c| {
            let start = c * chunk;
            let end = (start + chunk).min(input.len());
            let mut local = 0u32;
            generate_runs_with(input, start..end, capacity, || {
                let name = format!("{}.{local}", prefixes[c]);
                local += 1;
                PCollection::new(ctx.device(), ctx.kind(), name)
            })
        },
        |_, out| all.extend(out.value),
    );
    all
}

/// Replacement selection over `range` with caller-supplied run
/// allocation — the shared core of the serial and chunk-parallel
/// generators.
fn generate_runs_with<R: Record>(
    input: &PCollection<R>,
    range: std::ops::Range<usize>,
    capacity: usize,
    mut next_run: impl FnMut() -> PCollection<R>,
) -> Vec<PCollection<R>> {
    assert!(
        capacity > 0,
        "replacement selection needs at least 1 record of DRAM"
    );
    let mut runs: Vec<PCollection<R>> = Vec::new();
    let mut current: BinaryHeap<Reverse<Entry<R>>> = BinaryHeap::with_capacity(capacity);
    let mut next: Vec<Entry<R>> = Vec::new();
    let mut run = next_run();
    let mut last_out: Option<u64> = None;

    for (seq, record) in input.range_reader(range.start, range.end).enumerate() {
        let e = Entry::new(record, seq as u64);
        if current.len() + next.len() < capacity {
            // Heap not yet at capacity: stage into the current run if the
            // record can still extend it, otherwise into the next run.
            match last_out {
                Some(k) if e.key < k => next.push(e),
                _ => current.push(Reverse(e)),
            }
        } else {
            // Evict the minimum of the current run, then place the new
            // record into current (if it can extend the run) or next.
            if let Some(Reverse(min)) = current.pop() {
                run.append(&min.record);
                last_out = Some(min.key);
            }
            if Some(e.key) >= last_out {
                current.push(Reverse(e));
            } else {
                next.push(e);
            }
            if current.is_empty() {
                runs.push(std::mem::replace(&mut run, next_run()));
                current.extend(next.drain(..).map(Reverse));
                last_out = None;
            }
        }
    }

    // Drain the tail: finish the current run, then the next run.
    while let Some(Reverse(min)) = current.pop() {
        run.append(&min.record);
    }
    if !run.is_empty() {
        runs.push(run);
    }
    if !next.is_empty() {
        next.sort_unstable();
        let mut tail = next_run();
        for e in next {
            tail.append(&e.record);
        }
        runs.push(tail);
    }
    runs
}

/// Merge fan-in afforded by the DRAM budget: one block-sized read buffer
/// per open run (at least two-way).
pub fn merge_fan_in(ctx: &SortContext<'_>) -> usize {
    (ctx.pool().budget() / ctx.device().config().block_size).max(2)
}

/// Merges `runs` (each individually sorted) into a single collection,
/// performing as many passes as the fan-in dictates — the paper's
/// `log_M |T|` merge phase.
pub fn merge_runs<R: Record>(
    mut runs: Vec<PCollection<R>>,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> PCollection<R> {
    if runs.len() == 1 {
        // A single run is already the sorted output; returning it directly
        // avoids a spurious rewrite (its name stays "run-…", which is
        // cosmetic — cost fidelity matters more than the label).
        return runs.pop().expect("one run");
    }
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    merge_runs_into(runs, ctx, &mut out);
    out
}

/// Merges `runs` and **appends** the result to `out` (which may already
/// hold a sorted prefix smaller than every run record, as in hybrid
/// sort). Intermediate passes reduce the run count to the fan-in; the
/// final pass streams straight into `out`.
pub fn merge_runs_into<R: Record>(
    mut runs: Vec<PCollection<R>>,
    ctx: &SortContext<'_>,
    out: &mut PCollection<R>,
) {
    if runs.is_empty() {
        return;
    }
    let fan_in = merge_fan_in(ctx);
    while runs.len() > fan_in {
        // The groups of one intermediate pass are independent merges, so
        // they fan out across the worker pool. Target names are minted
        // up front on this thread; each group's reads and writes touch
        // only its own runs and target, so the counters are identical to
        // the serial pass at any DoP.
        let groups: Vec<&[PCollection<R>]> = runs.chunks(fan_in).collect();
        let names: Vec<String> = (0..groups.len()).map(|_| ctx.fresh_name("merge")).collect();
        let merged = parallel::map_ordered(ctx.threads(), groups.len(), |g| {
            let mut next = PCollection::new(ctx.device(), ctx.kind(), names[g].clone());
            merge_group(groups[g], &mut next);
            next
        });
        drop(groups);
        runs = merged;
    }
    if runs.len() == 1 && out.is_empty() {
        // Concatenation with an empty prefix: copying is unavoidable to
        // land the data in `out`, but prefer the cheap path when the
        // caller can take ownership via `merge_runs` instead.
        for r in runs[0].reader() {
            out.append(&r);
        }
        return;
    }
    merge_group(&runs, out);
}

/// Streams one merge group into `out` using a tournament over the run
/// heads.
pub fn merge_group<R: Record>(group: &[PCollection<R>], out: &mut PCollection<R>) {
    let streams: Vec<Box<dyn Iterator<Item = R> + '_>> = group
        .iter()
        .map(|r| Box::new(r.reader()) as Box<dyn Iterator<Item = R> + '_>)
        .collect();
    merge_streams(streams, out);
}

/// Merges arbitrary sorted streams (run readers, on-the-fly selection
/// streams, …) into `out` with a tournament over the stream heads.
///
/// This is what lets segment sort keep its selection-sorted segment
/// **deferred**: the segment participates in the merge as a stream that
/// regenerates itself by rescanning the input, so its records are
/// written exactly once — at their final location in `out` (the paper's
/// "minimum number of writes: as many as there are buffers in T").
pub fn merge_streams<R: Record>(
    mut streams: Vec<Box<dyn Iterator<Item = R> + '_>>,
    out: &mut PCollection<R>,
) {
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::with_capacity(streams.len());
    let mut heads: Vec<Option<R>> = Vec::with_capacity(streams.len());
    let mut seq = 0u64;
    for (i, s) in streams.iter_mut().enumerate() {
        let head = s.next();
        if let Some(ref r) = head {
            heap.push(Reverse((r.key(), seq, i)));
            seq += 1;
        }
        heads.push(head);
    }
    while let Some(Reverse((_, _, i))) = heap.pop() {
        let rec = heads[i].take().expect("head present for popped entry");
        out.append(&rec);
        if let Some(nxt) = streams[i].next() {
            heap.push(Reverse((nxt.key(), seq, i)));
            seq += 1;
            heads[i] = Some(nxt);
        }
    }
}

/// Asserts a collection is sorted by key (test helper).
pub fn is_sorted_by_key<R: Record>(col: &PCollection<R>) -> bool {
    let v = col.to_vec_uncounted();
    v.windows(2).all(|w| w[0].key() <= w[1].key())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, PmDevice};
    use wisconsin::{sort_input, KeyOrder, WisconsinRecord};

    fn stage(n: u64, order: KeyOrder) -> (Pm, PCollection<WisconsinRecord>) {
        let dev = PmDevice::paper_default();
        let col = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "input",
            sort_input(n, order, 42),
        );
        (dev, col)
    }

    #[test]
    fn replacement_selection_runs_are_sorted_and_complete() {
        let (dev, input) = stage(5000, KeyOrder::Random);
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 100, &ctx);
        let mut total = 0;
        for run in &runs {
            assert!(is_sorted_by_key(run));
            total += run.len();
        }
        assert_eq!(total, 5000);
    }

    #[test]
    fn replacement_selection_runs_average_2m_on_random_input() {
        let (dev, input) = stage(20_000, KeyOrder::Random);
        let pool = BufferPool::new(200 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 200, &ctx);
        let avg = 20_000.0 / runs.len() as f64;
        assert!(
            avg > 1.5 * 200.0 && avg < 2.5 * 200.0,
            "average run length {avg} not near 2M"
        );
    }

    #[test]
    fn sorted_input_yields_single_run() {
        let (dev, input) = stage(5000, KeyOrder::Sorted);
        let pool = BufferPool::new(64 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 64, &ctx);
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn reverse_input_yields_runs_of_m() {
        let (dev, input) = stage(1000, KeyOrder::Reverse);
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 100, &ctx);
        assert_eq!(runs.len(), 10); // worst case: every run exactly M
    }

    #[test]
    fn parallel_run_generation_is_dop_invariant() {
        // Same chunked runs — contents, names, and charged traffic — at
        // every degree of parallelism.
        let gen_at = |threads: usize| {
            let (dev, input) = stage(6_000, KeyOrder::Random);
            let pool = BufferPool::new(100 * 80);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
            let before = dev.snapshot();
            let runs = generate_runs_parallel(&input, 100, &ctx);
            let delta = dev.snapshot().since(&before);
            let summary: Vec<(String, Vec<u64>)> = runs
                .iter()
                .map(|r| {
                    (
                        r.name().to_string(),
                        r.to_vec_uncounted().iter().map(Record::key).collect(),
                    )
                })
                .collect();
            (summary, delta)
        };
        let (serial, d1) = gen_at(1);
        assert!(serial.len() > 1, "input must span several chunks");
        let mut total = 0;
        for (_, keys) in &serial {
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            total += keys.len();
        }
        assert_eq!(total, 6_000);
        for threads in [2, 4] {
            let (par, dn) = gen_at(threads);
            assert_eq!(serial, par, "runs must not depend on DoP");
            assert_eq!(d1, dn, "counters must not depend on DoP");
        }
    }

    #[test]
    fn small_inputs_use_the_serial_generator_unchanged() {
        let (dev, input) = stage(300, KeyOrder::Random);
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(4);
        // 300 <= 4·100: one chunk, byte-for-byte the serial algorithm.
        let chunked = generate_runs_parallel(&input, 100, &ctx);
        let ctx2 = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let serial = generate_runs_replacement(&input, 100, &ctx2);
        assert_eq!(chunked.len(), serial.len());
        for (a, b) in chunked.iter().zip(&serial) {
            assert_eq!(a.to_vec_uncounted(), b.to_vec_uncounted());
        }
    }

    #[test]
    fn merge_runs_produces_total_order() {
        let (dev, input) = stage(8000, KeyOrder::Random);
        let pool = BufferPool::new(128 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 128, &ctx);
        let out = merge_runs(runs, &ctx, "sorted");
        assert_eq!(out.len(), 8000);
        assert!(is_sorted_by_key(&out));
    }

    #[test]
    fn merge_handles_empty_and_single_run() {
        let dev = PmDevice::paper_default();
        let pool = BufferPool::new(8192);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = merge_runs(Vec::<PCollection<WisconsinRecord>>::new(), &ctx, "empty");
        assert!(out.is_empty());

        let one = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "r",
            (0..10).map(WisconsinRecord::from_key),
        );
        let out = merge_runs(vec![one], &ctx, "single");
        assert_eq!(out.len(), 10);
        assert!(is_sorted_by_key(&out));
    }

    #[test]
    fn entry_ordering_breaks_ties_by_seq() {
        let a = Entry::new(WisconsinRecord::from_key(5), 0);
        let b = Entry::new(WisconsinRecord::from_key(5), 1);
        assert!(a < b);
    }
}
