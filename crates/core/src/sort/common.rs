//! Shared sorting machinery: sort context, run generation via replacement
//! selection, and k-way merging.

use crate::parallel;
use pmem_sim::{
    thread_stats, BufferPool, IoStats, LayerKind, PCollection, Pm, ReadCursor, RecordBuffer,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use wisconsin::Record;

/// Execution context shared by every sort operator: the device, the
/// persistence layer for intermediate results and output, and the DRAM
/// budget.
///
/// The context is `Sync`, so merge passes can fan their independent
/// merge groups out across a scoped worker pool; `threads` is the degree
/// of parallelism (default: `WL_THREADS` or serial).
#[derive(Debug)]
pub struct SortContext<'p> {
    dev: Pm,
    kind: LayerKind,
    pool: &'p BufferPool,
    next_id: AtomicU64,
    threads: usize,
}

impl<'p> SortContext<'p> {
    /// Creates a context writing intermediates/output through `kind`.
    pub fn new(dev: &Pm, kind: LayerKind, pool: &'p BufferPool) -> Self {
        Self {
            dev: dev.clone(),
            kind,
            pool,
            next_id: AtomicU64::new(0),
            threads: parallel::degree_from_env(),
        }
    }

    /// Overrides the degree of parallelism for merge fan-ins.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Degree of parallelism merge passes fan out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Device handle.
    pub fn device(&self) -> &Pm {
        &self.dev
    }

    /// Persistence layer used for intermediates and output.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// DRAM budget.
    pub fn pool(&self) -> &'p BufferPool {
        self.pool
    }

    /// How many `R` records fit in the DRAM budget (the paper's `M`
    /// expressed in records).
    pub fn capacity_records<R: Record>(&self) -> usize {
        (self.pool.budget() / R::SIZE).max(1)
    }

    /// Allocates a fresh unique collection name (minted on the
    /// coordinating thread, so names stay deterministic at any degree of
    /// parallelism).
    pub fn fresh_name(&self, prefix: &str) -> String {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        format!("{prefix}-{id}")
    }

    /// Allocates a fresh uniquely-named collection for an intermediate
    /// result.
    pub fn fresh<R: Record>(&self, prefix: &str) -> PCollection<R> {
        PCollection::new(&self.dev, self.kind, self.fresh_name(prefix))
    }
}

/// A heap entry carrying the record, its key, and a tiebreak sequence so
/// duplicate keys retain a total order inside heaps.
#[derive(Clone, Copy, Debug)]
pub struct Entry<R> {
    /// Sort key.
    pub key: u64,
    /// Tiebreaker (input position), keeps heaps totally ordered.
    pub seq: u64,
    /// The record itself.
    pub record: R,
}

impl<R> Entry<R> {
    /// Wraps `record` with its key and a sequence number.
    pub fn new(record: R, seq: u64) -> Self
    where
        R: Record,
    {
        Self {
            key: record.key(),
            seq,
            record,
        }
    }
}

impl<R> PartialEq for Entry<R> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<R> Eq for Entry<R> {}
impl<R> PartialOrd for Entry<R> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<R> Ord for Entry<R> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.seq).cmp(&(other.key, other.seq))
    }
}

/// Generates sorted runs from `input` using replacement selection with a
/// DRAM heap of `capacity` records; runs average twice the heap size on
/// random input (the classic result the paper's Eq. 1 uses).
pub fn generate_runs_replacement<R: Record>(
    input: &PCollection<R>,
    capacity: usize,
    ctx: &SortContext<'_>,
) -> Vec<PCollection<R>> {
    generate_runs_replacement_range(input, 0..input.len(), capacity, ctx)
}

/// Range variant of [`generate_runs_replacement`], used by segment sort to
/// process only a slice of the input.
pub fn generate_runs_replacement_range<R: Record>(
    input: &PCollection<R>,
    range: std::ops::Range<usize>,
    capacity: usize,
    ctx: &SortContext<'_>,
) -> Vec<PCollection<R>> {
    generate_runs_with(input, range, capacity, || ctx.fresh::<R>("run"))
}

/// Chunk width for parallel run generation, in multiples of the DRAM
/// heap capacity `M`. Replacement selection emits runs averaging `2M` on
/// random input, so a `4M` chunk yields ~2 runs and the expected run
/// count (and with it the merge-pass count) matches the unchunked
/// generator; only run *boundaries* move. The width depends on `M` and
/// the input alone — never on the degree of parallelism — so the runs,
/// their names, and every counter are DoP-invariant.
const RUN_GEN_CHUNK_CAPACITIES: usize = 4;

/// Parallel run generation: splits the input into fixed `4M`-record
/// chunks and runs replacement selection on each chunk across the worker
/// pool. Chunk boundaries are a function of the DRAM budget only, so the
/// produced runs are identical at any degree of parallelism; inputs no
/// larger than one chunk fall back to the serial generator unchanged.
pub fn generate_runs_parallel<R: Record>(
    input: &PCollection<R>,
    capacity: usize,
    ctx: &SortContext<'_>,
) -> Vec<PCollection<R>> {
    generate_runs_parallel_profiled(input, capacity, ctx).0
}

/// [`generate_runs_parallel`] plus each chunk's traffic as charged by
/// its worker's thread-local ledger — the run-generation half of the
/// speedup harness's critical-path profile.
pub fn generate_runs_parallel_profiled<R: Record>(
    input: &PCollection<R>,
    capacity: usize,
    ctx: &SortContext<'_>,
) -> (Vec<PCollection<R>>, Vec<IoStats>) {
    let chunk = capacity.saturating_mul(RUN_GEN_CHUNK_CAPACITIES).max(1);
    if input.len() <= chunk {
        let before = thread_stats();
        let runs = generate_runs_replacement(input, capacity, ctx);
        return (runs, vec![thread_stats().since(&before)]);
    }
    let n_chunks = input.len().div_ceil(chunk);
    // Mint one name prefix per chunk on the coordinating thread; workers
    // derive their run names locally, so naming stays deterministic.
    let prefixes: Vec<String> = (0..n_chunks).map(|_| ctx.fresh_name("run")).collect();
    let mut all: Vec<PCollection<R>> = Vec::with_capacity(n_chunks * 2);
    let mut per_chunk = Vec::with_capacity(n_chunks);
    parallel::for_each_ordered(
        ctx.threads(),
        n_chunks,
        |c| {
            let start = c * chunk;
            let end = (start + chunk).min(input.len());
            let mut local = 0u32;
            generate_runs_with(input, start..end, capacity, || {
                let name = format!("{}.{local}", prefixes[c]);
                local += 1;
                PCollection::new(ctx.device(), ctx.kind(), name)
            })
        },
        |_, out| {
            all.extend(out.value);
            per_chunk.push(out.stats);
        },
    );
    (all, per_chunk)
}

/// Replacement selection over `range` with caller-supplied run
/// allocation — the shared core of the serial and chunk-parallel
/// generators.
fn generate_runs_with<R: Record>(
    input: &PCollection<R>,
    range: std::ops::Range<usize>,
    capacity: usize,
    mut next_run: impl FnMut() -> PCollection<R>,
) -> Vec<PCollection<R>> {
    assert!(
        capacity > 0,
        "replacement selection needs at least 1 record of DRAM"
    );
    let mut runs: Vec<PCollection<R>> = Vec::new();
    let mut current: BinaryHeap<Reverse<Entry<R>>> = BinaryHeap::with_capacity(capacity);
    let mut next: Vec<Entry<R>> = Vec::new();
    let mut run = next_run();
    let mut last_out: Option<u64> = None;

    for (seq, record) in input.range_reader(range.start, range.end).enumerate() {
        let e = Entry::new(record, seq as u64);
        if current.len() + next.len() < capacity {
            // Heap not yet at capacity: stage into the current run if the
            // record can still extend it, otherwise into the next run.
            match last_out {
                Some(k) if e.key < k => next.push(e),
                _ => current.push(Reverse(e)),
            }
        } else {
            // Evict the minimum of the current run, then place the new
            // record into current (if it can extend the run) or next.
            if let Some(Reverse(min)) = current.pop() {
                run.append(&min.record);
                last_out = Some(min.key);
            }
            if Some(e.key) >= last_out {
                current.push(Reverse(e));
            } else {
                next.push(e);
            }
            if current.is_empty() {
                runs.push(std::mem::replace(&mut run, next_run()));
                current.extend(next.drain(..).map(Reverse));
                last_out = None;
            }
        }
    }

    // Drain the tail: finish the current run, then the next run.
    while let Some(Reverse(min)) = current.pop() {
        run.append(&min.record);
    }
    if !run.is_empty() {
        runs.push(run);
    }
    if !next.is_empty() {
        next.sort_unstable();
        let mut tail = next_run();
        for e in next {
            tail.append(&e.record);
        }
        runs.push(tail);
    }
    runs
}

/// Merge fan-in afforded by the DRAM budget: one block-sized read buffer
/// per open run (at least two-way).
pub fn merge_fan_in(ctx: &SortContext<'_>) -> usize {
    (ctx.pool().budget() / ctx.device().config().block_size).max(2)
}

/// Merges `runs` (each individually sorted) into a single collection,
/// performing as many passes as the fan-in dictates — the paper's
/// `log_M |T|` merge phase.
pub fn merge_runs<R: Record>(
    mut runs: Vec<PCollection<R>>,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> PCollection<R> {
    if runs.len() == 1 {
        // A single run is already the sorted output; returning it directly
        // avoids a spurious rewrite (its name stays "run-…", which is
        // cosmetic — cost fidelity matters more than the label).
        if let Some(run) = runs.pop() {
            return run;
        }
    }
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    merge_runs_into(runs, ctx, &mut out);
    out
}

/// Per-pass ledger profile of a multi-pass merge: one entry per pass,
/// each holding the traffic of that pass's independent tasks (merge
/// groups for intermediate passes, key-range segments for the final
/// one). The speedup harness turns these into critical-path estimates.
#[derive(Clone, Debug, Default)]
pub struct MergeProfile {
    /// Per pass, the per-task traffic in execution (task-index) order.
    pub passes: Vec<Vec<IoStats>>,
}

/// Merges `runs` and **appends** the result to `out` (which may already
/// hold a sorted prefix smaller than every run record, as in hybrid
/// sort). Intermediate passes reduce the run count to the fan-in; the
/// final pass range-partitions the key space and streams each segment
/// into `out` in splitter order.
pub fn merge_runs_into<R: Record>(
    runs: Vec<PCollection<R>>,
    ctx: &SortContext<'_>,
    out: &mut PCollection<R>,
) {
    let _ = merge_runs_into_profiled(runs, ctx, out);
}

/// [`merge_runs_into`] plus the per-pass, per-task ledger profile.
pub fn merge_runs_into_profiled<R: Record>(
    mut runs: Vec<PCollection<R>>,
    ctx: &SortContext<'_>,
    out: &mut PCollection<R>,
) -> MergeProfile {
    let mut profile = MergeProfile::default();
    if runs.is_empty() {
        return profile;
    }
    let fan_in = merge_fan_in(ctx);
    while runs.len() > fan_in {
        // The groups of one intermediate pass are independent merges, so
        // they fan out across the worker pool. Target names are minted
        // up front on this thread; each group's reads and writes touch
        // only its own runs and target, so the counters are identical to
        // the serial pass at any DoP.
        let groups: Vec<&[PCollection<R>]> = runs.chunks(fan_in).collect();
        let names: Vec<String> = (0..groups.len()).map(|_| ctx.fresh_name("merge")).collect();
        let mut merged = Vec::with_capacity(groups.len());
        let mut pass = Vec::with_capacity(groups.len());
        parallel::for_each_ordered(
            ctx.threads(),
            groups.len(),
            |g| {
                let mut next = PCollection::new(ctx.device(), ctx.kind(), names[g].clone());
                merge_group(groups[g], &mut next);
                next
            },
            |_, task| {
                merged.push(task.value);
                pass.push(task.stats);
            },
        );
        drop(groups);
        runs = merged;
        profile.passes.push(pass);
    }
    if runs.len() == 1 && out.is_empty() {
        // Concatenation with an empty prefix: copying is unavoidable to
        // land the data in `out`, but prefer the cheap path when the
        // caller can take ownership via `merge_runs` instead.
        let before = thread_stats();
        for r in runs[0].reader() {
            out.append(&r);
        }
        profile.passes.push(vec![thread_stats().since(&before)]);
        return profile;
    }
    profile.passes.push(merge_group_parallel(&runs, ctx, out));
    profile
}

/// Streams one merge group into `out` using a tournament over the run
/// heads.
pub fn merge_group<R: Record>(group: &[PCollection<R>], out: &mut PCollection<R>) {
    let streams: Vec<Box<dyn Iterator<Item = R> + '_>> = group
        .iter()
        .map(|r| Box::new(r.reader()) as Box<dyn Iterator<Item = R> + '_>)
        .collect();
    merge_streams(streams, out);
}

/// Records per key-range segment of the parallel final merge. The
/// segment grid depends only on the merged record count — never on the
/// degree of parallelism — so the splitter keys, the per-run boundary
/// searches, and every charged counter are DoP-invariant.
pub const MERGE_SEGMENT_RECORDS: usize = 8192;

/// Final-pass merge of one group, range-partitioned across the worker
/// pool: splitter keys are sampled from the runs, each worker merges its
/// key range from **all** runs into an ordered segment, and the
/// coordinator concatenates the segments in splitter order. The output
/// is byte-identical to [`merge_group`] (equal keys tie-break by run
/// index in both), and the counters are identical at any DoP. Returns
/// the per-segment traffic (segment reads plus its share of the output
/// flush).
pub fn merge_group_parallel<R: Record>(
    group: &[PCollection<R>],
    ctx: &SortContext<'_>,
    out: &mut PCollection<R>,
) -> Vec<IoStats> {
    let total: usize = group.iter().map(PCollection::len).sum();
    let segments = total.div_ceil(MERGE_SEGMENT_RECORDS).max(1);
    if group.len() <= 1 || segments <= 1 {
        let before = thread_stats();
        merge_group(group, out);
        return vec![thread_stats().since(&before)];
    }
    let cuts = run_segment_cuts(group, segments);
    let mut per_segment = Vec::with_capacity(segments);
    parallel::for_each_ordered(
        ctx.threads(),
        segments,
        |seg| {
            let mut buf = RecordBuffer::new();
            for rec in KWayMerge::new(segment_streams(group, &cuts, seg)) {
                buf.push(&rec);
            }
            buf
        },
        |_, task| {
            // The flush is serialized here for count determinism, but the
            // writes belong to the segment (a medium serving DoP workers
            // would land each segment from its own worker); charge them
            // to the segment's cost through the coordinator's ledger.
            let before = thread_stats();
            out.append_buffer(&task.value);
            let flush = thread_stats().since(&before);
            per_segment.push(task.stats.plus(&flush));
        },
    );
    per_segment
}

/// One segment's merge inputs under a [`run_segment_cuts`] grid: run
/// `r`'s records in `cuts[r][seg]..cuts[r][seg + 1]`, as boxed streams
/// ready for a [`KWayMerge`].
pub(crate) fn segment_streams<'a, R: Record>(
    runs: &'a [PCollection<R>],
    cuts: &[Vec<usize>],
    seg: usize,
) -> Vec<Box<dyn Iterator<Item = R> + 'a>> {
    runs.iter()
        .enumerate()
        .map(|(r, run)| {
            Box::new(run.range_reader(cuts[r][seg], cuts[r][seg + 1]))
                as Box<dyn Iterator<Item = R> + 'a>
        })
        .collect()
}

/// The shared scaffolding of the range-partitioned passes over a set of
/// sorted runs: pool an evenly spaced key sample from every run, reduce
/// it to quantile splitters, and cut each run at them — `cuts[r][i]..
/// cuts[r][i + 1]` is run `r`'s slice of segment `i`. The grid depends
/// only on the data, so it is identical at any DoP.
pub(crate) fn run_segment_cuts<R: Record>(
    runs: &[PCollection<R>],
    segments: usize,
) -> Vec<Vec<usize>> {
    let mut sample: Vec<u64> = Vec::with_capacity(runs.len() * segments);
    for run in runs {
        sample.extend(sample_keys(run, segments));
    }
    let splitters = splitters_from_samples(sample, segments);
    runs.iter().map(|r| key_range_cuts(r, &splitters)).collect()
}

/// Samples up to `count` keys from a sorted collection at evenly spaced
/// positions through one forward cursor (charged like a sparse scan).
pub(crate) fn sample_keys<R: Record>(col: &PCollection<R>, count: usize) -> Vec<u64> {
    if col.is_empty() || count == 0 {
        return Vec::new();
    }
    let mut cursor = ReadCursor::new();
    (0..count)
        .map(|j| {
            col.get_with_cursor(j * col.len() / count, &mut cursor)
                .key()
        })
        .collect()
}

/// Reduces a pooled key sample to `segments − 1` splitter keys at the
/// sample's quantiles. Heavily skewed samples may repeat a splitter;
/// the repeated ranges are simply empty — correct, just less parallel
/// (all-equal keys are the worst case and degrade to one segment).
pub(crate) fn splitters_from_samples(mut sample: Vec<u64>, segments: usize) -> Vec<u64> {
    if sample.is_empty() {
        return Vec::new();
    }
    sample.sort_unstable();
    (1..segments)
        .map(|i| sample[i * sample.len() / segments])
        .collect()
}

/// First index in the sorted `col` whose key is ≥ `key`, by binary
/// search over counted point reads (a handful of random accesses per
/// boundary; the probe sequence depends only on the data).
pub(crate) fn lower_bound_by_key<R: Record>(col: &PCollection<R>, key: u64) -> usize {
    let (mut lo, mut hi) = (0usize, col.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if col.get(mid).key() < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Segment boundaries of a sorted collection under `splitters`:
/// `splitters.len() + 2` nondecreasing positions from 0 to `len`, so
/// segment `i` is `cuts[i]..cuts[i + 1]`.
pub(crate) fn key_range_cuts<R: Record>(col: &PCollection<R>, splitters: &[u64]) -> Vec<usize> {
    let mut cuts = Vec::with_capacity(splitters.len() + 2);
    cuts.push(0);
    for &s in splitters {
        cuts.push(lower_bound_by_key(col, s));
    }
    cuts.push(col.len());
    cuts
}

/// Merges arbitrary sorted streams (run readers, on-the-fly selection
/// streams, …) into `out` with a loser-tree tournament over the stream
/// heads.
///
/// This is what lets segment sort keep its selection-sorted segment
/// **deferred**: the segment participates in the merge as a stream that
/// regenerates itself by rescanning the input, so its records are
/// written exactly once — at their final location in `out` (the paper's
/// "minimum number of writes: as many as there are buffers in T").
pub fn merge_streams<R: Record>(
    streams: Vec<Box<dyn Iterator<Item = R> + '_>>,
    out: &mut PCollection<R>,
) {
    for rec in KWayMerge::new(streams) {
        out.append(&rec);
    }
}

/// A k-way tournament (loser tree) over stream indices: `log₂ k`
/// comparisons per emitted record regardless of which stream wins,
/// versus the up-to-`2·log₂ k` sift of a binary heap — the difference
/// shows at high merge fan-in. Equal keys tie-break by the smaller
/// stream index, which makes the merge *stable by stream* and lets the
/// range-partitioned final merge reproduce the serial output exactly.
#[derive(Debug)]
pub struct LoserTree {
    /// `node[0]`: the overall winner leaf; `node[1..p]`: the loser leaf
    /// of the internal match at that slot.
    node: Vec<usize>,
    /// Leaf count padded to the next power of two (padding leaves are
    /// permanently exhausted).
    p: usize,
}

/// Whether leaf `a` beats leaf `b` given the streams' current head keys
/// (`None` = exhausted, loses to everything; ties go to the smaller
/// index).
fn beats(a: usize, b: usize, keys: &[Option<u64>]) -> bool {
    match (
        keys.get(a).copied().flatten(),
        keys.get(b).copied().flatten(),
    ) {
        (Some(x), Some(y)) => (x, a) < (y, b),
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => a < b,
    }
}

impl LoserTree {
    /// Builds the tournament over `keys.len()` streams.
    pub fn new(keys: &[Option<u64>]) -> Self {
        let p = keys.len().max(1).next_power_of_two();
        let mut tree = Self {
            node: vec![0; p],
            p,
        };
        tree.node[0] = tree.build(1, keys);
        tree
    }

    /// Plays out the subtree under internal node `n`, recording losers;
    /// returns the subtree's winning leaf.
    fn build(&mut self, n: usize, keys: &[Option<u64>]) -> usize {
        if n >= self.p {
            return n - self.p;
        }
        let a = self.build(2 * n, keys);
        let b = self.build(2 * n + 1, keys);
        if beats(a, b, keys) {
            self.node[n] = b;
            a
        } else {
            self.node[n] = a;
            b
        }
    }

    /// Index of the stream holding the smallest head.
    pub fn winner(&self) -> usize {
        self.node[0]
    }

    /// Replays the winner's path after its stream advanced (`keys` must
    /// reflect the new head): exactly `log₂ p` matches.
    pub fn replay(&mut self, keys: &[Option<u64>]) {
        let mut w = self.node[0];
        let mut n = (self.p + w) >> 1;
        while n >= 1 {
            if beats(self.node[n], w, keys) {
                std::mem::swap(&mut self.node[n], &mut w);
            }
            n >>= 1;
        }
        self.node[0] = w;
    }
}

/// Pull-based k-way merge over sorted streams (iterator flavour of
/// [`merge_streams`], for consumers that must see records instead of a
/// collection — the aggregation pipeline, the segment mergers). Runs on
/// a [`LoserTree`]; equal keys come out in stream-index order.
pub struct KWayMerge<'a, R: Record> {
    streams: Vec<Box<dyn Iterator<Item = R> + 'a>>,
    heads: Vec<Option<R>>,
    keys: Vec<Option<u64>>,
    tree: LoserTree,
}

impl<'a, R: Record> KWayMerge<'a, R> {
    /// Primes every stream and builds the tournament.
    pub fn new(mut streams: Vec<Box<dyn Iterator<Item = R> + 'a>>) -> Self {
        let heads: Vec<Option<R>> = streams.iter_mut().map(Iterator::next).collect();
        let keys: Vec<Option<u64>> = heads.iter().map(|h| h.as_ref().map(Record::key)).collect();
        let tree = LoserTree::new(&keys);
        Self {
            streams,
            heads,
            keys,
            tree,
        }
    }
}

impl<'a, R: Record> Iterator for KWayMerge<'a, R> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        let i = self.tree.winner();
        let rec = self.heads.get_mut(i)?.take()?;
        self.heads[i] = self.streams[i].next();
        self.keys[i] = self.heads[i].as_ref().map(Record::key);
        self.tree.replay(&self.keys);
        Some(rec)
    }
}

/// Asserts a collection is sorted by key (test helper).
pub fn is_sorted_by_key<R: Record>(col: &PCollection<R>) -> bool {
    // audit:allow(uncounted-api) test-only verification read, outside the measured path
    let v = col.to_vec_uncounted();
    v.windows(2).all(|w| w[0].key() <= w[1].key())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, PmDevice};
    use wisconsin::{sort_input, KeyOrder, WisconsinRecord};

    fn stage(n: u64, order: KeyOrder) -> (Pm, PCollection<WisconsinRecord>) {
        let dev = PmDevice::paper_default();
        let col = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "input",
            sort_input(n, order, 42),
        );
        (dev, col)
    }

    #[test]
    fn replacement_selection_runs_are_sorted_and_complete() {
        let (dev, input) = stage(5000, KeyOrder::Random);
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 100, &ctx);
        let mut total = 0;
        for run in &runs {
            assert!(is_sorted_by_key(run));
            total += run.len();
        }
        assert_eq!(total, 5000);
    }

    #[test]
    fn replacement_selection_runs_average_2m_on_random_input() {
        let (dev, input) = stage(20_000, KeyOrder::Random);
        let pool = BufferPool::new(200 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 200, &ctx);
        let avg = 20_000.0 / runs.len() as f64;
        assert!(
            avg > 1.5 * 200.0 && avg < 2.5 * 200.0,
            "average run length {avg} not near 2M"
        );
    }

    #[test]
    fn sorted_input_yields_single_run() {
        let (dev, input) = stage(5000, KeyOrder::Sorted);
        let pool = BufferPool::new(64 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 64, &ctx);
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn reverse_input_yields_runs_of_m() {
        let (dev, input) = stage(1000, KeyOrder::Reverse);
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 100, &ctx);
        assert_eq!(runs.len(), 10); // worst case: every run exactly M
    }

    #[test]
    fn parallel_run_generation_is_dop_invariant() {
        // Same chunked runs — contents, names, and charged traffic — at
        // every degree of parallelism.
        let gen_at = |threads: usize| {
            let (dev, input) = stage(6_000, KeyOrder::Random);
            let pool = BufferPool::new(100 * 80);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
            let before = dev.snapshot();
            let runs = generate_runs_parallel(&input, 100, &ctx);
            let delta = dev.snapshot().since(&before);
            let summary: Vec<(String, Vec<u64>)> = runs
                .iter()
                .map(|r| {
                    (
                        r.name().to_string(),
                        r.to_vec_uncounted().iter().map(Record::key).collect(),
                    )
                })
                .collect();
            (summary, delta)
        };
        let (serial, d1) = gen_at(1);
        assert!(serial.len() > 1, "input must span several chunks");
        let mut total = 0;
        for (_, keys) in &serial {
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            total += keys.len();
        }
        assert_eq!(total, 6_000);
        for threads in [2, 4] {
            let (par, dn) = gen_at(threads);
            assert_eq!(serial, par, "runs must not depend on DoP");
            assert_eq!(d1, dn, "counters must not depend on DoP");
        }
    }

    #[test]
    fn small_inputs_use_the_serial_generator_unchanged() {
        let (dev, input) = stage(300, KeyOrder::Random);
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(4);
        // 300 <= 4·100: one chunk, byte-for-byte the serial algorithm.
        let chunked = generate_runs_parallel(&input, 100, &ctx);
        let ctx2 = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let serial = generate_runs_replacement(&input, 100, &ctx2);
        assert_eq!(chunked.len(), serial.len());
        for (a, b) in chunked.iter().zip(&serial) {
            assert_eq!(a.to_vec_uncounted(), b.to_vec_uncounted());
        }
    }

    #[test]
    fn merge_runs_produces_total_order() {
        let (dev, input) = stage(8000, KeyOrder::Random);
        let pool = BufferPool::new(128 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let runs = generate_runs_replacement(&input, 128, &ctx);
        let out = merge_runs(runs, &ctx, "sorted");
        assert_eq!(out.len(), 8000);
        assert!(is_sorted_by_key(&out));
    }

    #[test]
    fn merge_handles_empty_and_single_run() {
        let dev = PmDevice::paper_default();
        let pool = BufferPool::new(8192);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = merge_runs(Vec::<PCollection<WisconsinRecord>>::new(), &ctx, "empty");
        assert!(out.is_empty());

        let one = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "r",
            (0..10).map(WisconsinRecord::from_key),
        );
        let out = merge_runs(vec![one], &ctx, "single");
        assert_eq!(out.len(), 10);
        assert!(is_sorted_by_key(&out));
    }

    #[test]
    fn entry_ordering_breaks_ties_by_seq() {
        let a = Entry::new(WisconsinRecord::from_key(5), 0);
        let b = Entry::new(WisconsinRecord::from_key(5), 1);
        assert!(a < b);
    }

    #[test]
    fn loser_tree_emits_total_order_with_stream_index_ties() {
        // Three streams with interleaved and duplicate keys: the merge
        // must be sorted, and equal keys must come out in stream order.
        let streams: Vec<Vec<u64>> = vec![vec![1, 4, 4, 9], vec![2, 4, 9], vec![4, 7]];
        let mut keys: Vec<Option<u64>> = streams.iter().map(|s| s.first().copied()).collect();
        let mut pos = vec![0usize; streams.len()];
        let mut tree = LoserTree::new(&keys);
        let mut merged = Vec::new();
        loop {
            let i = tree.winner();
            let Some(k) = keys[i] else { break };
            merged.push((k, i));
            pos[i] += 1;
            keys[i] = streams[i].get(pos[i]).copied();
            tree.replay(&keys);
        }
        assert_eq!(
            merged,
            vec![
                (1, 0),
                (2, 1),
                (4, 0),
                (4, 0),
                (4, 1),
                (4, 2),
                (7, 2),
                (9, 0),
                (9, 1),
            ]
        );
    }

    #[test]
    fn loser_tree_handles_degenerate_stream_counts() {
        // Zero streams: the virtual winner is exhausted.
        let tree = LoserTree::new(&[]);
        assert_eq!(tree.winner(), 0);
        // One stream: it always wins until exhausted.
        let mut keys = vec![Some(3u64)];
        let mut tree = LoserTree::new(&keys);
        assert_eq!(tree.winner(), 0);
        keys[0] = None;
        tree.replay(&keys);
        assert_eq!(tree.winner(), 0);
    }

    #[test]
    fn lower_bound_by_key_finds_first_not_less() {
        let dev = PmDevice::paper_default();
        let col = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "s",
            [1u64, 3, 3, 3, 8, 9].map(WisconsinRecord::from_key),
        );
        assert_eq!(lower_bound_by_key(&col, 0), 0);
        assert_eq!(lower_bound_by_key(&col, 3), 1);
        assert_eq!(lower_bound_by_key(&col, 4), 4);
        assert_eq!(lower_bound_by_key(&col, 9), 5);
        assert_eq!(lower_bound_by_key(&col, 100), 6);
    }

    #[test]
    fn parallel_final_merge_matches_serial_merge_exactly() {
        // The range-partitioned final pass must produce byte-identical
        // output to the serial tournament, and identical counters at
        // every DoP (the grid depends on the data, not the workers).
        let make_runs = |dev: &Pm| -> Vec<PCollection<WisconsinRecord>> {
            (0..4u64)
                .map(|r| {
                    PCollection::from_records_uncounted(
                        dev,
                        LayerKind::BlockedMemory,
                        format!("r{r}"),
                        (0..6000u64).map(move |i| {
                            WisconsinRecord::from_key(i / 2 + r).with_payload(r * 10_000 + i)
                        }),
                    )
                })
                .collect()
        };
        let serial = {
            let dev = PmDevice::paper_default();
            let runs = make_runs(&dev);
            let mut out = PCollection::new(&dev, LayerKind::BlockedMemory, "serial");
            merge_group(&runs, &mut out);
            out.to_vec_uncounted()
        };
        let mut baseline = None;
        for threads in [1, 2, 4] {
            let dev = PmDevice::paper_default();
            let runs = make_runs(&dev);
            let pool = BufferPool::new(200 * 80);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
            let mut out = PCollection::new(&dev, LayerKind::BlockedMemory, "parallel");
            let before = dev.snapshot();
            let per_segment = merge_group_parallel(&runs, &ctx, &mut out);
            let delta = dev.snapshot().since(&before);
            assert!(per_segment.len() > 1, "spans several segments");
            assert_eq!(out.to_vec_uncounted(), serial, "DoP {threads}");
            match &baseline {
                None => baseline = Some((delta, per_segment)),
                Some((d, p)) => {
                    assert_eq!(*d, delta, "counters differ at DoP {threads}");
                    assert_eq!(*p, per_segment, "ledgers differ at DoP {threads}");
                }
            }
        }
    }

    #[test]
    fn segment_ledgers_cover_the_whole_parallel_merge() {
        // Splitter sampling and boundary probes run on the coordinator;
        // everything else — segment reads and output writes — must land
        // in the per-segment ledgers.
        let dev = PmDevice::paper_default();
        let runs: Vec<PCollection<WisconsinRecord>> = (0..3u64)
            .map(|r| {
                PCollection::from_records_uncounted(
                    &dev,
                    LayerKind::BlockedMemory,
                    format!("r{r}"),
                    (0..8000u64).map(move |i| WisconsinRecord::from_key(3 * i + r)),
                )
            })
            .collect();
        let pool = BufferPool::new(200 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(4);
        let mut out = PCollection::new(&dev, LayerKind::BlockedMemory, "out");
        let before = dev.snapshot();
        let per_segment = merge_group_parallel(&runs, &ctx, &mut out);
        let delta = dev.snapshot().since(&before);
        let covered = per_segment
            .iter()
            .fold(pmem_sim::IoStats::default(), |acc, s| acc.plus(s));
        assert_eq!(covered.cl_writes, delta.cl_writes, "writes all attributed");
        assert!(covered.cl_reads <= delta.cl_reads);
        let residual = delta.cl_reads - covered.cl_reads;
        assert!(
            (residual as f64) < 0.05 * delta.cl_reads as f64,
            "splitter/boundary residual {residual} of {} reads",
            delta.cl_reads
        );
    }
}
