//! SegS — segment sort (§2.1.1).
//!
//! The input is split at the *write intensity* `x ∈ (0, 1)`: the first
//! `x·|T|` records are sorted with external mergesort (write-incurring,
//! fast), the remaining `(1−x)·|T|` records are turned into **one longer
//! run** with multi-pass selection sort (write-limited, read-heavy). All
//! runs are then merged. Cost model: Eq. 1/2; the cost-optimal `x` solves
//! Eq. 3 (closed form in Eq. 4, see [`crate::cost::sort_costs`]).
//!
//! `x` is the knob: `x → 1` behaves like external mergesort, `x → 0`
//! approaches the write-minimal `|T|` writes of pure selection sort.

use super::common::{generate_runs_replacement_range, SortContext};
use super::selection::SelectionStream;
use pmem_sim::{PCollection, PmError};
use wisconsin::Record;

/// Sorts `input` with write intensity `x` (fraction handled by external
/// mergesort).
///
/// # Errors
/// Returns [`PmError::InvalidParameter`] unless `0 ≤ x ≤ 1` (the
/// boundary values degrade gracefully to pure selection sort / pure
/// external mergesort).
pub fn segment_sort<R: Record>(
    input: &PCollection<R>,
    x: f64,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> Result<PCollection<R>, PmError> {
    let _span = pmem_sim::span::span("alg segment-sort");
    if !(0.0..=1.0).contains(&x) {
        return Err(PmError::InvalidParameter {
            name: "x",
            message: format!("write intensity must be in [0,1], got {x}"),
        });
    }
    let n = input.len();
    let split = ((n as f64) * x).round() as usize;
    let capacity = ctx.capacity_records::<R>();

    // Write-incurring segment: external-mergesort run generation over the
    // prefix [0, split).
    let mut runs = generate_runs_replacement_range(input, 0..split, capacity, ctx);

    // Pre-merge the runs down to the fan-in, reserving one slot for the
    // deferred selection stream.
    let fan_in = super::common::merge_fan_in(ctx).saturating_sub(1).max(2);
    while runs.len() > fan_in {
        let mut merged: Vec<PCollection<R>> = Vec::new();
        for group in runs.chunks(fan_in) {
            let mut next = ctx.fresh::<R>("seg-merge");
            super::common::merge_group(group, &mut next);
            merged.push(next);
        }
        runs = merged;
    }

    // Final merge: mergesort runs plus the *deferred* selection-sorted
    // suffix [split, n), which regenerates itself by rescanning instead
    // of being materialized as a long run — its records are written
    // exactly once, at their final location in the output.
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let mut streams: Vec<Box<dyn Iterator<Item = R> + '_>> = runs
        .iter()
        .map(|r| Box::new(r.reader()) as Box<dyn Iterator<Item = R> + '_>)
        .collect();
    if split < n {
        streams.push(Box::new(SelectionStream::new(input, split..n, capacity)));
    }
    super::common::merge_streams(streams, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::common::is_sorted_by_key;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{sort_input, KeyOrder, Record, WisconsinRecord};

    fn sort_with_x(
        n: u64,
        m_records: usize,
        x: f64,
    ) -> (pmem_sim::IoStats, PCollection<WisconsinRecord>) {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(n, KeyOrder::Random, 9),
        );
        let pool = BufferPool::new(m_records * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = segment_sort(&input, x, &ctx, "sorted").expect("valid x");
        (dev.snapshot().since(&before), out)
    }

    #[test]
    fn sorts_at_various_intensities() {
        for x in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let (_, out) = sort_with_x(4000, 200, x);
            assert_eq!(out.len(), 4000, "x={x}");
            assert!(is_sorted_by_key(&out), "x={x}");
            let keys: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.key()).collect();
            assert_eq!(keys, (0..4000).collect::<Vec<_>>(), "x={x}");
        }
    }

    #[test]
    fn lower_intensity_writes_less() {
        let (hi, _) = sort_with_x(6000, 150, 0.8);
        let (lo, _) = sort_with_x(6000, 150, 0.2);
        assert!(
            lo.cl_writes < hi.cl_writes,
            "writes at x=0.2 ({}) should be below x=0.8 ({})",
            lo.cl_writes,
            hi.cl_writes
        );
    }

    #[test]
    fn lower_intensity_reads_more() {
        let (hi, _) = sort_with_x(6000, 150, 0.8);
        let (lo, _) = sort_with_x(6000, 150, 0.2);
        assert!(
            lo.cl_reads > hi.cl_reads,
            "reads at x=0.2 ({}) should exceed x=0.8 ({})",
            lo.cl_reads,
            hi.cl_reads
        );
    }

    #[test]
    fn rejects_out_of_range_intensity() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(100, KeyOrder::Random, 1),
        );
        let pool = BufferPool::new(8000);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(segment_sort(&input, 1.5, &ctx, "s").is_err());
        assert!(segment_sort(&input, -0.1, &ctx, "s").is_err());
    }
}
