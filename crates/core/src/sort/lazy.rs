//! LaS — lazy sort (§2.1.3, Algorithm 2).
//!
//! Lazy sort runs the write-limited half of segment sort (repeated
//! selection scans) but *tracks the penalty of rescanning versus the
//! saving of not materializing*. At pass `n` over the current input of
//! `|T|` buffers with `M` buffers of DRAM, materializing the unemitted
//! remainder costs `(|T| − nM)·λ·r` while rescanning costs `nM·r` extra
//! reads; the paper's Eq. 5 therefore materializes once
//! `n ≥ ⌊|T|·λ / (M·(λ+1))⌋`. The process is progressive: after a
//! materialization, `|T|` is the (smaller) intermediate input and the
//! algorithm reverts to being lazy.

use super::common::{Entry, SortContext};
use pmem_sim::PCollection;
use std::collections::BinaryHeap;
use wisconsin::Record;

/// The Eq. 5 materialization pass threshold for an input of `t_records`
/// and a heap of `m_records` under write/read ratio `lambda`.
pub fn materialization_pass(t_records: usize, m_records: usize, lambda: f64) -> u64 {
    ((t_records as f64) * lambda / ((m_records as f64) * (lambda + 1.0))).floor() as u64
}

/// Sorts `input` lazily, materializing shrunken intermediate inputs only
/// when Eq. 5 says the rescan penalty has overtaken the write savings.
pub fn lazy_sort<R: Record>(
    input: &PCollection<R>,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> PCollection<R> {
    let _span = pmem_sim::span::span("alg lazy-sort");
    let m = ctx.capacity_records::<R>();
    let lambda = ctx.device().lambda();
    let total = input.len();
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);

    // Current source: the original input, or the latest materialized
    // intermediate. Emission state is relative to the current source.
    let mut intermediate: Option<PCollection<R>> = None;
    let mut boundary: Option<(u64, u64)> = None;
    let mut emitted_in_source = 0usize;
    let mut n_pass = 1u64;

    while out.len() < total {
        let src: &PCollection<R> = intermediate.as_ref().unwrap_or(input);
        let src_len = src.len();
        let remaining = src_len - emitted_in_source;
        let threshold = materialization_pass(src_len, m, lambda).max(1);
        // Materialize only when the pass will not already finish the job.
        let materialize = n_pass >= threshold && remaining > m;

        let mut heap: BinaryHeap<Entry<R>> = BinaryHeap::with_capacity(m + 1);
        let mut ti = materialize.then(|| ctx.fresh::<R>("lazy-int"));

        for (pos, record) in src.reader().enumerate() {
            let cand = (record.key(), pos as u64);
            if let Some(b) = boundary {
                if cand <= b {
                    continue; // emitted in an earlier pass
                }
            }
            let entry = Entry {
                key: cand.0,
                seq: cand.1,
                record,
            };
            if heap.len() < m {
                heap.push(entry);
            } else if let Some(&max) = heap.peek() {
                if (entry.key, entry.seq) < (max.key, max.seq) {
                    heap.pop();
                    heap.push(entry);
                    if let Some(ti) = ti.as_mut() {
                        ti.append(&max.record); // displaced: stays unemitted
                    }
                } else if let Some(ti) = ti.as_mut() {
                    ti.append(&entry.record); // rejected: stays unemitted
                }
            }
        }

        if heap.is_empty() {
            break; // defensive: nothing left past the boundary
        }

        // Emit this pass's minima in ascending order.
        let mut batch: Vec<Entry<R>> = heap.into_vec();
        batch.sort_unstable();
        boundary = batch.last().map(|e| (e.key, e.seq));
        emitted_in_source += batch.len();
        for e in &batch {
            out.append(&e.record);
        }

        if let Some(ti) = ti {
            // Progressive restart on the shrunken input (paper: T = Ti,
            // n = 0 and the loop's n++ brings it to 1).
            debug_assert_eq!(
                ti.len() + out.len(),
                total,
                "Ti must hold exactly the unemitted records"
            );
            intermediate = Some(ti);
            boundary = None;
            emitted_in_source = 0;
            n_pass = 1;
        } else {
            n_pass += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::common::is_sorted_by_key;
    use pmem_sim::{BufferPool, IoStats, LayerKind, PmDevice};
    use wisconsin::{sort_input, KeyOrder, Record, WisconsinRecord};

    fn sort(n: u64, m_records: usize, lambda: f64) -> (IoStats, PCollection<WisconsinRecord>, u64) {
        let dev = PmDevice::new(
            pmem_sim::DeviceConfig::paper_default()
                .with_latency(pmem_sim::LatencyProfile::with_lambda(10.0, lambda)),
        );
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(n, KeyOrder::Random, 21),
        );
        let buffers = input.buffers();
        let pool = BufferPool::new(m_records * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = lazy_sort(&input, &ctx, "sorted");
        (dev.snapshot().since(&before), out, buffers)
    }

    #[test]
    fn sorts_correctly() {
        let (_, out, _) = sort(3000, 100, 15.0);
        assert_eq!(out.len(), 3000);
        assert!(is_sorted_by_key(&out));
        let keys: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.key()).collect();
        assert_eq!(keys, (0..3000).collect::<Vec<_>>());
    }

    #[test]
    fn writes_stay_near_minimal() {
        let (stats, out, _) = sort(4000, 200, 15.0);
        // Write-minimal bound is the output itself; Eq. 5 materializations
        // may add a small tail, bounded by ~|T|/λ.
        let min = out.buffers() as f64;
        assert!(
            (stats.cl_writes as f64) < 1.25 * min,
            "writes {} vs minimal {min}",
            stats.cl_writes
        );
    }

    #[test]
    fn low_lambda_materializes_earlier_and_reads_less() {
        let (high_lambda, _, _) = sort(4000, 100, 15.0);
        let (low_lambda, _, _) = sort(4000, 100, 2.0);
        // With cheap writes (λ=2) the algorithm materializes earlier,
        // cutting rescans; with λ=15 it prefers rereading.
        assert!(
            low_lambda.cl_reads < high_lambda.cl_reads,
            "λ=2 reads {} should be below λ=15 reads {}",
            low_lambda.cl_reads,
            high_lambda.cl_reads
        );
        assert!(low_lambda.cl_writes > high_lambda.cl_writes);
    }

    #[test]
    fn materialization_pass_threshold_matches_eq5() {
        // |T|=1000, M=100, λ=15: floor(1000·15 / (100·16)) = floor(9.375).
        assert_eq!(materialization_pass(1000, 100, 15.0), 9);
        // λ=1: floor(1000/(100·2)) = 5.
        assert_eq!(materialization_pass(1000, 100, 1.0), 5);
    }

    #[test]
    fn single_pass_when_memory_covers_input() {
        let (stats, out, buffers) = sort(500, 1000, 15.0);
        assert!(is_sorted_by_key(&out));
        assert_eq!(stats.cl_reads, buffers); // exactly one scan
    }

    #[test]
    fn duplicates_handled() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(1000, KeyOrder::FewDistinct { distinct: 2 }, 8),
        );
        let pool = BufferPool::new(50 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = lazy_sort(&input, &ctx, "sorted");
        assert_eq!(out.len(), 1000);
        assert!(is_sorted_by_key(&out));
    }
}
