//! Sorting algorithms for persistent memory (§2.1).
//!
//! | Paper name | Function | Character |
//! |---|---|---|
//! | ExMS | [`external_merge_sort`] | symmetric-I/O baseline |
//! | SegS  | [`segment_sort`] | write intensity `x` over the **input** |
//! | HybS  | [`hybrid_sort`] | write intensity `x` over **DRAM** |
//! | LaS   | [`lazy_sort`] | dynamic, Eq. 5 materialization |
//! | (SelS) | [`selection_sort`] | write-minimal multi-pass building block |
//! | cycle sort | [`cycle_sort`] | in-memory write-optimal reference |

pub mod common;
pub mod cycle;
pub mod ext_merge;
pub mod hybrid;
pub mod lazy;
pub mod segment;
pub mod selection;

pub use common::{
    generate_runs_parallel, generate_runs_parallel_profiled, generate_runs_replacement,
    generate_runs_replacement_range, is_sorted_by_key, merge_fan_in, merge_group,
    merge_group_parallel, merge_runs, merge_runs_into, merge_runs_into_profiled, merge_streams,
    Entry, KWayMerge, LoserTree, MergeProfile, SortContext, MERGE_SEGMENT_RECORDS,
};
pub use cycle::cycle_sort;
pub use ext_merge::{external_merge_sort, external_merge_sort_profiled, ExmsProfile};
pub use hybrid::hybrid_sort;
pub use lazy::{lazy_sort, materialization_pass};
pub use segment::segment_sort;
pub use selection::{
    selection_sort, selection_sort_into, selection_sort_range_into, SelectionStream,
};

use pmem_sim::{PCollection, PmError};
use wisconsin::Record;

/// Uniform handle over the paper's sort algorithms, used by the benchmark
/// harness and the cost-model concordance experiment (Fig. 12).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SortAlgorithm {
    /// External mergesort with replacement selection.
    ExMS,
    /// Segment sort at the given write intensity.
    SegS {
        /// Fraction of the input handled by external mergesort.
        x: f64,
    },
    /// Hybrid sort with the given selection-region fraction of DRAM.
    HybS {
        /// Fraction of DRAM allocated to the selection region.
        x: f64,
    },
    /// Lazy sort.
    LaS,
    /// Multi-pass selection sort (write-minimal reference).
    SelS,
}

impl SortAlgorithm {
    /// Paper-style label, e.g. `SegS, 20%`.
    pub fn label(&self) -> String {
        match self {
            SortAlgorithm::ExMS => "ExMS".into(),
            SortAlgorithm::SegS { x } => format!("SegS, {:.0}%", x * 100.0),
            SortAlgorithm::HybS { x } => format!("HybS, {:.0}%", x * 100.0),
            SortAlgorithm::LaS => "LaS".into(),
            SortAlgorithm::SelS => "SelS".into(),
        }
    }

    /// Runs the algorithm on `input` under `ctx`.
    ///
    /// # Errors
    /// Propagates parameter validation errors from the underlying
    /// algorithm (e.g., out-of-range write intensity).
    pub fn run<R: Record>(
        &self,
        input: &PCollection<R>,
        ctx: &SortContext<'_>,
        output_name: &str,
    ) -> Result<PCollection<R>, PmError> {
        // Hold the DRAM working set for the blocking phase: the whole
        // input if it fits, the remaining budget otherwise (external
        // algorithms run at capacity — the refused full-size attempt is
        // the memory-pressure event `exhausted` telemetry counts). Pure
        // telemetry — capacity decisions read the budget, not the
        // reservation ledger.
        let pool = ctx.pool();
        let want = input.len() * R::SIZE;
        let _working_set = pool
            .reserve(want)
            .or_else(|_| pool.reserve(want.min(pool.available())))
            .ok();
        match self {
            SortAlgorithm::ExMS => Ok(external_merge_sort(input, ctx, output_name)),
            SortAlgorithm::SegS { x } => segment_sort(input, *x, ctx, output_name),
            SortAlgorithm::HybS { x } => hybrid_sort(input, *x, ctx, output_name),
            SortAlgorithm::LaS => Ok(lazy_sort(input, ctx, output_name)),
            SortAlgorithm::SelS => Ok(selection_sort(input, ctx, output_name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{sort_input, KeyOrder};

    #[test]
    fn every_algorithm_produces_the_same_sorted_output() {
        let algos = [
            SortAlgorithm::ExMS,
            SortAlgorithm::SegS { x: 0.5 },
            SortAlgorithm::HybS { x: 0.5 },
            SortAlgorithm::LaS,
            SortAlgorithm::SelS,
        ];
        let expect: Vec<u64> = (0..2000).collect();
        for algo in algos {
            let dev = PmDevice::paper_default();
            let input = PCollection::from_records_uncounted(
                &dev,
                LayerKind::BlockedMemory,
                "t",
                sort_input(2000, KeyOrder::Random, 33),
            );
            let pool = BufferPool::new(100 * 80);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
            let out = algo.run(&input, &ctx, "sorted").expect("valid params");
            let keys: Vec<u64> = out
                .to_vec_uncounted()
                .iter()
                .map(wisconsin::Record::key)
                .collect();
            assert_eq!(keys, expect, "{}", algo.label());
        }
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(SortAlgorithm::ExMS.label(), "ExMS");
        assert_eq!(SortAlgorithm::SegS { x: 0.2 }.label(), "SegS, 20%");
        assert_eq!(SortAlgorithm::HybS { x: 0.8 }.label(), "HybS, 80%");
    }
}
