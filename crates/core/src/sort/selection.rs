//! Multi-pass selection sort — the write-minimal building block.
//!
//! The generalization of selection sort described in §2.1.1: with `M`
//! buffers of DRAM, repeatedly scan the input maintaining a max-heap of
//! the `M` smallest not-yet-output records; after each scan, sort and
//! append the heap to the output. Each element is written exactly once (at
//! its final location) at the price of `|T|/M` full read passes — total
//! cost `r·|T|·(|T|/M + λ)`.
//!
//! Duplicate keys and equal-key boundaries are handled exactly as the
//! paper prescribes: a record enters the heap only if its `(key, position)`
//! is strictly after the `(maxKey, maxPos)` boundary of the previous pass,
//! so overlapping passes never emit a record twice.

use super::common::SortContext;
use pmem_sim::PCollection;
use std::collections::BinaryHeap;
use wisconsin::Record;

/// One output boundary: the largest `(key, position)` emitted so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
struct Boundary {
    key: u64,
    pos: u64,
}

/// Sorts `input` by repeated selection scans, writing each record once.
pub fn selection_sort<R: Record>(
    input: &PCollection<R>,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> PCollection<R> {
    let _span = pmem_sim::span::span("alg selection-sort");
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    selection_sort_into(input, ctx, &mut out);
    out
}

/// A *deferred* selection sort: an iterator that yields the records of
/// `input[range]` in ascending key order without materializing anything.
/// Each exhausted DRAM batch triggers a rescan of the slice for the next
/// `capacity` minima — the stream trades reads for the writes a
/// materialized run would cost, which is exactly how segment sort keeps
/// its write count at `x·|T|` + output.
pub struct SelectionStream<'a, R: Record> {
    input: &'a PCollection<R>,
    range: std::ops::Range<usize>,
    capacity: usize,
    boundary: Option<Boundary>,
    batch: std::vec::IntoIter<super::common::Entry<R>>,
    emitted: usize,
}

impl<'a, R: Record> SelectionStream<'a, R> {
    /// Creates the stream over `input[range]` with a DRAM heap of
    /// `capacity` records.
    pub fn new(input: &'a PCollection<R>, range: std::ops::Range<usize>, capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "selection stream needs at least 1 record of DRAM"
        );
        Self {
            input,
            range,
            capacity,
            boundary: None,
            batch: Vec::new().into_iter(),
            emitted: 0,
        }
    }

    fn refill(&mut self) {
        let mut heap: BinaryHeap<super::common::Entry<R>> =
            BinaryHeap::with_capacity(self.capacity + 1);
        for (pos, record) in self
            .input
            .range_reader(self.range.start, self.range.end)
            .enumerate()
        {
            let cand = Boundary {
                key: record.key(),
                pos: pos as u64,
            };
            if let Some(b) = self.boundary {
                if cand <= b {
                    continue;
                }
            }
            let entry = super::common::Entry {
                key: cand.key,
                seq: cand.pos,
                record,
            };
            if heap.len() < self.capacity {
                heap.push(entry);
            } else if let Some(max) = heap.peek() {
                if (entry.key, entry.seq) < (max.key, max.seq) {
                    heap.pop();
                    heap.push(entry);
                }
            }
        }
        let mut batch: Vec<super::common::Entry<R>> = heap.into_vec();
        batch.sort_unstable();
        self.boundary = batch.last().map(|e| Boundary {
            key: e.key,
            pos: e.seq,
        });
        self.emitted += batch.len();
        self.batch = batch.into_iter();
    }
}

impl<'a, R: Record> Iterator for SelectionStream<'a, R> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        if let Some(e) = self.batch.next() {
            return Some(e.record);
        }
        if self.emitted >= self.range.len() {
            return None;
        }
        self.refill();
        self.batch.next().map(|e| e.record)
    }
}

/// Like [`selection_sort`] but appends to an existing collection — used by
/// segment sort, whose long run is a selection-sorted suffix.
pub fn selection_sort_into<R: Record>(
    input: &PCollection<R>,
    ctx: &SortContext<'_>,
    out: &mut PCollection<R>,
) {
    selection_sort_range_into(input, 0..input.len(), ctx, out);
}

/// Range variant of [`selection_sort_into`]: sorts only records
/// `[range.start, range.end)` of `input`, rescanning just that slice.
/// The condition from the paper — value ≥ previous pass's max AND
/// position after the previous max's position — is enforced by the
/// underlying [`SelectionStream`] via a strict `(key, pos)` boundary.
pub fn selection_sort_range_into<R: Record>(
    input: &PCollection<R>,
    range: std::ops::Range<usize>,
    ctx: &SortContext<'_>,
    out: &mut PCollection<R>,
) {
    let capacity = ctx.capacity_records::<R>();
    for record in SelectionStream::new(input, range, capacity) {
        out.append(&record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::common::is_sorted_by_key;
    use pmem_sim::{BufferPool, LayerKind, Pm, PmDevice};
    use wisconsin::{sort_input, KeyOrder, WisconsinRecord};

    fn run(n: u64, mem_records: usize, order: KeyOrder) -> (Pm, PCollection<WisconsinRecord>) {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(n, order, 5),
        );
        let pool = BufferPool::new(mem_records * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = selection_sort(&input, &ctx, "sorted");
        (dev, out)
    }

    #[test]
    fn sorts_random_input_completely() {
        let (_, out) = run(3000, 100, KeyOrder::Random);
        assert_eq!(out.len(), 3000);
        assert!(is_sorted_by_key(&out));
    }

    #[test]
    fn writes_exactly_input_size() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(2000, KeyOrder::Random, 6),
        );
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = selection_sort(&input, &ctx, "sorted");
        let d = dev.snapshot().since(&before);
        // Write-minimal: exactly the output's buffers, nothing more.
        assert_eq!(d.cl_writes, out.buffers());
    }

    #[test]
    fn read_passes_scale_with_input_over_memory() {
        let dev = PmDevice::paper_default();
        let n = 2000u64;
        let m = 200usize; // |T|/M = 10 passes
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(n, KeyOrder::Random, 7),
        );
        let pool = BufferPool::new(m * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let _ = selection_sort(&input, &ctx, "sorted");
        let d = dev.snapshot().since(&before);
        let passes = d.cl_reads as f64 / input.buffers() as f64;
        assert!((passes - 10.0).abs() < 0.5, "read passes: {passes}");
    }

    #[test]
    fn handles_duplicates_without_loss() {
        let (_, out) = run(1500, 64, KeyOrder::FewDistinct { distinct: 3 });
        assert_eq!(out.len(), 1500);
        assert!(is_sorted_by_key(&out));
    }

    #[test]
    fn sorted_input_still_one_write_per_record() {
        let (_, out) = run(500, 50, KeyOrder::Sorted);
        assert_eq!(out.len(), 500);
        assert!(is_sorted_by_key(&out));
    }

    #[test]
    fn memory_larger_than_input_is_single_pass() {
        let (_, out) = run(100, 1000, KeyOrder::Reverse);
        assert_eq!(out.len(), 100);
        assert!(is_sorted_by_key(&out));
    }
}
