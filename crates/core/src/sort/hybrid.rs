//! HybS — hybrid sort (§2.1.2, Algorithm 1).
//!
//! DRAM is split into a *selection region* `Rs` and a
//! *replacement-selection region* `Rr`. `Rs` is a max-heap that ends up
//! holding the globally smallest `|Rs|` records — they are written
//! **once**, directly to the output prefix, bypassing run generation and
//! merging entirely. Every record displaced from (or never admitted to)
//! `Rs` flows through `Rr`, the classic two-heap replacement-selection
//! structure (`current` run heap + `next` run staging), producing runs
//! that are merged after the `Rs` prefix.
//!
//! The write intensity `x` is the fraction of DRAM given to the
//! **write-incurring** replacement region (so `x = 1` degenerates to
//! plain external mergesort, mirroring segment sort's knob): a higher
//! intensity yields longer runs (shallower merging, better response time)
//! but forgoes the write savings of a large selection region — the
//! trade-off of Fig. 9.
//!
//! Invariant making the prefix correct: the maximum of `Rs` decreases
//! monotonically, so every record ever evicted to `Rr` is ≥ the final
//! maximum of `Rs`.

use super::common::{merge_runs_into, Entry, SortContext};
use pmem_sim::{PCollection, PmError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wisconsin::Record;

/// Sorts `input` with write intensity `x` (fraction of DRAM given to the
/// replacement-selection region; the selection region gets the rest).
///
/// # Errors
/// Returns [`PmError::InvalidParameter`] unless `0 ≤ x ≤ 1`. At `x = 0`
/// the replacement region is clamped to one record so the algorithm can
/// still make progress on inputs larger than DRAM.
pub fn hybrid_sort<R: Record>(
    input: &PCollection<R>,
    x: f64,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> Result<PCollection<R>, PmError> {
    let _span = pmem_sim::span::span("alg hybrid-sort");
    if !(0.0..=1.0).contains(&x) {
        return Err(PmError::InvalidParameter {
            name: "x",
            message: format!("write intensity must be in [0,1], got {x}"),
        });
    }
    let capacity = ctx.capacity_records::<R>();
    let rr_cap = (((capacity as f64) * x).floor() as usize)
        .max(1)
        .min(capacity);
    let rs_cap = capacity - rr_cap;

    // Selection region: max-heap of the smallest records seen so far.
    let mut rs: BinaryHeap<Entry<R>> = BinaryHeap::with_capacity(rs_cap + 1);
    // Replacement region: `current` run min-heap and `next` run staging.
    let mut current: BinaryHeap<Reverse<Entry<R>>> = BinaryHeap::with_capacity(rr_cap);
    let mut next: Vec<Entry<R>> = Vec::new();

    let mut runs: Vec<PCollection<R>> = Vec::new();
    let mut run = ctx.fresh::<R>("hyb-run");
    let mut last_out: Option<(u64, u64)> = None;

    for (seq, record) in input.reader().enumerate() {
        let mut e = Entry::new(record, seq as u64);

        // Route through the selection region: keep the |Rs| smallest.
        if rs_cap > 0 {
            if rs.len() < rs_cap {
                rs.push(e);
                continue;
            }
            if rs
                .peek()
                .is_some_and(|max| (e.key, e.seq) < (max.key, max.seq))
            {
                if let Some(evicted) = rs.pop() {
                    rs.push(e);
                    e = evicted; // the displaced max flows into Rr
                }
            }
        }

        // Replacement-selection region.
        if current.len() + next.len() < rr_cap {
            // Region not yet full: stage into the run it can extend.
            match last_out {
                Some(b) if (e.key, e.seq) < b => next.push(e),
                _ => current.push(Reverse(e)),
            }
        } else if let Some(Reverse(min)) = current.pop() {
            run.append(&min.record);
            last_out = Some((min.key, min.seq));
            if (e.key, e.seq) >= (min.key, min.seq) {
                current.push(Reverse(e));
            } else {
                next.push(e);
            }
            if current.is_empty() {
                runs.push(std::mem::replace(&mut run, ctx.fresh::<R>("hyb-run")));
                current.extend(next.drain(..).map(Reverse));
                last_out = None;
            }
        } else {
            // Unreachable by the region invariant (the run switch above
            // refills `current` the moment it empties); degrade by
            // seeding the next run rather than panicking mid-sort.
            current.push(Reverse(e));
        }
    }

    // Output prefix: the selection region holds the global minimum
    // records; sort and write them once, directly to the output.
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let mut prefix: Vec<Entry<R>> = rs.into_vec();
    prefix.sort_unstable();
    for e in &prefix {
        out.append(&e.record);
    }

    // Drain the replacement region: finish current run, stage next run.
    while let Some(Reverse(min)) = current.pop() {
        run.append(&min.record);
    }
    if !run.is_empty() {
        runs.push(run);
    }
    if !next.is_empty() {
        next.sort_unstable();
        let mut tail = ctx.fresh::<R>("hyb-run");
        for e in &next {
            tail.append(&e.record);
        }
        runs.push(tail);
    }

    // Merge the runs directly after the prefix.
    merge_runs_into(runs, ctx, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::common::is_sorted_by_key;
    use pmem_sim::{BufferPool, IoStats, LayerKind, PmDevice};
    use wisconsin::{sort_input, KeyOrder, Record, WisconsinRecord};

    fn sort_with_x(n: u64, m_records: usize, x: f64) -> (IoStats, PCollection<WisconsinRecord>) {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(n, KeyOrder::Random, 13),
        );
        let pool = BufferPool::new(m_records * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = hybrid_sort(&input, x, &ctx, "sorted").expect("valid x");
        (dev.snapshot().since(&before), out)
    }

    #[test]
    fn sorts_at_various_intensities() {
        for x in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let (_, out) = sort_with_x(4000, 200, x);
            assert_eq!(out.len(), 4000, "x={x}");
            assert!(is_sorted_by_key(&out), "x={x}");
            let keys: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.key()).collect();
            assert_eq!(keys, (0..4000).collect::<Vec<_>>(), "x={x}");
        }
    }

    #[test]
    fn full_intensity_degenerates_to_exms() {
        // x = 1 routes everything through replacement selection, i.e.,
        // plain external mergesort.
        let (_, out) = sort_with_x(3000, 100, 1.0);
        assert_eq!(out.len(), 3000);
        assert!(is_sorted_by_key(&out));
    }

    #[test]
    fn lower_intensity_saves_writes_when_merging_stays_single_pass() {
        // With memory = 20% of the input both settings merge in one pass,
        // so the selection region's once-written records dominate the
        // write delta.
        let (lo, _) = sort_with_x(5000, 1000, 0.5);
        let (hi, _) = sort_with_x(5000, 1000, 0.9);
        assert!(
            lo.cl_writes < hi.cl_writes,
            "x=0.5 writes {} should be below x=0.9 writes {}",
            lo.cl_writes,
            hi.cl_writes
        );
    }

    #[test]
    fn rejects_out_of_range_intensity() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(10, KeyOrder::Random, 1),
        );
        let pool = BufferPool::new(8000);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(hybrid_sort(&input, 1.2, &ctx, "s").is_err());
        assert!(hybrid_sort(&input, -0.2, &ctx, "s").is_err());
    }

    #[test]
    fn duplicates_survive() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(2000, KeyOrder::FewDistinct { distinct: 4 }, 3),
        );
        let pool = BufferPool::new(64 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = hybrid_sort(&input, 0.5, &ctx, "sorted").expect("valid");
        assert_eq!(out.len(), 2000);
        assert!(is_sorted_by_key(&out));
    }
}
