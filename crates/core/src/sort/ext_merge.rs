//! ExMS — standard external mergesort with replacement selection.
//!
//! The paper's symmetric-I/O baseline (§2.1.1): generate runs with
//! replacement selection (average length `2M` on random input), then merge
//! with `log_M |T|` passes. Total cost `|T|·r·(1+λ)·(log_M |T| + 1)`.

use super::common::{generate_runs_parallel_profiled, merge_runs_into_profiled, SortContext};
use pmem_sim::{IoStats, PCollection};
use wisconsin::Record;

/// Per-phase ledger profile of one external-merge-sort run: what the
/// run-generation chunks and each merge pass's independent tasks cost,
/// measured through the per-worker ledgers. Every entry is identical at
/// any degree of parallelism; the speedup harness schedules them onto
/// `DoP` workers to get the deterministic critical-path estimate.
#[derive(Clone, Debug, Default)]
pub struct ExmsProfile {
    /// Traffic per fixed `4M`-record run-generation chunk.
    pub run_generation: Vec<IoStats>,
    /// Per merge pass, the traffic of its independent tasks: merge
    /// groups for intermediate passes, key-range segments for the final
    /// pass.
    pub merge_passes: Vec<Vec<IoStats>>,
}

/// Sorts `input`, materializing the result as a new collection.
///
/// Run generation proceeds over fixed `4M`-record chunks fanned out
/// across the context's worker pool (serial inputs up to one chunk are
/// untouched); chunk boundaries depend only on the DRAM budget, so runs
/// and counters are identical at any degree of parallelism. The merge
/// phase fans its intermediate passes out over merge groups and the
/// final pass over sampled key-range segments the same way.
pub fn external_merge_sort<R: Record>(
    input: &PCollection<R>,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> PCollection<R> {
    external_merge_sort_profiled(input, ctx, output_name).0
}

/// [`external_merge_sort`] with the per-phase ledger profile alongside
/// the result — what the speedup harness consumes.
pub fn external_merge_sort_profiled<R: Record>(
    input: &PCollection<R>,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> (PCollection<R>, ExmsProfile) {
    let _span = pmem_sim::span::span("alg exms");
    let capacity = ctx.capacity_records::<R>();
    let (mut runs, run_generation) = generate_runs_parallel_profiled(input, capacity, ctx);
    if runs.len() == 1 {
        // A single run is already the sorted output; returning it
        // directly avoids a spurious rewrite (its name stays "run-…",
        // which is cosmetic — cost fidelity matters more than the
        // label).
        if let Some(out) = runs.pop() {
            return (
                out,
                ExmsProfile {
                    run_generation,
                    merge_passes: Vec::new(),
                },
            );
        }
    }
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let merge = merge_runs_into_profiled(runs, ctx, &mut out);
    (
        out,
        ExmsProfile {
            run_generation,
            merge_passes: merge.passes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::common::is_sorted_by_key;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{sort_input, KeyOrder, Record, WisconsinRecord};

    #[test]
    fn sorts_random_input() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(10_000, KeyOrder::Random, 1),
        );
        let pool = BufferPool::new(500 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = external_merge_sort(&input, &ctx, "sorted");
        assert_eq!(out.len(), 10_000);
        assert!(is_sorted_by_key(&out));
        let keys: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.key()).collect();
        assert_eq!(keys, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn io_cost_is_near_model_for_one_merge_pass() {
        // With M large enough for a single merge pass, the model cost is
        // 2·|T| reads and 2·|T| writes (run generation + one merge).
        let dev = PmDevice::paper_default();
        let n = 20_000u64;
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(n, KeyOrder::Random, 2),
        );
        let t_buffers = input.buffers() as f64;
        let pool = BufferPool::new(2000 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let _out = external_merge_sort(&input, &ctx, "sorted");
        let d = dev.snapshot().since(&before);
        let reads = d.cl_reads as f64;
        let writes = d.cl_writes as f64;
        assert!(
            (reads / t_buffers - 2.0).abs() < 0.1,
            "reads/|T| = {}",
            reads / t_buffers
        );
        assert!(
            (writes / t_buffers - 2.0).abs() < 0.1,
            "writes/|T| = {}",
            writes / t_buffers
        );
    }

    #[test]
    fn handles_duplicate_keys() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            sort_input(5000, KeyOrder::FewDistinct { distinct: 7 }, 3),
        );
        let pool = BufferPool::new(200 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = external_merge_sort(&input, &ctx, "sorted");
        assert_eq!(out.len(), 5000);
        assert!(is_sorted_by_key(&out));
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let dev = PmDevice::paper_default();
        let input: PCollection<WisconsinRecord> =
            PCollection::new(&dev, LayerKind::BlockedMemory, "t");
        let pool = BufferPool::new(8192);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = external_merge_sort(&input, &ctx, "sorted");
        assert!(out.is_empty());
    }

    #[test]
    fn single_record_passes_through() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "t",
            [WisconsinRecord::from_key(9)],
        );
        let pool = BufferPool::new(8192);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = external_merge_sort(&input, &ctx, "sorted");
        assert_eq!(out.to_vec_uncounted()[0].key(), 9);
    }
}
