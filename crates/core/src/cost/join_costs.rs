//! Join cost models (§2.2), in multiples of the read cost `r`.
//!
//! `t`/`v` are `|T|`/`|V|` in buffer units (`t ≤ v`), `m` is the DRAM
//! budget, `lambda` the write/read ratio. Output cost is a shared
//! constant and omitted (as the paper's expressions do).

/// Grace join: `(λ+2)·(|T|+|V|)` — both inputs read twice, written once.
pub fn grace_cost(t: f64, v: f64, lambda: f64) -> f64 {
    (lambda + 2.0) * (t + v)
}

/// Block nested loops: `|T| + ⌈|T|/M⌉·|V|` reads, no writes.
pub fn nlj_cost(t: f64, v: f64, m: f64) -> f64 {
    t + (t / m).ceil().max(1.0) * v
}

/// Standard hash join over `k = ⌈|T|/M⌉` iterations, each reading the
/// remainder and rewriting everything but the active partition
/// (Table 1): `(|T|+|V|)·[(k+1)/2 + λ·(k−1)/2]`.
pub fn hash_join_cost(t: f64, v: f64, m: f64, lambda: f64) -> f64 {
    let k = (t / m).ceil().max(1.0);
    (t + v) * ((k + 1.0) / 2.0 + lambda * (k - 1.0) / 2.0)
}

/// Hybrid Grace/nested-loops join (Eq. 6):
/// `(2+λ)(x|T| + y|V|) + (1−x)|T| + |T||V|/M·(1−xy)`.
pub fn hybrid_cost(t: f64, v: f64, m: f64, lambda: f64, x: f64, y: f64) -> f64 {
    (2.0 + lambda) * (x * t + y * v) + (1.0 - x) * t + (t * v / m) * (1.0 - x * y)
}

/// The saddle point of Eq. 6 (Eqs. 7–8): `y_h = M(λ+1)/|V|`,
/// `x_h = M(λ+2)/|T|`. The second-derivative test shows this is a saddle,
/// not a minimum — Fig. 2's heatmaps are what actually guide the choice.
pub fn hybrid_saddle(t: f64, v: f64, m: f64, lambda: f64) -> (f64, f64) {
    let x = (m * (lambda + 2.0) / t).clamp(0.0, 1.0);
    let y = (m * (lambda + 1.0) / v).clamp(0.0, 1.0);
    (x, y)
}

/// Grid-searches Eq. 6 on `[0,1]²` (inclusive endpoints, `steps+1` points
/// per axis) and returns the minimizing `(x, y)` — the "informed"
/// intensity choice of §2.
pub fn optimal_hybrid_xy(t: f64, v: f64, m: f64, lambda: f64, steps: usize) -> (f64, f64) {
    assert!(steps >= 1, "need at least one step");
    let mut best = (0.0, 0.0);
    let mut best_cost = f64::INFINITY;
    for i in 0..=steps {
        let x = i as f64 / steps as f64;
        for j in 0..=steps {
            let y = j as f64 / steps as f64;
            let c = hybrid_cost(t, v, m, lambda, x, y);
            if c < best_cost {
                best_cost = c;
                best = (x, y);
            }
        }
    }
    best
}

/// One Fig. 2 heatmap: Eq. 6 evaluated over a `(steps+1)²` grid, rows
/// indexed by `y` (ascending), columns by `x`. Values are raw costs;
/// the plotting side normalizes shades ("we do not show the actual value
/// as it is irrelevant: we are more interested in trends").
pub fn hybrid_cost_surface(t: f64, v: f64, m: f64, lambda: f64, steps: usize) -> Vec<Vec<f64>> {
    (0..=steps)
        .map(|j| {
            let y = j as f64 / steps as f64;
            (0..=steps)
                .map(|i| {
                    let x = i as f64 / steps as f64;
                    hybrid_cost(t, v, m, lambda, x, y)
                })
                .collect()
        })
        .collect()
}

/// Segmented Grace join (Eq. 9) with `x` of `k` partitions materialized:
/// `(|T|+|V|)·(1 + (λ+1)·x/k + (k−x))`, with the initial offload scan
/// elided at `x = 0` (matching the implementation, which has nothing to
/// offload then).
pub fn segmented_cost(t: f64, v: f64, m: f64, lambda: f64, x: usize) -> f64 {
    let k = (t / m).ceil().max(1.0);
    let x = (x as f64).min(k);
    let scan = if x > 0.0 {
        1.0 + (lambda + 1.0) * x / k
    } else {
        0.0
    };
    (t + v) * (scan + (k - x))
}

/// Eq. 10: the materialization count below which SegJ beats plain Grace
/// join: `x < (λ+1−k)·k / (λ+1−k²)`. Returns `None` when the bound is
/// degenerate (denominator sign makes every `x` win or lose).
pub fn segmented_beats_grace_bound(k: f64, lambda: f64) -> Option<f64> {
    let num = (lambda + 1.0 - k) * k;
    let den = lambda + 1.0 - k * k;
    if den == 0.0 {
        return None;
    }
    let bound = num / den;
    (bound > 0.0).then_some(bound)
}

/// Read/write split of [`grace_cost`]: both inputs read twice, written
/// once.
pub fn grace_io(t: f64, v: f64) -> (f64, f64) {
    (2.0 * (t + v), t + v)
}

/// Read/write split of the cardinality-guided join (library extension):
/// the hot fractions `hot_t`/`hot_v` of the two inputs skip the Grace
/// partition round-trip — they are scanned once and never written — so
/// only the cold remainders pay the second read and the partition write.
/// At `hot_t = hot_v = 0` this is exactly [`grace_io`].
pub fn guided_io(t: f64, v: f64, hot_t: f64, hot_v: f64) -> (f64, f64) {
    let cold_t = (1.0 - hot_t.clamp(0.0, 1.0)) * t;
    let cold_v = (1.0 - hot_v.clamp(0.0, 1.0)) * v;
    (t + v + cold_t + cold_v, cold_t + cold_v)
}

/// Read/write split of [`nlj_cost`]: reads only.
pub fn nlj_io(t: f64, v: f64, m: f64) -> (f64, f64) {
    (t + (t / m).ceil().max(1.0) * v, 0.0)
}

/// Read/write split of [`hash_join_cost`]: `(k+1)/2` average read
/// passes, `(k−1)/2` average rewrite passes.
pub fn hash_join_io(t: f64, v: f64, m: f64) -> (f64, f64) {
    let k = (t / m).ceil().max(1.0);
    ((t + v) * (k + 1.0) / 2.0, (t + v) * (k - 1.0) / 2.0)
}

/// Read/write split of [`hybrid_cost`] (Eq. 6): the materialized
/// fractions are written once and read twice; the rest is iterated.
pub fn hybrid_io(t: f64, v: f64, m: f64, x: f64, y: f64) -> (f64, f64) {
    let writes = x * t + y * v;
    let reads = 2.0 * (x * t + y * v) + (1.0 - x) * t + (t * v / m) * (1.0 - x * y);
    (reads, writes)
}

/// Read/write split of [`segmented_cost`] (Eq. 9).
pub fn segmented_io(t: f64, v: f64, m: f64, x: usize) -> (f64, f64) {
    let k = (t / m).ceil().max(1.0);
    let x = (x as f64).min(k);
    if x > 0.0 {
        ((t + v) * (1.0 + x / k + (k - x)), (t + v) * x / k)
    } else {
        ((t + v) * k, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: f64 = 10_000.0;
    const V: f64 = 100_000.0;
    const M: f64 = 1_000.0;

    #[test]
    fn grace_beats_hash_join_beyond_one_iteration() {
        assert!(grace_cost(T, V, 15.0) < hash_join_cost(T, V, M, 15.0));
        // k = 1: hash join is a single in-memory pass and wins.
        assert!(hash_join_cost(T, V, T * 2.0, 15.0) < grace_cost(T, V, 15.0));
    }

    #[test]
    fn hybrid_extremes_recover_baselines() {
        // x = y = 1 → pure Grace: (2+λ)(t+v).
        let full = hybrid_cost(T, V, M, 15.0, 1.0, 1.0);
        assert!((full - grace_cost(T, V, 15.0)).abs() < 1e-6);
        // x = y = 0 → pure NLJ: t + tv/m.
        let none = hybrid_cost(T, V, M, 15.0, 0.0, 0.0);
        assert!((none - (T + T * V / M)).abs() < 1e-6);
    }

    #[test]
    fn saddle_matches_first_order_conditions() {
        let (x, y) = hybrid_saddle(T, V, M, 5.0);
        // ∂J/∂x = 0 at y_h; ∂J/∂y = 0 at x_h (checked via finite diff).
        let eps = 1e-4;
        let d_dx = (hybrid_cost(T, V, M, 5.0, x + eps, y) - hybrid_cost(T, V, M, 5.0, x - eps, y))
            / (2.0 * eps);
        let d_dy = (hybrid_cost(T, V, M, 5.0, x, y + eps) - hybrid_cost(T, V, M, 5.0, x, y - eps))
            / (2.0 * eps);
        assert!(d_dx.abs() < 1.0, "∂J/∂x = {d_dx}");
        assert!(d_dy.abs() < 1.0, "∂J/∂y = {d_dy}");
    }

    #[test]
    fn grid_search_beats_corners_when_interior_wins() {
        let (x, y) = optimal_hybrid_xy(T, V, M, 5.0, 20);
        let c = hybrid_cost(T, V, M, 5.0, x, y);
        for (cx, cy) in [(0.0, 0.0), (1.0, 1.0), (0.0, 1.0), (1.0, 0.0)] {
            assert!(c <= hybrid_cost(T, V, M, 5.0, cx, cy) + 1e-9);
        }
    }

    #[test]
    fn surface_dimensions_and_trend() {
        let s = hybrid_cost_surface(T, V, M, 2.0, 10);
        assert_eq!(s.len(), 11);
        assert!(s.iter().all(|row| row.len() == 11));
        // With similar λ and |T| ≪ |V|, large y should be cheap relative
        // to y = 0 at x = 1 (Grace on the big input beats rescanning it).
        assert!(s[10][10] < s[0][10]);
    }

    #[test]
    fn segmented_full_materialization_tracks_grace() {
        let k = (T / M).ceil() as usize;
        let seg = segmented_cost(T, V, M, 15.0, k);
        // Eq. 9 at x = k: (t+v)(1 + (λ+1)) = (λ+2)(t+v) = Grace.
        assert!((seg - grace_cost(T, V, 15.0)).abs() < 1e-6);
    }

    #[test]
    fn segmented_zero_materialization_is_iterate_only() {
        let seg = segmented_cost(T, V, M, 15.0, 0);
        let k = (T / M).ceil();
        assert!((seg - (T + V) * k).abs() < 1e-6);
    }

    #[test]
    fn io_splits_reconstruct_the_scalar_costs() {
        for lambda in [1.0, 2.0, 8.0, 15.0] {
            let (r, w) = grace_io(T, V);
            assert!((r + lambda * w - grace_cost(T, V, lambda)).abs() < 1e-6);
            let (r, w) = nlj_io(T, V, M);
            assert!((r + lambda * w - nlj_cost(T, V, M)).abs() < 1e-6);
            let (r, w) = hash_join_io(T, V, M);
            assert!((r + lambda * w - hash_join_cost(T, V, M, lambda)).abs() < 1e-6);
            for (x, y) in [(0.0, 0.0), (0.5, 0.5), (1.0, 0.2), (0.3, 1.0)] {
                let (r, w) = hybrid_io(T, V, M, x, y);
                assert!(
                    (r + lambda * w - hybrid_cost(T, V, M, lambda, x, y)).abs() < 1e-6,
                    "hybrid λ={lambda} x={x} y={y}"
                );
            }
            for x in [0usize, 3, 7, 10] {
                let (r, w) = segmented_io(T, V, M, x);
                assert!(
                    (r + lambda * w - segmented_cost(T, V, M, lambda, x)).abs() < 1e-6,
                    "segmented λ={lambda} x={x}"
                );
            }
        }
    }

    #[test]
    fn eq10_bound_behaves() {
        // λ large relative to k: every partition materialization pays off
        // only below the bound; bound positive and below k.
        if let Some(b) = segmented_beats_grace_bound(4.0, 20.0) {
            assert!(b > 0.0);
        }
        // Degenerate denominator.
        assert!(segmented_beats_grace_bound(4.0, 15.0).is_none());
    }
}
