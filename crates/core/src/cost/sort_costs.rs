//! Sort cost models (§2.1), in multiples of the read cost `r`.
//!
//! All sizes are in the paper's buffer units (cachelines); `t` is `|T|`,
//! `m` is the DRAM budget `M`, `lambda` is the write/read ratio λ.
//!
//! The expressions follow the paper's Eqs. 1–5 with one refinement: the
//! paper writes the merge phase as `log_M |T|` passes, dropping floors
//! and ceilings ("doing so, though not strictly correct mathematically,
//! simplifies the analysis"). An optimizer ranking algorithms against a
//! real executor needs the integral pass count, so these estimators use
//! `⌈log_fan(runs)⌉` with the merge fan-in the budget actually affords
//! (one block-sized buffer per open run). Output materialization (`λ·t`)
//! is included so absolute values are comparable; it is a constant
//! offset that does not affect rankings.

/// Cachelines per collection block (the default 1024-byte block).
pub(crate) const BLOCK_CACHELINES: f64 = 16.0;

/// Merge passes needed for `runs` sorted runs under budget `m` buffers.
pub(crate) fn merge_passes(runs: f64, m: f64) -> f64 {
    let fan = (m / BLOCK_CACHELINES).max(2.0);
    if runs <= 1.0 {
        return 0.0;
    }
    (runs.ln() / fan.ln()).ceil().max(1.0)
}

/// ExMS: run generation (read `t`, write `t`) plus `⌈log_fan(t/2M)⌉`
/// merge passes, each reading and writing the full input — the paper's
/// `|T|·(1+λ)·(log_M |T| + 1)` with exact pass counts.
pub fn exms_cost(t: f64, m: f64, lambda: f64) -> f64 {
    assert!(t > 0.0 && m > 1.0, "need positive sizes and M > 1");
    let runs = (t / (2.0 * m)).max(1.0);
    let passes = merge_passes(runs, m).max(1.0);
    t * (1.0 + lambda) * (passes + 1.0)
}

/// Multi-pass selection sort: `|T|·(⌈|T|/M⌉ + λ)` — `|T|/M` read passes
/// plus exactly one write per buffer (§2.1.1).
pub fn selection_cost(t: f64, m: f64, lambda: f64) -> f64 {
    t * ((t / m).ceil().max(1.0) + lambda)
}

/// SegS at write intensity `x` (Eq. 1 with exact pass counts): mergesort
/// runs over `x·|T|`, a *deferred* selection stream over the rest, and a
/// final merge writing the output once.
pub fn segment_cost(t: f64, m: f64, lambda: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    let xt = x * t;
    let rest = (1.0 - x) * t;

    // Run generation over the prefix: read x·t, write x·t.
    let mut cost = xt * (1.0 + lambda);
    // Selection stream over the suffix: ⌈rest/M⌉ scans of the suffix.
    if rest > 0.0 {
        cost += rest * (rest / m).ceil().max(1.0);
    }
    // Pre-merge passes beyond the first level (rare at realistic fan-in).
    let runs = (xt / (2.0 * m)).max(if xt > 0.0 { 1.0 } else { 0.0 });
    let extra_passes = (merge_passes(runs, m) - 1.0).max(0.0);
    cost += extra_passes * xt * (1.0 + lambda);
    // Final merge: read the runs once, write the whole output once.
    cost += xt + lambda * t;
    cost
}

/// The cost-optimal SegS intensity (Eq. 4, plus-sign root), or `None`
/// when the applicability condition `λ < 2·(|T|/M)·ln M` fails or the
/// root falls outside `(0, 1)`.
pub fn optimal_segment_x(t: f64, m: f64, lambda: f64) -> Option<f64> {
    let ln_m = m.ln();
    if lambda >= 2.0 * (t / m) * ln_m {
        return None; // §2.1.1 sanity check: x > 0 requires this bound
    }
    let disc = ln_m * (ln_m * t * t + 2.0 * t * m * ln_m - lambda * m * m);
    if disc < 0.0 {
        return None;
    }
    let x = (-ln_m * t + disc.sqrt()) / (m * ln_m);
    (0.0..=1.0).contains(&x).then_some(x)
}

/// HybS at write intensity `x` (replacement-region fraction of DRAM).
///
/// The paper gives no closed form for hybrid sort; this estimator follows
/// Algorithm 1's structure: the `(1−x)·M` selection-region records are
/// written once straight to the output, the rest flows through
/// replacement selection (runs of average length `2·x·M`) and is merged
/// after them.
pub fn hybrid_cost(t: f64, m: f64, lambda: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    let rr = (x * m).max(1.0); // replacement region, clamped non-zero
    let rs = (m - rr).max(0.0); // selection region
    let through_runs = (t - rs).max(0.0);

    // Read the input once; write the runs; write the output once.
    let mut cost = t + lambda * through_runs + lambda * t;
    // Merge: read runs once per pass (plus rewrite on extra passes).
    let runs = (through_runs / (2.0 * rr)).max(1.0);
    let passes = merge_passes(runs, m).max(1.0);
    cost += through_runs + (passes - 1.0) * through_runs * (1.0 + lambda);
    cost
}

/// LaS cost estimate: selection passes whose source shrinks at each
/// Eq. 5 materialization. Provided for completeness — the paper excludes
/// lazy algorithms from the Fig. 12 ranking because their decisions are
/// dynamic.
pub fn lazy_sort_cost(t: f64, m: f64, lambda: f64) -> f64 {
    let mut remaining = t;
    let mut cost = lambda * t; // every record written once at the output
    while remaining > m {
        // Passes until Eq. 5 triggers on this source.
        let passes = ((remaining / m) * lambda / (lambda + 1.0)).floor().max(1.0);
        let emit = (passes * m).min(remaining);
        cost += passes * remaining; // rescans
        let next = remaining - emit;
        if next > m {
            cost += lambda * next; // materialize the shrunken input
        }
        remaining = next;
    }
    if remaining > 0.0 {
        cost += remaining; // final pass
    }
    cost
}

/// Read/write split of [`exms_cost`]: every pass reads and writes the
/// full input, so the two sides are equal.
pub fn exms_io(t: f64, m: f64, _lambda: f64) -> (f64, f64) {
    assert!(t > 0.0 && m > 1.0, "need positive sizes and M > 1");
    let runs = (t / (2.0 * m)).max(1.0);
    let passes = merge_passes(runs, m).max(1.0);
    (t * (passes + 1.0), t * (passes + 1.0))
}

/// Read/write split of [`selection_cost`]: `⌈|T|/M⌉` read passes, one
/// output write per buffer.
pub fn selection_io(t: f64, m: f64) -> (f64, f64) {
    (t * (t / m).ceil().max(1.0), t)
}

/// Read/write split of [`segment_cost`], term for term.
pub fn segment_io(t: f64, m: f64, _lambda: f64, x: f64) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    let xt = x * t;
    let rest = (1.0 - x) * t;

    let mut reads = xt; // run generation reads the prefix
    let mut writes = xt; // ... and writes the runs
    if rest > 0.0 {
        reads += rest * (rest / m).ceil().max(1.0); // selection stream
    }
    let runs = (xt / (2.0 * m)).max(if xt > 0.0 { 1.0 } else { 0.0 });
    let extra_passes = (merge_passes(runs, m) - 1.0).max(0.0);
    reads += extra_passes * xt;
    writes += extra_passes * xt;
    reads += xt; // final merge reads the runs once
    writes += t; // ... and writes the whole output
    (reads, writes)
}

/// Read/write split of [`hybrid_cost`], term for term.
pub fn hybrid_io(t: f64, m: f64, _lambda: f64, x: f64) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    let rr = (x * m).max(1.0);
    let rs = (m - rr).max(0.0);
    let through_runs = (t - rs).max(0.0);

    let mut reads = t; // read the input once
    let mut writes = through_runs + t; // runs + output
    let runs = (through_runs / (2.0 * rr)).max(1.0);
    let passes = merge_passes(runs, m).max(1.0);
    reads += through_runs + (passes - 1.0) * through_runs;
    writes += (passes - 1.0) * through_runs;
    (reads, writes)
}

/// Read/write split of [`lazy_sort_cost`], mirroring its loop.
pub fn lazy_sort_io(t: f64, m: f64, lambda: f64) -> (f64, f64) {
    let mut remaining = t;
    let mut reads = 0.0;
    let mut writes = t; // every record written once at the output
    while remaining > m {
        let passes = ((remaining / m) * lambda / (lambda + 1.0)).floor().max(1.0);
        let emit = (passes * m).min(remaining);
        reads += passes * remaining;
        let next = remaining - emit;
        if next > m {
            writes += next;
        }
        remaining = next;
    }
    if remaining > 0.0 {
        reads += remaining;
    }
    (reads, writes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: f64 = 100_000.0;
    const M: f64 = 5_000.0;

    #[test]
    fn exms_cost_grows_with_lambda() {
        assert!(exms_cost(T, M, 15.0) > exms_cost(T, M, 2.0));
    }

    #[test]
    fn selection_beats_exms_only_at_high_lambda_or_big_memory() {
        // Small memory: selection's quadratic reads lose.
        assert!(selection_cost(T, T / 100.0, 15.0) > exms_cost(T, T / 100.0, 15.0));
        // Generous memory: one pass + minimal writes wins.
        assert!(selection_cost(T, T / 2.0, 15.0) < exms_cost(T, T / 2.0, 15.0));
    }

    #[test]
    fn segment_cost_interpolates_between_extremes() {
        // x = 0 must equal the pure selection stream + output writes.
        let zero = segment_cost(T, M, 15.0, 0.0);
        assert!((zero - selection_cost(T, M, 15.0)).abs() / zero < 0.01);
        // x = 1 must cost like ExMS (runs + one merge level).
        let one = segment_cost(T, M, 15.0, 1.0);
        let ex = exms_cost(T, M, 15.0);
        assert!((one / ex - 1.0).abs() < 0.15, "seg(1) {one} vs exms {ex}");
    }

    #[test]
    fn lower_intensity_means_fewer_writes_more_reads() {
        // The write share of segment cost decreases monotonically in x.
        let writes_at = |x: f64| x * T + T; // runs + output
        assert!(writes_at(0.2) < writes_at(0.8));
        assert!(segment_cost(T, M / 5.0, 15.0, 0.2) > segment_cost(T, M / 5.0, 15.0, 0.8));
    }

    #[test]
    fn optimal_x_is_interior_and_improves_cost() {
        let x = optimal_segment_x(T, M, 8.0).expect("applicable");
        assert!((0.0..=1.0).contains(&x));
        let at_opt = segment_cost(T, M, 8.0, x);
        for probe in [0.05, 0.25, 0.5, 0.75, 0.95] {
            // Allow slack: the closed form drops floors/ceilings.
            assert!(
                at_opt <= segment_cost(T, M, 8.0, probe) * 1.25,
                "x*={x} cost {at_opt} vs x={probe}"
            );
        }
    }

    #[test]
    fn optimal_x_rejects_extreme_lambda() {
        // λ ≥ 2(|T|/M)·lnM → selection sort dominates, no interior optimum.
        let tiny_t = 2.0 * M;
        assert!(optimal_segment_x(tiny_t, M, 50.0).is_none());
    }

    #[test]
    fn hybrid_cost_full_intensity_close_to_exms() {
        let h = hybrid_cost(T, M, 15.0, 1.0);
        let e = exms_cost(T, M, 15.0);
        assert!((h / e - 1.0).abs() < 0.15, "hyb {h} vs exms {e}");
    }

    #[test]
    fn lazy_sort_writes_dominate_only_through_output() {
        let lazy = lazy_sort_cost(T, T / 4.0, 15.0);
        let ex = exms_cost(T, T / 4.0, 15.0);
        assert!(lazy < ex, "lazy {lazy} vs exms {ex}");
    }

    #[test]
    fn io_splits_reconstruct_the_scalar_costs() {
        // reads + λ·writes must equal the corresponding cost expression
        // exactly — the splits are decompositions, not re-derivations.
        for lambda in [1.0, 2.0, 8.0, 15.0] {
            for (t, m) in [(T, M), (T, T / 50.0), (20_000.0, 500.0)] {
                let (r, w) = exms_io(t, m, lambda);
                assert!((r + lambda * w - exms_cost(t, m, lambda)).abs() < 1e-6);
                let (r, w) = selection_io(t, m);
                assert!((r + lambda * w - selection_cost(t, m, lambda)).abs() < 1e-6);
                for x in [0.0, 0.2, 0.5, 0.8, 1.0] {
                    let (r, w) = segment_io(t, m, lambda, x);
                    assert!(
                        (r + lambda * w - segment_cost(t, m, lambda, x)).abs() < 1e-6,
                        "segment λ={lambda} x={x}"
                    );
                    let (r, w) = hybrid_io(t, m, lambda, x);
                    assert!(
                        (r + lambda * w - hybrid_cost(t, m, lambda, x)).abs() < 1e-6,
                        "hybrid λ={lambda} x={x}"
                    );
                }
                let (r, w) = lazy_sort_io(t, m, lambda);
                assert!((r + lambda * w - lazy_sort_cost(t, m, lambda)).abs() < 1e-6);
            }
        }
    }
}
