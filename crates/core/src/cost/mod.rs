//! Cost models (Eqs. 1–11) and the knob optimizer built on them.
//!
//! The paper's premise is that the write-limited algorithms are only
//! useful together with cost expressions an optimizer can rank (§4.2.3).
//! [`sort_costs`] and [`join_costs`] implement the expressions; the
//! functions here use them to *choose* algorithms and intensities — the
//! "informed" portion allocation of §2.

pub mod join_costs;
pub mod sort_costs;

use crate::join::JoinAlgorithm;
use crate::sort::SortAlgorithm;

/// A cost prediction split into its cacheline read and write sides, in
/// cachelines (the paper's buffer units). `reads + λ·writes` recovers
/// the scalar Eqs. 1–11 costs; the split is what a plan-level
/// predicted-vs-measured comparison (Fig. 12 at plan granularity) needs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoPrediction {
    /// Predicted cacheline reads.
    pub reads: f64,
    /// Predicted cacheline writes.
    pub writes: f64,
}

impl IoPrediction {
    /// A zero prediction (identity for [`IoPrediction::plus`]).
    pub const ZERO: Self = Self {
        reads: 0.0,
        writes: 0.0,
    };

    /// Scalar cost in read units under write/read ratio `lambda`.
    pub fn cost_units(&self, lambda: f64) -> f64 {
        self.reads + lambda * self.writes
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(&self, other: IoPrediction) -> IoPrediction {
        IoPrediction {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
        }
    }
}

/// Predicts the cacheline read/write traffic of a sort algorithm.
/// Decomposes [`estimate_sort`] exactly: `reads + λ·writes` equals it.
pub fn predict_sort_io(algo: &SortAlgorithm, t: f64, m: f64, lambda: f64) -> IoPrediction {
    let (reads, writes) = match algo {
        SortAlgorithm::ExMS => sort_costs::exms_io(t, m, lambda),
        SortAlgorithm::SegS { x } => sort_costs::segment_io(t, m, lambda, *x),
        SortAlgorithm::HybS { x } => sort_costs::hybrid_io(t, m, lambda, *x),
        SortAlgorithm::LaS => sort_costs::lazy_sort_io(t, m, lambda),
        SortAlgorithm::SelS => sort_costs::selection_io(t, m),
    };
    IoPrediction { reads, writes }
}

/// Predicts the cacheline read/write traffic of a join algorithm
/// (excluding the shared output-materialization constant, as the paper's
/// expressions do). Decomposes [`estimate_join`] exactly.
pub fn predict_join_io(algo: &JoinAlgorithm, t: f64, v: f64, m: f64, lambda: f64) -> IoPrediction {
    let (reads, writes) = match algo {
        JoinAlgorithm::NLJ => join_costs::nlj_io(t, v, m),
        JoinAlgorithm::GJ => join_costs::grace_io(t, v),
        JoinAlgorithm::HJ => join_costs::hash_join_io(t, v, m),
        JoinAlgorithm::HybJ { x, y } => join_costs::hybrid_io(t, v, m, *x, *y),
        JoinAlgorithm::SegJ { frac } => {
            let k = (t / m).ceil().max(1.0);
            join_costs::segmented_io(t, v, m, ((k * frac).round()) as usize)
        }
        JoinAlgorithm::LaJ => {
            let k = (t / m).ceil().max(1.0);
            ((t + v) * k, 0.0)
        }
        JoinAlgorithm::SMJ { x } => {
            let (lr, lw) = sort_costs::segment_io(t, m, lambda, *x);
            let (rr, rw) = sort_costs::segment_io(v, m, lambda, *x);
            (lr + rr + t + v, lw + rw)
        }
        // Without catalog statistics the hot fractions are unknown; the
        // planner applies the skew discount via `join_costs::guided_io`.
        JoinAlgorithm::CGJ => join_costs::guided_io(t, v, 0.0, 0.0),
    };
    IoPrediction { reads, writes }
}

/// How a plan node's predicted traffic divides between work the
/// partition-parallel executors overlap across workers and work that
/// stays on the coordinating thread. Used by planners to estimate the
/// *critical path* of a node under a degree of parallelism: rather than
/// the Eqs. 1–11 sum of all partition costs, the elapsed estimate is
/// `serial + parallel / min(dop, partitions)` (balanced partitions, so
/// the max partition cost is the mean).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParallelSplit {
    /// Cost-unit share executed serially (phase-1 partitioning,
    /// run generation, final merges, iterative algorithms).
    pub serial: f64,
    /// Cost-unit share fanned out over independent partitions.
    pub parallel: f64,
    /// Number of independent partitions the parallel share divides into.
    pub partitions: f64,
}

impl ParallelSplit {
    /// A fully serial split of `units` cost units.
    pub fn all_serial(units: f64) -> Self {
        Self {
            serial: units,
            parallel: 0.0,
            partitions: 1.0,
        }
    }

    /// Critical-path estimate in cost units at degree of parallelism
    /// `dop`: the serial share plus the parallel share divided by the
    /// effective worker count. At `dop = 1` this is exactly the Eqs.
    /// 1–11 sum.
    pub fn critical_path_units(&self, dop: usize) -> f64 {
        let eff = (dop as f64).min(self.partitions).max(1.0);
        self.serial + self.parallel / eff
    }
}

/// Cachelines per execution morsel, the fixed task granule the
/// morselized scans fan out over:
/// [`crate::join::PARTITION_MORSEL_RECORDS`] 80-byte Wisconsin records
/// over 64-byte cachelines. Caps how many workers a morsel-parallel
/// scan can keep busy.
pub(crate) const MORSEL_CACHELINES: f64 = (crate::join::PARTITION_MORSEL_RECORDS * 80 / 64) as f64;

/// Independent tasks of a morsel-parallel scan over `buffers`
/// cachelines of input.
fn scan_morsels(buffers: f64) -> f64 {
    (buffers / MORSEL_CACHELINES).ceil().max(1.0)
}

/// Splits a join's predicted cost (Eqs. 6–11 and the baselines) into its
/// serial and partition-parallel shares, mirroring what the executors in
/// [`crate::join`] actually overlap:
///
/// * GJ — phase 1 fans out over fixed input morsels and phase 2 over the
///   `k` partition pairs; nothing of substance stays on the coordinator
///   (output and partition flushes are attributable to their tasks).
/// * SegJ — the initial scan and partition writes are serial; the Grace
///   joins of the materialized partitions and the `k − x` iterate passes
///   fan out.
/// * HybJ — the prefix partitioning is serial; the per-partition probes
///   (including the piggybacked V₁₋y scans) and the nested-loop chunks
///   fan out.
/// * HJ / LaJ — the passes stay sequential (each consumes the previous
///   one's offload), but every pass's two scans are morsel-parallel, so
///   the whole cost fans out at morsel granularity.
/// * NLJ — fans out over the `⌈f·|T|/M⌉` outer blocks.
/// * SMJ — the two segment sorts stay serial; the merge-join co-scan
///   range-partitions over key segments.
///
/// `lambda` weighs the write shares; the output-materialization constant
/// is excluded, as in [`predict_join_io`].
pub fn join_parallel_split(
    algo: &JoinAlgorithm,
    t: f64,
    v: f64,
    m: f64,
    lambda: f64,
) -> ParallelSplit {
    let total = estimate_join(algo, t, v, m, lambda);
    let k = (t / m).ceil().max(1.0);
    match algo {
        // CGJ's two scans and partition-pair joins overlap exactly like
        // Grace's (the hot probes ride the scan morsels).
        JoinAlgorithm::GJ | JoinAlgorithm::CGJ => ParallelSplit {
            // Phase 1 fans out over the input morsels, phase 2 over the
            // k partition pairs; the phases run in sequence, so the
            // smaller task count bounds the speedup.
            serial: 0.0,
            parallel: total,
            partitions: k.min(scan_morsels(t + v)),
        },
        JoinAlgorithm::SegJ { frac } => {
            let x = (k * frac).round().min(k);
            // Materialized-partition joins + iterate passes fan out.
            let parallel = x / k * (t + v) + (k - x) * (t + v);
            ParallelSplit {
                serial: (total - parallel).max(0.0),
                parallel: parallel.min(total),
                partitions: k,
            }
        }
        JoinAlgorithm::HybJ { x, y } => {
            // Serial share: partitioning the prefixes (read once, write
            // once); everything else — partition probes, piggybacked
            // scans, and the nested-loop chunks (each chunk's T₁₋ₓ build
            // reads included, since the chunks are independent parallel
            // tasks) — fans out.
            let serial = (x * t + y * v) * (1.0 + lambda);
            let chunks = ((1.0 - x) * t / m).ceil() + (x * t / m).ceil();
            ParallelSplit {
                serial: serial.min(total),
                parallel: (total - serial).max(0.0),
                partitions: chunks.max(1.0),
            }
        }
        JoinAlgorithm::HJ | JoinAlgorithm::LaJ => ParallelSplit {
            // Every pass scans at most the full inputs; the morsel count
            // of the first (largest) pass bounds the useful workers.
            serial: 0.0,
            parallel: total,
            partitions: scan_morsels(t + v),
        },
        JoinAlgorithm::NLJ => ParallelSplit {
            serial: 0.0,
            parallel: total,
            partitions: k,
        },
        JoinAlgorithm::SMJ { x } => {
            let sorts = sort_costs::segment_cost(t, m, lambda, *x)
                + sort_costs::segment_cost(v, m, lambda, *x);
            ParallelSplit {
                serial: sorts.min(total),
                parallel: (total - sorts).max(0.0),
                partitions: scan_morsels(t + v),
            }
        }
    }
}

/// Splits a sort's predicted cost into serial and parallel shares. ExMS
/// is parallel end-to-end: run generation fans out over fixed
/// `4M`-record chunks, intermediate merge passes over their groups, and
/// the final merge over sampled key-range segments. The write-limited
/// algorithms' deferred selection streams regenerate by rescanning the
/// input, so they stay serial.
pub fn sort_parallel_split(algo: &SortAlgorithm, t: f64, m: f64, lambda: f64) -> ParallelSplit {
    let total = estimate_sort(algo, t, m, lambda);
    match algo {
        SortAlgorithm::ExMS => {
            // Run generation: one task per 4M-record chunk. Merge
            // passes: one task per key-range segment. The phases run in
            // sequence, so the smaller task count bounds the speedup.
            let chunks = (t / (4.0 * m)).ceil().max(1.0);
            let segments = scan_morsels(t);
            ParallelSplit {
                serial: 0.0,
                parallel: total,
                partitions: chunks.min(segments).max(1.0),
            }
        }
        _ => ParallelSplit::all_serial(total),
    }
}

/// The candidate set the "informed" sort choice considers: the
/// baselines, HybS sweeps, the Eq. 4 cost-optimal SegS intensity when
/// applicable, and a SegS sweep (deduplicated). Exposed for plan
/// enumerators that need the whole ranked field, not just the winner.
pub fn sort_candidates(t: f64, m: f64, lambda: f64) -> Vec<SortAlgorithm> {
    let mut candidates = vec![
        SortAlgorithm::ExMS,
        SortAlgorithm::SelS,
        SortAlgorithm::LaS,
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.8 },
    ];
    if let Some(x) = sort_costs::optimal_segment_x(t, m, lambda) {
        candidates.push(SortAlgorithm::SegS { x });
    }
    for x in [0.2, 0.5, 0.8] {
        candidates.push(SortAlgorithm::SegS { x });
    }
    dedup_in_order(candidates)
}

/// The candidate set the "informed" join choice considers: baselines,
/// the grid-optimal HybJ, SegJ at the Eq. 10 boundary and midpoint
/// (deduplicated when they coincide), and LaJ. SMJ is deliberately
/// excluded: it is a library extension outside the paper's §2.2
/// line-up, so the informed choice stays within the paper's field —
/// callers wanting it can cost it via [`estimate_join`] /
/// [`predict_join_io`] directly. Exposed for plan enumerators.
pub fn join_candidates(t: f64, v: f64, m: f64, lambda: f64) -> Vec<JoinAlgorithm> {
    let (x, y) = join_costs::optimal_hybrid_xy(t, v, m, lambda, 20);
    let k = (t / m).ceil().max(1.0);
    let seg_frac = join_costs::segmented_beats_grace_bound(k, lambda)
        .map(|b| (b / k).clamp(0.0, 1.0))
        .unwrap_or(0.5);
    dedup_in_order(vec![
        JoinAlgorithm::NLJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::HybJ { x, y },
        JoinAlgorithm::SegJ { frac: seg_frac },
        JoinAlgorithm::SegJ { frac: 0.5 },
        JoinAlgorithm::LaJ,
    ])
}

/// Drops exact repeats while preserving first-occurrence order (the
/// candidate lists are tiny, so the quadratic scan is fine).
fn dedup_in_order<T: PartialEq>(items: Vec<T>) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(items.len());
    for item in items {
        if !out.contains(&item) {
            out.push(item);
        }
    }
    out
}

/// Estimates the cost of a sort algorithm in read units (`r = 1`).
/// Sizes in buffers. Lazy algorithms get a structural estimate; the
/// paper's Fig. 12 excludes them from ranking because their decisions
/// are dynamic.
pub fn estimate_sort(algo: &SortAlgorithm, t: f64, m: f64, lambda: f64) -> f64 {
    match algo {
        SortAlgorithm::ExMS => sort_costs::exms_cost(t, m, lambda),
        SortAlgorithm::SegS { x } => sort_costs::segment_cost(t, m, lambda, *x),
        SortAlgorithm::HybS { x } => sort_costs::hybrid_cost(t, m, lambda, *x),
        SortAlgorithm::LaS => sort_costs::lazy_sort_cost(t, m, lambda),
        SortAlgorithm::SelS => sort_costs::selection_cost(t, m, lambda),
    }
}

/// Estimates the cost of a join algorithm in read units. Sizes in
/// buffers, `t ≤ v`.
pub fn estimate_join(algo: &JoinAlgorithm, t: f64, v: f64, m: f64, lambda: f64) -> f64 {
    match algo {
        JoinAlgorithm::NLJ => join_costs::nlj_cost(t, v, m),
        JoinAlgorithm::GJ => join_costs::grace_cost(t, v, lambda),
        JoinAlgorithm::HJ => join_costs::hash_join_cost(t, v, m, lambda),
        JoinAlgorithm::HybJ { x, y } => join_costs::hybrid_cost(t, v, m, lambda, *x, *y),
        JoinAlgorithm::SegJ { frac } => {
            let k = (t / m).ceil().max(1.0);
            join_costs::segmented_cost(t, v, m, lambda, ((k * frac).round()) as usize)
        }
        JoinAlgorithm::LaJ => {
            // Structural estimate: k lazy iterations over the full inputs,
            // Eq. 11 materializations are rare at high λ.
            let k = (t / m).ceil().max(1.0);
            (t + v) * k
        }
        JoinAlgorithm::SMJ { x } => {
            // Two segment sorts plus one co-scan of the sorted inputs.
            sort_costs::segment_cost(t, m, lambda, *x)
                + sort_costs::segment_cost(v, m, lambda, *x)
                + (t + v)
        }
        JoinAlgorithm::CGJ => {
            let (reads, writes) = join_costs::guided_io(t, v, 0.0, 0.0);
            reads + lambda * writes
        }
    }
}

/// Picks the cheapest sort among ExMS, cost-optimal SegS, HybS sweeps,
/// and SelS — the system-driven "informed" choice. LaS is excluded, as
/// in the paper's Fig. 12 ranking: its decisions are dynamic, so the
/// structural estimate is not comparable.
pub fn choose_sort(t: f64, m: f64, lambda: f64) -> SortAlgorithm {
    sort_candidates(t, m, lambda)
        .into_iter()
        .filter(|a| !matches!(a, SortAlgorithm::LaS))
        .min_by(|a, b| {
            estimate_sort(a, t, m, lambda)
                .partial_cmp(&estimate_sort(b, t, m, lambda))
                .expect("finite costs")
        })
        .expect("non-empty candidate set")
}

/// Picks the cheapest join among the baselines, the grid-optimal HybJ,
/// and SegJ at the Eq. 10 boundary. LaJ is excluded for the same reason
/// LaS is excluded from [`choose_sort`].
pub fn choose_join(t: f64, v: f64, m: f64, lambda: f64) -> JoinAlgorithm {
    join_candidates(t, v, m, lambda)
        .into_iter()
        .filter(|a| !matches!(a, JoinAlgorithm::LaJ))
        .min_by(|a, b| {
            estimate_join(a, t, v, m, lambda)
                .partial_cmp(&estimate_join(b, t, v, m, lambda))
                .expect("finite costs")
        })
        .expect("non-empty candidate set")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_sort_prefers_selection_with_generous_memory() {
        // One read pass + minimal writes is unbeatable when M ≈ |T|.
        let algo = choose_sort(10_000.0, 9_000.0, 15.0);
        assert_eq!(algo, SortAlgorithm::SelS, "got {algo:?}");
    }

    #[test]
    fn choose_sort_avoids_selection_at_tiny_memory() {
        let algo = choose_sort(100_000.0, 500.0, 2.0);
        assert_ne!(algo, SortAlgorithm::SelS, "quadratic reads should lose");
    }

    #[test]
    fn choose_join_prefers_read_only_plan_when_memory_covers_left() {
        // Either NLJ or the degenerate HybJ(0,0) — identical plans, the
        // latter just models blocks fractionally.
        let algo = choose_join(1_000.0, 10_000.0, 2_000.0, 15.0);
        let read_only = matches!(algo, JoinAlgorithm::NLJ)
            || matches!(algo, JoinAlgorithm::HybJ { x, y } if x == 0.0 && y == 0.0);
        assert!(read_only, "got {algo:?}");
    }

    #[test]
    fn choose_join_never_picks_hash_join_at_multiple_iterations() {
        let algo = choose_join(10_000.0, 100_000.0, 1_000.0, 15.0);
        assert_ne!(algo, JoinAlgorithm::HJ);
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        for algo in [
            JoinAlgorithm::NLJ,
            JoinAlgorithm::GJ,
            JoinAlgorithm::HJ,
            JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
            JoinAlgorithm::SegJ { frac: 0.5 },
            JoinAlgorithm::LaJ,
        ] {
            let c = estimate_join(&algo, 10_000.0, 100_000.0, 1_000.0, 15.0);
            assert!(c.is_finite() && c > 0.0, "{algo:?}: {c}");
        }
    }

    #[test]
    fn io_predictions_decompose_the_estimates() {
        let (t, v, m) = (10_000.0, 100_000.0, 1_000.0);
        for lambda in [1.0, 8.0, 15.0] {
            for algo in sort_candidates(t, m, lambda) {
                let p = predict_sort_io(&algo, t, m, lambda);
                let e = estimate_sort(&algo, t, m, lambda);
                assert!(
                    (p.cost_units(lambda) - e).abs() < 1e-6,
                    "{}: {} vs {e}",
                    algo.label(),
                    p.cost_units(lambda)
                );
                assert!(p.reads >= 0.0 && p.writes >= 0.0);
            }
            // SMJ is not in join_candidates (outside the paper's §2.2
            // line-up) but its split must still decompose the estimate.
            let with_smj = join_candidates(t, v, m, lambda)
                .into_iter()
                .chain([JoinAlgorithm::SMJ { x: 0.5 }, JoinAlgorithm::SMJ { x: 0.2 }]);
            for algo in with_smj {
                let p = predict_join_io(&algo, t, v, m, lambda);
                let e = estimate_join(&algo, t, v, m, lambda);
                assert!(
                    (p.cost_units(lambda) - e).abs() < 1e-6,
                    "{}: {} vs {e}",
                    algo.label(),
                    p.cost_units(lambda)
                );
            }
        }
    }

    #[test]
    fn candidate_sets_have_no_duplicates() {
        // The boundary SegJ fraction can coincide with the 0.5 midpoint
        // (e.g. when Eq. 10 is degenerate) — the set must still be
        // duplicate-free, since plan enumerators render it to users.
        for lambda in [1.0, 15.0] {
            let joins = join_candidates(10_000.0, 100_000.0, 1_000.0, lambda);
            for (i, a) in joins.iter().enumerate() {
                assert!(
                    !joins[i + 1..].contains(a),
                    "duplicate join candidate {a:?} at λ={lambda}"
                );
            }
            let sorts = sort_candidates(10_000.0, 1_000.0, lambda);
            for (i, a) in sorts.iter().enumerate() {
                assert!(
                    !sorts[i + 1..].contains(a),
                    "duplicate sort candidate {a:?} at λ={lambda}"
                );
            }
        }
    }

    #[test]
    fn candidate_sets_cover_the_algorithm_families() {
        let sorts = sort_candidates(10_000.0, 1_000.0, 8.0);
        assert!(sorts.contains(&SortAlgorithm::ExMS));
        assert!(sorts.contains(&SortAlgorithm::SelS));
        assert!(sorts.contains(&SortAlgorithm::LaS));
        assert!(sorts
            .iter()
            .any(|a| matches!(a, SortAlgorithm::SegS { .. })));
        assert!(sorts
            .iter()
            .any(|a| matches!(a, SortAlgorithm::HybS { .. })));

        let joins = join_candidates(10_000.0, 100_000.0, 1_000.0, 15.0);
        for want in [
            JoinAlgorithm::NLJ,
            JoinAlgorithm::GJ,
            JoinAlgorithm::HJ,
            JoinAlgorithm::LaJ,
        ] {
            assert!(joins.contains(&want), "missing {want:?}");
        }
        assert!(joins
            .iter()
            .any(|a| matches!(a, JoinAlgorithm::HybJ { .. })));
        assert!(joins
            .iter()
            .any(|a| matches!(a, JoinAlgorithm::SegJ { .. })));
    }

    #[test]
    fn critical_path_at_dop_one_is_the_estimate() {
        let (t, v, m, lambda) = (10_000.0, 100_000.0, 1_000.0, 15.0);
        for algo in join_candidates(t, v, m, lambda) {
            let split = join_parallel_split(&algo, t, v, m, lambda);
            let total = estimate_join(&algo, t, v, m, lambda);
            assert!(
                (split.critical_path_units(1) - total).abs() < 1e-6,
                "{}: {} vs {total}",
                algo.label(),
                split.critical_path_units(1)
            );
        }
        for algo in sort_candidates(t, m, lambda) {
            let split = sort_parallel_split(&algo, t, m, lambda);
            let total = estimate_sort(&algo, t, m, lambda);
            assert!((split.critical_path_units(1) - total).abs() < 1e-6);
        }
    }

    #[test]
    fn parallelism_shrinks_every_join_family() {
        // Since the morsel-driven executors, every join has a parallel
        // share: the partitioned family over partitions, HJ/LaJ over
        // scan morsels, NLJ over outer blocks, SMJ's co-scan over key
        // segments (its sorts stay serial, so it shrinks least).
        let (t, v, m, lambda) = (10_000.0, 100_000.0, 1_000.0, 15.0);
        let gj = join_parallel_split(&JoinAlgorithm::GJ, t, v, m, lambda);
        assert!(gj.critical_path_units(4) < 0.5 * gj.critical_path_units(1));
        let seg = join_parallel_split(&JoinAlgorithm::SegJ { frac: 0.0 }, t, v, m, lambda);
        assert!(seg.critical_path_units(4) < 0.5 * seg.critical_path_units(1));
        let nlj = join_parallel_split(&JoinAlgorithm::NLJ, t, v, m, lambda);
        assert!(nlj.critical_path_units(8) < 0.5 * nlj.critical_path_units(1));
        let hj = join_parallel_split(&JoinAlgorithm::HJ, t, v, m, lambda);
        assert!(hj.critical_path_units(8) < 0.5 * hj.critical_path_units(1));
        let laj = join_parallel_split(&JoinAlgorithm::LaJ, t, v, m, lambda);
        assert!(laj.critical_path_units(8) < 0.5 * laj.critical_path_units(1));
        let smj = join_parallel_split(&JoinAlgorithm::SMJ { x: 0.5 }, t, v, m, lambda);
        let shrunk = smj.critical_path_units(8);
        assert!(shrunk < smj.critical_path_units(1));
        assert!(shrunk >= smj.serial, "the sorts stay on the critical path");
    }

    #[test]
    fn exms_split_is_parallel_end_to_end() {
        let (t, m, lambda) = (100_000.0, 2_000.0, 15.0);
        let split = sort_parallel_split(&SortAlgorithm::ExMS, t, m, lambda);
        assert_eq!(split.serial, 0.0);
        assert!(split.partitions >= 4.0, "partitions {}", split.partitions);
        assert!(split.critical_path_units(4) < 0.3 * split.critical_path_units(1));
        // The write-limited sorts' deferred streams keep them serial.
        let seg = sort_parallel_split(&SortAlgorithm::SegS { x: 0.5 }, t, m, lambda);
        assert_eq!(seg.critical_path_units(8), seg.critical_path_units(1));
    }

    #[test]
    fn effective_workers_cap_at_partition_count() {
        let split = ParallelSplit {
            serial: 100.0,
            parallel: 900.0,
            partitions: 3.0,
        };
        assert_eq!(split.critical_path_units(8), split.critical_path_units(3));
        assert_eq!(split.critical_path_units(3), 100.0 + 300.0);
    }

    #[test]
    fn io_prediction_arithmetic() {
        let a = IoPrediction {
            reads: 10.0,
            writes: 5.0,
        };
        let b = a.plus(IoPrediction::ZERO);
        assert_eq!(a, b);
        assert_eq!(a.plus(a).reads, 20.0);
        assert_eq!(a.cost_units(15.0), 85.0);
    }
}
