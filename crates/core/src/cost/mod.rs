//! Cost models (Eqs. 1–11) and the knob optimizer built on them.
//!
//! The paper's premise is that the write-limited algorithms are only
//! useful together with cost expressions an optimizer can rank (§4.2.3).
//! [`sort_costs`] and [`join_costs`] implement the expressions; the
//! functions here use them to *choose* algorithms and intensities — the
//! "informed" portion allocation of §2.

pub mod join_costs;
pub mod sort_costs;

use crate::join::JoinAlgorithm;
use crate::sort::SortAlgorithm;

/// Estimates the cost of a sort algorithm in read units (`r = 1`).
/// Sizes in buffers. Lazy algorithms get a structural estimate; the
/// paper's Fig. 12 excludes them from ranking because their decisions
/// are dynamic.
pub fn estimate_sort(algo: &SortAlgorithm, t: f64, m: f64, lambda: f64) -> f64 {
    match algo {
        SortAlgorithm::ExMS => sort_costs::exms_cost(t, m, lambda),
        SortAlgorithm::SegS { x } => sort_costs::segment_cost(t, m, lambda, *x),
        SortAlgorithm::HybS { x } => sort_costs::hybrid_cost(t, m, lambda, *x),
        SortAlgorithm::LaS => sort_costs::lazy_sort_cost(t, m, lambda),
        SortAlgorithm::SelS => sort_costs::selection_cost(t, m, lambda),
    }
}

/// Estimates the cost of a join algorithm in read units. Sizes in
/// buffers, `t ≤ v`.
pub fn estimate_join(algo: &JoinAlgorithm, t: f64, v: f64, m: f64, lambda: f64) -> f64 {
    match algo {
        JoinAlgorithm::NLJ => join_costs::nlj_cost(t, v, m),
        JoinAlgorithm::GJ => join_costs::grace_cost(t, v, lambda),
        JoinAlgorithm::HJ => join_costs::hash_join_cost(t, v, m, lambda),
        JoinAlgorithm::HybJ { x, y } => join_costs::hybrid_cost(t, v, m, lambda, *x, *y),
        JoinAlgorithm::SegJ { frac } => {
            let k = (t / m).ceil().max(1.0);
            join_costs::segmented_cost(t, v, m, lambda, ((k * frac).round()) as usize)
        }
        JoinAlgorithm::LaJ => {
            // Structural estimate: k lazy iterations over the full inputs,
            // Eq. 11 materializations are rare at high λ.
            let k = (t / m).ceil().max(1.0);
            (t + v) * k
        }
        JoinAlgorithm::SMJ { x } => {
            // Two segment sorts plus one co-scan of the sorted inputs.
            sort_costs::segment_cost(t, m, lambda, *x)
                + sort_costs::segment_cost(v, m, lambda, *x)
                + (t + v)
        }
    }
}

/// Picks the cheapest sort among ExMS, cost-optimal SegS, HybS sweeps,
/// and SelS — the system-driven "informed" choice.
pub fn choose_sort(t: f64, m: f64, lambda: f64) -> SortAlgorithm {
    let mut candidates = vec![
        SortAlgorithm::ExMS,
        SortAlgorithm::SelS,
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.8 },
    ];
    if let Some(x) = sort_costs::optimal_segment_x(t, m, lambda) {
        candidates.push(SortAlgorithm::SegS { x });
    }
    for x in [0.2, 0.5, 0.8] {
        candidates.push(SortAlgorithm::SegS { x });
    }
    candidates
        .into_iter()
        .min_by(|a, b| {
            estimate_sort(a, t, m, lambda)
                .partial_cmp(&estimate_sort(b, t, m, lambda))
                .expect("finite costs")
        })
        .expect("non-empty candidate set")
}

/// Picks the cheapest join among the baselines, the grid-optimal HybJ,
/// and SegJ at the Eq. 10 boundary.
pub fn choose_join(t: f64, v: f64, m: f64, lambda: f64) -> JoinAlgorithm {
    let (x, y) = join_costs::optimal_hybrid_xy(t, v, m, lambda, 20);
    let k = (t / m).ceil().max(1.0);
    let seg_frac = join_costs::segmented_beats_grace_bound(k, lambda)
        .map(|b| (b / k).clamp(0.0, 1.0))
        .unwrap_or(0.5);
    let candidates = [
        JoinAlgorithm::NLJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::HybJ { x, y },
        JoinAlgorithm::SegJ { frac: seg_frac },
        JoinAlgorithm::SegJ { frac: 0.5 },
    ];
    candidates
        .into_iter()
        .min_by(|a, b| {
            estimate_join(a, t, v, m, lambda)
                .partial_cmp(&estimate_join(b, t, v, m, lambda))
                .expect("finite costs")
        })
        .expect("non-empty candidate set")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_sort_prefers_selection_with_generous_memory() {
        // One read pass + minimal writes is unbeatable when M ≈ |T|.
        let algo = choose_sort(10_000.0, 9_000.0, 15.0);
        assert_eq!(algo, SortAlgorithm::SelS, "got {algo:?}");
    }

    #[test]
    fn choose_sort_avoids_selection_at_tiny_memory() {
        let algo = choose_sort(100_000.0, 500.0, 2.0);
        assert_ne!(algo, SortAlgorithm::SelS, "quadratic reads should lose");
    }

    #[test]
    fn choose_join_prefers_read_only_plan_when_memory_covers_left() {
        // Either NLJ or the degenerate HybJ(0,0) — identical plans, the
        // latter just models blocks fractionally.
        let algo = choose_join(1_000.0, 10_000.0, 2_000.0, 15.0);
        let read_only = matches!(algo, JoinAlgorithm::NLJ)
            || matches!(algo, JoinAlgorithm::HybJ { x, y } if x == 0.0 && y == 0.0);
        assert!(read_only, "got {algo:?}");
    }

    #[test]
    fn choose_join_never_picks_hash_join_at_multiple_iterations() {
        let algo = choose_join(10_000.0, 100_000.0, 1_000.0, 15.0);
        assert_ne!(algo, JoinAlgorithm::HJ);
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        for algo in [
            JoinAlgorithm::NLJ,
            JoinAlgorithm::GJ,
            JoinAlgorithm::HJ,
            JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
            JoinAlgorithm::SegJ { frac: 0.5 },
            JoinAlgorithm::LaJ,
        ] {
            let c = estimate_join(&algo, 10_000.0, 100_000.0, 1_000.0, 15.0);
            assert!(c.is_finite() && c > 0.0, "{algo:?}: {c}");
        }
    }
}
