//! Plan-level deferred materialization — the §3.1 "Extensions"
//! paragraph, made executable.
//!
//! The paper generalizes its single-operator optimization "to entire
//! evaluation plans, assuming that the operators are connected through
//! intermediate result collections". [`DeferredFilter`] is such a
//! connection: a filter operator whose output collection starts
//! *deferred*. Consumers scan it as a view — each scan re-filters the
//! source — while the runtime tracks accumulated reads and processing
//! counts; once the `read-over-write` (or `multi-process`) rule fires,
//! the next scan **piggybacks** materialization (writing the filtered
//! rows while producing them) and later scans read the materialized
//! collection.
//!
//! The included [`filtered_iterate_join`] puts the view under the
//! iterate-only segmented Grace join, whose `k` passes over the left
//! input are exactly the repeated-processing pattern the rules exist
//! for: selective filters materialize after the first pass, while
//! non-selective ones stay deferred as long as `k ≤ λ`.

use crate::join::common::{partition_of, BuildTable, JoinContext};
use crate::parallel;
use pmem_sim::{PCollection, PmError, RecordBuffer};
use wisconsin::{Pair, Record};
use wl_runtime::{CStatus, Decision, OpCtx};

/// A filter operator whose output is a deferred collection.
pub struct DeferredFilter<'a, R: Record> {
    source: &'a PCollection<R>,
    predicate: Box<dyn Fn(&R) -> bool + 'a>,
    source_name: String,
    name: String,
    materialized: Option<PCollection<R>>,
}

impl<'a, R: Record> std::fmt::Debug for DeferredFilter<'a, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeferredFilter")
            .field("source", &self.source_name)
            .field("name", &self.name)
            .field("materialized", &self.materialized.is_some())
            .finish()
    }
}

impl<'a, R: Record> DeferredFilter<'a, R> {
    /// Declares `filter(source, p(), selectivity, F)` in the runtime
    /// context and returns the deferred view.
    pub fn new(
        source: &'a PCollection<R>,
        predicate: impl Fn(&R) -> bool + 'a,
        selectivity: f64,
        rt: &mut OpCtx,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&selectivity),
            "selectivity must be in [0,1]"
        );
        let source_name = rt.create_name("src");
        let name = rt.create_name("filtered");
        rt.declare(&source_name, CStatus::Materialized, source.buffers() as f64);
        rt.declare(
            &name,
            CStatus::Deferred,
            source.buffers() as f64 * selectivity,
        );
        rt.filter(&source_name, selectivity, &name);
        Self {
            source,
            predicate: Box::new(predicate),
            source_name,
            name,
            materialized: None,
        }
    }

    /// Whether the view has been materialized (by a rule firing).
    pub fn is_materialized(&self) -> bool {
        self.materialized.is_some()
    }

    /// The view's collection name in the runtime graph.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scans the view, invoking `consume` per qualifying record. The
    /// runtime is consulted first: on a materialize verdict the scan
    /// writes the filtered output as it streams (piggybacked, so the
    /// source is not scanned twice), and subsequent scans read it back.
    pub fn scan(&mut self, rt: &mut OpCtx, ctx: &JoinContext<'_>, mut consume: impl FnMut(R)) {
        if let Some(m) = &self.materialized {
            for r in m.reader() {
                consume(r);
            }
            rt.note_scan(&self.name, m.buffers() as f64);
            return;
        }
        let verdict = rt.assess(&self.name);
        let materialize = verdict.is_some_and(|v| v.decision == Decision::Materialize);
        let mut file = materialize
            .then(|| PCollection::<R>::new(ctx.device(), ctx.kind(), format!("{}-mat", self.name)));
        for r in self.source.reader() {
            if (self.predicate)(&r) {
                if let Some(file) = file.as_mut() {
                    file.append(&r);
                }
                consume(r);
            }
        }
        rt.note_scan(&self.source_name, self.source.buffers() as f64);
        if let Some(file) = file {
            rt.set_size(&self.name, file.buffers() as f64);
            rt.mark_materialized(&self.name);
            self.materialized = Some(file);
        }
    }
}

/// `σ(left) ⋈ right` with the filter output deferred, joined by the
/// iterate-only segmented Grace join (`x = 0`): one pass over the view
/// and the right input per partition. The runtime decides when the view
/// stops being re-filtered and gets materialized.
///
/// # Errors
/// Returns [`PmError::InsufficientMemory`] when Grace's applicability
/// condition fails for the (filtered) left side.
pub fn filtered_iterate_join<L: Record, R: Record>(
    filter: &mut DeferredFilter<'_, L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    rt: &mut OpCtx,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    if !ctx.grace_applicable::<L>(filter.source.len()) {
        return Err(PmError::InsufficientMemory {
            requirement: format!(
                "filtered join needs M > sqrt(f*|T|): M = {} records, |T| = {}",
                ctx.capacity_records::<L>(),
                filter.source.len()
            ),
        });
    }
    let k = ctx.grace_partitions::<L>(filter.source.len());
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let mut p = 0;
    while p < k {
        if filter.is_materialized() {
            // Once the runtime has materialized the view it is immutable,
            // so the remaining passes are independent scans of it — they
            // fan out across the worker pool, with output flushes and the
            // runtime's scan bookkeeping serialized in partition order
            // (identical counters and rule state at any DoP). Passes
            // *before* this point stay serial: each may flip the
            // materialization decision, which is order-dependent.
            let m = filter.materialized.as_ref().expect("checked");
            let m_buffers = m.buffers() as f64;
            parallel::for_each_ordered(
                ctx.threads(),
                k - p,
                |i| {
                    let part = p + i;
                    let mut table = BuildTable::new();
                    for l in m.reader() {
                        if partition_of(l.key(), k) == part {
                            table.insert(l);
                        }
                    }
                    let mut buf = RecordBuffer::new();
                    for r in right.reader() {
                        if partition_of(r.key(), k) == part {
                            table.probe_buffered(&r, &mut buf);
                        }
                    }
                    buf
                },
                |_, task| {
                    out.append_buffer(&task.value);
                    rt.note_scan(&filter.name, m_buffers);
                },
            );
            break;
        }
        let mut table = BuildTable::new();
        filter.scan(rt, ctx, |l| {
            if partition_of(l.key(), k) == p {
                table.insert(l);
            }
        });
        for r in right.reader() {
            if partition_of(r.key(), k) == p {
                table.probe(&r, &mut out);
            }
        }
        p += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{join_input, WisconsinRecord};

    fn stage(
        t: u64,
        fanout: u64,
        m_records: usize,
    ) -> (
        pmem_sim::Pm,
        PCollection<WisconsinRecord>,
        PCollection<WisconsinRecord>,
        usize,
    ) {
        let dev = PmDevice::paper_default();
        let w = join_input(t, fanout, 64);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        (dev, left, right, m_records)
    }

    #[test]
    fn filtered_join_matches_reference() {
        let (dev, left, right, m) = stage(400, 5, 40);
        let pool = BufferPool::new(m * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let mut rt = OpCtx::new(dev.lambda());
        // Keep even keys: half the matches survive.
        let mut filter = DeferredFilter::new(&left, |r| r.key() % 2 == 0, 0.5, &mut rt);
        let out =
            filtered_iterate_join(&mut filter, &right, &ctx, &mut rt, "out").expect("applicable");
        assert_eq!(out.len(), 1000); // 400·5 / 2
        assert!(out.to_vec_uncounted().iter().all(|p| p.left.key() % 2 == 0));
    }

    #[test]
    fn selective_filter_materializes_after_first_pass() {
        let (dev, left, right, m) = stage(600, 4, 40);
        let pool = BufferPool::new(m * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let k = ctx.grace_partitions::<WisconsinRecord>(left.len());
        assert!(k >= 3, "need several passes, got k={k}");
        let mut rt = OpCtx::new(dev.lambda());
        // 5% selectivity: λ·f = 0.75 ≤ 1 scan — the read-over-write rule
        // fires immediately on first access.
        let mut filter = DeferredFilter::new(&left, |r| r.key() % 20 == 0, 0.05, &mut rt);
        let _ =
            filtered_iterate_join(&mut filter, &right, &ctx, &mut rt, "out").expect("applicable");
        assert!(
            filter.is_materialized(),
            "selective view should materialize"
        );
    }

    #[test]
    fn non_selective_filter_stays_deferred_at_high_lambda() {
        let (dev, left, right, m) = stage(600, 4, 60);
        let pool = BufferPool::new(m * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let k = ctx.grace_partitions::<WisconsinRecord>(left.len());
        assert!((k as f64) <= dev.lambda(), "test needs k ≤ λ");
        let mut rt = OpCtx::new(dev.lambda());
        // f = 1: materializing costs λ·|T| writes; with k ≤ λ passes the
        // re-filtering reads never catch up.
        let mut filter = DeferredFilter::new(&left, |_| true, 1.0, &mut rt);
        let out =
            filtered_iterate_join(&mut filter, &right, &ctx, &mut rt, "out").expect("applicable");
        assert!(!filter.is_materialized(), "f=1 view should stay deferred");
        assert_eq!(out.len(), 2400);
    }

    #[test]
    fn materialization_pays_off_in_write_read_profile() {
        // Selective deferred-then-materialized plan vs always-refilter:
        // compare against a runtime pinned to defer (λ extremely high).
        let run = |lambda: f64| {
            let (dev, left, right, m) = stage(600, 4, 40);
            let pool = BufferPool::new(m * 80);
            let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
            let mut rt = OpCtx::new(lambda);
            let mut filter = DeferredFilter::new(&left, |r| r.key() % 20 == 0, 0.05, &mut rt);
            let before = dev.snapshot();
            let _ = filtered_iterate_join(&mut filter, &right, &ctx, &mut rt, "out")
                .expect("applicable");
            (dev.snapshot().since(&before), filter.is_materialized())
        };
        let (adaptive, materialized) = run(15.0);
        let (always_defer, stayed) = run(1e6);
        assert!(materialized && !stayed);
        assert!(adaptive.cl_reads < always_defer.cl_reads);
        assert!(adaptive.cl_writes > always_defer.cl_writes);
    }
}
