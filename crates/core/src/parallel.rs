//! Scoped-thread worker pool for partition-parallel execution.
//!
//! The paper's partitioned algorithms (Grace/segmented joins, the
//! external-merge fan-ins, hybrid join's spilled partitions) do
//! independent per-partition work that the reference implementation runs
//! strictly serially. This module supplies the execution substrate that
//! lets them fan out over `std::thread::scope` — no extra dependencies —
//! while keeping the *simulated* cost model intact:
//!
//! * the device counters are sharded ([`pmem_sim::Metrics`] buffers
//!   per-thread and bulk-merges at flush points), and this pool is where
//!   the flush points live: each task publishes its shard before its
//!   result ships, and the pool flushes again at the join barrier — so
//!   totals are exact at every point the coordinator can observe them,
//!   without a shared atomic RMW per counted access;
//! * each task's own traffic is measured through the per-thread ledger
//!   ([`pmem_sim::thread_stats`]), so per-partition cost deltas are
//!   deterministic at any degree of parallelism; and
//! * results are consumed **in task-index order** on the calling thread,
//!   so anything the caller serializes (output flushes, runtime-rule
//!   bookkeeping) happens in exactly the order the serial executor used.
//!
//! Simulated time is traffic-derived and therefore unchanged by
//! parallelism; what the pool buys is wall-clock scaling of the harness
//! itself.

use pmem_sim::metrics::{adopt, thread_flow};
use pmem_sim::{span, IoStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Instant;

/// Environment variable holding the default degree of parallelism.
pub const THREADS_ENV: &str = "WL_THREADS";

/// Process-wide explicit degree of parallelism (0 = unset). Set by CLI
/// flags like `repro --threads N`; outranks the environment variable.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide explicit degree of parallelism, as a CLI
/// `--threads` flag does. Outranks `WL_THREADS` in [`resolve_threads`];
/// pass 0 to clear it.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The one knob-precedence rule for the degree of parallelism, shared by
/// every context, operator, and binary:
///
/// 1. an explicit per-call setting (`with_threads`, a session knob),
/// 2. a process-wide explicit setting ([`set_default_threads`], i.e. a
///    `--threads` CLI flag),
/// 3. the `WL_THREADS` environment variable,
/// 4. serial (1), matching the paper's single-threaded implementation.
///
/// Zero and unparsable values are treated as unset at every level.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| Some(DEFAULT_THREADS.load(Ordering::Relaxed)).filter(|&n| n > 0))
        .or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or(1)
}

/// The default degree of parallelism when nothing explicit was given:
/// [`resolve_threads`] with no per-call override.
pub fn degree_from_env() -> usize {
    resolve_threads(None)
}

/// One task's result plus the traffic its worker charged while running
/// it (taken from the worker's thread-local flow ledger, so concurrent
/// siblings cannot perturb it and nested fan-out the task consumed is
/// included).
#[derive(Debug)]
pub struct TaskOutput<T> {
    /// The task's return value.
    pub value: T,
    /// Cacheline traffic the task charged to the device.
    pub stats: IoStats,
    /// Host wall-clock duration of the task in nanoseconds.
    pub wall_ns: u64,
    /// Profiler id of the thread that ran the task.
    pub thread: u64,
}

/// How many tasks may be in flight (running or completed but not yet
/// consumed) beyond the next index the coordinator is waiting for, per
/// worker. Bounds the DRAM held in unconsumed task outputs when one
/// slow task (a skewed partition) stalls the in-order consumption.
const BACKPRESSURE_WINDOW_PER_WORKER: usize = 2;

/// Runs `n_tasks` independent tasks with up to `threads` workers and
/// hands each result to `consume` **in task-index order** on the calling
/// thread.
///
/// With `threads <= 1` (or a single task) everything runs inline on the
/// caller — byte-for-byte the serial execution. Otherwise workers pull
/// task indices from a shared counter and stream results back; the
/// caller re-orders them, so `consume(0)` … `consume(n-1)` always fire
/// in order even though tasks complete out of order. Workers stay within
/// a bounded window ahead of the consumption point, so unconsumed
/// outputs cannot pile up behind one slow task. Worker panics propagate
/// to the caller when the scope joins.
pub fn for_each_ordered<T, F, C>(threads: usize, n_tasks: usize, task: F, mut consume: C)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, TaskOutput<T>),
{
    if n_tasks == 0 {
        return;
    }
    // Phase span covering the whole fan-out; per-task leaves attach under
    // it at consumption time, so a profile records the pool's shape (task
    // counts, which threads ran what, per-task wall) at any DoP. All of
    // this is inert unless a profile is armed on the coordinator.
    let _pool_span = span::span_with(|| format!("tasks[{n_tasks}]"));
    let workers = threads.min(n_tasks);
    if workers <= 1 {
        for i in 0..n_tasks {
            let before = thread_flow();
            let t0 = Instant::now();
            let value = task(i);
            let out = TaskOutput {
                value,
                stats: thread_flow().since(&before),
                wall_ns: t0.elapsed().as_nanos() as u64,
                thread: span::thread_id(),
            };
            // Inline tasks ran on the coordinator, so their traffic is
            // already in its ledger — attach the leaf, adopt nothing.
            if span::profiling() {
                span::attach_task(format!("task-{i}"), out.thread, out.wall_ns, out.stats);
            }
            consume(i, out);
        }
        pmem_sim::flush_thread_accounting();
        pmem_sim::audit::flush_barrier();
        return;
    }

    let window = workers * BACKPRESSURE_WINDOW_PER_WORKER;
    let next = AtomicUsize::new(0);
    // Consumption watermark: tasks with index >= watermark + window wait
    // until the coordinator catches up. The task the coordinator is
    // blocked on is always below the bound, so progress is guaranteed.
    let progress = (Mutex::new(0usize), Condvar::new());
    // Sticky panic flag: once a task unwinds, parked workers stop
    // waiting (the stalled watermark would never advance past the lost
    // task), the pool drains, and the scope join re-raises the panic.
    let aborted = std::sync::atomic::AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, TaskOutput<T>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let task = &task;
            let progress = &progress;
            let aborted = &aborted;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                {
                    let (lock, cvar) = progress;
                    let mut consumed = lock.lock().expect("progress lock poisoned");
                    while !aborted.load(Ordering::Relaxed) && i >= consumed.saturating_add(window) {
                        consumed = cvar.wait(consumed).expect("progress lock poisoned");
                    }
                }
                let release = ReleaseOnPanic { progress, aborted };
                let before = thread_flow();
                let t0 = Instant::now();
                let value = task(i);
                let out = TaskOutput {
                    value,
                    stats: thread_flow().since(&before),
                    wall_ns: t0.elapsed().as_nanos() as u64,
                    thread: span::thread_id(),
                };
                std::mem::forget(release);
                // Publish this task's pending accounting before the
                // result ships: the channel send orders the merge before
                // the coordinator consumes the task, so snapshots taken
                // after consumption always cover it.
                pmem_sim::flush_thread_accounting();
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // Re-order completions so the caller observes task-index order.
        let mut pending: Vec<Option<TaskOutput<T>>> = (0..n_tasks).map(|_| None).collect();
        let mut next_out = 0usize;
        while next_out < n_tasks {
            match rx.recv() {
                Ok((i, out)) => {
                    pending[i] = Some(out);
                    while next_out < n_tasks {
                        match pending[next_out].take() {
                            Some(out) => {
                                // The task ran on a worker: credit its
                                // traffic to the coordinator's flow
                                // ledger so enclosing spans (and nested
                                // pools run from within a task) account
                                // for the delegated work.
                                adopt(&out.stats);
                                if span::profiling() {
                                    span::attach_task(
                                        format!("task-{next_out}"),
                                        out.thread,
                                        out.wall_ns,
                                        out.stats,
                                    );
                                }
                                consume(next_out, out);
                                next_out += 1;
                            }
                            None => break,
                        }
                    }
                    let (lock, cvar) = &progress;
                    *lock.lock().expect("progress lock poisoned") = next_out;
                    cvar.notify_all();
                }
                // All senders gone with tasks missing: a worker panicked;
                // the scope join below re-raises it.
                Err(_) => break,
            }
        }
    });
    // Publish anything the consume callbacks buffered on the coordinator
    // (output flushes land here), then mark the race-auditor barrier: the
    // join ordered every worker write before whatever the next phase
    // writes.
    pmem_sim::flush_thread_accounting();
    pmem_sim::audit::flush_barrier();
}

/// Drop guard armed around a task invocation: runs only when the task
/// unwinds (the success path `mem::forget`s it), setting the sticky
/// abort flag and waking parked siblings so the pool drains and the
/// scope join can propagate the panic.
struct ReleaseOnPanic<'a> {
    progress: &'a (Mutex<usize>, Condvar),
    aborted: &'a std::sync::atomic::AtomicBool,
}

impl Drop for ReleaseOnPanic<'_> {
    fn drop(&mut self) {
        // Publish the failed task's partial accounting while still on the
        // worker thread: the scope join happens-after this, so the
        // coordinator observes the partial traffic exactly once (never
        // lost to the unwind, never double-merged by the exit flush —
        // flushing zeroes the shard).
        pmem_sim::flush_thread_accounting();
        self.aborted.store(true, Ordering::Relaxed);
        let (lock, cvar) = self.progress;
        // Take the lock so no waiter can re-park between its flag check
        // and its wait; ignore poisoning — we are already unwinding.
        drop(lock.lock());
        cvar.notify_all();
    }
}

/// Convenience wrapper over [`for_each_ordered`]: collects every task's
/// value in task-index order.
pub fn map_ordered<T, F>(threads: usize, n_tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(n_tasks);
    for_each_ordered(threads, n_tasks, task, |_, r| out.push(r.value));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{LayerKind, PCollection, PmDevice};

    #[test]
    fn results_arrive_in_index_order_at_any_dop() {
        for threads in [1, 2, 3, 8] {
            let squares = map_ordered(threads, 20, |i| i * i);
            assert_eq!(squares, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn per_task_ledgers_sum_to_the_device_delta() {
        let dev = PmDevice::paper_default();
        let cols: Vec<PCollection<u64>> = (0..8)
            .map(|i| {
                PCollection::from_records_uncounted(
                    &dev,
                    LayerKind::BlockedMemory,
                    format!("c{i}"),
                    (0..500u64).map(|j| j * (i + 1)),
                )
            })
            .collect();
        let before = dev.snapshot();
        let mut ledgers = Vec::new();
        for_each_ordered(
            4,
            cols.len(),
            |i| cols[i].reader().sum::<u64>(),
            |_, out| ledgers.push(out.stats),
        );
        let delta = dev.snapshot().since(&before);
        let total = ledgers
            .iter()
            .fold(pmem_sim::IoStats::default(), |acc, s| acc.plus(s));
        assert_eq!(total, delta);
        assert!(ledgers.iter().all(|s| s.cl_reads > 0));
    }

    #[test]
    fn serial_and_parallel_charge_identical_traffic() {
        let run = |threads: usize| {
            let dev = PmDevice::paper_default();
            let cols: Vec<PCollection<u64>> = (0..6)
                .map(|i| {
                    PCollection::from_records_uncounted(
                        &dev,
                        LayerKind::Pmfs,
                        format!("c{i}"),
                        0..1000u64,
                    )
                })
                .collect();
            let before = dev.snapshot();
            let sums = map_ordered(threads, cols.len(), |i| cols[i].reader().sum::<u64>());
            (sums, dev.snapshot().since(&before))
        };
        let (s1, d1) = run(1);
        let (s4, d4) = run(4);
        assert_eq!(s1, s4);
        assert_eq!(d1, d4);
    }

    #[test]
    fn degree_from_env_defaults_to_serial() {
        // The variable is unset in the test environment unless the CI
        // matrix sets it; accept either but require a positive degree.
        assert!(degree_from_env() >= 1);
    }

    #[test]
    fn explicit_threads_outrank_every_default() {
        // Per-call explicit beats everything, including the process-wide
        // CLI default and whatever WL_THREADS the test run was given.
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), degree_from_env());
    }

    #[test]
    fn task_outputs_carry_wall_and_thread_at_any_dop() {
        for threads in [1, 4] {
            let mut threads_seen = std::collections::HashSet::new();
            for_each_ordered(
                threads,
                6,
                |i| i,
                |_, out| {
                    threads_seen.insert(out.thread);
                },
            );
            assert!(!threads_seen.is_empty());
            assert!(threads_seen.len() <= threads);
        }
    }

    #[test]
    fn coordinator_flow_adopts_parallel_task_traffic() {
        let dev = PmDevice::paper_default();
        let cols: Vec<PCollection<u64>> = (0..8)
            .map(|i| {
                PCollection::from_records_uncounted(
                    &dev,
                    LayerKind::BlockedMemory,
                    format!("c{i}"),
                    0..400u64,
                )
            })
            .collect();
        let before_dev = dev.snapshot();
        let before_flow = pmem_sim::thread_flow();
        let sums = map_ordered(4, cols.len(), |i| cols[i].reader().sum::<u64>());
        assert_eq!(sums.len(), cols.len());
        let dev_delta = dev.snapshot().since(&before_dev);
        let flow_delta = pmem_sim::thread_flow().since(&before_flow);
        // All traffic happened on workers, but the coordinator adopted it
        // at consumption time, so its flow ledger covers the device delta.
        assert_eq!(flow_delta.cl_reads, dev_delta.cl_reads);
        assert_eq!(flow_delta.cl_writes, dev_delta.cl_writes);
        assert_eq!(flow_delta.calls, dev_delta.calls);
    }

    #[test]
    fn pool_profiles_have_identical_counters_at_any_dop() {
        let profile = |threads: usize| {
            let dev = PmDevice::paper_default();
            let cols: Vec<PCollection<u64>> = (0..5)
                .map(|i| {
                    PCollection::from_records_uncounted(
                        &dev,
                        LayerKind::BlockedMemory,
                        format!("c{i}"),
                        0..300u64,
                    )
                })
                .collect();
            pmem_sim::span::begin_profile("pool");
            let _ = map_ordered(threads, cols.len(), |i| cols[i].reader().sum::<u64>());
            pmem_sim::span::end_profile().expect("profile recorded")
        };
        let p1 = profile(1);
        let p4 = profile(4);
        p1.validate().expect("serial tree sums");
        p4.validate().expect("parallel tree sums");
        assert_eq!(p1.task_count(), 5);
        assert_eq!(p4.task_count(), 5);
        assert_eq!(p1.io.cl_reads, p4.io.cl_reads);
        assert_eq!(p1.io.cl_writes, p4.io.cl_writes);
        assert_eq!(p1.io.calls, p4.io.calls);
        let pool1 = p1.find("tasks[5]").expect("phase span");
        let pool4 = p4.find("tasks[5]").expect("phase span");
        assert_eq!(pool1.children_io().cl_reads, pool4.children_io().cl_reads);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            for_each_ordered(
                4,
                8,
                |i| {
                    if i == 5 {
                        panic!("boom");
                    }
                    i
                },
                |_, _| {},
            );
        });
        assert!(result.is_err());
    }
}
