//! Runtime-driven **adaptive** segmented Grace join — the executable
//! version of the paper's §3.1 worked example.
//!
//! Unlike [`crate::join::segmented_grace_join`], which takes the number
//! of materialized partitions as a compile-time knob, this operator
//! defers *every* partition and lets the runtime decide at each access:
//! the `read-over-write` rule compares the materialization cost
//! `λ·|partition|` against the source's accumulated read cost plus one
//! reconstruction scan, and once it fires the `eager-partition` rule
//! materializes all remaining partitions in a single source scan (the
//! runtime "enforces the constraint that no input is fully scanned twice
//! to materialize its outputs", §3.1).
//!
//! At high λ the operator behaves like SegJ with `x = 0` (iterate-only);
//! at low λ it converges to Grace join after the first access; in
//! between it switches mid-flight exactly when the paper's rules say the
//! rescan penalty has been paid off.

use crate::join::common::{partition_of, BuildTable, JoinContext};
use pmem_sim::{PCollection, PmError};
use wisconsin::{Pair, Record};
use wl_runtime::{CStatus, OpCtx};

/// Joins `left ⋈ right`, letting the §3.1 runtime decide partition
/// materialization adaptively.
///
/// # Errors
/// Returns [`PmError::InsufficientMemory`] when Grace's applicability
/// condition fails (partitions would not fit a DRAM build table).
pub fn adaptive_grace_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    if !ctx.grace_applicable::<L>(left.len()) {
        return Err(PmError::InsufficientMemory {
            requirement: format!(
                "adaptive Grace join needs M > sqrt(f*|T|): M = {} records, |T| = {}",
                ctx.capacity_records::<L>(),
                left.len()
            ),
        });
    }
    let k = ctx.grace_partitions::<L>(left.len());
    let mut rt = OpCtx::new(ctx.device().lambda().max(1.0));

    // Record the Fig. 4 blueprint with actual input sizes.
    let t_buffers = left.buffers() as f64;
    let v_buffers = right.buffers() as f64;
    rt.declare("T", CStatus::Materialized, t_buffers);
    rt.declare("V", CStatus::Materialized, v_buffers);
    let t_names: Vec<String> = (0..k).map(|i| format!("T{i}")).collect();
    let v_names: Vec<String> = (0..k).map(|i| format!("V{i}")).collect();
    for n in &t_names {
        rt.declare(n, CStatus::Deferred, t_buffers / k as f64);
    }
    for n in &v_names {
        rt.declare(n, CStatus::Deferred, v_buffers / k as f64);
    }
    {
        let refs: Vec<&str> = t_names.iter().map(String::as_str).collect();
        rt.partition("T", k, &refs);
        let refs: Vec<&str> = v_names.iter().map(String::as_str).collect();
        rt.partition("V", k, &refs);
    }

    let mut t_files: Vec<Option<PCollection<L>>> = (0..k).map(|_| None).collect();
    let mut v_files: Vec<Option<PCollection<R>>> = (0..k).map(|_| None).collect();
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);

    for p in 0..k {
        // ---- Build side ----
        rt.assess(&t_names[p]);
        if rt.status(&t_names[p]) == CStatus::Materialized && t_files[p].is_none() {
            // Eager-partition: settle the fate of every remaining
            // partition now, then write all materialized ones in ONE scan.
            for name in t_names.iter().skip(p + 1) {
                rt.assess(name);
            }
            for (q, slot) in t_files.iter_mut().enumerate().skip(p) {
                if rt.status(&t_names[q]) == CStatus::Materialized {
                    *slot = Some(ctx.fresh::<L>("adpt-t"));
                }
            }
            for l in left.reader() {
                let q = partition_of(l.key(), k);
                if let Some(file) = t_files.get_mut(q).and_then(|f| f.as_mut()) {
                    if q >= p {
                        file.append(&l);
                    }
                }
            }
            rt.note_scan("T", t_buffers);
        }
        let mut table = BuildTable::new();
        match &t_files[p] {
            Some(file) => {
                for l in file.reader() {
                    table.insert(l);
                }
            }
            None => {
                // Deferred: reconstruct by re-scanning the source.
                for l in left.reader() {
                    if partition_of(l.key(), k) == p {
                        table.insert(l);
                    }
                }
                rt.note_scan("T", t_buffers);
            }
        }

        // ---- Probe side ----
        rt.assess(&v_names[p]);
        if rt.status(&v_names[p]) == CStatus::Materialized && v_files[p].is_none() {
            for name in v_names.iter().skip(p + 1) {
                rt.assess(name);
            }
            for (q, slot) in v_files.iter_mut().enumerate().skip(p) {
                if rt.status(&v_names[q]) == CStatus::Materialized {
                    *slot = Some(ctx.fresh::<R>("adpt-v"));
                }
            }
            for r in right.reader() {
                let q = partition_of(r.key(), k);
                if let Some(file) = v_files.get_mut(q).and_then(|f| f.as_mut()) {
                    if q >= p {
                        file.append(&r);
                    }
                }
            }
            rt.note_scan("V", v_buffers);
        }
        match &v_files[p] {
            Some(file) => {
                for r in file.reader() {
                    table.probe(&r, &mut out);
                }
            }
            None => {
                for r in right.reader() {
                    if partition_of(r.key(), k) == p {
                        table.probe(&r, &mut out);
                    }
                }
                rt.note_scan("V", v_buffers);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, DeviceConfig, LatencyProfile, LayerKind, PmDevice};
    use wisconsin::join_input;

    fn run(lambda: f64) -> (pmem_sim::IoStats, u64, u64, u64) {
        let dev = PmDevice::new(
            DeviceConfig::paper_default().with_latency(LatencyProfile::with_lambda(10.0, lambda)),
        );
        let w = join_input(400, 6, 31);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let inputs = left.buffers() + right.buffers();
        let pool = BufferPool::new(60 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = adaptive_grace_join(&left, &right, &ctx, "out").expect("applicable");
        (
            dev.snapshot().since(&before),
            out.len() as u64,
            w.expected_matches,
            inputs,
        )
    }

    #[test]
    fn joins_correctly_at_high_and_low_lambda() {
        for lambda in [15.0, 1.5] {
            let (_, got, want, _) = run(lambda);
            assert_eq!(got, want, "λ={lambda}");
        }
    }

    #[test]
    fn high_lambda_defers_low_lambda_materializes() {
        let (hi, _, _, inputs) = run(15.0);
        let (lo, _, _, _) = run(1.5);
        // λ=15: partitions stay deferred longer → more reads, fewer writes.
        assert!(
            hi.cl_reads > lo.cl_reads,
            "hi {} lo {}",
            hi.cl_reads,
            lo.cl_reads
        );
        assert!(hi.cl_writes < lo.cl_writes + inputs, "writes should differ");
        assert!(lo.cl_writes > hi.cl_writes);
    }

    #[test]
    fn adaptive_never_writes_more_than_grace() {
        let dev = PmDevice::paper_default();
        let w = join_input(400, 6, 31);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(60 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);

        let before = dev.snapshot();
        let _ = adaptive_grace_join(&left, &right, &ctx, "a").expect("ok");
        let adaptive = dev.snapshot().since(&before);

        let before = dev.snapshot();
        let _ = crate::join::grace_join(&left, &right, &ctx, "g").expect("ok");
        let grace = dev.snapshot().since(&before);

        assert!(
            adaptive.cl_writes <= grace.cl_writes,
            "adaptive {} vs grace {}",
            adaptive.cl_writes,
            grace.cl_writes
        );
    }
}
