//! Volcano-style physical operators.
//!
//! §3.1 describes each algorithm as "a physical operator … \[that
//! provides\] a standard iterator interface, as well as an `evaluate()`
//! method that records the control flow graph". This module supplies
//! that interface: [`PhysOperator`] is the open/next/close contract, and
//! the provided operators wrap the crate's algorithms so plans compose
//! (`scan → filter → sort → join → aggregate`) while all persistent-
//! memory traffic keeps flowing through the same counted collections.
//!
//! Blocking operators (sort, join, aggregate) materialize their result
//! on `open()` — that cost is real and counted — and then stream it.

use crate::agg::{sort_based_aggregate, GroupAgg};
use crate::join::{JoinAlgorithm, JoinContext};
use crate::sort::{SortAlgorithm, SortContext};
use pmem_sim::{BufferPool, LayerKind, PCollection, Pm, PmError, ReadCursor, RecordReader};
use wisconsin::{Pair, Record};

/// The Volcano contract: `open` prepares (and for blocking operators,
/// runs) the computation; `next` streams records; `close` releases
/// state.
pub trait PhysOperator {
    /// Record type produced.
    type Item: Record;

    /// Prepares the operator (blocking operators do their work here).
    ///
    /// # Errors
    /// Propagates algorithm applicability/parameter errors.
    fn open(&mut self) -> Result<(), PmError>;

    /// Produces the next record, or `None` when exhausted.
    fn next(&mut self) -> Option<Self::Item>;

    /// Releases operator state.
    fn close(&mut self);
}

/// Leaf operator: scans a persistent collection.
pub struct ScanOp<'a, R: Record> {
    input: &'a PCollection<R>,
    reader: Option<RecordReader<'a, R>>,
}

impl<'a, R: Record> ScanOp<'a, R> {
    /// Creates a scan over `input`.
    pub fn new(input: &'a PCollection<R>) -> Self {
        Self {
            input,
            reader: None,
        }
    }
}

impl<'a, R: Record> PhysOperator for ScanOp<'a, R> {
    type Item = R;

    fn open(&mut self) -> Result<(), PmError> {
        self.reader = Some(self.input.reader());
        Ok(())
    }

    fn next(&mut self) -> Option<R> {
        self.reader.as_mut()?.next()
    }

    fn close(&mut self) {
        self.reader = None;
    }
}

/// Streaming filter.
pub struct FilterOp<I: PhysOperator, P> {
    child: I,
    predicate: P,
}

impl<I: PhysOperator, P: FnMut(&I::Item) -> bool> FilterOp<I, P> {
    /// Filters `child` with `predicate`.
    pub fn new(child: I, predicate: P) -> Self {
        Self { child, predicate }
    }
}

impl<I: PhysOperator, P: FnMut(&I::Item) -> bool> PhysOperator for FilterOp<I, P> {
    type Item = I::Item;

    fn open(&mut self) -> Result<(), PmError> {
        self.child.open()
    }

    fn next(&mut self) -> Option<I::Item> {
        loop {
            let r = self.child.next()?;
            if (self.predicate)(&r) {
                return Some(r);
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Streaming record-to-record map: reshapes each child record (the
/// planner's chain-join lowering folds joined pairs into flat n-way
/// rows with it).
pub struct MapOp<I: PhysOperator, F> {
    child: I,
    f: F,
}

impl<I: PhysOperator, F> MapOp<I, F> {
    /// Maps `child`'s records through `f`.
    pub fn new(child: I, f: F) -> Self {
        Self { child, f }
    }
}

impl<I: PhysOperator, O: Record, F: FnMut(&I::Item) -> O> PhysOperator for MapOp<I, F> {
    type Item = O;

    fn open(&mut self) -> Result<(), PmError> {
        self.child.open()
    }

    fn next(&mut self) -> Option<O> {
        self.child.next().map(|r| (self.f)(&r))
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Blocking sort: consumes its child into a collection on `open()`,
/// sorts it with the configured algorithm, then streams the result.
pub struct SortOp<'p, I: PhysOperator> {
    child: I,
    algo: SortAlgorithm,
    dev: Pm,
    kind: LayerKind,
    pool: &'p BufferPool,
    threads: Option<usize>,
    output: Option<PCollection<I::Item>>,
    cursor: usize,
    read_cursor: ReadCursor,
}

impl<'p, I: PhysOperator> SortOp<'p, I> {
    /// Sorts `child`'s output with `algo` under the given budget.
    pub fn new(
        child: I,
        algo: SortAlgorithm,
        dev: &Pm,
        kind: LayerKind,
        pool: &'p BufferPool,
    ) -> Self {
        Self {
            child,
            algo,
            dev: dev.clone(),
            kind,
            pool,
            threads: None,
            output: None,
            cursor: 0,
            read_cursor: ReadCursor::new(),
        }
    }

    /// Overrides the degree of parallelism for the underlying sort
    /// (default: the `WL_THREADS` environment knob).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl<'p, I: PhysOperator> PhysOperator for SortOp<'p, I> {
    type Item = I::Item;

    fn open(&mut self) -> Result<(), PmError> {
        let _span = pmem_sim::span::span_with(|| format!("sort-op {}", self.algo.label()));
        self.child.open()?;
        let mut staged = PCollection::new(&self.dev, self.kind, "sort-op-input");
        while let Some(r) = self.child.next() {
            staged.append(&r);
        }
        self.child.close();
        let ctx = SortContext::new(&self.dev, self.kind, self.pool)
            .with_threads(crate::parallel::resolve_threads(self.threads));
        self.output = Some(self.algo.run(&staged, &ctx, "sort-op-output")?);
        self.cursor = 0;
        self.read_cursor = ReadCursor::new();
        // Operator span boundary = accounting flush point: device
        // snapshots taken between operators observe everything this
        // operator charged.
        pmem_sim::flush_thread_accounting();
        Ok(())
    }

    fn next(&mut self) -> Option<I::Item> {
        let out = self.output.as_ref()?;
        if self.cursor >= out.len() {
            return None;
        }
        let r = out.get_with_cursor(self.cursor, &mut self.read_cursor);
        self.cursor += 1;
        Some(r)
    }

    fn close(&mut self) {
        self.output = None;
    }
}

/// Blocking equi-join over two persistent inputs.
pub struct JoinOp<'a, 'p, L: Record, R: Record> {
    left: &'a PCollection<L>,
    right: &'a PCollection<R>,
    algo: JoinAlgorithm,
    dev: Pm,
    kind: LayerKind,
    pool: &'p BufferPool,
    threads: Option<usize>,
    output: Option<PCollection<Pair<L, R>>>,
    cursor: usize,
    read_cursor: ReadCursor,
}

impl<'a, 'p, L: Record, R: Record> JoinOp<'a, 'p, L, R> {
    /// Joins `left ⋈ right` with `algo` under the given budget.
    pub fn new(
        left: &'a PCollection<L>,
        right: &'a PCollection<R>,
        algo: JoinAlgorithm,
        dev: &Pm,
        kind: LayerKind,
        pool: &'p BufferPool,
    ) -> Self {
        Self {
            left,
            right,
            algo,
            dev: dev.clone(),
            kind,
            pool,
            threads: None,
            output: None,
            cursor: 0,
            read_cursor: ReadCursor::new(),
        }
    }

    /// Overrides the degree of parallelism for the underlying join
    /// (default: the `WL_THREADS` environment knob).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl<'a, 'p, L: Record, R: Record> PhysOperator for JoinOp<'a, 'p, L, R> {
    type Item = Pair<L, R>;

    fn open(&mut self) -> Result<(), PmError> {
        let _span = pmem_sim::span::span_with(|| format!("join-op {}", self.algo.label()));
        let ctx = JoinContext::new(&self.dev, self.kind, self.pool)
            .with_threads(crate::parallel::resolve_threads(self.threads));
        self.output = Some(
            self.algo
                .run(self.left, self.right, &ctx, "join-op-output")?,
        );
        self.cursor = 0;
        self.read_cursor = ReadCursor::new();
        pmem_sim::flush_thread_accounting();
        Ok(())
    }

    fn next(&mut self) -> Option<Pair<L, R>> {
        let out = self.output.as_ref()?;
        if self.cursor >= out.len() {
            return None;
        }
        let r = out.get_with_cursor(self.cursor, &mut self.read_cursor);
        self.cursor += 1;
        Some(r)
    }

    fn close(&mut self) {
        self.output = None;
    }
}

/// Blocking grouped aggregation (sort-based, write intensity `x`).
pub struct AggOp<'p, I: PhysOperator, V> {
    child: I,
    value_of: V,
    x: f64,
    dev: Pm,
    kind: LayerKind,
    pool: &'p BufferPool,
    output: Option<PCollection<GroupAgg>>,
    cursor: usize,
    read_cursor: ReadCursor,
}

impl<'p, I: PhysOperator, V: Fn(&I::Item) -> u64> AggOp<'p, I, V> {
    /// Aggregates `child`'s output by key with values from `value_of`.
    pub fn new(
        child: I,
        value_of: V,
        x: f64,
        dev: &Pm,
        kind: LayerKind,
        pool: &'p BufferPool,
    ) -> Self {
        Self {
            child,
            value_of,
            x,
            dev: dev.clone(),
            kind,
            pool,
            output: None,
            cursor: 0,
            read_cursor: ReadCursor::new(),
        }
    }
}

impl<'p, I: PhysOperator, V: Fn(&I::Item) -> u64 + Sync> PhysOperator for AggOp<'p, I, V> {
    type Item = GroupAgg;

    fn open(&mut self) -> Result<(), PmError> {
        let _span = pmem_sim::span::span("agg-op");
        self.child.open()?;
        let mut staged = PCollection::new(&self.dev, self.kind, "agg-op-input");
        while let Some(r) = self.child.next() {
            staged.append(&r);
        }
        self.child.close();
        let ctx = SortContext::new(&self.dev, self.kind, self.pool);
        self.output = Some(sort_based_aggregate(
            &staged,
            self.x,
            &self.value_of,
            &ctx,
            "agg-op-output",
        )?);
        self.cursor = 0;
        pmem_sim::flush_thread_accounting();
        Ok(())
    }

    fn next(&mut self) -> Option<GroupAgg> {
        let out = self.output.as_ref()?;
        if self.cursor >= out.len() {
            return None;
        }
        let g = out.get_with_cursor(self.cursor, &mut self.read_cursor);
        self.cursor += 1;
        Some(g)
    }

    fn close(&mut self) {
        self.output = None;
    }
}

/// Boxed operators delegate, so plan trees whose shape is only known at
/// run time (e.g. those the planner lowers) can compose heterogeneous
/// operator chains behind one item type.
impl<O: PhysOperator + ?Sized> PhysOperator for Box<O> {
    type Item = O::Item;

    fn open(&mut self) -> Result<(), PmError> {
        (**self).open()
    }

    fn next(&mut self) -> Option<Self::Item> {
        (**self).next()
    }

    fn close(&mut self) {
        (**self).close();
    }
}

/// A type-erased operator over records of type `R`.
pub type DynOp<'a, R> = Box<dyn PhysOperator<Item = R> + 'a>;

/// Runs `op` and materializes its output as a persistent collection
/// named `name` — the staging step blocking consumers (joins, sorts
/// over arbitrary children) use. The writes are real and counted.
///
/// # Errors
/// Propagates the operator's `open()` error.
pub fn stage<O: PhysOperator>(
    op: &mut O,
    dev: &Pm,
    kind: LayerKind,
    name: &str,
) -> Result<PCollection<O::Item>, PmError> {
    let _span = pmem_sim::span::span_with(|| format!("stage {name}"));
    op.open()?;
    let mut out = PCollection::new(dev, kind, name);
    while let Some(r) = op.next() {
        out.append(&r);
    }
    op.close();
    pmem_sim::flush_thread_accounting();
    Ok(out)
}

/// Drains an opened operator into a DRAM vector (test/driver helper).
pub fn collect<O: PhysOperator>(op: &mut O) -> Result<Vec<O::Item>, PmError> {
    op.open()?;
    let mut v = Vec::new();
    while let Some(r) = op.next() {
        v.push(r);
    }
    op.close();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::PmDevice;
    use wisconsin::{join_input, sort_input, KeyOrder, WisconsinRecord};

    #[test]
    fn scan_filter_pipeline_streams() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(100, KeyOrder::Random, 1),
        );
        let mut plan = FilterOp::new(ScanOp::new(&input), |r: &WisconsinRecord| r.key() < 10);
        let rows = collect(&mut plan).expect("streaming plan cannot fail");
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.key() < 10));
    }

    #[test]
    fn sort_operator_orders_filtered_rows() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(500, KeyOrder::Random, 2),
        );
        let pool = BufferPool::new(64 * 80);
        let plan = FilterOp::new(ScanOp::new(&input), |r: &WisconsinRecord| {
            r.key().is_multiple_of(2)
        });
        let mut plan = SortOp::new(
            plan,
            SortAlgorithm::SegS { x: 0.5 },
            &dev,
            LayerKind::BlockedMemory,
            &pool,
        );
        let rows = collect(&mut plan).expect("valid plan");
        assert_eq!(rows.len(), 250);
        assert!(rows.windows(2).all(|w| w[0].key() <= w[1].key()));
    }

    #[test]
    fn join_then_aggregate_composes() {
        // SELECT l.key, count(*), sum(r.payload) FROM T JOIN V GROUP BY key
        let dev = PmDevice::paper_default();
        let w = join_input(50, 4, 3);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(100 * 160);
        let join = JoinOp::new(
            &left,
            &right,
            JoinAlgorithm::GJ,
            &dev,
            LayerKind::BlockedMemory,
            &pool,
        );
        let mut plan = AggOp::new(
            join,
            |p: &Pair<WisconsinRecord, WisconsinRecord>| p.right.payload(),
            0.0,
            &dev,
            LayerKind::BlockedMemory,
            &pool,
        );
        let groups = collect(&mut plan).expect("valid plan");
        assert_eq!(groups.len(), 50);
        assert!(groups.iter().all(|g| g.count == 4));
        let total: u64 = groups.iter().map(|g| g.sum).sum();
        assert_eq!(total, (0..200u64).sum::<u64>());
    }

    #[test]
    fn boxed_operators_compose_and_stage_counts_writes() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(200, KeyOrder::Random, 8),
        );
        // Type-erased chain, as the planner's lowering builds them.
        let mut op: DynOp<'_, WisconsinRecord> =
            Box::new(FilterOp::new(ScanOp::new(&input), |r: &WisconsinRecord| {
                r.key() < 50
            }));
        let before = dev.snapshot();
        let staged = stage(&mut op, &dev, LayerKind::BlockedMemory, "staged").expect("stages");
        let delta = dev.snapshot().since(&before);
        assert_eq!(staged.len(), 50);
        assert_eq!(
            delta.cl_writes,
            staged.buffers(),
            "staging writes are counted"
        );
        assert_eq!(delta.cl_reads, input.buffers(), "one scan of the input");
    }

    #[test]
    fn operators_are_reopenable() {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(20, KeyOrder::Random, 4),
        );
        let mut scan = ScanOp::new(&input);
        assert_eq!(collect(&mut scan).expect("ok").len(), 20);
        assert_eq!(collect(&mut scan).expect("ok").len(), 20);
    }
}
