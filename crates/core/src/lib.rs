//! # write-limited — sorts and joins for persistent memory
//!
//! Rust reproduction of *Write-limited sorts and joins for persistent
//! memory* (Stratis D. Viglas, PVLDB 7(5), 2014): sort and join operators
//! that trade expensive persistent-memory writes for cheaper reads, their
//! cost models, and the knob optimizer built on them.
//!
//! * [`sort`] — ExMS, SegS, HybS, LaS, SelS, cycle sort (§2.1)
//! * [`join`] — NLJ, GJ, HJ, HybJ, SegJ, LaJ (§2.2)
//! * [`cost`] — Eqs. 1–11, Fig. 2 surface, knob selection (§2, §4.2.3),
//!   read/write-split predictions and candidate sets for plan enumerators
//! * [`exec`] — Volcano operators (`scan → filter → sort → join →
//!   aggregate`), boxed-operator composition, and counted staging
//! * [`parallel`] — scoped-thread worker pool that fans partition work
//!   out across cores (wall-clock scaling; simulated counts unchanged)
//! * [`stats`] — Kendall's τ for the Fig. 12 concordance experiment
//!
//! Plan-level algorithm selection lives in the `wl-planner` crate
//! (`crates/planner`), which consumes [`cost`]'s candidate sets and
//! predictions and lowers winning plans onto [`exec`].
//!
//! ```
//! use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
//! use wisconsin::{sort_input, KeyOrder};
//! use write_limited::sort::{segment_sort, SortContext};
//!
//! let dev = PmDevice::paper_default();
//! let input = PCollection::from_records_uncounted(
//!     &dev, LayerKind::BlockedMemory, "T",
//!     sort_input(10_000, KeyOrder::Random, 42));
//! let pool = BufferPool::new(500 * 80); // M = 500 records of DRAM
//! let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
//! let sorted = segment_sort(&input, 0.5, &ctx, "sorted").unwrap();
//! assert_eq!(sorted.len(), 10_000);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod agg;
pub mod cost;
pub mod exec;
pub mod join;
pub mod parallel;
pub mod pipeline;
pub mod sort;
pub mod stats;
