//! Rank statistics: Kendall's τ, used by the paper's cost-model
//! validation (Fig. 12) to measure the concordance between estimated and
//! true performance rankings.

/// Kendall's τ-b between two paired samples (ties-adjusted).
///
/// Returns a value in `[-1, 1]`: `1` is complete agreement, `-1`
/// complete disagreement, `0` independence. Returns `None` when either
/// sample has fewer than two items or is entirely tied (τ undefined).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> Option<f64> {
    use std::cmp::Ordering::Equal;
    assert_eq!(a.len(), b.len(), "samples must be paired");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i].partial_cmp(&a[j]).expect("finite values");
            let db = b[i].partial_cmp(&b[j]).expect("finite values");
            match (da, db) {
                (Equal, Equal) => {}
                (Equal, _) => ties_a += 1,
                (_, Equal) => ties_b += 1,
                (x, y) if x == y => concordant += 1,
                _ => discordant += 1,
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return None;
    }
    Some((concordant - discordant) as f64 / denom)
}

/// Converts raw scores to dense ranks (0 = smallest); ties share a rank.
pub fn ranks(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("finite values"));
    let mut out = vec![0usize; values.len()];
    let mut rank = 0usize;
    for (pos, &i) in idx.iter().enumerate() {
        if pos > 0 && values[i] > values[idx[pos - 1]] {
            rank += 1;
        }
        out[i] = rank;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_orders_give_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b).expect("defined") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_orders_give_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &b).expect("defined") + 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_swap_among_four_gives_two_thirds() {
        // τ = (C−D)/n0 with one discordant pair out of six: (5−1)/6.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 1.0, 3.0, 4.0];
        assert!((kendall_tau(&a, &b).expect("defined") - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_adjusted() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall_tau(&a, &b).expect("defined");
        assert!(tau > 0.8 && tau <= 1.0, "tau = {tau}");
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(kendall_tau(&[1.0], &[2.0]).is_none());
        assert!(kendall_tau(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn ranks_are_dense_with_ties() {
        assert_eq!(ranks(&[3.0, 1.0, 2.0, 1.0]), vec![2, 0, 1, 0]);
    }
}
