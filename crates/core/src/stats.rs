//! Statistics: Kendall's τ for the cost-model validation (Fig. 12),
//! plus the per-table statistics the planner's cardinality estimates
//! run on — a seeded HLL-style distinct-count sketch, an equi-depth
//! key histogram, and a heavy-hitter list that together replace the
//! uniform-key assumption on skewed data.

use std::collections::HashMap;

/// Number of HLL registers in a [`DistinctSketch`]: 1024 registers give
/// a relative standard error of `1.04/√1024 ≈ 3.2%`.
const SKETCH_REGISTERS: usize = 1024;

/// Number of buckets an [`EquiDepthHistogram`] aims for.
const HISTOGRAM_BUCKETS: usize = 64;

/// Maximum number of heavy hitters [`TableStatistics`] tracks.
const HEAVY_HITTERS: usize = 32;

/// A key only counts as a heavy hitter when its frequency exceeds this
/// multiple of the table's mean key frequency — uniform tables therefore
/// carry an empty list and estimate exactly as before.
const HEAVY_FACTOR: f64 = 2.0;

/// Strong 64-bit mix (splitmix64 finalizer) used to hash keys into the
/// sketch; `seed` decorrelates sketches built for different tables.
fn mix64(key: u64, seed: u64) -> u64 {
    let mut x = key ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seeded HLL-style distinct-count sketch: each key hashes into one of
/// [`SKETCH_REGISTERS`] registers, which retains the maximum
/// leading-zero rank observed. O(1) insert, O(registers) estimate.
#[derive(Clone, Debug)]
pub struct DistinctSketch {
    seed: u64,
    registers: Vec<u8>,
}

impl DistinctSketch {
    /// An empty sketch seeded for deterministic hashing.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            registers: vec![0; SKETCH_REGISTERS],
        }
    }

    /// Observes one key occurrence (duplicates are absorbed).
    pub fn insert(&mut self, key: u64) {
        let h = mix64(key, self.seed);
        // High 10 bits pick the register; the rank of the remainder's
        // leading zeros is the observation.
        let idx = (h >> (64 - 10)) as usize;
        let rest = h << 10;
        let rank = (rest.leading_zeros() as u8 + 1).min(54);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct keys observed, with the standard
    /// linear-counting correction for small cardinalities.
    pub fn estimate(&self) -> f64 {
        let m = SKETCH_REGISTERS as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2.0f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

/// One bucket of an [`EquiDepthHistogram`].
#[derive(Clone, Copy, Debug)]
struct Bucket {
    /// Largest key in the bucket (inclusive).
    max_key: u64,
    /// Number of rows in the bucket.
    rows: u64,
    /// Number of distinct keys in the bucket.
    distinct: u64,
}

/// Equi-depth key histogram: ~[`HISTOGRAM_BUCKETS`] buckets of roughly
/// equal row counts, each recording its key range, row count, and
/// distinct count. Selectivity lookups interpolate within the
/// straddling bucket.
#[derive(Clone, Debug)]
pub struct EquiDepthHistogram {
    min_key: u64,
    buckets: Vec<Bucket>,
    rows: u64,
}

impl EquiDepthHistogram {
    /// Builds the histogram from a sorted key slice. Returns `None` for
    /// an empty input.
    fn from_sorted(keys: &[u64]) -> Option<Self> {
        let (&first, &last) = (keys.first()?, keys.last()?);
        debug_assert!(first <= last, "keys must be sorted");
        let depth = (keys.len() / HISTOGRAM_BUCKETS).max(1);
        let mut buckets = Vec::new();
        let (mut rows, mut distinct) = (0u64, 0u64);
        let mut prev: Option<u64> = None;
        for (i, &k) in keys.iter().enumerate() {
            if prev != Some(k) {
                // Equal keys never straddle a bucket boundary, so a
                // point lookup of a frequent key stays exact.
                if rows as usize >= depth {
                    buckets.push(Bucket {
                        max_key: prev.unwrap_or(k),
                        rows,
                        distinct,
                    });
                    rows = 0;
                    distinct = 0;
                }
                distinct += 1;
            }
            rows += 1;
            prev = Some(k);
            if i + 1 == keys.len() {
                buckets.push(Bucket {
                    max_key: k,
                    rows,
                    distinct,
                });
            }
        }
        Some(Self {
            min_key: first,
            buckets,
            rows: keys.len() as u64,
        })
    }

    /// Estimated fraction of rows with `key < bound`.
    pub fn fraction_below(&self, bound: u64) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let mut covered = 0u64;
        let mut lo = self.min_key;
        for b in &self.buckets {
            if b.max_key < bound {
                covered += b.rows;
            } else {
                // Straddling bucket: interpolate over its key range.
                let width = (b.max_key - lo + 1) as f64;
                let part = bound.saturating_sub(lo) as f64 / width;
                return ((covered as f64 + b.rows as f64 * part.clamp(0.0, 1.0))
                    / self.rows as f64)
                    .clamp(0.0, 1.0);
            }
            lo = b.max_key + 1;
        }
        1.0
    }

    /// Estimated number of distinct keys with `key < bound`.
    pub fn distinct_below(&self, bound: u64) -> f64 {
        let mut covered = 0.0;
        let mut lo = self.min_key;
        for b in &self.buckets {
            if b.max_key < bound {
                covered += b.distinct as f64;
            } else {
                let width = (b.max_key - lo + 1) as f64;
                let part = bound.saturating_sub(lo) as f64 / width;
                return covered + b.distinct as f64 * part.clamp(0.0, 1.0);
            }
            lo = b.max_key + 1;
        }
        covered
    }

    /// Total rows the histogram covers.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

/// Per-table statistics stored in the catalog at ingest: row count, a
/// sketch-estimated distinct count, an equi-depth histogram, and the
/// exact frequencies of the heavy-hitter keys (those `≥ 2×` the mean
/// frequency). Built deterministically from the data and the seed, so
/// the same seed always yields the same statistics.
#[derive(Clone, Debug)]
pub struct TableStatistics {
    rows: f64,
    distinct: f64,
    min_key: u64,
    max_key: u64,
    histogram: Option<EquiDepthHistogram>,
    /// `(key, estimated rows with that key)`, descending by frequency.
    heavy: Vec<(u64, f64)>,
    heavy_rows: f64,
}

impl TableStatistics {
    /// Builds statistics from one pass over the table's keys (plus a
    /// sort for the histogram). Deterministic in `keys` and `seed`.
    pub fn build(keys: &[u64], seed: u64) -> Self {
        let mut sketch = DistinctSketch::new(seed);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &k in keys {
            sketch.insert(k);
            *counts.entry(k).or_insert(0) += 1;
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        let histogram = EquiDepthHistogram::from_sorted(&sorted);
        let rows = keys.len() as f64;
        let distinct = if keys.is_empty() {
            0.0
        } else {
            sketch.estimate().max(1.0)
        };
        let mean = if counts.is_empty() {
            0.0
        } else {
            rows / counts.len() as f64
        };
        let mut heavy: Vec<(u64, f64)> = counts
            .into_iter()
            .filter(|&(_, c)| c as f64 >= HEAVY_FACTOR * mean && c > 1)
            .map(|(k, c)| (k, c as f64))
            .collect();
        heavy.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        heavy.truncate(HEAVY_HITTERS);
        let heavy_rows = heavy.iter().map(|&(_, c)| c).sum();
        Self {
            rows,
            distinct,
            min_key: sorted.first().copied().unwrap_or(0),
            max_key: sorted.last().copied().unwrap_or(0),
            histogram,
            heavy,
            heavy_rows,
        }
    }

    /// Statistics for a join intermediate observed at run time: the row
    /// count is exact, the rest is estimated from the keys.
    pub fn observed(keys: &[u64], seed: u64) -> Self {
        Self::build(keys, seed)
    }

    /// Estimated row count.
    pub fn rows(&self) -> f64 {
        self.rows
    }

    /// Estimated distinct-key count.
    pub fn distinct_keys(&self) -> f64 {
        self.distinct
    }

    /// Heavy-hitter keys, most frequent first (empty on uniform data).
    pub fn heavy_keys(&self) -> Vec<u64> {
        self.heavy.iter().map(|&(k, _)| k).collect()
    }

    /// Fraction of rows covered by the heavy-hitter keys.
    pub fn heavy_cover(&self) -> f64 {
        if self.rows == 0.0 {
            0.0
        } else {
            self.heavy_rows / self.rows
        }
    }

    /// O(1)-style frequency lookup: exact for a heavy hitter, the mean
    /// residual frequency otherwise.
    pub fn frequency(&self, key: u64) -> f64 {
        for &(k, c) in &self.heavy {
            if k == key {
                return c;
            }
        }
        let resid_distinct = (self.distinct - self.heavy.len() as f64).max(1.0);
        (self.rows - self.heavy_rows).max(0.0) / resid_distinct
    }

    /// Estimated fraction of rows with `key < bound`.
    pub fn fraction_below(&self, bound: u64) -> f64 {
        if self.rows == 0.0 {
            return 0.0;
        }
        self.histogram.as_ref().map_or_else(
            || uniform_fraction_below(self.min_key, self.max_key, bound),
            |h| h.fraction_below(bound),
        )
    }

    /// Estimated fraction of rows with `key >= bound`.
    pub fn fraction_at_least(&self, bound: u64) -> f64 {
        (1.0 - self.fraction_below(bound)).clamp(0.0, 1.0)
    }

    /// Estimated number of distinct keys with `key < bound`.
    pub fn distinct_below(&self, bound: u64) -> f64 {
        match &self.histogram {
            Some(h) => h.distinct_below(bound).min(self.distinct.max(1.0)),
            None => self.distinct * uniform_fraction_below(self.min_key, self.max_key, bound),
        }
    }

    /// Conditions the statistics on `key < bound`.
    #[must_use]
    pub fn filtered_below(&self, bound: u64) -> Self {
        let frac = self.fraction_below(bound);
        let heavy: Vec<(u64, f64)> = self
            .heavy
            .iter()
            .filter(|&&(k, _)| k < bound)
            .copied()
            .collect();
        self.scaled(frac, self.distinct_below(bound), heavy, self.min_key, {
            bound.saturating_sub(1).min(self.max_key)
        })
    }

    /// Conditions the statistics on `key >= bound`.
    #[must_use]
    pub fn filtered_at_least(&self, bound: u64) -> Self {
        let frac = self.fraction_at_least(bound);
        let heavy: Vec<(u64, f64)> = self
            .heavy
            .iter()
            .filter(|&&(k, _)| k >= bound)
            .copied()
            .collect();
        let distinct = (self.distinct - self.distinct_below(bound)).max(0.0);
        self.scaled(frac, distinct, heavy, bound.max(self.min_key), self.max_key)
    }

    /// Conditions the statistics on `key % modulus == residue`.
    #[must_use]
    pub fn filtered_mod(&self, modulus: u64, residue: u64) -> Self {
        let m = modulus.max(1);
        let heavy: Vec<(u64, f64)> = self
            .heavy
            .iter()
            .filter(|&&(k, _)| k % m == residue)
            .copied()
            .collect();
        self.scaled(
            1.0 / m as f64,
            self.distinct / m as f64,
            heavy,
            self.min_key,
            self.max_key,
        )
    }

    fn scaled(&self, frac: f64, distinct: f64, heavy: Vec<(u64, f64)>, lo: u64, hi: u64) -> Self {
        let heavy_rows = heavy.iter().map(|&(_, c)| c).sum::<f64>();
        let rows = (self.rows * frac).max(heavy_rows);
        Self {
            rows,
            distinct: distinct
                .max(heavy.len() as f64)
                .max(if rows > 0.0 { 1.0 } else { 0.0 }),
            min_key: lo,
            max_key: hi,
            histogram: None,
            heavy,
            heavy_rows,
        }
    }

    /// Estimated output cardinality of an equi-join with `other`, plus
    /// the statistics of the join's output keys: heavy hitters multiply
    /// per key (`Σ f_l(k)·f_r(k)`), the residual masses join under the
    /// classic uniform `r_l·r_r / max(d_l, d_r)` estimate.
    pub fn join(&self, other: &Self) -> (f64, Self) {
        let mut keys: Vec<u64> = self.heavy.iter().map(|&(k, _)| k).collect();
        for &(k, _) in &other.heavy {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        let mut out_heavy: Vec<(u64, f64)> = Vec::new();
        let mut hot = 0.0;
        for k in keys {
            if k < self.min_key.max(other.min_key) || k > self.max_key.min(other.max_key) {
                continue;
            }
            let f = self.frequency(k) * other.frequency(k);
            if f > 0.0 {
                hot += f;
                out_heavy.push((k, f));
            }
        }
        let rd_l = (self.distinct - self.heavy.len() as f64).max(0.0);
        let rd_r = (other.distinct - other.heavy.len() as f64).max(0.0);
        let rr_l = (self.rows - self.heavy_rows).max(0.0);
        let rr_r = (other.rows - other.heavy_rows).max(0.0);
        let cold = if rd_l > 0.0 && rd_r > 0.0 {
            rr_l * rr_r / rd_l.max(rd_r)
        } else {
            0.0
        };
        let rows = hot + cold;
        out_heavy.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out_heavy.truncate(HEAVY_HITTERS);
        // Keys below twice the output's mean frequency are not heavy.
        let out_distinct = self.distinct.min(other.distinct).max(1.0);
        let mean = rows / out_distinct;
        out_heavy.retain(|&(_, f)| f >= HEAVY_FACTOR * mean);
        let heavy_rows = out_heavy.iter().map(|&(_, f)| f).sum();
        let stats = Self {
            rows,
            distinct: out_distinct,
            min_key: self.min_key.max(other.min_key),
            max_key: self.max_key.min(other.max_key),
            histogram: None,
            heavy: out_heavy,
            heavy_rows,
        };
        (rows, stats)
    }
}

/// Uniform fallback for `fraction_below` when no histogram exists.
fn uniform_fraction_below(min_key: u64, max_key: u64, bound: u64) -> f64 {
    let width = (max_key - min_key + 1) as f64;
    (bound.saturating_sub(min_key) as f64 / width).clamp(0.0, 1.0)
}

/// Kendall's τ-b between two paired samples (ties-adjusted).
///
/// Returns a value in `[-1, 1]`: `1` is complete agreement, `-1`
/// complete disagreement, `0` independence. Returns `None` when either
/// sample has fewer than two items or is entirely tied (τ undefined).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> Option<f64> {
    use std::cmp::Ordering::Equal;
    assert_eq!(a.len(), b.len(), "samples must be paired");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i].partial_cmp(&a[j]).expect("finite values");
            let db = b[i].partial_cmp(&b[j]).expect("finite values");
            match (da, db) {
                (Equal, Equal) => {}
                (Equal, _) => ties_a += 1,
                (_, Equal) => ties_b += 1,
                (x, y) if x == y => concordant += 1,
                _ => discordant += 1,
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return None;
    }
    Some((concordant - discordant) as f64 / denom)
}

/// Converts raw scores to dense ranks (0 = smallest); ties share a rank.
pub fn ranks(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("finite values"));
    let mut out = vec![0usize; values.len()];
    let mut rank = 0usize;
    for (pos, &i) in idx.iter().enumerate() {
        if pos > 0 && values[i] > values[idx[pos - 1]] {
            rank += 1;
        }
        out[i] = rank;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_orders_give_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b).expect("defined") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_orders_give_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &b).expect("defined") + 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_swap_among_four_gives_two_thirds() {
        // τ = (C−D)/n0 with one discordant pair out of six: (5−1)/6.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 1.0, 3.0, 4.0];
        assert!((kendall_tau(&a, &b).expect("defined") - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_adjusted() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall_tau(&a, &b).expect("defined");
        assert!(tau > 0.8 && tau <= 1.0, "tau = {tau}");
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(kendall_tau(&[1.0], &[2.0]).is_none());
        assert!(kendall_tau(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn ranks_are_dense_with_ties() {
        assert_eq!(ranks(&[3.0, 1.0, 2.0, 1.0]), vec![2, 0, 1, 0]);
    }
}

#[cfg(test)]
mod table_statistics_tests {
    use super::*;
    use wisconsin::Record;

    fn zipf_keys(n: u64, domain: u64, theta: f64, seed: u64) -> Vec<u64> {
        wisconsin::join_input_skewed(domain, n, theta, seed)
            .right
            .iter()
            .map(Record::key)
            .collect()
    }

    #[test]
    fn sketch_estimates_distinct_counts_within_error_bounds() {
        // Property loop: across seeds and cardinalities, the HLL-style
        // estimate stays within 10% of the truth (3σ of the 3.2% RSE).
        for seed in 0..10u64 {
            for &n in &[100u64, 1_000, 10_000, 50_000] {
                let mut sketch = DistinctSketch::new(seed);
                for k in 0..n {
                    sketch.insert(k);
                    sketch.insert(k); // duplicates must be absorbed
                }
                let est = sketch.estimate();
                let err = (est - n as f64).abs() / n as f64;
                assert!(err < 0.10, "seed {seed}, n {n}: estimate {est}, err {err}");
            }
        }
    }

    #[test]
    fn histogram_selectivity_tracks_uniform_and_zipf_truth() {
        for seed in 0..5u64 {
            // Uniform: every key in [0, 2000) appears twice.
            let uniform: Vec<u64> = (0..4000u64).map(|i| i % 2000).collect();
            // Zipf(1.2) over a 500-key domain.
            let zipf = zipf_keys(6000, 500, 1.2, seed);
            for keys in [&uniform, &zipf] {
                let stats = TableStatistics::build(keys, seed);
                for &bound in &[1u64, 50, 250, 499, 1000, 1999] {
                    let truth =
                        keys.iter().filter(|&&k| k < bound).count() as f64 / keys.len() as f64;
                    let est = stats.fraction_below(bound);
                    assert!(
                        (est - truth).abs() < 0.05,
                        "seed {seed}, bound {bound}: est {est}, truth {truth}"
                    );
                    let est_ge = stats.fraction_at_least(bound);
                    assert!((est_ge - (1.0 - truth)).abs() < 0.05);
                }
            }
        }
    }

    #[test]
    fn heavy_hitters_are_empty_on_uniform_and_exact_on_zipf() {
        let uniform: Vec<u64> = (0..4000u64).map(|i| i % 1000).collect();
        let stats = TableStatistics::build(&uniform, 7);
        assert!(
            stats.heavy_keys().is_empty(),
            "uniform data must not report heavy hitters"
        );

        let zipf = zipf_keys(8000, 1000, 1.2, 3);
        let stats = TableStatistics::build(&zipf, 7);
        let heavy = stats.heavy_keys();
        assert!(!heavy.is_empty(), "Zipf(1.2) has heavy hitters");
        // The reported frequency of each heavy hitter is exact.
        for &k in &heavy {
            let truth = zipf.iter().filter(|&&x| x == k).count() as f64;
            assert!((stats.frequency(k) - truth).abs() < 1e-9, "key {k}");
        }
        assert!(stats.heavy_cover() > 0.2, "cover {}", stats.heavy_cover());
    }

    #[test]
    fn join_estimate_beats_uniform_by_an_order_of_magnitude_on_skew() {
        // Two Zipf-skewed sides over one domain: the true join blows up
        // on the hot keys; the uniform estimate misses that entirely.
        for seed in 0..5u64 {
            let a = zipf_keys(4000, 400, 1.2, seed);
            let b = zipf_keys(4000, 400, 1.2, seed ^ 0xa5a5);
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for &k in &a {
                *counts.entry(k).or_insert(0) += 1;
            }
            let truth: f64 = b
                .iter()
                .map(|k| counts.get(k).copied().unwrap_or(0) as f64)
                .sum();
            let sa = TableStatistics::build(&a, 1);
            let sb = TableStatistics::build(&b, 2);
            let (est, _) = sa.join(&sb);
            let uniform = a.len() as f64 * b.len() as f64 / 400.0;
            let err = (est / truth).max(truth / est);
            let uniform_err = (uniform / truth).max(truth / uniform);
            assert!(
                err < 2.0,
                "seed {seed}: est {est}, truth {truth} (err {err})"
            );
            assert!(
                err < uniform_err,
                "seed {seed}: stats err {err} vs uniform err {uniform_err}"
            );
        }
    }

    #[test]
    fn join_estimate_matches_uniform_formula_on_uniform_inputs() {
        let a: Vec<u64> = (0..1000u64).collect();
        let b: Vec<u64> = (0..5000u64).map(|i| i % 1000).collect();
        let sa = TableStatistics::build(&a, 1);
        let sb = TableStatistics::build(&b, 2);
        let (est, out) = sa.join(&sb);
        // Truth is 5000; both the stats and the uniform formula should
        // land within sketch error of it.
        assert!(
            (est - 5000.0).abs() / 5000.0 < 0.15,
            "join estimate {est} far from 5000"
        );
        assert!(out.heavy_keys().is_empty(), "uniform join output");
    }

    #[test]
    fn filters_condition_the_statistics() {
        let zipf = zipf_keys(8000, 1000, 1.0, 9);
        let stats = TableStatistics::build(&zipf, 4);
        let below = stats.filtered_below(100);
        let truth = zipf.iter().filter(|&&k| k < 100).count() as f64;
        assert!(
            (below.rows() - truth).abs() / truth < 0.1,
            "rows {} vs {truth}",
            below.rows()
        );
        assert!(below.heavy_keys().iter().all(|&k| k < 100));
        let modded = stats.filtered_mod(4, 1);
        assert!(modded.heavy_keys().iter().all(|&k| k % 4 == 1));
        assert!(modded.rows() <= stats.rows() / 2.0);
        let ge = stats.filtered_at_least(500);
        let truth_ge = zipf.iter().filter(|&&k| k >= 500).count() as f64;
        assert!(
            (ge.rows() - truth_ge).abs() <= 0.1 * zipf.len() as f64,
            "rows {} vs {truth_ge}",
            ge.rows()
        );
    }

    #[test]
    fn statistics_are_deterministic_in_data_and_seed() {
        let zipf = zipf_keys(4000, 300, 1.1, 12);
        let a = TableStatistics::build(&zipf, 5);
        let b = TableStatistics::build(&zipf, 5);
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.distinct_keys(), b.distinct_keys());
        assert_eq!(a.heavy_keys(), b.heavy_keys());
        assert_eq!(a.fraction_below(57), b.fraction_below(57));
    }

    #[test]
    fn empty_tables_are_harmless() {
        let stats = TableStatistics::build(&[], 3);
        assert_eq!(stats.rows(), 0.0);
        assert_eq!(stats.distinct_keys(), 0.0);
        assert!(stats.heavy_keys().is_empty());
        assert_eq!(stats.fraction_below(10), 0.0);
        let (rows, _) = stats.join(&stats);
        assert_eq!(rows, 0.0);
    }
}
