//! NLJ — block nested-loops join.
//!
//! The read-intensive extreme of the design space: load a DRAM block of
//! the (smaller) left input, scan the whole right input against it,
//! repeat. Writes only the output — the paper uses NLJ as the minimal-
//! write reference the write-limited joins approach (§4.1.2). Cost:
//! `r·(|T| + ⌈|T|/M⌉·|V|)` plus output writes.

//! The outer blocks are independent — each builds its own DRAM table
//! and scans the whole right input — so they fan out across the
//! context's worker pool ([`crate::parallel`]), with each block's
//! matches buffered and flushed in block order: identical output order
//! and counters at any DoP. (The *simulated* DRAM budget still models
//! one block of `M`; concurrent workers hold their blocks in harness
//! memory, exactly as the Grace executor holds its partition tables.)

use super::common::{BuildTable, JoinContext};
use crate::parallel;
use pmem_sim::{thread_stats, IoStats, PCollection, RecordBuffer};
use wisconsin::{Pair, Record};

/// Per-block ledger profile of one block nested-loops run: each outer
/// block's build reads, probe-scan reads, and output writes, identical
/// at any degree of parallelism.
#[derive(Clone, Debug, Default)]
pub struct NljProfile {
    /// Traffic per outer block, in block order.
    pub per_block: Vec<IoStats>,
}

/// Joins `left ⋈ right` on key equality with block nested loops.
pub fn nested_loops_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> PCollection<Pair<L, R>> {
    nested_loops_join_profiled(left, right, ctx, output_name).0
}

/// [`nested_loops_join`] with the per-block ledger profile alongside
/// the result.
pub fn nested_loops_join_profiled<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> (PCollection<Pair<L, R>>, NljProfile) {
    let _span = pmem_sim::span::span("alg nlj");
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let block = ctx.build_capacity::<L>();
    let blocks = left.len().div_ceil(block);
    let mut profile = NljProfile::default();

    parallel::for_each_ordered(
        ctx.threads(),
        blocks,
        |b| {
            let start = b * block;
            let end = (start + block).min(left.len());
            let mut table = BuildTable::new();
            for l in left.range_reader(start, end) {
                table.insert(l);
            }
            let mut buf = RecordBuffer::new();
            for r in right.reader() {
                table.probe_buffered(&r, &mut buf);
            }
            buf
        },
        |_, task| {
            let before = thread_stats();
            out.append_buffer(&task.value);
            let flush = thread_stats().since(&before);
            profile.per_block.push(task.stats.plus(&flush));
        },
    );
    (out, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{join_input, WisconsinRecord};

    fn stage(
        t: u64,
        fanout: u64,
        m_records: usize,
    ) -> (
        pmem_sim::Pm,
        PCollection<WisconsinRecord>,
        PCollection<WisconsinRecord>,
        usize,
    ) {
        let dev = PmDevice::paper_default();
        let w = join_input(t, fanout, 17);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        (dev, left, right, m_records)
    }

    #[test]
    fn finds_every_match() {
        let (dev, left, right, m) = stage(200, 10, 50);
        let pool = BufferPool::new(m * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = nested_loops_join(&left, &right, &ctx, "out");
        assert_eq!(out.len(), 2000);
    }

    #[test]
    fn writes_only_the_output() {
        let (dev, left, right, m) = stage(100, 5, 30);
        let pool = BufferPool::new(m * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = nested_loops_join(&left, &right, &ctx, "out");
        let d = dev.snapshot().since(&before);
        assert_eq!(d.cl_writes, out.buffers());
    }

    #[test]
    fn read_volume_matches_block_count() {
        let (dev, left, right, _) = stage(100, 10, 25);
        // 25 records DRAM, f=1.2 → block ≈ 20 records → 5 blocks.
        let pool = BufferPool::new(25 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let _ = nested_loops_join(&left, &right, &ctx, "out");
        let d = dev.snapshot().since(&before);
        let blocks = 100usize.div_ceil(ctx.build_capacity::<WisconsinRecord>()) as u64;
        let expected = left.buffers() + blocks * right.buffers();
        // Block boundaries may split cachelines, allow ±blocks slack.
        assert!(
            d.cl_reads >= expected && d.cl_reads <= expected + blocks,
            "reads {} vs expected {expected}",
            d.cl_reads
        );
    }

    #[test]
    fn disjoint_inputs_produce_empty_output() {
        let dev = PmDevice::paper_default();
        let left = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            (0..50).map(WisconsinRecord::from_key),
        );
        let right = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "V",
            (100..150).map(WisconsinRecord::from_key),
        );
        let pool = BufferPool::new(20 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = nested_loops_join(&left, &right, &ctx, "out");
        assert!(out.is_empty());
    }

    #[test]
    fn empty_left_or_right_is_empty() {
        let dev = PmDevice::paper_default();
        let empty: PCollection<WisconsinRecord> =
            PCollection::new(&dev, LayerKind::BlockedMemory, "E");
        let some = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "S",
            (0..10).map(WisconsinRecord::from_key),
        );
        let pool = BufferPool::new(8000);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(nested_loops_join(&empty, &some, &ctx, "o1").is_empty());
        assert!(nested_loops_join(&some, &empty, &ctx, "o2").is_empty());
    }
}
