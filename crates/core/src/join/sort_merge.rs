//! SMJ — sort-merge join, with the sort phase's write intensity exposed.
//!
//! Not part of the paper's §2.2 line-up, but the natural companion: both
//! inputs are sorted with [`crate::sort::segment_sort`] at intensity
//! `x`, then merge-joined in one co-scan. Because segment sort's
//! selection stream defers materialization, `x = 0` yields a join whose
//! only writes are the two sorted outputs — and when callers can consume
//! the join result as a stream, those too could be pipelined away. The
//! duplicate-handling co-scan buffers one key group of the (smaller)
//! left input in DRAM.

use super::common::JoinContext;
use crate::sort::{segment_sort, SortContext};
use pmem_sim::{PCollection, PmError};
use wisconsin::{Pair, Record};

/// Joins `left ⋈ right` by sorting both inputs at write intensity `x`
/// and merge-joining the results.
///
/// # Errors
/// Returns [`PmError::InvalidParameter`] unless `0 ≤ x ≤ 1`.
pub fn sort_merge_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    x: f64,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    let sort_ctx = SortContext::new(ctx.device(), ctx.kind(), ctx.pool());
    let sorted_left = segment_sort(left, x, &sort_ctx, "smj-left")?;
    let sorted_right = segment_sort(right, x, &sort_ctx, "smj-right")?;

    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let mut li = sorted_left.reader();
    let mut ri = sorted_right.reader();
    let mut l = li.next();
    let mut r = ri.next();
    // One left key-group buffered in DRAM for duplicate cross products.
    let mut group: Vec<L> = Vec::new();
    let mut group_key: Option<u64> = None;

    while let Some(rv) = r {
        let rk = rv.key();
        // Advance the left side until its head is ≥ the right key,
        // buffering the group equal to it.
        if group_key != Some(rk) {
            while let Some(lv) = l {
                if lv.key() < rk {
                    l = li.next();
                } else {
                    break;
                }
            }
            group.clear();
            group_key = Some(rk);
            while let Some(lv) = l {
                if lv.key() == rk {
                    group.push(lv);
                    l = li.next();
                } else {
                    break;
                }
            }
        }
        for lv in &group {
            out.append(&Pair {
                left: *lv,
                right: rv,
            });
        }
        r = ri.next();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::common::expected_match_count;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{join_input, WisconsinRecord};

    fn run(x: f64) -> (pmem_sim::IoStats, u64, u64) {
        let dev = PmDevice::paper_default();
        let w = join_input(300, 6, 71);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(60 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = sort_merge_join(&left, &right, x, &ctx, "out").expect("valid x");
        (
            dev.snapshot().since(&before),
            out.len() as u64,
            w.expected_matches,
        )
    }

    #[test]
    fn finds_every_match_at_all_intensities() {
        for x in [0.0, 0.5, 1.0] {
            let (_, got, want) = run(x);
            assert_eq!(got, want, "x={x}");
        }
    }

    #[test]
    fn lower_intensity_trades_writes_for_reads() {
        let (lo, _, _) = run(0.0);
        let (hi, _, _) = run(1.0);
        assert!(lo.cl_writes < hi.cl_writes);
        assert!(lo.cl_reads > hi.cl_reads);
    }

    #[test]
    fn duplicates_on_both_sides_cross_product() {
        let dev = PmDevice::paper_default();
        let left = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            (0..9u64).map(|i| WisconsinRecord::from_key(i % 3).with_payload(i)),
        );
        let right = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "V",
            (0..6u64).map(|i| WisconsinRecord::from_key(i % 3).with_payload(100 + i)),
        );
        let pool = BufferPool::new(40 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let want = expected_match_count(&left, &right);
        let out = sort_merge_join(&left, &right, 0.5, &ctx, "out").expect("valid");
        assert_eq!(out.len() as u64, want); // 3 keys × 3 left × 2 right = 18
        assert_eq!(out.len(), 18);
    }

    #[test]
    fn disjoint_and_empty_inputs() {
        let dev = PmDevice::paper_default();
        let a = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "A",
            (0..10).map(WisconsinRecord::from_key),
        );
        let b = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "B",
            (100..110).map(WisconsinRecord::from_key),
        );
        let empty: PCollection<WisconsinRecord> =
            PCollection::new(&dev, LayerKind::BlockedMemory, "E");
        let pool = BufferPool::new(8000);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(sort_merge_join(&a, &b, 0.5, &ctx, "o1")
            .expect("ok")
            .is_empty());
        assert!(sort_merge_join(&empty, &a, 0.5, &ctx, "o2")
            .expect("ok")
            .is_empty());
        assert!(sort_merge_join(&a, &empty, 0.5, &ctx, "o3")
            .expect("ok")
            .is_empty());
    }
}
