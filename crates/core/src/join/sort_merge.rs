//! SMJ — sort-merge join, with the sort phase's write intensity exposed.
//!
//! Not part of the paper's §2.2 line-up, but the natural companion: both
//! inputs are sorted with [`crate::sort::segment_sort`] at intensity
//! `x`, then merge-joined in one co-scan. Because segment sort's
//! selection stream defers materialization, `x = 0` yields a join whose
//! only writes are the two sorted outputs — and when callers can consume
//! the join result as a stream, those too could be pipelined away. The
//! duplicate-handling co-scan buffers one key group of the (smaller)
//! left input in DRAM.

//! The merge phase range-partitions the key space across the context's
//! worker pool: splitter keys sampled from both sorted inputs carve
//! them into aligned segments (a key group can never straddle a
//! splitter), each worker co-scans its segment pair, and the
//! coordinator concatenates the match buffers in splitter order — the
//! same rows, order, and counters as the serial co-scan at any DoP.

use super::common::JoinContext;
use crate::parallel;
use crate::sort::common::{
    key_range_cuts, sample_keys, splitters_from_samples, MERGE_SEGMENT_RECORDS,
};
use crate::sort::{segment_sort, SortContext};
use pmem_sim::{PCollection, PmError, RecordBuffer};
use wisconsin::{Pair, Record};

/// Joins `left ⋈ right` by sorting both inputs at write intensity `x`
/// and merge-joining the results.
///
/// # Errors
/// Returns [`PmError::InvalidParameter`] unless `0 ≤ x ≤ 1`.
pub fn sort_merge_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    x: f64,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    let _span = pmem_sim::span::span("alg smj");
    let sort_ctx =
        SortContext::new(ctx.device(), ctx.kind(), ctx.pool()).with_threads(ctx.threads());
    let sorted_left = segment_sort(left, x, &sort_ctx, "smj-left")?;
    let sorted_right = segment_sort(right, x, &sort_ctx, "smj-right")?;

    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let total = sorted_left.len() + sorted_right.len();
    let segments = total.div_ceil(MERGE_SEGMENT_RECORDS).max(1);
    if segments <= 1 || sorted_left.is_empty() || sorted_right.is_empty() {
        let mut buf = RecordBuffer::new();
        co_scan(sorted_left.reader(), sorted_right.reader(), &mut buf);
        out.append_buffer(&buf);
        return Ok(out);
    }

    // The segment grid depends only on the merged sizes — never on the
    // DoP — so the sampled splitters, boundary searches, and counters
    // are identical at any degree of parallelism.
    let splitters = {
        let mut sample = sample_keys(&sorted_left, segments);
        sample.extend(sample_keys(&sorted_right, segments));
        splitters_from_samples(sample, segments)
    };
    let cuts_l = key_range_cuts(&sorted_left, &splitters);
    let cuts_r = key_range_cuts(&sorted_right, &splitters);
    parallel::for_each_ordered(
        ctx.threads(),
        segments,
        |seg| {
            let mut buf = RecordBuffer::new();
            co_scan(
                sorted_left.range_reader(cuts_l[seg], cuts_l[seg + 1]),
                sorted_right.range_reader(cuts_r[seg], cuts_r[seg + 1]),
                &mut buf,
            );
            buf
        },
        |_, task| out.append_buffer(&task.value),
    );
    Ok(out)
}

/// The duplicate-handling co-scan of two sorted streams, buffering one
/// left key group in DRAM for the cross products.
fn co_scan<L: Record, R: Record>(
    mut li: impl Iterator<Item = L>,
    mut ri: impl Iterator<Item = R>,
    out: &mut RecordBuffer<Pair<L, R>>,
) {
    let mut l = li.next();
    let mut r = ri.next();
    let mut group: Vec<L> = Vec::new();
    let mut group_key: Option<u64> = None;

    while let Some(rv) = r {
        let rk = rv.key();
        // Advance the left side until its head is ≥ the right key,
        // buffering the group equal to it.
        if group_key != Some(rk) {
            while let Some(lv) = l {
                if lv.key() < rk {
                    l = li.next();
                } else {
                    break;
                }
            }
            group.clear();
            group_key = Some(rk);
            while let Some(lv) = l {
                if lv.key() == rk {
                    group.push(lv);
                    l = li.next();
                } else {
                    break;
                }
            }
        }
        for lv in &group {
            out.push(&Pair {
                left: *lv,
                right: rv,
            });
        }
        r = ri.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::common::expected_match_count;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{join_input, WisconsinRecord};

    fn run(x: f64) -> (pmem_sim::IoStats, u64, u64) {
        let dev = PmDevice::paper_default();
        let w = join_input(300, 6, 71);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(60 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = sort_merge_join(&left, &right, x, &ctx, "out").expect("valid x");
        (
            dev.snapshot().since(&before),
            out.len() as u64,
            w.expected_matches,
        )
    }

    #[test]
    fn finds_every_match_at_all_intensities() {
        for x in [0.0, 0.5, 1.0] {
            let (_, got, want) = run(x);
            assert_eq!(got, want, "x={x}");
        }
    }

    #[test]
    fn lower_intensity_trades_writes_for_reads() {
        let (lo, _, _) = run(0.0);
        let (hi, _, _) = run(1.0);
        assert!(lo.cl_writes < hi.cl_writes);
        assert!(lo.cl_reads > hi.cl_reads);
    }

    #[test]
    fn duplicates_on_both_sides_cross_product() {
        let dev = PmDevice::paper_default();
        let left = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            (0..9u64).map(|i| WisconsinRecord::from_key(i % 3).with_payload(i)),
        );
        let right = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "V",
            (0..6u64).map(|i| WisconsinRecord::from_key(i % 3).with_payload(100 + i)),
        );
        let pool = BufferPool::new(40 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let want = expected_match_count(&left, &right);
        let out = sort_merge_join(&left, &right, 0.5, &ctx, "out").expect("valid");
        assert_eq!(out.len() as u64, want); // 3 keys × 3 left × 2 right = 18
        assert_eq!(out.len(), 18);
    }

    #[test]
    fn disjoint_and_empty_inputs() {
        let dev = PmDevice::paper_default();
        let a = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "A",
            (0..10).map(WisconsinRecord::from_key),
        );
        let b = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "B",
            (100..110).map(WisconsinRecord::from_key),
        );
        let empty: PCollection<WisconsinRecord> =
            PCollection::new(&dev, LayerKind::BlockedMemory, "E");
        let pool = BufferPool::new(8000);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(sort_merge_join(&a, &b, 0.5, &ctx, "o1")
            .expect("ok")
            .is_empty());
        assert!(sort_merge_join(&empty, &a, 0.5, &ctx, "o2")
            .expect("ok")
            .is_empty());
        assert!(sort_merge_join(&a, &empty, 0.5, &ctx, "o3")
            .expect("ok")
            .is_empty());
    }
}
