//! SegJ — segmented Grace join (§2.2.2).
//!
//! Operates at partition granularity: of the `k = ⌈f·|T|/M⌉` logical
//! partitions, only the first `x` are **materialized** (offloaded during
//! an initial scan of both inputs and joined Grace-style); the remaining
//! `k − x` partitions are processed by iterating over both *original*
//! inputs once per partition, building the partition's table on the fly.
//!
//! Cost: Eq. 9 — `r(|T|+|V|) + r·x·(1+λ)·(|T|+|V|)/k + r·(k−x)·(|T|+|V|)`
//! (plus output). Eq. 10 gives the `x` below which SegJ beats plain
//! Grace join; regardless, `x` is the knob that sets the algorithm's
//! write intensity.

use super::common::{partition_of, BuildTable, JoinContext};
use crate::parallel;
use pmem_sim::{PCollection, PmError, RecordBuffer};
use wisconsin::{Pair, Record};

/// Joins `left ⋈ right`, materializing `materialized` of the `k`
/// partitions (pass a fraction via [`segmented_grace_join_frac`]).
///
/// # Errors
/// Returns [`PmError::InsufficientMemory`] when Grace is inapplicable,
/// or [`PmError::InvalidParameter`] when `materialized > k`.
pub fn segmented_grace_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    materialized: usize,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    let _span = pmem_sim::span::span("alg segmented-grace");
    if !ctx.grace_applicable::<L>(left.len()) {
        return Err(PmError::InsufficientMemory {
            requirement: format!(
                "segmented Grace join needs M > sqrt(f*|T|): M = {} records, |T| = {}",
                ctx.capacity_records::<L>(),
                left.len()
            ),
        });
    }
    let k = ctx.grace_partitions::<L>(left.len());
    if materialized > k {
        return Err(PmError::InvalidParameter {
            name: "materialized",
            message: format!("cannot materialize {materialized} of {k} partitions"),
        });
    }
    let x = materialized;
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);

    // Initial scan: offload partitions 0..x of both inputs. Skipped
    // entirely at x = 0 (nothing to write; the iterate-only strategy
    // reads the originals anyway).
    let mut t_parts: Vec<PCollection<L>> = Vec::new();
    let mut v_parts: Vec<PCollection<R>> = Vec::new();
    if x > 0 {
        t_parts = (0..x).map(|_| ctx.fresh::<L>("segj-t")).collect();
        for l in left.reader() {
            let p = partition_of(l.key(), k);
            if p < x {
                t_parts[p].append(&l);
            }
        }
        v_parts = (0..x).map(|_| ctx.fresh::<R>("segj-v")).collect();
        for r in right.reader() {
            let p = partition_of(r.key(), k);
            if p < x {
                v_parts[p].append(&r);
            }
        }
    }

    // Grace phase over the materialized partitions; the pairs are
    // independent, so they fan out across the worker pool with the
    // output flushed in partition order (DoP-invariant counts + order).
    parallel::for_each_ordered(
        ctx.threads(),
        x,
        |p| {
            let (tp, vp) = (&t_parts[p], &v_parts[p]);
            let mut buf = RecordBuffer::new();
            if tp.is_empty() || vp.is_empty() {
                return buf;
            }
            let mut table = BuildTable::new();
            for l in tp.reader() {
                table.insert(l);
            }
            for r in vp.reader() {
                table.probe_buffered(&r, &mut buf);
            }
            buf
        },
        |_, task| out.append_buffer(&task.value),
    );

    // Iterate phase: one pass over both originals per remaining
    // partition. Every pass re-reads the (immutable) originals through
    // its own readers, exactly as the serial loop does, so the passes
    // parallelize without changing a single counter.
    parallel::for_each_ordered(
        ctx.threads(),
        k - x,
        |i| {
            let p = x + i;
            let mut table = BuildTable::new();
            for l in left.reader() {
                if partition_of(l.key(), k) == p {
                    table.insert(l);
                }
            }
            let mut buf = RecordBuffer::new();
            for r in right.reader() {
                if partition_of(r.key(), k) == p {
                    table.probe_buffered(&r, &mut buf);
                }
            }
            buf
        },
        |_, task| out.append_buffer(&task.value),
    );
    Ok(out)
}

/// Fraction-parameterized wrapper: materializes `round(frac · k)`
/// partitions — the form the paper's write-intensity sweeps use.
///
/// # Errors
/// Same as [`segmented_grace_join`], plus `frac ∉ [0, 1]`.
pub fn segmented_grace_join_frac<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    frac: f64,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    if !(0.0..=1.0).contains(&frac) {
        return Err(PmError::InvalidParameter {
            name: "frac",
            message: format!("write intensity must be in [0,1], got {frac}"),
        });
    }
    let k = ctx.grace_partitions::<L>(left.len());
    let x = ((k as f64) * frac).round() as usize;
    segmented_grace_join(left, right, x.min(k), ctx, output_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{join_input, WisconsinRecord};

    fn stage(
        m_records: usize,
    ) -> (
        pmem_sim::Pm,
        PCollection<WisconsinRecord>,
        PCollection<WisconsinRecord>,
        u64,
        usize,
    ) {
        let dev = PmDevice::paper_default();
        let w = join_input(300, 8, 23);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        (dev, left, right, w.expected_matches, m_records)
    }

    #[test]
    fn finds_every_match_at_all_materialization_levels() {
        let (dev, left, right, want, m) = stage(60);
        let pool = BufferPool::new(m * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let k = ctx.grace_partitions::<WisconsinRecord>(left.len());
        for x in [0, 1, k / 2, k] {
            let out = segmented_grace_join(&left, &right, x, &ctx, "out").expect("applicable");
            assert_eq!(out.len() as u64, want, "x={x} of k={k}");
        }
    }

    #[test]
    fn fewer_materialized_partitions_means_fewer_writes_more_reads() {
        let (dev, left, right, _, m) = stage(60);
        let pool = BufferPool::new(m * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let k = ctx.grace_partitions::<WisconsinRecord>(left.len());
        assert!(k >= 4, "need several partitions, got {k}");

        let before = dev.snapshot();
        let _ = segmented_grace_join(&left, &right, 1, &ctx, "lo").expect("ok");
        let lo = dev.snapshot().since(&before);

        let before = dev.snapshot();
        let _ = segmented_grace_join(&left, &right, k, &ctx, "hi").expect("ok");
        let hi = dev.snapshot().since(&before);

        assert!(
            lo.cl_writes < hi.cl_writes,
            "lo {} hi {}",
            lo.cl_writes,
            hi.cl_writes
        );
        assert!(lo.cl_reads > hi.cl_reads);
    }

    #[test]
    fn full_materialization_matches_grace_cost() {
        let (dev, left, right, want, m) = stage(60);
        let pool = BufferPool::new(m * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let k = ctx.grace_partitions::<WisconsinRecord>(left.len());

        let before = dev.snapshot();
        let seg = segmented_grace_join(&left, &right, k, &ctx, "seg").expect("ok");
        let seg_io = dev.snapshot().since(&before);

        let before = dev.snapshot();
        let gj = super::super::grace::grace_join(&left, &right, &ctx, "gj").expect("ok");
        let gj_io = dev.snapshot().since(&before);

        assert_eq!(seg.len() as u64, want);
        assert_eq!(gj.len() as u64, want);
        let dr = (seg_io.cl_reads as f64 / gj_io.cl_reads as f64 - 1.0).abs();
        let dw = (seg_io.cl_writes as f64 / gj_io.cl_writes as f64 - 1.0).abs();
        assert!(
            dr < 0.05 && dw < 0.05,
            "x=k should cost like Grace (Δr {dr}, Δw {dw})"
        );
    }

    #[test]
    fn frac_wrapper_validates_domain() {
        let (dev, left, right, _, m) = stage(60);
        let pool = BufferPool::new(m * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(segmented_grace_join_frac(&left, &right, 1.5, &ctx, "o").is_err());
        assert!(segmented_grace_join_frac(&left, &right, 0.5, &ctx, "o").is_ok());
    }
}
