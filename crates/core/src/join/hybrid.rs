//! HybJ — hybrid Grace/nested-loops join (§2.2.1).
//!
//! The computation is split into a write-inducing phase based on Grace
//! join and a read-only phase based on nested loops, steered by two write
//! intensities: fraction `x` of the (smaller) left input `T` and fraction
//! `y` of the right input `V` are partitioned and processed Grace-style;
//! the remainders are joined by block nested loops. The complete result
//! is the union of three disjoint partial joins:
//!
//! 1. `Tx ⋈ Vy` — classic Grace over the partitioned prefixes;
//! 2. `Tx ⋈ V₁₋y` — **piggybacked** onto (1): while partition `p`'s build
//!    table is resident, the unpartitioned remainder of `V` is scanned
//!    against it (one scan per partition — the `(x·|T|/M)·(1−y)·|V|`
//!    term of Eq. 6);
//! 3. `T₁₋x ⋈ V` — block nested loops over the unpartitioned remainder
//!    of `T` against all of `V`.
//!
//! Cost model: Eq. 6; the saddle-point analysis (Eqs. 7–8) and the Fig. 2
//! heatmaps that guide the choice of `(x, y)` live in
//! [`crate::cost::join_costs`].

use super::common::{partition_of, BuildTable, JoinContext};
use crate::parallel;
use pmem_sim::{PCollection, PmError, RecordBuffer};
use wisconsin::{Pair, Record};

/// Joins `left ⋈ right` with write intensities `x` (left) and `y`
/// (right).
///
/// # Errors
/// Returns [`PmError::InvalidParameter`] unless `x, y ∈ [0, 1]`, and
/// [`PmError::InsufficientMemory`] when the partitioned prefix would not
/// satisfy Grace's applicability condition.
pub fn hybrid_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    x: f64,
    y: f64,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    let _span = pmem_sim::span::span("alg hybrid-join");
    for (name, v) in [("x", x), ("y", y)] {
        if !(0.0..=1.0).contains(&v) {
            return Err(PmError::InvalidParameter {
                name: if name == "x" { "x" } else { "y" },
                message: format!("write intensity must be in [0,1], got {v}"),
            });
        }
    }
    let t_len = left.len();
    let v_len = right.len();
    let tx_end = ((t_len as f64) * x).round() as usize;
    let vy_end = ((v_len as f64) * y).round() as usize;

    // Partition count sized so each Tx partition fits a DRAM build table
    // ("each partition has size approximately equal to M", §2.2.1).
    let build_cap = ctx.build_capacity::<L>();
    let k = tx_end.div_ceil(build_cap).max(1);
    if tx_end > 0 && !ctx.grace_applicable::<L>(tx_end) && k > 1 {
        return Err(PmError::InsufficientMemory {
            requirement: format!(
                "hybrid join's Grace phase needs M > sqrt(f*x*|T|): M = {} records, x|T| = {tx_end}",
                ctx.capacity_records::<L>(),
            ),
        });
    }

    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);

    // Phase 1: partition the prefixes.
    let mut t_parts: Vec<PCollection<L>> = (0..k).map(|_| ctx.fresh::<L>("hybj-t")).collect();
    for l in left.range_reader(0, tx_end) {
        t_parts[partition_of(l.key(), k)].append(&l);
    }
    let mut v_parts: Vec<PCollection<R>> = (0..k).map(|_| ctx.fresh::<R>("hybj-v")).collect();
    for r in right.range_reader(0, vy_end) {
        v_parts[partition_of(r.key(), k)].append(&r);
    }

    // Phase 2: per-partition Grace join with the V₁₋y scan piggybacked.
    // Partitions are sized for the DRAM budget under the f = 1.2
    // blow-up, but hash partitioning cannot split duplicates of a single
    // key: heavily skewed build keys can overflow the budget — the
    // classic hash-join limitation (the paper's f factor covers ordinary
    // imbalance only). The spilled partitions are independent, so they
    // fan out across the worker pool; each pass already used its own
    // range reader over V₁₋y serially, so the counters are unchanged.
    parallel::for_each_ordered(
        ctx.threads(),
        k,
        |p| {
            let (tp, vp) = (&t_parts[p], &v_parts[p]);
            let mut buf = RecordBuffer::new();
            if tp.is_empty() {
                return buf;
            }
            let mut table = BuildTable::new();
            for l in tp.reader() {
                table.insert(l);
            }
            for r in vp.reader() {
                table.probe_buffered(&r, &mut buf); // Tx ⋈ Vy
            }
            for r in right.range_reader(vy_end, v_len) {
                table.probe_buffered(&r, &mut buf); // Tx ⋈ V₁₋y (piggyback)
            }
            buf
        },
        |_, task| out.append_buffer(&task.value),
    );

    // Phase 3: T₁₋x ⋈ V by block nested loops. The chunk grid is fixed
    // by the DRAM budget (one build table per chunk), so the chunks are
    // independent read-only passes over V — parallel like the spilled
    // partitions above.
    let nl_chunks = (t_len - tx_end).div_ceil(build_cap);
    parallel::for_each_ordered(
        ctx.threads(),
        nl_chunks,
        |c| {
            let start = tx_end + c * build_cap;
            let end = (start + build_cap).min(t_len);
            let mut table = BuildTable::new();
            for l in left.range_reader(start, end) {
                table.insert(l);
            }
            let mut buf = RecordBuffer::new();
            for r in right.reader() {
                table.probe_buffered(&r, &mut buf);
            }
            buf
        },
        |_, task| out.append_buffer(&task.value),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::join_input;

    struct Run {
        stats: pmem_sim::IoStats,
        got: u64,
        want: u64,
        out_buffers: u64,
    }

    fn run(x: f64, y: f64, m_records: usize) -> Run {
        let dev = PmDevice::paper_default();
        let w = join_input(300, 8, 12);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(m_records * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = hybrid_join(&left, &right, x, y, &ctx, "out").expect("valid");
        Run {
            stats: dev.snapshot().since(&before),
            got: out.len() as u64,
            want: w.expected_matches,
            out_buffers: out.buffers(),
        }
    }

    #[test]
    fn finds_every_match_across_the_intensity_grid() {
        for x in [0.0, 0.3, 0.7, 1.0] {
            for y in [0.0, 0.5, 1.0] {
                let r = run(x, y, 60);
                assert_eq!(r.got, r.want, "x={x}, y={y}");
            }
        }
    }

    #[test]
    fn zero_intensities_degenerate_to_nested_loops_writes() {
        let r = run(0.0, 0.0, 60);
        assert_eq!(r.got, r.want);
        // Nothing is partitioned: writes = output only.
        assert_eq!(r.stats.cl_writes, r.out_buffers);
    }

    #[test]
    fn full_intensities_match_grace_write_profile() {
        let hyb = run(1.0, 1.0, 60);
        // x=y=1: both inputs written once as partitions + output.
        let nl = run(0.0, 0.0, 60);
        assert!(hyb.stats.cl_writes > nl.stats.cl_writes);
        assert!(hyb.stats.cl_reads < nl.stats.cl_reads);
    }

    #[test]
    fn higher_left_intensity_cuts_right_rescans() {
        // Write intensity over the left input dictates the number of full
        // passes over the larger right input (§4.2.1).
        let lo = run(0.2, 0.5, 60);
        let hi = run(0.8, 0.5, 60);
        assert!(
            hi.stats.cl_reads < lo.stats.cl_reads,
            "x=0.8 reads {} should be below x=0.2 reads {}",
            hi.stats.cl_reads,
            lo.stats.cl_reads
        );
    }

    #[test]
    fn rejects_invalid_intensities() {
        let dev = PmDevice::paper_default();
        let w = join_input(50, 2, 1);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(8000);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(hybrid_join(&left, &right, 1.5, 0.5, &ctx, "o").is_err());
        assert!(hybrid_join(&left, &right, 0.5, -0.5, &ctx, "o").is_err());
    }
}
