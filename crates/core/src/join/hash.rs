//! HJ — standard (iterative) hash join, as described in §2.2.3.
//!
//! With `k = ⌈f·|T|/M⌉` partitions, iteration `i` scans both (remaining)
//! inputs: partition-`i` build records go to an in-DRAM hash table and
//! partition-`i` probe records probe it, while **every other record is
//! offloaded back to persistent memory** to form the next iteration's
//! inputs. The repeated rewriting of the shrinking remainder is exactly
//! the write profile of Table 1 — `(m−i)·(M+M_T)` writes in iteration
//! `i` — and what lazy hash join eliminates.

//! Both scans of each iteration fan out over fixed-size input morsels
//! across the context's worker pool ([`crate::parallel`]): workers
//! classify and buffer their morsel's records, and the coordinator
//! applies the buffers in morsel order, so the offload collections, the
//! output order, and every simulated counter are identical at any
//! degree of parallelism. The iterations themselves stay sequential —
//! each consumes the previous one's offload — which is exactly the
//! dependency the cost model's per-pass split captures.

use super::common::{
    build_pass_morsels, partition_of, probe_pass_morsels, BuildTable, IterJoinProfile, JoinContext,
    ScanAction,
};
use pmem_sim::PCollection;
use wisconsin::{Pair, Record};

/// Joins `left ⋈ right` with the iterative standard hash join.
pub fn hash_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> PCollection<Pair<L, R>> {
    hash_join_profiled(left, right, ctx, output_name).0
}

/// [`hash_join`] with the per-pass, per-morsel ledger profile alongside
/// the result — what the speedup harness and critical-path analyses
/// consume.
pub fn hash_join_profiled<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> (PCollection<Pair<L, R>>, IterJoinProfile) {
    let _span = pmem_sim::span::span("alg hash-join");
    let k = ctx.grace_partitions::<L>(left.len());
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let mut profile = IterJoinProfile::default();

    // Owned shrinking copies after the first iteration.
    let mut t_cur: Option<PCollection<L>> = None;
    let mut v_cur: Option<PCollection<R>> = None;

    for i in 0..k {
        let last = i + 1 == k;
        let mut table = BuildTable::new();
        let mut t_next = (!last).then(|| ctx.fresh::<L>("hj-t"));

        {
            let t_src: &PCollection<L> = t_cur.as_ref().unwrap_or(left);
            let build = build_pass_morsels(
                t_src,
                ctx,
                |l| {
                    if partition_of(l.key(), k) == i {
                        ScanAction::Keep
                    } else if last {
                        ScanAction::Skip
                    } else {
                        ScanAction::Offload // offload: pays a write now
                    }
                },
                &mut table,
                t_next.as_mut(),
            );
            profile.per_build_morsel.push(build);
        }

        let mut v_next = (!last).then(|| ctx.fresh::<R>("hj-v"));
        {
            let v_src: &PCollection<R> = v_cur.as_ref().unwrap_or(right);
            let probe = probe_pass_morsels(
                v_src,
                ctx,
                |r| {
                    if partition_of(r.key(), k) == i {
                        ScanAction::Keep
                    } else if last {
                        ScanAction::Skip
                    } else {
                        ScanAction::Offload
                    }
                },
                &table,
                &mut out,
                v_next.as_mut(),
            );
            profile.per_probe_morsel.push(probe);
        }

        t_cur = t_next;
        v_cur = v_next;
    }
    (out, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{join_input, WisconsinRecord};

    #[test]
    fn finds_every_match() {
        let dev = PmDevice::paper_default();
        let w = join_input(300, 10, 6);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(60 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = hash_join(&left, &right, &ctx, "out");
        assert_eq!(out.len() as u64, w.expected_matches);
    }

    #[test]
    fn rewrites_shrinking_remainder_like_table_one() {
        let dev = PmDevice::paper_default();
        let w = join_input(400, 4, 7);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let inputs = (left.buffers() + right.buffers()) as f64;
        let pool = BufferPool::new(100 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let k = ctx.grace_partitions::<WisconsinRecord>(left.len()) as f64;
        assert!(k >= 4.0, "want several iterations, got k={k}");

        let before = dev.snapshot();
        let out = hash_join(&left, &right, &ctx, "out");
        let d = dev.snapshot().since(&before);

        // Table 1: total writes ≈ Σ_{i=1..k-1} (k−i)/k ·(|T|+|V|)
        //        = (k−1)/2 · (|T|+|V|), plus the output.
        let expected = (k - 1.0) / 2.0 * inputs + out.buffers() as f64;
        let ratio = d.cl_writes as f64 / expected;
        assert!(
            (0.85..1.15).contains(&ratio),
            "writes {} vs model {expected} (ratio {ratio})",
            d.cl_writes
        );
    }

    #[test]
    fn single_partition_degenerates_to_in_memory_join() {
        let dev = PmDevice::paper_default();
        let w = join_input(50, 3, 2);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(100 * 80); // all of T fits
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = hash_join(&left, &right, &ctx, "out");
        let d = dev.snapshot().since(&before);
        assert_eq!(out.len(), 150);
        // No offloading: writes are exactly the output.
        assert_eq!(d.cl_writes, out.buffers());
    }
}
