//! LaJ — lazy hash join (§2.2.3).
//!
//! The lazy variant of [`super::hash::hash_join`]: when a scanned record
//! does not belong to the partition being processed it is **not** written
//! back; the algorithm pays the penalty of rescanning dead records in
//! later iterations instead. Savings (writes avoided) and penalty (extra
//! reads) progress as in Table 1; once the cumulative penalty overtakes
//! the savings the remainder is materialized — piggybacked on the scan
//! that is already running — and the algorithm reverts to being lazy.
//!
//! ### Materialization point (Eq. 11, corrected)
//!
//! The paper states the threshold as `n = ⌊k/(λ+1)⌋`, but its own
//! derivation starts from `n·r > (k−n)·λ·r`, whose solution is
//! `n > k·λ/(λ+1)` — the same `λ/(λ+1)` factor as the lazy sort's Eq. 5.
//! (`⌊k/(λ+1)⌋` would make a *higher* write/read ratio materialize
//! *earlier*, i.e., write more when writes are more expensive, which
//! contradicts the algorithm's premise.) We implement the corrected form
//! and note the discrepancy in EXPERIMENTS.md.

//! Like the standard hash join, each pass's two scans fan out over
//! fixed-size input morsels ([`crate::parallel`]); buffers are applied
//! in morsel order on the coordinator, so the piggybacked
//! materializations, the output order, and the counters are identical
//! at any degree of parallelism.

use super::common::{
    build_pass_morsels, partition_of, probe_pass_morsels, BuildTable, IterJoinProfile, JoinContext,
    ScanAction,
};
use pmem_sim::PCollection;
use wisconsin::{Pair, Record};

/// The corrected Eq. 11 threshold: lazy iterations tolerated before the
/// remaining `k` partitions are worth materializing.
pub fn lazy_materialization_iterations(k_remaining: usize, lambda: f64) -> usize {
    ((k_remaining as f64) * lambda / (lambda + 1.0)).floor() as usize
}

/// Joins `left ⋈ right` with the lazy hash join.
pub fn lazy_hash_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> PCollection<Pair<L, R>> {
    lazy_hash_join_profiled(left, right, ctx, output_name).0
}

/// [`lazy_hash_join`] with the per-pass, per-morsel ledger profile
/// alongside the result.
pub fn lazy_hash_join_profiled<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> (PCollection<Pair<L, R>>, IterJoinProfile) {
    let _span = pmem_sim::span::span("alg lazy-join");
    let k = ctx.grace_partitions::<L>(left.len());
    let lambda = ctx.device().lambda();
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let mut profile = IterJoinProfile::default();

    // Current sources: the originals, then materialized remainders.
    let mut t_cur: Option<PCollection<L>> = None;
    let mut v_cur: Option<PCollection<R>> = None;
    let mut since_mat = 0usize; // lazy iterations since the last materialization
    let mut threshold = lazy_materialization_iterations(k, lambda).max(1);

    for i in 0..k {
        let remaining_after = k - i - 1;
        since_mat += 1;
        // Materialize when the penalty has overtaken the savings and
        // there is still enough left to be worth writing.
        let materialize = since_mat >= threshold && remaining_after > 1;
        let mut table = BuildTable::new();
        let mut t_next = materialize.then(|| ctx.fresh::<L>("laj-t"));

        // p == i: this pass's partition. p > i: piggybacked
        // materialization (when one is running). p < i: dead record —
        // the rescan penalty, no write.
        let classify = |p: usize| {
            if p == i {
                ScanAction::Keep
            } else if p > i && materialize {
                ScanAction::Offload
            } else {
                ScanAction::Skip
            }
        };

        {
            let t_src: &PCollection<L> = t_cur.as_ref().unwrap_or(left);
            let build = build_pass_morsels(
                t_src,
                ctx,
                |l| classify(partition_of(l.key(), k)),
                &mut table,
                t_next.as_mut(),
            );
            profile.per_build_morsel.push(build);
        }

        let mut v_next = materialize.then(|| ctx.fresh::<R>("laj-v"));
        {
            let v_src: &PCollection<R> = v_cur.as_ref().unwrap_or(right);
            let probe = probe_pass_morsels(
                v_src,
                ctx,
                |r| classify(partition_of(r.key(), k)),
                &table,
                &mut out,
                v_next.as_mut(),
            );
            profile.per_probe_morsel.push(probe);
        }

        if materialize {
            t_cur = t_next;
            v_cur = v_next;
            since_mat = 0;
            threshold = lazy_materialization_iterations(remaining_after, lambda).max(1);
        }
    }
    (out, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, DeviceConfig, LatencyProfile, LayerKind, PmDevice};
    use wisconsin::join_input;

    fn run_with_lambda(lambda: f64, m_records: usize) -> (pmem_sim::IoStats, usize, u64) {
        let dev = PmDevice::new(
            DeviceConfig::paper_default().with_latency(LatencyProfile::with_lambda(10.0, lambda)),
        );
        let w = join_input(400, 5, 8);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(m_records * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = lazy_hash_join(&left, &right, &ctx, "out");
        (dev.snapshot().since(&before), out.len(), w.expected_matches)
    }

    #[test]
    fn finds_every_match() {
        let (_, got, want) = run_with_lambda(15.0, 60);
        assert_eq!(got as u64, want);
    }

    #[test]
    fn writes_far_fewer_than_standard_hash_join() {
        let dev = PmDevice::paper_default();
        let w = join_input(400, 5, 8);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(60 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);

        let before = dev.snapshot();
        let _ = lazy_hash_join(&left, &right, &ctx, "lazy-out");
        let lazy = dev.snapshot().since(&before);

        let before = dev.snapshot();
        let _ = super::super::hash::hash_join(&left, &right, &ctx, "hj-out");
        let standard = dev.snapshot().since(&before);

        assert!(
            (lazy.cl_writes as f64) < 0.5 * standard.cl_writes as f64,
            "lazy writes {} vs standard {}",
            lazy.cl_writes,
            standard.cl_writes
        );
        assert!(lazy.cl_reads > standard.cl_reads);
    }

    #[test]
    fn low_lambda_materializes_and_cuts_reads() {
        let (high, _, _) = run_with_lambda(15.0, 60);
        let (low, _, _) = run_with_lambda(1.5, 60);
        assert!(
            low.cl_reads < high.cl_reads,
            "λ=1.5 reads {} should be below λ=15 reads {}",
            low.cl_reads,
            high.cl_reads
        );
        assert!(low.cl_writes > high.cl_writes);
    }

    #[test]
    fn threshold_follows_corrected_eq11() {
        // k=16, λ=15: ⌊16·15/16⌋ = 15 (materialize almost never);
        // k=16, λ=1: ⌊16/2⌋ = 8 (materialize halfway).
        assert_eq!(lazy_materialization_iterations(16, 15.0), 15);
        assert_eq!(lazy_materialization_iterations(16, 1.0), 8);
        assert_eq!(lazy_materialization_iterations(3, 15.0), 2);
    }

    #[test]
    fn single_partition_needs_no_laziness() {
        let (stats, got, want) = run_with_lambda(15.0, 1000);
        assert_eq!(got as u64, want);
        // Everything fits: one scan of each input, writes = output only.
        assert!(stats.cl_reads > 0);
    }
}
