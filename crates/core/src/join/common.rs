//! Shared join machinery: join context, hash partitioning, and in-memory
//! build/probe tables.

use crate::parallel;
use pmem_sim::{thread_stats, BufferPool, IoStats, LayerKind, PCollection, Pm, RecordBuffer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use wisconsin::{Pair, Record};

/// Hash-table blow-up factor `f`: "a hash table for a partition is 20%
/// larger than the partition itself" (§2.2.1).
pub const HASH_TABLE_FACTOR: f64 = 1.2;

/// Execution context shared by every join operator.
///
/// The context is `Sync`, so the partition-parallel executors can share
/// it across a scoped worker pool; `threads` is the degree of
/// parallelism they fan out to (default: `WL_THREADS` or serial).
#[derive(Debug)]
pub struct JoinContext<'p> {
    dev: Pm,
    kind: LayerKind,
    pool: &'p BufferPool,
    next_id: AtomicU64,
    threads: usize,
}

impl<'p> JoinContext<'p> {
    /// Creates a context writing intermediates/output through `kind`.
    pub fn new(dev: &Pm, kind: LayerKind, pool: &'p BufferPool) -> Self {
        Self {
            dev: dev.clone(),
            kind,
            pool,
            next_id: AtomicU64::new(0),
            threads: crate::parallel::degree_from_env(),
        }
    }

    /// Overrides the degree of parallelism for partitioned algorithms.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Degree of parallelism the partitioned algorithms fan out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Device handle.
    pub fn device(&self) -> &Pm {
        &self.dev
    }

    /// Persistence layer for intermediates and output.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// DRAM budget.
    pub fn pool(&self) -> &'p BufferPool {
        self.pool
    }

    /// How many `R` records fit in DRAM (the paper's `M` in records).
    pub fn capacity_records<R: Record>(&self) -> usize {
        (self.pool.budget() / R::SIZE).max(1)
    }

    /// Build-side records that fit in DRAM once the `f = 1.2` hash-table
    /// blow-up is paid.
    pub fn build_capacity<R: Record>(&self) -> usize {
        ((self.pool.budget() as f64 / HASH_TABLE_FACTOR) as usize / R::SIZE).max(1)
    }

    /// Grace-join partition count for a build side of `t_records`:
    /// `k = ⌈f·|T| / M⌉`, at least one.
    pub fn grace_partitions<R: Record>(&self, t_records: usize) -> usize {
        let cap = self.build_capacity::<R>();
        t_records.div_ceil(cap).max(1)
    }

    /// Whether Grace join is applicable: `M > √(f·|T|)` in buffer units
    /// (§2.2.1) — equivalently, the partition count must not exceed the
    /// fan-out the budget can drive.
    pub fn grace_applicable<R: Record>(&self, t_records: usize) -> bool {
        let m = self.capacity_records::<R>() as f64;
        m > (HASH_TABLE_FACTOR * t_records as f64).sqrt()
    }

    /// Allocates a fresh unique collection name. Names are handed out on
    /// the coordinating thread before workers spawn, so they stay
    /// deterministic at any degree of parallelism.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        format!("{prefix}-{id}")
    }

    /// Allocates a fresh uniquely-named collection.
    pub fn fresh<R: Record>(&self, prefix: &str) -> PCollection<R> {
        PCollection::new(&self.dev, self.kind, self.fresh_name(prefix))
    }
}

/// Partition hash: a strong 64-bit mix so modulo assignment is balanced
/// even on sequential keys.
#[inline]
pub fn partition_of(key: u64, partitions: usize) -> usize {
    let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % partitions as u64) as usize
}

/// An in-DRAM build table: key → records with that key.
#[derive(Debug)]
pub struct BuildTable<L: Record> {
    map: HashMap<u64, Vec<L>>,
    len: usize,
}

impl<L: Record> Default for BuildTable<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: Record> BuildTable<L> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
            len: 0,
        }
    }

    /// Inserts one build-side record.
    pub fn insert(&mut self, record: L) {
        self.map.entry(record.key()).or_default().push(record);
        self.len += 1;
    }

    /// Number of records in the table.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no records were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears the table, retaining allocations for reuse.
    pub fn clear(&mut self) {
        self.map.clear();
        self.len = 0;
    }

    /// Probes with `right`, appending one output pair per match.
    pub fn probe<R: Record>(&self, right: &R, out: &mut PCollection<Pair<L, R>>) {
        if let Some(matches) = self.map.get(&right.key()) {
            for l in matches {
                out.append(&Pair {
                    left: *l,
                    right: *right,
                });
            }
        }
    }

    /// Probes with `right`, serializing one pair per match into a DRAM
    /// buffer — the parallel executors' probe path: workers buffer their
    /// partition's matches and the coordinator flushes the buffers into
    /// the shared output collection in partition order.
    pub fn probe_buffered<R: Record>(&self, right: &R, out: &mut RecordBuffer<Pair<L, R>>) {
        if let Some(matches) = self.map.get(&right.key()) {
            for l in matches {
                out.push(&Pair {
                    left: *l,
                    right: *right,
                });
            }
        }
    }

    /// Number of matches `right` would produce, without writing output.
    pub fn match_count<R: Record>(&self, right: &R) -> usize {
        self.map.get(&right.key()).map_or(0, |v| v.len())
    }
}

/// What one pass of an iterative join does with a scanned record.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ScanAction {
    /// The record belongs to the pass's partition: build or probe it.
    Keep,
    /// Offload it to the next pass's input.
    Offload,
    /// Neither (a dead record in a lazy pass, or the last pass).
    Skip,
}

/// Per-pass ledger profile of an iterative (standard or lazy) hash
/// join: for every pass, the traffic of its independent input morsels.
/// Build and probe scans of one pass run one after the other; the
/// morsels within each scan fan out. Every entry is identical at any
/// degree of parallelism — the speedup harness schedules them onto DoP
/// workers for the deterministic critical-path estimate.
#[derive(Clone, Debug, Default)]
pub struct IterJoinProfile {
    /// Per pass, the build-side scan's per-morsel traffic.
    pub per_build_morsel: Vec<Vec<IoStats>>,
    /// Per pass, the probe-side scan's per-morsel traffic.
    pub per_probe_morsel: Vec<Vec<IoStats>>,
}

/// Morselized build-side pass scan: fans the scan of `src` out over
/// fixed-size morsels; kept records land in `table` and offloaded ones
/// in `next`, both applied on the coordinating thread in morsel order —
/// so the table's insertion order, the offload collection's record
/// order, and every charged counter are identical to the serial scan at
/// any DoP. Returns the per-morsel traffic (scan reads plus the
/// morsel's share of the offload writes).
pub(crate) fn build_pass_morsels<L: Record>(
    src: &PCollection<L>,
    ctx: &JoinContext<'_>,
    classify: impl Fn(&L) -> ScanAction + Sync,
    table: &mut BuildTable<L>,
    mut next: Option<&mut PCollection<L>>,
) -> Vec<IoStats> {
    let morsels = src
        .len()
        .div_ceil(super::grace::PARTITION_MORSEL_RECORDS)
        .max(1);
    let mut stats = Vec::with_capacity(morsels);
    parallel::for_each_ordered(
        ctx.threads(),
        morsels,
        |m| {
            let start = m * super::grace::PARTITION_MORSEL_RECORDS;
            let end = (start + super::grace::PARTITION_MORSEL_RECORDS).min(src.len());
            let mut keep: Vec<L> = Vec::new();
            let mut offload = RecordBuffer::new();
            for l in src.range_reader(start, end) {
                match classify(&l) {
                    ScanAction::Keep => keep.push(l),
                    ScanAction::Offload => offload.push(&l),
                    ScanAction::Skip => {}
                }
            }
            (keep, offload)
        },
        |_, task| {
            let before = thread_stats();
            let (keep, offload) = task.value;
            for l in keep {
                table.insert(l);
            }
            if let Some(next) = next.as_deref_mut() {
                next.append_buffer(&offload);
            }
            let flush = thread_stats().since(&before);
            stats.push(task.stats.plus(&flush));
        },
    );
    stats
}

/// Morselized probe-side pass scan, the counterpart of
/// [`build_pass_morsels`]: workers probe the shared (read-only) `table`
/// and buffer their matches and offloads; the coordinator flushes both
/// in morsel order, so output order, offload order, and counters are
/// DoP-invariant.
pub(crate) fn probe_pass_morsels<L: Record, R: Record>(
    src: &PCollection<R>,
    ctx: &JoinContext<'_>,
    classify: impl Fn(&R) -> ScanAction + Sync,
    table: &BuildTable<L>,
    out: &mut PCollection<Pair<L, R>>,
    mut next: Option<&mut PCollection<R>>,
) -> Vec<IoStats> {
    let morsels = src
        .len()
        .div_ceil(super::grace::PARTITION_MORSEL_RECORDS)
        .max(1);
    let mut stats = Vec::with_capacity(morsels);
    parallel::for_each_ordered(
        ctx.threads(),
        morsels,
        |m| {
            let start = m * super::grace::PARTITION_MORSEL_RECORDS;
            let end = (start + super::grace::PARTITION_MORSEL_RECORDS).min(src.len());
            let mut matches = RecordBuffer::new();
            let mut offload = RecordBuffer::new();
            for r in src.range_reader(start, end) {
                match classify(&r) {
                    ScanAction::Keep => table.probe_buffered(&r, &mut matches),
                    ScanAction::Offload => offload.push(&r),
                    ScanAction::Skip => {}
                }
            }
            (matches, offload)
        },
        |_, task| {
            let before = thread_stats();
            let (matches, offload) = task.value;
            out.append_buffer(&matches);
            if let Some(next) = next.as_deref_mut() {
                next.append_buffer(&offload);
            }
            let flush = thread_stats().since(&before);
            stats.push(task.stats.plus(&flush));
        },
    );
    stats
}

/// Reference in-memory join used to verify operator outputs in tests:
/// returns the number of matching pairs.
pub fn expected_match_count<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
) -> u64 {
    let _pause = left.device().metrics().pause();
    let mut table: HashMap<u64, u64> = HashMap::new();
    for l in left.reader() {
        *table.entry(l.key()).or_insert(0) += 1;
    }
    right
        .reader()
        .map(|r| table.get(&r.key()).copied().unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, PmDevice};
    use wisconsin::WisconsinRecord;

    #[test]
    fn partition_of_is_balanced() {
        let k = 8;
        let mut counts = vec![0usize; k];
        for key in 0..8000u64 {
            counts[partition_of(key, k)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "partition skew: {counts:?}");
        }
    }

    #[test]
    fn partition_of_is_deterministic_and_in_range() {
        for key in [0u64, 1, u64::MAX, 12345] {
            let p = partition_of(key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(key, 7));
        }
    }

    #[test]
    fn build_table_probes_all_duplicates() {
        let dev = PmDevice::paper_default();
        let mut table = BuildTable::<WisconsinRecord>::new();
        table.insert(WisconsinRecord::from_key(5).with_payload(1));
        table.insert(WisconsinRecord::from_key(5).with_payload(2));
        table.insert(WisconsinRecord::from_key(9));
        let mut out = PCollection::new(&dev, LayerKind::BlockedMemory, "out");
        table.probe(&WisconsinRecord::from_key(5), &mut out);
        assert_eq!(out.len(), 2);
        table.probe(&WisconsinRecord::from_key(4), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(table.match_count(&WisconsinRecord::from_key(9)), 1);
    }

    #[test]
    fn grace_partition_count_scales_inversely_with_memory() {
        let dev = PmDevice::paper_default();
        let small = BufferPool::new(100 * 80);
        let big = BufferPool::new(1000 * 80);
        let ctx_small = JoinContext::new(&dev, LayerKind::BlockedMemory, &small);
        let ctx_big = JoinContext::new(&dev, LayerKind::BlockedMemory, &big);
        let ks = ctx_small.grace_partitions::<WisconsinRecord>(10_000);
        let kb = ctx_big.grace_partitions::<WisconsinRecord>(10_000);
        assert!(ks > kb);
        assert!(kb >= 1);
    }

    #[test]
    fn grace_applicability_bound() {
        let dev = PmDevice::paper_default();
        let pool = BufferPool::new(100 * 80); // M = 100 records
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        // √(1.2·8000) ≈ 98 < 100 → applicable.
        assert!(ctx.grace_applicable::<WisconsinRecord>(8000));
        // √(1.2·9000) ≈ 104 > 100 → not applicable.
        assert!(!ctx.grace_applicable::<WisconsinRecord>(9000));
    }
}
