//! GJ — Grace join, the symmetric-I/O partitioned baseline.
//!
//! Phase 1 hash-partitions both inputs into `k = ⌈f·|T|/M⌉` partition
//! pairs on persistent memory; phase 2 joins each pair with an in-DRAM
//! build/probe. Cost `r·(λ+2)·(|T|+|V|)` plus output writes: each input
//! is read twice and written once (§2.2.2 uses this as the reference).
//!
//! Both phases scale across the context's worker pool
//! ([`crate::parallel`]): partitioning fans out over fixed-size input
//! morsels, the join phase over partition pairs. The morsel grid and the
//! output flush order are independent of the degree of parallelism, so
//! the simulated counters and the output record order are identical at
//! any DoP — parallelism buys wall-clock time only.

use super::common::{partition_of, BuildTable, JoinContext};
use crate::parallel;
use pmem_sim::{IoStats, PCollection, PmError, RecordBuffer};
use wisconsin::{Pair, Record};

/// Records per partitioning morsel. Inputs at or below this size are
/// partitioned exactly as the serial reference implementation does (one
/// collection per partition); larger inputs split into a fixed grid of
/// morsels so phase 1 can fan out. The grid depends only on the input
/// size — never on the degree of parallelism — which keeps the counted
/// traffic DoP-invariant.
pub const PARTITION_MORSEL_RECORDS: usize = 8192;

/// A hash-partitioned input: for each of the `k` partitions, the
/// per-morsel sub-collections holding its records in input order.
#[derive(Debug)]
pub struct PartitionedInput<R: Record> {
    /// `parts[p][m]`: partition `p`'s records from morsel `m`.
    parts: Vec<Vec<PCollection<R>>>,
}

impl<R: Record> PartitionedInput<R> {
    /// Assembles a partitioned input from per-partition, per-morsel
    /// sub-collections (`parts[p][m]`) — for operators that interleave
    /// partitioning with other routing work (e.g. the guided join's
    /// hot/cold split) but reuse the shared partition-pair join phase.
    pub(crate) fn from_parts(parts: Vec<Vec<PCollection<R>>>) -> Self {
        Self { parts }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Records in partition `p`.
    pub fn len(&self, p: usize) -> usize {
        self.parts[p].iter().map(PCollection::len).sum()
    }

    /// Streams partition `p`'s records in input order, charging the same
    /// reads a scan of a single per-partition collection would (plus at
    /// most one boundary cacheline per morsel).
    pub fn records(&self, p: usize) -> impl Iterator<Item = R> + '_ {
        self.parts[p].iter().flat_map(|c| c.reader())
    }
}

/// Partitions `input` into `k` collections by key hash — the serial
/// reference path, which inputs of at most one morsel route through
/// (keeping the two partitioners from drifting apart on the common
/// case).
pub fn partition_input<R: Record>(
    input: &PCollection<R>,
    k: usize,
    ctx: &JoinContext<'_>,
    prefix: &str,
) -> Vec<PCollection<R>> {
    let mut parts: Vec<PCollection<R>> = (0..k).map(|_| ctx.fresh::<R>(prefix)).collect();
    for r in input.reader() {
        parts[partition_of(r.key(), k)].append(&r);
    }
    parts
}

/// Partitions `input` into `k` partitions over the fixed morsel grid,
/// fanning the scan out across the context's worker pool.
pub fn partition_input_morsels<R: Record>(
    input: &PCollection<R>,
    k: usize,
    ctx: &JoinContext<'_>,
    prefix: &str,
) -> PartitionedInput<R> {
    partition_input_morsels_profiled(input, k, ctx, prefix).0
}

/// [`partition_input_morsels`] plus each morsel's cost as charged by its
/// worker's thread-local ledger.
pub(crate) fn partition_input_morsels_profiled<R: Record>(
    input: &PCollection<R>,
    k: usize,
    ctx: &JoinContext<'_>,
    prefix: &str,
) -> (PartitionedInput<R>, Vec<IoStats>) {
    let n = input.len();
    let morsels = n.div_ceil(PARTITION_MORSEL_RECORDS).max(1);
    if morsels == 1 {
        let before = pmem_sim::thread_stats();
        let parts = partition_input(input, k, ctx, prefix);
        let stats = pmem_sim::thread_stats().since(&before);
        return (
            PartitionedInput {
                parts: parts.into_iter().map(|p| vec![p]).collect(),
            },
            vec![stats],
        );
    }

    // Names are minted morsel-major on the coordinating thread, so
    // naming stays deterministic under parallel creation.
    let names: Vec<Vec<String>> = (0..morsels)
        .map(|_| (0..k).map(|_| ctx.fresh_name(prefix)).collect())
        .collect();

    let mut parts: Vec<Vec<PCollection<R>>> = (0..k).map(|_| Vec::with_capacity(morsels)).collect();
    let mut per_morsel = Vec::with_capacity(morsels);
    parallel::for_each_ordered(
        ctx.threads(),
        morsels,
        |m| {
            let start = m * PARTITION_MORSEL_RECORDS;
            let end = (start + PARTITION_MORSEL_RECORDS).min(n);
            let mut subs: Vec<PCollection<R>> = names[m]
                .iter()
                .map(|name| PCollection::new(ctx.device(), ctx.kind(), name.clone()))
                .collect();
            for r in input.range_reader(start, end) {
                subs[partition_of(r.key(), k)].append(&r);
            }
            subs
        },
        |_, morsel| {
            for (p, sub) in morsel.value.into_iter().enumerate() {
                parts[p].push(sub);
            }
            per_morsel.push(morsel.stats);
        },
    );
    (PartitionedInput { parts }, per_morsel)
}

/// Joins one partition pair: builds on `left_part`, probes `right_part`.
pub fn join_partition<L: Record, R: Record>(
    left_part: &PCollection<L>,
    right_part: &PCollection<R>,
    out: &mut PCollection<Pair<L, R>>,
) {
    if left_part.is_empty() || right_part.is_empty() {
        // Still pay the scans? No: a real system knows partition sizes
        // from their metadata and skips empty pairs.
        return;
    }
    let mut table = BuildTable::new();
    for l in left_part.reader() {
        table.insert(l);
    }
    for r in right_part.reader() {
        table.probe(&r, out);
    }
}

/// Joins every partition pair across the worker pool, appending the
/// results to `out` in partition order. Returns each partition's cost
/// as measured by its worker's thread-local ledger (deterministic at
/// any DoP; the output flush is charged to the coordinator, not the
/// partitions).
pub(crate) fn join_partitioned<L: Record, R: Record>(
    left: &PartitionedInput<L>,
    right: &PartitionedInput<R>,
    ctx: &JoinContext<'_>,
    out: &mut PCollection<Pair<L, R>>,
) -> Vec<IoStats> {
    let k = left.partitions();
    let mut per_partition = Vec::with_capacity(k);
    parallel::for_each_ordered(
        ctx.threads(),
        k,
        |p| {
            let mut buf = RecordBuffer::new();
            if left.len(p) == 0 || right.len(p) == 0 {
                return buf;
            }
            let mut table = BuildTable::new();
            for l in left.records(p) {
                table.insert(l);
            }
            for r in right.records(p) {
                table.probe_buffered(&r, &mut buf);
            }
            buf
        },
        |_, task| {
            // The flush is serialized here for count determinism, but
            // the writes belong to the partition: a medium serving DoP
            // workers concurrently would land each partition's output
            // from its own worker. Charge them to the partition's cost
            // through the coordinator's own thread ledger.
            let before = pmem_sim::thread_stats();
            out.append_buffer(&task.value);
            let flush = pmem_sim::thread_stats().since(&before);
            per_partition.push(task.stats.plus(&flush));
        },
    );
    per_partition
}

/// Per-phase cost profile of one Grace join run, measured through the
/// per-worker ledgers: what executes serially (partitioning) versus per
/// partition pair (the build/probe phase). The per-partition costs sum,
/// together with the phases' coordinator-side traffic, to the device
/// delta of the whole join, and every entry is identical at any degree
/// of parallelism — this is the measured analogue of the planner's
/// critical-path estimate.
#[derive(Clone, Debug)]
pub struct GraceProfile {
    /// Traffic of phase 1 (hash-partitioning both inputs).
    pub partition_phase: IoStats,
    /// Phase-1 traffic per morsel of the left input (the morsels of one
    /// input fan out concurrently; the two inputs are partitioned one
    /// after the other).
    pub per_morsel_left: Vec<IoStats>,
    /// Phase-1 traffic per morsel of the right input.
    pub per_morsel_right: Vec<IoStats>,
    /// Phase-2 traffic per partition pair: the worker's build/probe
    /// reads plus the partition's output writes (serialized on the
    /// coordinator for determinism, but attributable to the partition —
    /// a medium serving DoP workers would land them concurrently).
    pub per_partition: Vec<IoStats>,
}

/// Joins `left ⋈ right` with Grace join.
///
/// # Errors
/// Returns [`PmError::InsufficientMemory`] when `M ≤ √(f·|T|)` — the
/// paper's applicability condition (partitions would not fit in DRAM).
pub fn grace_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    grace_join_profiled(left, right, ctx, output_name).map(|(out, _)| out)
}

/// [`grace_join`] with the per-phase cost profile alongside the result —
/// what the speedup harness and critical-path analyses consume.
///
/// # Errors
/// Same as [`grace_join`].
pub fn grace_join_profiled<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<(PCollection<Pair<L, R>>, GraceProfile), PmError> {
    let _span = pmem_sim::span::span("alg grace");
    if !ctx.grace_applicable::<L>(left.len()) {
        return Err(PmError::InsufficientMemory {
            requirement: format!(
                "Grace join needs M > sqrt(f*|T|): M = {} records, |T| = {}",
                ctx.capacity_records::<L>(),
                left.len()
            ),
        });
    }
    let k = ctx.grace_partitions::<L>(left.len());
    let before = ctx.device().snapshot();
    let (left_parts, per_morsel_left) = partition_input_morsels_profiled(left, k, ctx, "gj-t");
    let (right_parts, per_morsel_right) = partition_input_morsels_profiled(right, k, ctx, "gj-v");
    let partition_phase = ctx.device().snapshot().since(&before);

    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let per_partition = join_partitioned(&left_parts, &right_parts, ctx, &mut out);
    Ok((
        out,
        GraceProfile {
            partition_phase,
            per_morsel_left,
            per_morsel_right,
            per_partition,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{join_input, WisconsinRecord};

    #[test]
    fn finds_every_match() {
        let dev = PmDevice::paper_default();
        let w = join_input(300, 10, 4);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(60 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = grace_join(&left, &right, &ctx, "out").expect("applicable");
        assert_eq!(out.len() as u64, w.expected_matches);
    }

    #[test]
    fn io_matches_lambda_plus_two_model() {
        let dev = PmDevice::paper_default();
        let w = join_input(500, 5, 8);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let input_buffers = left.buffers() + right.buffers();
        let pool = BufferPool::new(100 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = grace_join(&left, &right, &ctx, "out").expect("applicable");
        let d = dev.snapshot().since(&before);
        // Reads: both inputs twice (partitioning + joining); partition
        // boundaries add at most one cacheline per partition per side.
        let reads = d.cl_reads as f64;
        assert!(
            (reads / input_buffers as f64 - 2.0).abs() < 0.1,
            "reads/inputs = {}",
            reads / input_buffers as f64
        );
        // Writes: both inputs once (partitions) + output.
        let expect_writes = input_buffers + out.buffers();
        let slack = 2 * ctx.grace_partitions::<WisconsinRecord>(left.len()) as u64 + 2;
        assert!(
            d.cl_writes >= expect_writes && d.cl_writes <= expect_writes + slack,
            "writes {} vs {expect_writes}+{slack}",
            d.cl_writes
        );
    }

    #[test]
    fn rejects_insufficient_memory() {
        let dev = PmDevice::paper_default();
        let w = join_input(10_000, 2, 4);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(50 * 80); // √(1.2·10000) ≈ 110 > 50
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(grace_join(&left, &right, &ctx, "out").is_err());
    }

    #[test]
    fn duplicate_build_keys_multiply_matches() {
        let dev = PmDevice::paper_default();
        let left = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            (0..20u64).map(|i| WisconsinRecord::from_key(i % 5).with_payload(i)),
        );
        let right = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "V",
            (0..5).map(WisconsinRecord::from_key),
        );
        let pool = BufferPool::new(100 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = grace_join(&left, &right, &ctx, "out").expect("applicable");
        assert_eq!(out.len(), 20); // 4 copies of each of 5 keys
    }

    #[test]
    fn parallel_degrees_agree_with_serial_exactly() {
        let run = |threads: usize| {
            let dev = PmDevice::paper_default();
            // Span several morsels so the morselized phase 1 is exercised.
            let w = join_input(2 * PARTITION_MORSEL_RECORDS as u64, 3, 11);
            let left =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
            let right =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
            let pool = BufferPool::new(1500 * 80);
            let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
            let before = dev.snapshot();
            let out = grace_join(&left, &right, &ctx, "out").expect("applicable");
            (out.to_vec_uncounted(), dev.snapshot().since(&before))
        };
        let (rows1, io1) = run(1);
        for threads in [2, 4] {
            let (rows, io) = run(threads);
            assert_eq!(rows, rows1, "output order must be DoP-invariant");
            assert_eq!(io, io1, "counters must be DoP-invariant");
        }
    }
}
