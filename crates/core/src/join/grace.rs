//! GJ — Grace join, the symmetric-I/O partitioned baseline.
//!
//! Phase 1 hash-partitions both inputs into `k = ⌈f·|T|/M⌉` partition
//! pairs on persistent memory; phase 2 joins each pair with an in-DRAM
//! build/probe. Cost `r·(λ+2)·(|T|+|V|)` plus output writes: each input
//! is read twice and written once (§2.2.2 uses this as the reference).

use super::common::{partition_of, BuildTable, JoinContext};
use pmem_sim::{PCollection, PmError};
use wisconsin::{Pair, Record};

/// Partitions `input` into `k` collections by key hash.
pub fn partition_input<R: Record>(
    input: &PCollection<R>,
    k: usize,
    ctx: &JoinContext<'_>,
    prefix: &str,
) -> Vec<PCollection<R>> {
    let mut parts: Vec<PCollection<R>> = (0..k).map(|_| ctx.fresh::<R>(prefix)).collect();
    for r in input.reader() {
        parts[partition_of(r.key(), k)].append(&r);
    }
    parts
}

/// Joins one partition pair: builds on `left_part`, probes `right_part`.
pub fn join_partition<L: Record, R: Record>(
    left_part: &PCollection<L>,
    right_part: &PCollection<R>,
    out: &mut PCollection<Pair<L, R>>,
) {
    if left_part.is_empty() || right_part.is_empty() {
        // Still pay the scans? No: a real system knows partition sizes
        // from their metadata and skips empty pairs.
        return;
    }
    let mut table = BuildTable::new();
    for l in left_part.reader() {
        table.insert(l);
    }
    for r in right_part.reader() {
        table.probe(&r, out);
    }
}

/// Joins `left ⋈ right` with Grace join.
///
/// # Errors
/// Returns [`PmError::InsufficientMemory`] when `M ≤ √(f·|T|)` — the
/// paper's applicability condition (partitions would not fit in DRAM).
pub fn grace_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    if !ctx.grace_applicable::<L>(left.len()) {
        return Err(PmError::InsufficientMemory {
            requirement: format!(
                "Grace join needs M > sqrt(f*|T|): M = {} records, |T| = {}",
                ctx.capacity_records::<L>(),
                left.len()
            ),
        });
    }
    let k = ctx.grace_partitions::<L>(left.len());
    let left_parts = partition_input(left, k, ctx, "gj-t");
    let right_parts = partition_input(right, k, ctx, "gj-v");

    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    for (lp, rp) in left_parts.iter().zip(right_parts.iter()) {
        join_partition(lp, rp, &mut out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{join_input, WisconsinRecord};

    #[test]
    fn finds_every_match() {
        let dev = PmDevice::paper_default();
        let w = join_input(300, 10, 4);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(60 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = grace_join(&left, &right, &ctx, "out").expect("applicable");
        assert_eq!(out.len() as u64, w.expected_matches);
    }

    #[test]
    fn io_matches_lambda_plus_two_model() {
        let dev = PmDevice::paper_default();
        let w = join_input(500, 5, 8);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let input_buffers = left.buffers() + right.buffers();
        let pool = BufferPool::new(100 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = grace_join(&left, &right, &ctx, "out").expect("applicable");
        let d = dev.snapshot().since(&before);
        // Reads: both inputs twice (partitioning + joining); partition
        // boundaries add at most one cacheline per partition per side.
        let reads = d.cl_reads as f64;
        assert!(
            (reads / input_buffers as f64 - 2.0).abs() < 0.1,
            "reads/inputs = {}",
            reads / input_buffers as f64
        );
        // Writes: both inputs once (partitions) + output.
        let expect_writes = input_buffers + out.buffers();
        let slack = 2 * ctx.grace_partitions::<WisconsinRecord>(left.len()) as u64 + 2;
        assert!(
            d.cl_writes >= expect_writes && d.cl_writes <= expect_writes + slack,
            "writes {} vs {expect_writes}+{slack}",
            d.cl_writes
        );
    }

    #[test]
    fn rejects_insufficient_memory() {
        let dev = PmDevice::paper_default();
        let w = join_input(10_000, 2, 4);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(50 * 80); // √(1.2·10000) ≈ 110 > 50
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(grace_join(&left, &right, &ctx, "out").is_err());
    }

    #[test]
    fn duplicate_build_keys_multiply_matches() {
        let dev = PmDevice::paper_default();
        let left = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            (0..20u64).map(|i| WisconsinRecord::from_key(i % 5).with_payload(i)),
        );
        let right = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "V",
            (0..5).map(WisconsinRecord::from_key),
        );
        let pool = BufferPool::new(100 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = grace_join(&left, &right, &ctx, "out").expect("applicable");
        assert_eq!(out.len(), 20); // 4 copies of each of 5 keys
    }
}
