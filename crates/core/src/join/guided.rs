//! CGJ — cardinality-guided join (library extension, in the spirit of
//! the Atreides join family): O(1) cardinality-sketch lookups steer each
//! record at scan time instead of an oblivious hash route.
//!
//! The operator receives a small *hot-key* set — the heavy hitters the
//! catalog's per-table statistics identified at ingest (or a bounded
//! Misra-Gries pass derives on the fly). Build-side records with hot
//! keys stay resident in DRAM; probe-side records with hot keys probe
//! the resident table immediately and are never written back. Only the
//! cold remainder of both inputs pays the Grace-style partition
//! round-trip. On Zipf-skewed inputs the hot keys carry most of the
//! rows, so the partition writes — the expensive currency on a
//! write-limited device — shrink by the hot fraction of both inputs.
//!
//! Both scans fan out over the fixed morsel grid and flush in morsel
//! order, so output order and simulated counters are identical at any
//! degree of parallelism.

use super::common::{partition_of, BuildTable, JoinContext};
use super::grace::{join_partitioned, PartitionedInput, PARTITION_MORSEL_RECORDS};
use crate::parallel;
use pmem_sim::{PCollection, PmError, RecordBuffer};
use std::collections::{HashMap, HashSet};
use wisconsin::{Pair, Record};

/// Counters the fallback Misra-Gries frequency summary keeps — O(1)
/// space regardless of the input's distinct count.
const MG_COUNTERS: usize = 64;

/// Joins `left ⋈ right`, steering records by the given hot-key set:
/// hot build rows stay resident, hot probe rows join immediately, and
/// only cold rows are partitioned. An empty hot set degrades to a
/// Grace join.
///
/// # Errors
/// Returns [`PmError::InsufficientMemory`] when the Grace applicability
/// bound `M > √(f·|T|)` fails (the resident table plus a cold partition
/// must fit in DRAM).
pub fn guided_join_with<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    hot_keys: &[u64],
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    let _span = pmem_sim::span::span("alg guided");
    if !ctx.grace_applicable::<L>(left.len()) {
        return Err(PmError::InsufficientMemory {
            requirement: format!(
                "guided join needs M > sqrt(f*|T|): M = {} records, |T| = {}",
                ctx.capacity_records::<L>(),
                left.len()
            ),
        });
    }
    let hot: HashSet<u64> = hot_keys.iter().copied().collect();
    let k = ctx.grace_partitions::<L>(left.len());
    let (resident, left_cold) = split_build(left, &hot, k, ctx, "cgj-t");
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let right_cold = probe_split(right, &hot, &resident, k, ctx, &mut out, "cgj-v");
    join_partitioned(&left_cold, &right_cold, ctx, &mut out);
    Ok(out)
}

/// [`guided_join_with`] deriving the hot keys itself: bounded
/// Misra-Gries passes over both inputs find the heavy hitters first (one
/// extra read scan per input) — a key hot on *either* side is worth
/// keeping resident, since its rows on both sides then skip the
/// partition write. Engine callers pass the catalog's ingest-time
/// statistics through [`guided_join_with`] instead and skip the passes.
///
/// # Errors
/// Same as [`guided_join_with`].
pub fn guided_join<L: Record, R: Record>(
    left: &PCollection<L>,
    right: &PCollection<R>,
    ctx: &JoinContext<'_>,
    output_name: &str,
) -> Result<PCollection<Pair<L, R>>, PmError> {
    let mut hot = heavy_hitters(left);
    hot.extend(heavy_hitters(right));
    hot.sort_unstable();
    hot.dedup();
    guided_join_with(left, right, &hot, ctx, output_name)
}

/// One counted scan of `input` through a Misra-Gries summary of
/// [`MG_COUNTERS`] counters; returns the keys whose surviving counts
/// exceed twice the uniform share (sorted, so the set is deterministic).
fn heavy_hitters<R: Record>(input: &PCollection<R>) -> Vec<u64> {
    let mut counters: HashMap<u64, u64> = HashMap::with_capacity(MG_COUNTERS + 1);
    for r in input.reader() {
        let key = r.key();
        if let Some(c) = counters.get_mut(&key) {
            *c += 1;
        } else if counters.len() < MG_COUNTERS {
            counters.insert(key, 1);
        } else {
            // Decrement-all step; drop the counters that reach zero.
            counters.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
        }
    }
    let floor = (2 * input.len() / MG_COUNTERS).max(1) as u64;
    let mut hot: Vec<u64> = counters
        .into_iter()
        .filter(|&(_, c)| c >= floor)
        .map(|(k, _)| k)
        .collect();
    hot.sort_unstable();
    hot
}

/// Build-side scan: hot records land in the resident DRAM table, cold
/// records hash into `k` partitions over the morsel grid.
fn split_build<L: Record>(
    input: &PCollection<L>,
    hot: &HashSet<u64>,
    k: usize,
    ctx: &JoinContext<'_>,
    prefix: &str,
) -> (BuildTable<L>, PartitionedInput<L>) {
    let n = input.len();
    let morsels = n.div_ceil(PARTITION_MORSEL_RECORDS).max(1);
    let names: Vec<Vec<String>> = (0..morsels)
        .map(|_| (0..k).map(|_| ctx.fresh_name(prefix)).collect())
        .collect();
    let mut table = BuildTable::new();
    let mut parts: Vec<Vec<PCollection<L>>> = (0..k).map(|_| Vec::with_capacity(morsels)).collect();
    parallel::for_each_ordered(
        ctx.threads(),
        morsels,
        |m| {
            let start = m * PARTITION_MORSEL_RECORDS;
            let end = (start + PARTITION_MORSEL_RECORDS).min(n);
            let mut subs: Vec<PCollection<L>> = names[m]
                .iter()
                .map(|name| PCollection::new(ctx.device(), ctx.kind(), name.clone()))
                .collect();
            let mut keep: Vec<L> = Vec::new();
            for r in input.range_reader(start, end) {
                if hot.contains(&r.key()) {
                    keep.push(r);
                } else {
                    subs[partition_of(r.key(), k)].append(&r);
                }
            }
            (keep, subs)
        },
        |_, task| {
            let (keep, subs) = task.value;
            for l in keep {
                table.insert(l);
            }
            for (p, sub) in subs.into_iter().enumerate() {
                parts[p].push(sub);
            }
        },
    );
    (table, PartitionedInput::from_parts(parts))
}

/// Probe-side scan: hot records probe the resident table and their
/// matches flush straight to `out`; cold records hash into `k`
/// partitions. Flushes happen in morsel order on the coordinator, so
/// output order and counters are DoP-invariant.
fn probe_split<L: Record, R: Record>(
    input: &PCollection<R>,
    hot: &HashSet<u64>,
    resident: &BuildTable<L>,
    k: usize,
    ctx: &JoinContext<'_>,
    out: &mut PCollection<Pair<L, R>>,
    prefix: &str,
) -> PartitionedInput<R> {
    let n = input.len();
    let morsels = n.div_ceil(PARTITION_MORSEL_RECORDS).max(1);
    let names: Vec<Vec<String>> = (0..morsels)
        .map(|_| (0..k).map(|_| ctx.fresh_name(prefix)).collect())
        .collect();
    let mut parts: Vec<Vec<PCollection<R>>> = (0..k).map(|_| Vec::with_capacity(morsels)).collect();
    parallel::for_each_ordered(
        ctx.threads(),
        morsels,
        |m| {
            let start = m * PARTITION_MORSEL_RECORDS;
            let end = (start + PARTITION_MORSEL_RECORDS).min(n);
            let mut subs: Vec<PCollection<R>> = names[m]
                .iter()
                .map(|name| PCollection::new(ctx.device(), ctx.kind(), name.clone()))
                .collect();
            let mut matches = RecordBuffer::new();
            for r in input.range_reader(start, end) {
                if hot.contains(&r.key()) {
                    resident.probe_buffered(&r, &mut matches);
                } else {
                    subs[partition_of(r.key(), k)].append(&r);
                }
            }
            (matches, subs)
        },
        |_, task| {
            let (matches, subs) = task.value;
            out.append_buffer(&matches);
            for (p, sub) in subs.into_iter().enumerate() {
                parts[p].push(sub);
            }
        },
    );
    PartitionedInput::from_parts(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{join_input_skewed, WisconsinRecord};

    fn skewed_setup(
        dev: &pmem_sim::Pm,
        theta: f64,
    ) -> (PCollection<WisconsinRecord>, PCollection<WisconsinRecord>) {
        let w = join_input_skewed(400, 6000, theta, 11);
        let left = PCollection::from_records_uncounted(dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(dev, LayerKind::BlockedMemory, "V", w.right);
        (left, right)
    }

    #[test]
    fn guided_join_matches_the_grace_multiset() {
        let dev = PmDevice::paper_default();
        let (left, right) = skewed_setup(&dev, 1.2);
        let pool = BufferPool::new(200 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let guided = guided_join(&left, &right, &ctx, "out-g").expect("applicable");
        let grace = super::super::grace_join(&left, &right, &ctx, "out-r").expect("applicable");
        let mut a: Vec<(u64, u64)> = guided
            .to_vec_uncounted()
            .iter()
            .map(|p| (p.left.attrs[0], p.right.attrs[1]))
            .collect();
        let mut b: Vec<(u64, u64)> = grace
            .to_vec_uncounted()
            .iter()
            .map(|p| (p.left.attrs[0], p.right.attrs[1]))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn hot_keys_cut_device_writes_versus_grace_on_skew() {
        let dev = PmDevice::paper_default();
        let (left, right) = skewed_setup(&dev, 1.2);
        let pool = BufferPool::new(200 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        // Planner-style hot keys: the probe side's heavy hitters, known
        // from ingest-time statistics rather than a counted pre-scan.
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for r in right.to_vec_uncounted() {
            *counts.entry(r.key()).or_insert(0) += 1;
        }
        let mean = right.len() as u64 / counts.len().max(1) as u64;
        let hot: Vec<u64> = counts
            .iter()
            .filter(|&(_, &c)| c >= 2 * mean.max(1))
            .map(|(&k, _)| k)
            .collect();
        let before = dev.snapshot();
        guided_join_with(&left, &right, &hot, &ctx, "out-g").expect("applicable");
        let guided_io = dev.snapshot().since(&before);
        let before = dev.snapshot();
        super::super::grace_join(&left, &right, &ctx, "out-r").expect("applicable");
        let grace_io = dev.snapshot().since(&before);
        // Both runs write the same output; the partition writes are what
        // the hot keys bypass. Grace partition-writes both inputs in
        // full, so guided must save a solid fraction of that traffic.
        let inputs = left.buffers() + right.buffers();
        let saved = grace_io.cl_writes.saturating_sub(guided_io.cl_writes) as f64;
        assert!(
            saved > 0.3 * inputs as f64,
            "guided {} vs grace {} writes, saved {saved} of {inputs} input cachelines",
            guided_io.cl_writes,
            grace_io.cl_writes
        );
        assert!(
            guided_io.cl_reads < grace_io.cl_reads,
            "hot rows are read once, not twice: {} vs {}",
            guided_io.cl_reads,
            grace_io.cl_reads
        );
    }

    #[test]
    fn empty_hot_set_degrades_gracefully() {
        let dev = PmDevice::paper_default();
        let (left, right) = skewed_setup(&dev, 0.0);
        let pool = BufferPool::new(200 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = guided_join_with(&left, &right, &[], &ctx, "out").expect("applicable");
        assert_eq!(out.len(), 6000);
    }

    #[test]
    fn parallel_degrees_agree_with_serial_exactly() {
        let run = |threads: usize| {
            let dev = PmDevice::paper_default();
            let w = join_input_skewed(500, 2 * PARTITION_MORSEL_RECORDS as u64, 1.1, 3);
            let left =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
            let right =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
            let pool = BufferPool::new(1500 * 80);
            let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
            let before = dev.snapshot();
            let out = guided_join(&left, &right, &ctx, "out").expect("applicable");
            (out.to_vec_uncounted(), dev.snapshot().since(&before))
        };
        let (rows1, io1) = run(1);
        for threads in [2, 4] {
            let (rows, io) = run(threads);
            assert_eq!(rows, rows1, "output order must be DoP-invariant");
            assert_eq!(io, io1, "counters must be DoP-invariant");
        }
    }

    #[test]
    fn misra_gries_finds_the_zipf_head_and_ignores_uniform() {
        let dev = PmDevice::paper_default();
        let (left, _) = skewed_setup(&dev, 1.2);
        let uniform = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "U",
            (0..4000u64).map(|i| WisconsinRecord::from_key(i % 1000)),
        );
        let hot = heavy_hitters(&left);
        assert!(hot.is_empty(), "unique-key build side has no heavy keys");
        let w = join_input_skewed(400, 6000, 1.2, 11);
        let skewed_probe =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "S", w.right);
        let hot = heavy_hitters(&skewed_probe);
        assert!(hot.contains(&0), "Zipf head key must surface: {hot:?}");
        assert!(heavy_hitters(&uniform).is_empty(), "uniform input");
    }
}
