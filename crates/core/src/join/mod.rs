//! Join algorithms for persistent memory (§2.2).
//!
//! | Paper name | Function | Character |
//! |---|---|---|
//! | NLJ | [`nested_loops_join`] | read-only, write-minimal reference |
//! | GJ | [`grace_join`] | symmetric-I/O partitioned baseline |
//! | HJ | [`hash_join`] | iterative, rewrite-heavy baseline |
//! | HybJ | [`hybrid_join`] | intensities `x`/`y` per input (Eq. 6) |
//! | SegJ | [`segmented_grace_join`] | materialize `x` of `k` partitions (Eq. 9) |
//! | LaJ | [`lazy_hash_join`] | dynamic, Eq. 11 materialization |
//!
//! [`guided_join`] (CGJ) is a library extension beyond the paper's
//! line-up: catalog statistics steer hot keys around the partition
//! round-trip entirely (see [`guided`]).

pub mod common;
pub mod grace;
pub mod guided;
pub mod hash;
pub mod hybrid;
pub mod lazy;
pub mod nested_loops;
pub mod segmented;
pub mod sort_merge;

pub use common::{
    expected_match_count, partition_of, BuildTable, IterJoinProfile, JoinContext, HASH_TABLE_FACTOR,
};
pub use grace::{
    grace_join, grace_join_profiled, join_partition, partition_input, partition_input_morsels,
    GraceProfile, PartitionedInput, PARTITION_MORSEL_RECORDS,
};
pub use guided::{guided_join, guided_join_with};
pub use hash::{hash_join, hash_join_profiled};
pub use hybrid::hybrid_join;
pub use lazy::{lazy_hash_join, lazy_hash_join_profiled, lazy_materialization_iterations};
pub use nested_loops::{nested_loops_join, nested_loops_join_profiled, NljProfile};
pub use segmented::{segmented_grace_join, segmented_grace_join_frac};
pub use sort_merge::sort_merge_join;

use pmem_sim::{PCollection, PmError};
use wisconsin::{Pair, Record};

/// Uniform handle over the paper's join algorithms, used by the benchmark
/// harness and the Fig. 12 concordance experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JoinAlgorithm {
    /// Block nested-loops join.
    NLJ,
    /// Grace join.
    GJ,
    /// Standard iterative hash join.
    HJ,
    /// Hybrid Grace/nested-loops join with per-input intensities.
    HybJ {
        /// Write intensity over the left input.
        x: f64,
        /// Write intensity over the right input.
        y: f64,
    },
    /// Segmented Grace join materializing a fraction of the partitions.
    SegJ {
        /// Fraction of partitions materialized.
        frac: f64,
    },
    /// Lazy hash join.
    LaJ,
    /// Sort-merge join at the given sort write intensity (library
    /// extension, not in the paper's §2.2 line-up).
    SMJ {
        /// Write intensity passed to both segment sorts.
        x: f64,
    },
    /// Cardinality-guided join (library extension): heavy-hitter keys
    /// bypass the partition round-trip. The hot-key set comes from the
    /// catalog statistics when the planner lowers the operator, or from
    /// a bounded frequency pre-scan when run standalone.
    CGJ,
}

impl JoinAlgorithm {
    /// Paper-style label, e.g. `HybJ, 50% - 80%`.
    pub fn label(&self) -> String {
        match self {
            JoinAlgorithm::NLJ => "NLJ".into(),
            JoinAlgorithm::GJ => "GJ".into(),
            JoinAlgorithm::HJ => "HJ".into(),
            JoinAlgorithm::HybJ { x, y } => {
                format!("HybJ, {:.0}% - {:.0}%", x * 100.0, y * 100.0)
            }
            JoinAlgorithm::SegJ { frac } => format!("SegJ, {:.0}%", frac * 100.0),
            JoinAlgorithm::LaJ => "LaJ".into(),
            JoinAlgorithm::SMJ { x } => format!("SMJ, {:.0}%", x * 100.0),
            JoinAlgorithm::CGJ => "CGJ".into(),
        }
    }

    /// Runs the algorithm on `left ⋈ right` under `ctx`.
    ///
    /// # Errors
    /// Propagates applicability and parameter errors from the underlying
    /// algorithm.
    pub fn run<L: Record, R: Record>(
        &self,
        left: &PCollection<L>,
        right: &PCollection<R>,
        ctx: &JoinContext<'_>,
        output_name: &str,
    ) -> Result<PCollection<Pair<L, R>>, PmError> {
        // Hold the DRAM working set (the build table: the build side if
        // it fits, the remaining budget otherwise) for the blocking
        // phase; the refused full-size attempt is the memory-pressure
        // event `exhausted` telemetry counts. Pure telemetry — capacity
        // decisions read the budget, not the reservation ledger.
        let pool = ctx.pool();
        let want = left.len() * L::SIZE;
        let _working_set = pool
            .reserve(want)
            .or_else(|_| pool.reserve(want.min(pool.available())))
            .ok();
        match self {
            JoinAlgorithm::NLJ => Ok(nested_loops_join(left, right, ctx, output_name)),
            JoinAlgorithm::GJ => grace_join(left, right, ctx, output_name),
            JoinAlgorithm::HJ => Ok(hash_join(left, right, ctx, output_name)),
            JoinAlgorithm::HybJ { x, y } => hybrid_join(left, right, *x, *y, ctx, output_name),
            JoinAlgorithm::SegJ { frac } => {
                segmented_grace_join_frac(left, right, *frac, ctx, output_name)
            }
            JoinAlgorithm::LaJ => Ok(lazy_hash_join(left, right, ctx, output_name)),
            JoinAlgorithm::SMJ { x } => sort_merge_join(left, right, *x, ctx, output_name),
            JoinAlgorithm::CGJ => guided_join(left, right, ctx, output_name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::join_input;

    #[test]
    fn all_algorithms_agree_on_the_result_multiset() {
        let algos = [
            JoinAlgorithm::NLJ,
            JoinAlgorithm::GJ,
            JoinAlgorithm::HJ,
            JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
            JoinAlgorithm::SegJ { frac: 0.5 },
            JoinAlgorithm::LaJ,
            JoinAlgorithm::SMJ { x: 0.5 },
            JoinAlgorithm::CGJ,
        ];
        for algo in algos {
            let dev = PmDevice::paper_default();
            let w = join_input(200, 10, 99);
            let left =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
            let right =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
            let pool = BufferPool::new(50 * 80);
            let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
            let out = algo.run(&left, &right, &ctx, "out").expect("applicable");
            assert_eq!(out.len() as u64, w.expected_matches, "{}", algo.label());

            // Pair-level verification: sorted (left key, right payload)
            // multisets must be identical across algorithms.
            let mut pairs: Vec<(u64, u64)> = out
                .to_vec_uncounted()
                .iter()
                .map(|p| (p.left.attrs[0], p.right.attrs[1]))
                .collect();
            pairs.sort_unstable();
            let mut expect: Vec<(u64, u64)> = (0..2000u64).map(|i| (i % 200, i)).collect();
            expect.sort_unstable();
            assert_eq!(pairs, expect, "{}", algo.label());
        }
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(
            JoinAlgorithm::HybJ { x: 0.5, y: 0.8 }.label(),
            "HybJ, 50% - 80%"
        );
        assert_eq!(JoinAlgorithm::SegJ { frac: 0.2 }.label(), "SegJ, 20%");
    }
}
