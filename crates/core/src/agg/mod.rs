//! Write-limited aggregation — the first extension the paper's §6 names
//! ("one might extend this work to … operations (e.g., aggregation)").
//!
//! Grouped aggregation shares the sorts' and joins' structure: a
//! write-incurring strategy materializes intermediate state (sorted
//! input or partitions), a write-limited strategy re-reads the input
//! instead. Aggregation is an especially grateful target because its
//! *output* is usually far smaller than its input, so avoiding
//! intermediate materialization leaves almost nothing to write at all.
//!
//! Strategies:
//! * [`sort_based_aggregate`] — classic: sort, then one grouping pass.
//!   The write-limited twist reuses segment sort's machinery and feeds
//!   the merge **streams** straight into the aggregator, so the sorted
//!   input is never materialized (`x` controls how much of the input is
//!   run-generated versus rescanned).
//! * [`hash_aggregate`] — one-pass in-DRAM hash aggregation when the
//!   group state fits.
//! * [`segmented_hash_aggregate`] — Grace-style: materialize `x` of `k`
//!   partitions, iterate over the input for the rest (the SegJ of
//!   aggregation).

pub mod hash_agg;
pub mod sort_agg;

pub use hash_agg::{hash_aggregate, segmented_hash_aggregate};
pub use sort_agg::sort_based_aggregate;

use pmem_sim::Storable;

/// Per-group aggregate state: count, sum, min, max of the aggregated
/// value (avg = sum/count). 40 bytes on persistent memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupAgg {
    /// Group key.
    pub key: u64,
    /// Number of records in the group.
    pub count: u64,
    /// Sum of the aggregated attribute.
    pub sum: u64,
    /// Minimum of the aggregated attribute.
    pub min: u64,
    /// Maximum of the aggregated attribute.
    pub max: u64,
}

impl GroupAgg {
    /// Starts a group from its first value.
    pub fn seed(key: u64, value: u64) -> Self {
        Self {
            key,
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    /// Folds one more value into the group.
    pub fn fold(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another partial aggregate of the same group.
    ///
    /// # Panics
    /// Panics in debug builds if the keys differ.
    pub fn merge(&mut self, other: &GroupAgg) {
        debug_assert_eq!(self.key, other.key, "merging different groups");
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The group mean (floor division; groups are never empty).
    pub fn avg(&self) -> u64 {
        self.sum / self.count
    }
}

impl Storable for GroupAgg {
    const SIZE: usize = 40;

    fn write_to(&self, buf: &mut [u8]) {
        for (i, v) in [self.key, self.count, self.sum, self.min, self.max]
            .iter()
            .enumerate()
        {
            buf[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        // Zero-padding copy instead of `try_into().expect(..)`: the agg
        // operators are a panic-free zone, and `Storable` callers bound
        // `buf` to exactly `SIZE` bytes.
        let f = |i: usize| {
            let mut w = [0u8; 8];
            for (dst, src) in w.iter_mut().zip(buf.iter().skip(i * 8)) {
                *dst = *src;
            }
            u64::from_le_bytes(w)
        };
        Self {
            key: f(0),
            count: f(1),
            sum: f(2),
            min: f(3),
            max: f(4),
        }
    }
}

impl wisconsin::Record for GroupAgg {
    fn key(&self) -> u64 {
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_fold_tracks_all_aggregates() {
        let mut g = GroupAgg::seed(7, 10);
        g.fold(4);
        g.fold(16);
        assert_eq!(g.count, 3);
        assert_eq!(g.sum, 30);
        assert_eq!(g.min, 4);
        assert_eq!(g.max, 16);
        assert_eq!(g.avg(), 10);
    }

    #[test]
    fn merge_combines_partials() {
        let mut a = GroupAgg::seed(1, 5);
        let mut b = GroupAgg::seed(1, 9);
        b.fold(1);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 15);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 9);
    }

    #[test]
    fn storable_roundtrip() {
        let g = GroupAgg {
            key: 1,
            count: 2,
            sum: 3,
            min: 4,
            max: 5,
        };
        let mut buf = [0u8; GroupAgg::SIZE];
        g.write_to(&mut buf);
        assert_eq!(GroupAgg::read_from(&buf), g);
    }
}
