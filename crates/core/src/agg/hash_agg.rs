//! Hash-based aggregation: one-pass when the group state fits in DRAM,
//! Grace-style segmented otherwise.

use crate::agg::GroupAgg;
use crate::join::common::partition_of;
use crate::sort::common::SortContext;
use pmem_sim::{PCollection, PmError, Storable};
use std::collections::HashMap;
use wisconsin::Record;

/// One-pass in-DRAM hash aggregation. The group state (`GroupAgg` per
/// distinct key) must fit in the DRAM budget.
///
/// # Errors
/// Returns [`PmError::InsufficientMemory`] when the number of groups
/// exceeds the budget — callers should fall back to
/// [`segmented_hash_aggregate`] or [`super::sort_based_aggregate`].
pub fn hash_aggregate<R: Record>(
    input: &PCollection<R>,
    value_of: impl Fn(&R) -> u64,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> Result<PCollection<GroupAgg>, PmError> {
    let _span = pmem_sim::span::span("alg hash-agg");
    let budget_groups = (ctx.pool().budget() / GroupAgg::SIZE).max(1);
    let mut groups: HashMap<u64, GroupAgg> = HashMap::new();
    for record in input.reader() {
        let key = record.key();
        let value = value_of(&record);
        match groups.get_mut(&key) {
            Some(g) => g.fold(value),
            None => {
                if groups.len() >= budget_groups {
                    return Err(PmError::InsufficientMemory {
                        requirement: format!(
                            "hash aggregation needs all groups in DRAM: budget {budget_groups} \
                             groups exceeded"
                        ),
                    });
                }
                groups.insert(key, GroupAgg::seed(key, value));
            }
        }
    }
    let mut sorted: Vec<GroupAgg> = groups.into_values().collect();
    sorted.sort_unstable_by_key(|g| g.key);
    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    for g in &sorted {
        out.append(g);
    }
    Ok(out)
}

/// Segmented hash aggregation — the SegJ of aggregation. The key domain
/// is hash-split into `k` partitions sized so each partition's group
/// state fits in DRAM; the first `materialized` partitions' *records*
/// are offloaded during one input scan and aggregated from their
/// partition files, the rest by re-scanning the input once per
/// partition. `materialized = 0` writes nothing but the output.
///
/// `k` must be supplied by the caller (an estimate of
/// `distinct_keys · GroupAgg::SIZE / M`, from catalog statistics in a
/// real system).
///
/// # Errors
/// Returns [`PmError::InvalidParameter`] when `k == 0` or
/// `materialized > k`.
pub fn segmented_hash_aggregate<R: Record>(
    input: &PCollection<R>,
    k: usize,
    materialized: usize,
    value_of: impl Fn(&R) -> u64,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> Result<PCollection<GroupAgg>, PmError> {
    if k == 0 {
        return Err(PmError::InvalidParameter {
            name: "k",
            message: "need at least one partition".into(),
        });
    }
    if materialized > k {
        return Err(PmError::InvalidParameter {
            name: "materialized",
            message: format!("cannot materialize {materialized} of {k} partitions"),
        });
    }

    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);

    // One scan offloading the materialized partitions' records.
    let mut files: Vec<PCollection<R>> = (0..materialized)
        .map(|_| ctx.fresh::<R>("agg-part"))
        .collect();
    if materialized > 0 {
        for record in input.reader() {
            let p = partition_of(record.key(), k);
            if p < materialized {
                files[p].append(&record);
            }
        }
    }

    let emit = |groups: HashMap<u64, GroupAgg>, out: &mut PCollection<GroupAgg>| {
        let mut sorted: Vec<GroupAgg> = groups.into_values().collect();
        sorted.sort_unstable_by_key(|g| g.key);
        for g in &sorted {
            out.append(g);
        }
    };

    // Aggregate materialized partitions from their files.
    for file in &files {
        let mut groups: HashMap<u64, GroupAgg> = HashMap::new();
        for record in file.reader() {
            let key = record.key();
            let value = value_of(&record);
            groups
                .entry(key)
                .and_modify(|g| g.fold(value))
                .or_insert_with(|| GroupAgg::seed(key, value));
        }
        emit(groups, &mut out);
    }

    // Iterate the input once per remaining partition.
    for p in materialized..k {
        let mut groups: HashMap<u64, GroupAgg> = HashMap::new();
        for record in input.reader() {
            if partition_of(record.key(), k) != p {
                continue;
            }
            let key = record.key();
            let value = value_of(&record);
            groups
                .entry(key)
                .and_modify(|g| g.fold(value))
                .or_insert_with(|| GroupAgg::seed(key, value));
        }
        emit(groups, &mut out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use wisconsin::{sort_input, KeyOrder, WisconsinRecord};

    fn reference(records: &[WisconsinRecord]) -> HashMap<u64, GroupAgg> {
        let mut map = HashMap::new();
        for r in records {
            use wisconsin::Record as _;
            map.entry(r.key())
                .and_modify(|g: &mut GroupAgg| g.fold(r.payload()))
                .or_insert_with(|| GroupAgg::seed(r.key(), r.payload()));
        }
        map
    }

    fn to_map(out: &PCollection<GroupAgg>) -> HashMap<u64, GroupAgg> {
        out.to_vec_uncounted()
            .into_iter()
            .map(|g| (g.key, g))
            .collect()
    }

    #[test]
    fn one_pass_matches_reference() {
        let dev = PmDevice::paper_default();
        let records = sort_input(3000, KeyOrder::FewDistinct { distinct: 40 }, 5);
        let expect = reference(&records);
        let input =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", records);
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = hash_aggregate(&input, |r| r.payload(), &ctx, "agg").expect("groups fit");
        assert_eq!(to_map(&out), expect);
    }

    #[test]
    fn one_pass_rejects_too_many_groups() {
        let dev = PmDevice::paper_default();
        let records = sort_input(3000, KeyOrder::Random, 5); // 3000 groups
        let input =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", records);
        let pool = BufferPool::new(100 * 40); // room for 100 groups
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(hash_aggregate(&input, |r| r.payload(), &ctx, "agg").is_err());
    }

    #[test]
    fn segmented_matches_reference_at_all_materialization_levels() {
        let dev = PmDevice::paper_default();
        let records = sort_input(4000, KeyOrder::FewDistinct { distinct: 200 }, 9);
        let expect = reference(&records);
        let input =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", records);
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        for materialized in [0, 2, 4] {
            let out =
                segmented_hash_aggregate(&input, 4, materialized, |r| r.payload(), &ctx, "agg")
                    .expect("valid");
            assert_eq!(to_map(&out), expect, "materialized={materialized}");
        }
    }

    #[test]
    fn lazy_segmented_trades_writes_for_reads() {
        let dev = PmDevice::paper_default();
        let records = sort_input(4000, KeyOrder::FewDistinct { distinct: 200 }, 9);
        let input =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", records);
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);

        let before = dev.snapshot();
        let _ = segmented_hash_aggregate(&input, 4, 0, |r| r.payload(), &ctx, "lazy").expect("ok");
        let lazy = dev.snapshot().since(&before);

        let before = dev.snapshot();
        let _ = segmented_hash_aggregate(&input, 4, 4, |r| r.payload(), &ctx, "eager").expect("ok");
        let eager = dev.snapshot().since(&before);

        assert!(lazy.cl_writes < eager.cl_writes);
        assert!(lazy.cl_reads > eager.cl_reads);
    }

    #[test]
    fn parameter_validation() {
        let dev = PmDevice::paper_default();
        let input: PCollection<WisconsinRecord> =
            PCollection::new(&dev, LayerKind::BlockedMemory, "T");
        let pool = BufferPool::new(8000);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        assert!(segmented_hash_aggregate(&input, 0, 0, |r| r.payload(), &ctx, "a").is_err());
        assert!(segmented_hash_aggregate(&input, 2, 3, |r| r.payload(), &ctx, "a").is_err());
    }
}
