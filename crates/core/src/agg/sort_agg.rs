//! Sort-based aggregation with a write-limited pipeline.
//!
//! The classic plan sorts the input and makes one grouping pass. On
//! persistent memory the sorted intermediate is pure write waste — the
//! aggregation output is tiny. This operator therefore reuses segment
//! sort's internals but *pipes the merge into the aggregator*: the only
//! materialized collection is the per-group output. At `x = 0` writes
//! are exactly the output; at `x = 1` the run files of a full external
//! mergesort are written (but never the sorted result itself).

use crate::agg::GroupAgg;
use crate::parallel;
use crate::sort::common::{
    generate_runs_replacement_range, merge_fan_in, merge_group, run_segment_cuts, segment_streams,
    KWayMerge, SortContext, MERGE_SEGMENT_RECORDS,
};
use crate::sort::selection::SelectionStream;
use pmem_sim::{PCollection, PmError, RecordBuffer};
use wisconsin::Record;

/// Aggregates `input` by key, extracting the aggregated value with
/// `value_of`, using a sort-based pipeline at write intensity `x`.
/// Output groups are emitted in ascending key order.
///
/// At full write intensity the final merge-aggregate pass
/// range-partitions the key space across the worker pool (groups cannot
/// straddle a splitter, so segments aggregate independently); lower
/// intensities keep the deferred selection stream, which regenerates
/// itself by rescanning the input and therefore merges serially.
///
/// # Errors
/// Returns [`PmError::InvalidParameter`] unless `0 ≤ x ≤ 1`.
pub fn sort_based_aggregate<R: Record>(
    input: &PCollection<R>,
    x: f64,
    value_of: impl Fn(&R) -> u64 + Sync,
    ctx: &SortContext<'_>,
    output_name: &str,
) -> Result<PCollection<GroupAgg>, PmError> {
    let _span = pmem_sim::span::span("alg sort-agg");
    if !(0.0..=1.0).contains(&x) {
        return Err(PmError::InvalidParameter {
            name: "x",
            message: format!("write intensity must be in [0,1], got {x}"),
        });
    }
    let n = input.len();
    let split = ((n as f64) * x).round() as usize;
    let capacity = ctx.capacity_records::<R>();

    // Write-incurring prefix: external-mergesort runs. Pre-merge passes
    // fan out over their independent groups (names minted up front, so
    // naming and counters are DoP-invariant).
    let mut runs = generate_runs_replacement_range(input, 0..split, capacity, ctx);
    let fan_in = merge_fan_in(ctx).saturating_sub(1).max(2);
    while runs.len() > fan_in {
        let groups: Vec<&[PCollection<R>]> = runs.chunks(fan_in).collect();
        let names: Vec<String> = (0..groups.len())
            .map(|_| ctx.fresh_name("agg-merge"))
            .collect();
        let merged = parallel::map_ordered(ctx.threads(), groups.len(), |g| {
            let mut next = PCollection::new(ctx.device(), ctx.kind(), names[g].clone());
            merge_group(groups[g], &mut next);
            next
        });
        drop(groups);
        runs = merged;
    }

    let mut out = PCollection::new(ctx.device(), ctx.kind(), output_name);
    let segments = n.div_ceil(MERGE_SEGMENT_RECORDS).max(1);
    if split == n && runs.len() > 1 && segments > 1 {
        aggregate_runs_parallel(&runs, &value_of, segments, ctx, &mut out);
        return Ok(out);
    }

    // Merge streams straight into the aggregator: the sorted sequence is
    // consumed, never written.
    let mut streams: Vec<Box<dyn Iterator<Item = R> + '_>> = runs
        .iter()
        .map(|r| Box::new(r.reader()) as Box<dyn Iterator<Item = R> + '_>)
        .collect();
    if split < n {
        streams.push(Box::new(SelectionStream::new(input, split..n, capacity)));
    }

    let mut current: Option<GroupAgg> = None;
    for record in KWayMerge::new(streams) {
        fold_into(&mut current, &record, &value_of, |g| out.append(g));
    }
    if let Some(g) = current {
        out.append(&g);
    }
    Ok(out)
}

/// Folds one record into the running group, emitting the finished group
/// when the key advances.
fn fold_into<R: Record>(
    current: &mut Option<GroupAgg>,
    record: &R,
    value_of: &impl Fn(&R) -> u64,
    mut emit: impl FnMut(&GroupAgg),
) {
    let (key, value) = (record.key(), value_of(record));
    match current.as_mut() {
        Some(g) if g.key == key => g.fold(value),
        Some(g) => {
            emit(g);
            *current = Some(GroupAgg::seed(key, value));
        }
        None => *current = Some(GroupAgg::seed(key, value)),
    }
}

/// Range-partitioned final merge-aggregate: splitter keys sampled from
/// the runs carve the key space into segments; every group falls wholly
/// inside one segment, so each worker merges and aggregates its ranges
/// independently and the coordinator concatenates the group outputs in
/// splitter order — identical rows and counters at any DoP.
fn aggregate_runs_parallel<R: Record>(
    runs: &[PCollection<R>],
    value_of: &(impl Fn(&R) -> u64 + Sync),
    segments: usize,
    ctx: &SortContext<'_>,
    out: &mut PCollection<GroupAgg>,
) {
    let cuts = run_segment_cuts(runs, segments);
    parallel::for_each_ordered(
        ctx.threads(),
        segments,
        |seg| {
            let mut buf = RecordBuffer::new();
            let mut current: Option<GroupAgg> = None;
            for record in KWayMerge::new(segment_streams(runs, &cuts, seg)) {
                fold_into(&mut current, &record, value_of, |g| buf.push(g));
            }
            if let Some(g) = current {
                buf.push(&g);
            }
            buf
        },
        |_, task| out.append_buffer(&task.value),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{BufferPool, LayerKind, PmDevice, Storable};
    use wisconsin::{sort_input, KeyOrder, WisconsinRecord};

    fn reference(records: &[WisconsinRecord]) -> Vec<GroupAgg> {
        let mut map = std::collections::BTreeMap::<u64, GroupAgg>::new();
        for r in records {
            use wisconsin::Record as _;
            map.entry(r.key())
                .and_modify(|g| g.fold(r.payload()))
                .or_insert_with(|| GroupAgg::seed(r.key(), r.payload()));
        }
        map.into_values().collect()
    }

    fn run(x: f64, distinct: u64) -> (pmem_sim::IoStats, Vec<GroupAgg>, Vec<GroupAgg>) {
        let dev = PmDevice::paper_default();
        let records = sort_input(5000, KeyOrder::FewDistinct { distinct }, 3);
        let expect = reference(&records);
        let input =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", records);
        let pool = BufferPool::new(200 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = sort_based_aggregate(&input, x, |r| r.payload(), &ctx, "agg").expect("valid x");
        (
            dev.snapshot().since(&before),
            out.to_vec_uncounted(),
            expect,
        )
    }

    #[test]
    fn aggregates_match_reference_at_all_intensities() {
        for x in [0.0, 0.3, 0.7, 1.0] {
            let (_, got, expect) = run(x, 50);
            assert_eq!(got, expect, "x={x}");
        }
    }

    #[test]
    fn zero_intensity_writes_only_the_output() {
        let (stats, got, _) = run(0.0, 10);
        let out_bytes = got.len() * GroupAgg::SIZE;
        assert_eq!(stats.cl_writes, pmem_sim::cachelines(out_bytes));
    }

    #[test]
    fn higher_intensity_writes_more_reads_less() {
        let (lo, _, _) = run(0.1, 100);
        let (hi, _, _) = run(0.9, 100);
        assert!(lo.cl_writes < hi.cl_writes);
        assert!(lo.cl_reads > hi.cl_reads);
    }

    #[test]
    fn single_group_collapses_to_one_row() {
        let (_, got, expect) = run(0.5, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got, expect);
        assert_eq!(got[0].count, 5000);
    }
}
