//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `rand` 0.8 API its crates
//! actually use: [`Rng::gen`], [`Rng::gen_range`] over half-open integer
//! ranges, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which the simulator's reproducibility tests rely on.
//!
//! This is NOT a cryptographic generator and makes no attempt to match
//! upstream `rand`'s value streams; it only preserves the API shape and
//! statistical quality adequate for workload generation.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value in `[lo, hi)` from `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Multiply-shift bounded sampling; bias is < 2^-64 per
                // draw, irrelevant for workload generation.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                lo.wrapping_add((wide >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Types drawable via [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Draws a value from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from the half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; same API, different — but fixed — value stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn f64_sample_is_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
