//! Ablations: runtime-driven adaptive join and cost-model-driven
//! algorithm selection.
fn main() {
    let scale = wl_bench::Scale::from_env();
    wl_bench::ablation::adaptive_vs_fixed(&scale);
    wl_bench::ablation::auto_selection(&scale);
    wl_bench::ablation::energy_and_wear(&scale);
    wl_bench::ablation::aggregation(&scale);
    wl_bench::ablation::index_leaf_policies(&scale);
    wl_bench::ablation::input_order(&scale);
}
