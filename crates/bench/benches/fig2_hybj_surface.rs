//! Fig. 2: hybrid Grace/nested-loops join cost heatmaps.
fn main() {
    wl_bench::figures::fig2();
}
