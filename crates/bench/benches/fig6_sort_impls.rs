//! Fig. 6 reproduction.
fn main() {
    wl_bench::figures::fig6(&wl_bench::Scale::from_env());
}
