//! Wall-clock microbenchmarks of the core kernels (independent of the
//! simulated-latency figures — these measure the library's own CPU
//! efficiency).
//!
//! Originally a Criterion harness; the workspace builds offline, so this
//! is a plain `harness = false` target timing each kernel over a few
//! iterations with `std::time::Instant` and reporting min/mean.

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use std::time::Instant;
use wisconsin::{join_input, sort_input, KeyOrder};
use write_limited::join::{grace_join, lazy_hash_join, JoinContext};
use write_limited::sort::{cycle_sort, external_merge_sort, segment_sort, SortContext};

const ITERS: usize = 5;

fn time<F: FnMut() -> usize>(label: &str, mut f: F) {
    // One warm-up run, then ITERS timed runs.
    let mut checksum = f();
    let mut times = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let start = Instant::now();
        checksum = checksum.max(f());
        times.push(start.elapsed().as_secs_f64());
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!("{label:<24} min {min:>9.4}s   mean {mean:>9.4}s   (result {checksum})");
}

fn bench_sorts() {
    for n in [10_000u64, 50_000] {
        time(&format!("sort/exms/{n}"), || {
            let dev = PmDevice::paper_default();
            let input = PCollection::from_records_uncounted(
                &dev,
                LayerKind::BlockedMemory,
                "t",
                sort_input(n, KeyOrder::Random, 1),
            );
            let pool = BufferPool::fraction_of(input.bytes(), 0.05);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
            external_merge_sort(&input, &ctx, "sorted").len()
        });
        time(&format!("sort/segs50/{n}"), || {
            let dev = PmDevice::paper_default();
            let input = PCollection::from_records_uncounted(
                &dev,
                LayerKind::BlockedMemory,
                "t",
                sort_input(n, KeyOrder::Random, 1),
            );
            let pool = BufferPool::fraction_of(input.bytes(), 0.05);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
            segment_sort(&input, 0.5, &ctx, "sorted")
                .expect("valid")
                .len()
        });
    }
}

fn bench_joins() {
    for t in [5_000u64, 20_000] {
        time(&format!("join/grace/{t}"), || {
            let dev = PmDevice::paper_default();
            let w = join_input(t, 5, 1);
            let left =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
            let right =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
            let pool = BufferPool::fraction_of(left.bytes(), 0.1);
            let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
            grace_join(&left, &right, &ctx, "out")
                .expect("applicable")
                .len()
        });
    }
    time("join/lazy_5k_x_25k", || {
        let dev = PmDevice::paper_default();
        let w = join_input(5_000, 5, 1);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::fraction_of(left.bytes(), 0.1);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        lazy_hash_join(&left, &right, &ctx, "out").len()
    });
}

fn bench_btree() {
    use wl_index::{BPlusTree, LeafPolicy};
    for (name, policy) in [
        ("sorted", LeafPolicy::Sorted),
        ("append", LeafPolicy::Append),
    ] {
        time(&format!("btree_insert_10k/{name}"), || {
            let dev = PmDevice::paper_default();
            let mut t = BPlusTree::new(&dev, 1024, policy);
            for i in 0..10_000u64 {
                t.insert((i * 7919) % 10_000, i);
            }
            t.len()
        });
    }
}

fn bench_cycle_sort() {
    let base: Vec<u64> = (0..2000).map(|i| (i * 7919) % 2000).collect();
    time("cycle_sort_2k", || {
        let mut v = base.clone();
        cycle_sort(&mut v)
    });
}

fn main() {
    bench_sorts();
    bench_joins();
    bench_btree();
    bench_cycle_sort();
}
