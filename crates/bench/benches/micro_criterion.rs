//! Criterion microbenchmarks: wall-clock cost of the core kernels
//! (independent of the simulated-latency figures — these measure the
//! library's own CPU efficiency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use wisconsin::{join_input, sort_input, KeyOrder};
use write_limited::join::{grace_join, JoinContext};
use write_limited::sort::{cycle_sort, external_merge_sort, segment_sort, SortContext};

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    for n in [10_000u64, 50_000] {
        group.bench_with_input(BenchmarkId::new("exms", n), &n, |b, &n| {
            b.iter(|| {
                let dev = PmDevice::paper_default();
                let input = PCollection::from_records_uncounted(
                    &dev,
                    LayerKind::BlockedMemory,
                    "t",
                    sort_input(n, KeyOrder::Random, 1),
                );
                let pool = BufferPool::fraction_of(input.bytes(), 0.05);
                let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
                external_merge_sort(&input, &ctx, "sorted").len()
            })
        });
        group.bench_with_input(BenchmarkId::new("segs50", n), &n, |b, &n| {
            b.iter(|| {
                let dev = PmDevice::paper_default();
                let input = PCollection::from_records_uncounted(
                    &dev,
                    LayerKind::BlockedMemory,
                    "t",
                    sort_input(n, KeyOrder::Random, 1),
                );
                let pool = BufferPool::fraction_of(input.bytes(), 0.05);
                let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
                segment_sort(&input, 0.5, &ctx, "sorted").expect("valid").len()
            })
        });
    }
    group.finish();
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    group.sample_size(10);
    for t in [5_000u64, 20_000] {
        group.bench_with_input(BenchmarkId::new("grace", t), &t, |b, &t| {
            b.iter(|| {
                let dev = PmDevice::paper_default();
                let w = join_input(t, 5, 1);
                let left = PCollection::from_records_uncounted(
                    &dev,
                    LayerKind::BlockedMemory,
                    "T",
                    w.left,
                );
                let right = PCollection::from_records_uncounted(
                    &dev,
                    LayerKind::BlockedMemory,
                    "V",
                    w.right,
                );
                let pool = BufferPool::fraction_of(left.bytes(), 0.1);
                let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
                grace_join(&left, &right, &ctx, "out").expect("applicable").len()
            })
        });
    }
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    use wl_index::{BPlusTree, LeafPolicy};
    let mut group = c.benchmark_group("btree_insert_10k");
    group.sample_size(10);
    for (name, policy) in [("sorted", LeafPolicy::Sorted), ("append", LeafPolicy::Append)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let dev = PmDevice::paper_default();
                let mut t = BPlusTree::new(&dev, 1024, policy);
                for i in 0..10_000u64 {
                    t.insert((i * 7919) % 10_000, i);
                }
                t.len()
            })
        });
    }
    group.finish();
}

fn bench_lazy_join(c: &mut Criterion) {
    use write_limited::join::lazy_hash_join;
    c.bench_function("lazy_join_5k_x_25k", |b| {
        b.iter(|| {
            let dev = PmDevice::paper_default();
            let w = join_input(5_000, 5, 1);
            let left =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
            let right =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
            let pool = BufferPool::fraction_of(left.bytes(), 0.1);
            let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
            lazy_hash_join(&left, &right, &ctx, "out").len()
        })
    });
}

fn bench_cycle_sort(c: &mut Criterion) {
    c.bench_function("cycle_sort_2k", |b| {
        let base: Vec<u64> = (0..2000).map(|i| (i * 7919) % 2000).collect();
        b.iter(|| {
            let mut v = base.clone();
            cycle_sort(&mut v)
        })
    });
}

criterion_group!(benches, bench_sorts, bench_joins, bench_btree, bench_lazy_join, bench_cycle_sort);
criterion_main!(benches);
