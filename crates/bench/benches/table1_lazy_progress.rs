//! Table 1: standard vs lazy hash join progression.
fn main() {
    wl_bench::figures::table1(&wl_bench::Scale::from_env());
}
