//! Fig. 7 reproduction.
fn main() {
    wl_bench::figures::fig7(&wl_bench::Scale::from_env());
}
