//! Fig. 8 reproduction.
fn main() {
    wl_bench::figures::fig8(&wl_bench::Scale::from_env());
}
