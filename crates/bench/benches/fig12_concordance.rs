//! Fig. 12 reproduction.
fn main() {
    wl_bench::figures::fig12(&wl_bench::Scale::from_env());
}
