//! Plan-level concordance sweep (Fig. 12, extended to whole plans).
fn main() {
    wl_bench::plan_concordance(&wl_bench::Scale::from_env());
}
