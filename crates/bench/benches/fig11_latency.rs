//! Fig. 11 reproduction.
fn main() {
    wl_bench::figures::fig11(&wl_bench::Scale::from_env());
}
