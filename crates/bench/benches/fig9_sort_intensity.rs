//! Fig. 9 reproduction.
fn main() {
    wl_bench::figures::fig9(&wl_bench::Scale::from_env());
}
