//! Fig. 5 reproduction.
fn main() {
    wl_bench::figures::fig5(&wl_bench::Scale::from_env());
}
