//! Fig. 10 reproduction.
fn main() {
    wl_bench::figures::fig10(&wl_bench::Scale::from_env());
}
