//! Skew-aware planning benchmark: Zipf-skewed star joins, planned two
//! ways over identical inputs.
//!
//! The *static uniform* arm is the pre-statistics engine: a catalog
//! that only knows row counts and key domains, planned with adaptivity
//! off — the uniform-assumption subset-DP of the paper's Eqs. 1–11.
//! The *adaptive+guided* arm attaches the ingest-time
//! `TableStatistics` sketches and leaves mid-run re-planning on, so
//! the DP sees true per-key frequencies (surfacing the
//! cardinality-guided join on hot-key-heavy edges) and any residual
//! misestimate is corrected at the first materialization point.
//!
//! Every query is checked against the naive oracle — result rows must
//! be bit-identical at DoP 1 and DoP 4 — and each arm's simulated
//! cacheline counters must not move with the degree of parallelism.
//! The reported reduction is in total `cl_reads + cl_writes`, the raw
//! device traffic both arms pay for the same answer.
//!
//! `repro --skew` writes `BENCH_skew.json`, a committed
//! host-independent summary (all numbers are ledger-derived); the
//! non-smoke run also sweeps *uniform* stars across DRAM budgets and
//! sizes and asserts Kendall τ between predicted and measured plan
//! cost stays ≥ 0.97 — statistics must sharpen skewed estimates
//! without disturbing the uniform concordance the planner already had.

use crate::Scale;
use planner::{
    execute_naive, execute_stream, Catalog, LogicalPlan, PlannedQuery, Planner, Predicate,
};
use pmem_sim::{BufferPool, IoStats, LayerKind, PCollection, Pm, PmDevice};
use std::sync::Arc;
use wisconsin::{Record as _, WisconsinRecord};
use write_limited::stats::{kendall_tau, TableStatistics};

/// Zipf exponent of the skewed dimensions (s ≥ 1.0 per the target).
const THETA: f64 = 1.2;
/// Sketch seed: any fixed value; determinism is what matters.
const STATS_SEED: u64 = 42;

/// One star query measured under both planning arms.
pub struct SkewCell {
    /// Query label (`star-3` … `star-5`).
    pub label: String,
    /// Number of joined tables (hub + dimensions).
    pub tables: usize,
    /// Device traffic of the static uniform-assumption plan.
    pub static_io: IoStats,
    /// Device traffic of the adaptive+guided plan.
    pub adaptive_io: IoStats,
    /// Result rows (identical in both arms and to the oracle).
    pub rows: u64,
    /// `1 − adaptive/static` in total `cl_reads + cl_writes`.
    pub reduction: f64,
    /// Whether the adaptive run actually re-planned mid-run.
    pub replanned: bool,
}

/// Shape of one star: a fact `F` of `center × fact_fanout` rows drawn
/// Zipf (`theta`) over the key domain `0..center` — the hot mass sits
/// on the *low* keys, and the query's `key < center/5` filter keeps
/// exactly that hot head — joined to `dims` unique full-domain
/// dimension tables `D_i`. Under the uniform assumption the filter
/// looks 20%-selective, so every intermediate that contains the
/// filtered fact is sized several times too small and the static plan
/// orders/configures its joins around a phantom tiny input; the
/// equi-depth histogram knows the head prefix carries most of the
/// Zipf mass. Dimension-only joins are exact in both arms, and the
/// output stays bounded by `|F|` (skew never multiplies against
/// skew), keeping the naive oracle tractable.
struct StarSpec {
    label: &'static str,
    center: u64,
    fact_fanout: u64,
    /// Number of unique full-domain dimension tables.
    dims: usize,
}

impl StarSpec {
    fn tables(&self) -> usize {
        self.dims + 1
    }

    /// The filter keeps the hot head: `key < center/5`.
    fn head(&self) -> u64 {
        (self.center / 5).max(1)
    }

    fn logical(&self) -> LogicalPlan {
        let mut plan = LogicalPlan::scan("F").filter(Predicate::KeyBelow(self.head()));
        for i in 0..self.dims {
            plan = plan.join(LogicalPlan::scan(format!("D{}", i + 1)));
        }
        plan
    }

    /// Builds the star's catalog on `dev`. `with_stats` attaches the
    /// ingest-time sketches; without it the catalog knows only row
    /// counts and key domains (the uniform assumption).
    fn catalog(&self, dev: &Pm, theta: f64, with_stats: bool) -> Catalog {
        let mut cat = Catalog::new();
        let mut add = |name: &str, keys: Vec<u64>, domain: u64| {
            let col = Arc::new(PCollection::from_records_uncounted(
                dev,
                LayerKind::BlockedMemory,
                name,
                keys.iter()
                    .enumerate()
                    .map(|(i, &k)| WisconsinRecord::from_key(k).with_payload(i as u64)),
            ));
            if with_stats {
                let stats = Arc::new(TableStatistics::build(&keys, STATS_SEED));
                cat.add_table_with_statistics(name, col, domain, stats);
            } else {
                cat.add_table(name, col, domain);
            }
        };
        let fact: Vec<u64> =
            wisconsin::skewed_input(self.center * self.fact_fanout, self.fact_fanout, theta, 7)
                .iter()
                .map(WisconsinRecord::key)
                .collect();
        add("F", fact, self.center);
        for i in 0..self.dims {
            add(
                &format!("D{}", i + 1),
                (0..self.center).collect(),
                self.center,
            );
        }
        cat
    }
}

/// One executed arm: canonical rows, device traffic, and whether
/// drift re-planned mid-run.
struct ArmRun {
    rows: Vec<Vec<u64>>,
    io: IoStats,
    replanned: bool,
}

/// Plans and runs one arm of one star on a fresh device. The plan is
/// enumerated once (serial costing) and only the *execution* degree of
/// parallelism varies with `threads`, so the DoP sweep checks the
/// operators' count-invariance rather than re-opening the plan choice.
fn run_arm(spec: &StarSpec, theta: f64, with_stats: bool, adapt: bool, threads: usize) -> ArmRun {
    let dev = PmDevice::paper_default();
    let cat = spec.catalog(&dev, theta, with_stats);
    let pool = BufferPool::new(pool_records(spec) * 80);
    let logical = spec.logical();
    let planned = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory)
        .with_adaptivity(adapt)
        .plan(&logical, &cat)
        .expect("star plans at this budget");
    let planned = PlannedQuery { threads, ..planned };
    let run =
        execute_stream(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("star runs");
    ArmRun {
        rows: run.result.all_rows().canonical_wide(),
        io: run.stats,
        replanned: run.adapted.is_some(),
    }
}

/// DRAM budget in records: a quarter of the hub — big enough for the
/// Grace applicability bound, small enough that partitioning is real.
fn pool_records(spec: &StarSpec) -> usize {
    (spec.center / 4).max(64) as usize
}

fn traffic(io: &IoStats) -> u64 {
    io.cl_reads + io.cl_writes
}

/// Runs every star under both arms at DoP 1 and 4, asserting oracle
/// row-identity and DoP-invariant counters, and returns the cells.
pub fn run_skew_cells(scale: &Scale) -> Vec<SkewCell> {
    // The hub scales with the configured join size; dimensions carry
    // 4× its rows. Floors keep the quick scale meaningful.
    let center = (scale.join_t / 4).max(500);
    let specs = [
        StarSpec {
            label: "star-3",
            center,
            fact_fanout: 4,
            dims: 2,
        },
        StarSpec {
            label: "star-4",
            center,
            fact_fanout: 4,
            dims: 3,
        },
        StarSpec {
            label: "star-5",
            center,
            fact_fanout: 4,
            dims: 4,
        },
    ];

    println!("=== Skew-aware planning: Zipf(θ = {THETA}) stars, hub = {center} keys ===");
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10} {:>9}   oracle",
        "query", "tables", "static r", "static w", "adaptive r", "adaptive w", "rows", "cut"
    );

    let mut cells = Vec::new();
    for spec in &specs {
        // The oracle ignores statistics; any arm's catalog works.
        let dev = PmDevice::paper_default();
        let oracle_cat = spec.catalog(&dev, THETA, false);
        let oracle = execute_naive(&spec.logical(), &oracle_cat)
            .expect("naive evaluates")
            .canonical_wide();

        let mut per_dop: Vec<(ArmRun, ArmRun)> = Vec::new();
        for threads in [1usize, 4] {
            let stat = run_arm(spec, THETA, false, false, threads);
            let adap = run_arm(spec, THETA, true, true, threads);
            assert_eq!(
                stat.rows, oracle,
                "{}: static rows diverged from the oracle at DoP {threads}",
                spec.label
            );
            assert_eq!(
                adap.rows, oracle,
                "{}: adaptive rows diverged from the oracle at DoP {threads}",
                spec.label
            );
            per_dop.push((stat, adap));
        }
        let (stat1, adap1) = &per_dop[0];
        let (stat4, adap4) = &per_dop[1];
        assert_eq!(
            stat1.io, stat4.io,
            "{}: static counters moved with DoP",
            spec.label
        );
        assert_eq!(
            adap1.io, adap4.io,
            "{}: adaptive counters moved with DoP",
            spec.label
        );

        let reduction = 1.0 - traffic(&adap1.io) as f64 / traffic(&stat1.io) as f64;
        println!(
            "{:<8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8.1}%   identical",
            spec.label,
            spec.tables(),
            stat1.io.cl_reads,
            stat1.io.cl_writes,
            adap1.io.cl_reads,
            adap1.io.cl_writes,
            oracle.len(),
            reduction * 100.0,
        );
        cells.push(SkewCell {
            label: spec.label.to_string(),
            tables: spec.tables(),
            static_io: stat1.io,
            adaptive_io: adap1.io,
            rows: oracle.len() as u64,
            reduction,
            replanned: adap1.replanned,
        });
    }
    cells
}

/// Total-traffic reduction across all cells (the acceptance figure).
pub fn total_reduction(cells: &[SkewCell]) -> f64 {
    let stat: u64 = cells.iter().map(|c| traffic(&c.static_io)).sum();
    let adap: u64 = cells.iter().map(|c| traffic(&c.adaptive_io)).sum();
    1.0 - adap as f64 / stat as f64
}

/// Uniform-workload concordance guard: the 3-table star with θ = 0
/// across hub sizes and DRAM budgets, statistics attached. Returns
/// Kendall τ between predicted and measured plan cost.
pub fn uniform_concordance(scale: &Scale) -> Option<f64> {
    let base = (scale.join_t / 8).max(250);
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    println!("=== Uniform stars (θ = 0): predicted vs measured plan cost ===");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>7}",
        "hub", "M recs", "predicted", "measured", "ratio"
    );
    for mult in [1u64, 2, 4] {
        for frac in [4u64, 8, 16] {
            let spec = StarSpec {
                label: "uniform-3",
                center: base * mult,
                fact_fanout: 4,
                dims: 2,
            };
            let dev = PmDevice::paper_default();
            let cat = spec.catalog(&dev, 0.0, true);
            let m_records = ((spec.center / frac).max(64)) as usize;
            let pool = BufferPool::new(m_records * 80);
            let planned = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory)
                .plan(&spec.logical(), &cat)
                .expect("uniform star plans");
            let run = execute_stream(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool)
                .expect("uniform star runs");
            let pred = planned.predicted.cost_units(dev.lambda());
            let meas = run.stats.cl_reads as f64 + dev.lambda() * run.stats.cl_writes as f64;
            println!(
                "{:>8} {:>8} {:>14.0} {:>14.0} {:>7.2}",
                spec.center,
                m_records,
                pred,
                meas,
                pred / meas
            );
            predicted.push(pred);
            measured.push(meas);
        }
    }
    kendall_tau(&predicted, &measured)
}

/// The full bench: measures the stars, guards the uniform concordance,
/// asserts the ≥ 20% acceptance bar, and writes `BENCH_skew.json`.
pub fn skew_bench(scale: &Scale) {
    let cells = run_skew_cells(scale);
    let total = total_reduction(&cells);
    let tau = uniform_concordance(scale);
    println!(
        "total traffic cut (cl_reads + cl_writes, all stars): {:.1}% (target >= 20%) — {}",
        total * 100.0,
        if total >= 0.20 { "PASS" } else { "FAIL" }
    );
    match tau {
        Some(t) => println!(
            "uniform plan concordance: Kendall τ = {t:.3} (target >= 0.97) — {}",
            if t >= 0.97 { "PASS" } else { "FAIL" }
        ),
        None => println!("uniform plan concordance: τ undefined (too few cells)"),
    }
    assert!(
        total >= 0.20,
        "adaptive+guided plans cut only {:.1}% of device traffic",
        total * 100.0
    );
    let t = tau.expect("enough uniform cells for τ");
    assert!(t >= 0.97, "uniform concordance collapsed: τ = {t:.3}");

    let path = "BENCH_skew.json";
    match std::fs::write(path, skew_summary_json(&cells, total, t)) {
        Ok(()) => println!("skew summary written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The CI smoke: one quick-scale pass over the stars. Oracle
/// row-identity and DoP-invariant counters are asserted inside
/// `run_skew_cells`; on top the smoke requires the guided arm to never
/// pay *more* traffic than the static one (the host-independent floor
/// — the 20% bar is the full bench's job).
pub fn skew_smoke(scale: &Scale) {
    let cells = run_skew_cells(scale);
    for c in &cells {
        println!(
            "{}: static {} vs adaptive {} total cachelines — {}",
            c.label,
            traffic(&c.static_io),
            traffic(&c.adaptive_io),
            if traffic(&c.adaptive_io) <= traffic(&c.static_io) {
                "PASS"
            } else {
                "FAIL"
            }
        );
        assert!(
            traffic(&c.adaptive_io) <= traffic(&c.static_io),
            "{}: guided plan pays more device traffic than the static one",
            c.label
        );
    }
    println!(
        "skew smoke PASS ({:.1}% total cut)",
        total_reduction(&cells) * 100.0
    );
}

/// Serializes the skew cells as the committed host-independent summary
/// (hand-rolled JSON; the offline environment has no serde). Every
/// figure is ledger-derived — no wall-clock fields — so the file is
/// identical on any machine.
pub fn skew_summary_json(cells: &[SkewCell], total: f64, tau: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"wl-skew-summary-v1\",\n");
    out.push_str(&format!(
        "  \"note\": \"Zipf(theta = {THETA}) star joins; static = uniform-assumption \
         catalog with adaptivity off, adaptive = ingest statistics + mid-run \
         re-planning; all counters are simulated cachelines (ledger-derived, \
         host-independent); rows are bit-identical to the naive oracle at DoP 1 \
         and 4 in every cell\",\n"
    ));
    out.push_str(&format!("  \"total_reduction\": {total:.4},\n"));
    out.push_str(&format!("  \"uniform_kendall_tau\": {tau:.4},\n"));
    out.push_str("  \"queries\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"tables\": {}, \
             \"static_cl_reads\": {}, \"static_cl_writes\": {}, \
             \"adaptive_cl_reads\": {}, \"adaptive_cl_writes\": {}, \
             \"rows\": {}, \"reduction\": {:.4}, \"replanned\": {}}}{}\n",
            c.label,
            c.tables,
            c.static_io.cl_reads,
            c.static_io.cl_writes,
            c.adaptive_io.cl_reads,
            c.adaptive_io.cl_writes,
            c.rows,
            c.reduction,
            c.replanned,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick-scale smoke is the test: oracle identity, DoP-stable
    /// counters, and guided ≤ static all assert inside.
    #[test]
    fn quick_scale_stars_never_regress_traffic() {
        skew_smoke(&Scale::quick());
    }

    #[test]
    fn summary_json_is_well_formed() {
        let cells = vec![SkewCell {
            label: "star-3".into(),
            tables: 3,
            static_io: IoStats::default(),
            adaptive_io: IoStats::default(),
            rows: 7,
            reduction: 0.25,
            replanned: false,
        }];
        let json = skew_summary_json(&cells, 0.25, 1.0);
        assert!(json.contains("\"wl-skew-summary-v1\""));
        assert!(json.contains("\"total_reduction\": 0.2500"));
        assert!(json.contains("\"uniform_kendall_tau\": 1.0000"));
        assert!(json.contains("\"rows\": 7"));
    }
}
