//! Reproduction driver: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! repro --all             # everything
//! repro --figure 5        # one figure (2, 5, 6, 7, 8, 9, 10, 11, 12)
//! repro --table 1         # Table 1
//! repro --ablation        # adaptive-join + auto-selection ablations
//! repro --config          # print the simulator configuration (Table 2 stand-in)
//! repro --breakdown       # per-collection write/read attribution for one SegS run
//! repro --plan            # plan-level concordance sweep (planner over Fig. 12)
//! repro --parallel        # speedup matrix; writes the BENCH_parallel.json summary
//! repro --parallel-smoke  # CI-sized DoP 1 vs 4 matrix, counters must be identical
//! repro --wall-gap-smoke  # GJ/HJ/ExMS wall-vs-critical-path gap (host-tolerant floor)
//! repro --profile         # span-tree profile (DoP 1 vs 4); writes BENCH_profile.json
//! repro --profile-smoke   # CI-sized structural check of the span profile
//! repro --crash           # 120-seed kill/reopen/verify loop; writes BENCH_crash.json
//! repro --crash-smoke     # CI-sized crash loop (12 seeds, no baseline file)
//! repro --skew            # Zipf-star adaptive-vs-static sweep; writes BENCH_skew.json
//! repro --skew-smoke      # CI-sized stars: guided <= static traffic, oracle rows
//! repro --threads 4 ...   # degree of parallelism for every scenario (= WL_THREADS)
//! WL_SCALE=quick repro --all
//! ```

use wl_bench::{ablation, figures, Scale};

fn print_config() {
    let cfg = pmem_sim::DeviceConfig::paper_default();
    println!("=== Simulator configuration (stands in for the paper's Table 2) ===");
    println!("read latency      {} ns per cacheline", cfg.latency.read_ns);
    println!(
        "write latency     {} ns per cacheline",
        cfg.latency.write_ns
    );
    println!("lambda (w/r)      {}", cfg.latency.lambda());
    println!("cacheline         {} bytes", pmem_sim::CACHELINE);
    println!("collection block  {} bytes", cfg.block_size);
    println!("PMFS call cost    {} ns", cfg.pmfs_call_ns);
    println!("RAM-disk call cost {} ns", cfg.ramdisk_call_ns);
}

fn breakdown_demo(scale: &wl_bench::Scale) {
    use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
    use write_limited::sort::{segment_sort, SortContext};

    let dev = PmDevice::paper_default();
    dev.metrics().enable_breakdown();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "input",
        wisconsin::sort_input(scale.sort_n / 2, wisconsin::KeyOrder::Random, 42),
    );
    let pool = BufferPool::fraction_of(input.bytes(), 0.05);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let out = segment_sort(&input, 0.5, &ctx, "sorted-output").expect("valid");
    println!(
        "=== Per-collection I/O of SegS 50% on {} records (cachelines) ===",
        out.len()
    );
    println!("{:<20} {:>12} {:>12}", "collection", "writes", "reads");
    for (name, stats) in dev.metrics().breakdown() {
        println!("{name:<20} {:>12} {:>12}", stats.cl_writes, stats.cl_reads);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--threads N` sets the default degree of parallelism for every
    // scenario. The flag is explicit, so it outranks the `WL_THREADS`
    // environment variable via the shared resolver.
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .expect("usage: repro --threads <N> (positive integer)");
        write_limited::parallel::set_default_threads(n);
        args.drain(i..i + 2);
    }
    let scale = Scale::from_env();
    eprintln!(
        "scale: sort_n={}, join |T|={}, fanout={}, threads={}",
        scale.sort_n,
        scale.join_t,
        scale.join_fanout,
        write_limited::parallel::degree_from_env()
    );

    let run_fig = |n: u32| match n {
        2 => figures::fig2(),
        5 => figures::fig5(&scale),
        6 => figures::fig6(&scale),
        7 => figures::fig7(&scale),
        8 => figures::fig8(&scale),
        9 => figures::fig9(&scale),
        10 => figures::fig10(&scale),
        11 => figures::fig11(&scale),
        12 => figures::fig12(&scale),
        other => eprintln!("no figure {other} in the paper's evaluation"),
    };

    match args.first().map(String::as_str) {
        Some("--all") | None => {
            print_config();
            figures::table1(&scale);
            for f in [2, 5, 6, 7, 8, 9, 10, 11, 12] {
                run_fig(f);
            }
            ablation::adaptive_vs_fixed(&scale);
            ablation::auto_selection(&scale);
            ablation::energy_and_wear(&scale);
            ablation::aggregation(&scale);
            ablation::index_leaf_policies(&scale);
            ablation::input_order(&scale);
            wl_bench::plan_concordance(&scale);
            wl_bench::parallel_speedup(&scale, &[1, 2, 4, 8]);
        }
        Some("--figure") => {
            let n: u32 = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .expect("usage: repro --figure <n>");
            run_fig(n);
        }
        Some("--table") => figures::table1(&scale),
        Some("--ablation") => {
            ablation::adaptive_vs_fixed(&scale);
            ablation::auto_selection(&scale);
            ablation::energy_and_wear(&scale);
            ablation::aggregation(&scale);
            ablation::index_leaf_policies(&scale);
            ablation::input_order(&scale);
        }
        Some("--plan") => wl_bench::plan_concordance(&scale),
        Some("--parallel") => wl_bench::parallel_speedup(&scale, &[1, 2, 4, 8]),
        Some("--parallel-smoke") => {
            // CI bench smoke: the matrix itself asserts the counters are
            // identical across DoPs, so completing the run is the check.
            wl_bench::parallel_speedup_cells(&scale, &[1, 4], true);
        }
        Some("--wall-gap-smoke") => wl_bench::wall_gap_smoke(&scale),
        Some("--profile") => wl_bench::profile_to_file(&scale),
        Some("--profile-smoke") => wl_bench::profile_smoke(&scale),
        Some("--skew") => wl_bench::skew_bench(&scale),
        Some("--skew-smoke") => wl_bench::skew_smoke(&scale),
        Some("--crash") => wl_bench::crash_harness(),
        Some("--crash-smoke") => wl_bench::crash_smoke(),
        Some("--config") => print_config(),
        Some("--breakdown") => breakdown_demo(&scale),
        Some(other) => {
            eprintln!(
                "unknown flag {other}; see \
                 --all/--figure/--table/--ablation/--plan/--parallel/\
                 --parallel-smoke/--wall-gap-smoke/--profile/\
                 --profile-smoke/--crash/--crash-smoke/--skew/\
                 --skew-smoke/--config"
            );
        }
    }
}
