//! Parallel partition execution: the wall-clock speedup scenario and
//! the tracked speedup baseline.
//!
//! Simulated time is traffic-derived, so the degree of parallelism
//! cannot change it — what morsel-driven execution buys is *harness
//! wall-clock*. This scenario runs the parallel algorithms at several
//! DoPs over identical inputs and reports, per degree:
//!
//! * measured wall-clock time and speedup over serial (bounded by the
//!   host's cores — a CI container pinned to one core shows ~1.0×);
//! * the **critical-path speedup**: the ratio between the serial sum of
//!   all phase costs and `serial phases + makespan of the per-task
//!   costs over DoP workers`, computed from the per-worker ledgers of an
//!   actual run. This is deterministic, host-independent, and is what
//!   the wall-clock converges to on a machine with enough cores;
//! * whether the simulated cacheline counters match the serial run
//!   exactly (they must — the worker pool is count-invariant).
//!
//! `repro --parallel` additionally writes `BENCH_parallel.json`, a
//! committed host-independent summary: per cell the ledger-derived
//! critical-path speedup plus the wall/cp gap ratio — `null` when the
//! recording host had fewer cores than the DoP, so the file diffs
//! cleanly across machines. With sharded accounting (metrics shards +
//! pool leases merging at barriers) the wall-clock is expected to track
//! the critical path: the non-smoke run asserts the DoP-4 gap for
//! GJ/HJ/ExMS on hosts with enough cores.

use crate::Scale;
use pmem_sim::{BufferPool, IoStats, LatencyProfile, LayerKind, PCollection, PmDevice};
use std::time::Instant;
use wisconsin::{join_input, sort_input, KeyOrder, WisconsinRecord};
use write_limited::join::{
    grace_join_profiled, hash_join_profiled, lazy_hash_join_profiled, nested_loops_join_profiled,
    segmented_grace_join_frac, JoinContext,
};
use write_limited::sort::{external_merge_sort_profiled, SortContext};

/// One algorithm's measurement at one degree of parallelism.
pub struct Cell {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Degree of parallelism of this run.
    pub dop: usize,
    /// Measured harness wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Wall-clock speedup over the DoP-1 run of the same algorithm.
    pub wall_speedup: f64,
    /// Simulated cacheline traffic (must be identical at every DoP).
    pub stats: IoStats,
    /// Ledger-derived critical-path speedup at this DoP (`None` when
    /// the algorithm exposes no per-task profile).
    pub cp_speedup: Option<f64>,
}

/// Makespan of scheduling `parts` (ns each) greedily onto `dop` workers.
fn makespan(parts: &[f64], dop: usize) -> f64 {
    let mut loads = vec![0.0f64; dop.max(1)];
    for &p in parts {
        let min = loads
            .iter_mut()
            .min_by(|a, b| a.total_cmp(b))
            .expect("non-empty loads");
        *min += p;
    }
    loads.iter().cloned().fold(0.0, f64::max)
}

/// Critical-path speedup from a run's total traffic and its sequential
/// phases of independent per-task ledgers: the uncovered residual stays
/// serial; each phase contributes the makespan of its tasks over
/// `threads` workers.
fn cp_speedup_from_phases(total: &IoStats, phases: &[&[IoStats]], threads: usize) -> f64 {
    let lat = &LatencyProfile::PCM;
    let total_ns = total.time_ns(lat);
    let mut covered = 0.0;
    let mut cp_ns = 0.0;
    for phase in phases {
        let ns: Vec<f64> = phase.iter().map(|s| s.time_ns(lat)).collect();
        covered += ns.iter().sum::<f64>();
        cp_ns += makespan(&ns, threads);
    }
    cp_ns += (total_ns - covered).max(0.0);
    total_ns / cp_ns
}

/// Shared bracketing of one join measurement: stage the inputs, run
/// `join` under a context at `threads`, check the match count, and turn
/// the returned phase ledgers (each phase a list of independent task
/// costs, phases sequential) into the critical-path speedup. `None`
/// phases mark algorithms without a per-task profile.
fn time_join(
    algorithm: &'static str,
    t: u64,
    fanout: u64,
    m_records: usize,
    threads: usize,
    join: impl FnOnce(
        &PCollection<WisconsinRecord>,
        &PCollection<WisconsinRecord>,
        &JoinContext<'_>,
    ) -> (u64, Option<Vec<Vec<IoStats>>>),
) -> Cell {
    let dev = PmDevice::paper_default();
    let w = join_input(t, fanout, 7);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(m_records * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    let start = Instant::now();
    let (out_len, phases) = join(&left, &right, &ctx);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        out_len, w.expected_matches,
        "{algorithm}: wrong join result"
    );
    let stats = dev.snapshot().since(&before);
    let cp_speedup = phases.map(|ph| {
        let slices: Vec<&[IoStats]> = ph.iter().map(Vec::as_slice).collect();
        cp_speedup_from_phases(&stats, &slices, threads)
    });
    Cell {
        algorithm,
        dop: threads,
        wall_ms,
        wall_speedup: 1.0,
        stats,
        cp_speedup,
    }
}

/// Build and probe scans alternate pass by pass; each scan's morsels
/// fan out.
fn iter_join_phases(profile: write_limited::join::IterJoinProfile) -> Vec<Vec<IoStats>> {
    profile
        .per_build_morsel
        .into_iter()
        .zip(profile.per_probe_morsel)
        .flat_map(|(b, p)| [b, p])
        .collect()
}

fn time_grace(t: u64, fanout: u64, m_records: usize, threads: usize) -> Cell {
    time_join("GJ", t, fanout, m_records, threads, |l, r, ctx| {
        let (out, p) = grace_join_profiled(l, r, ctx, "out").expect("applicable");
        (
            out.len() as u64,
            Some(vec![p.per_morsel_left, p.per_morsel_right, p.per_partition]),
        )
    })
}

fn time_hash(t: u64, fanout: u64, m_records: usize, threads: usize) -> Cell {
    time_join("HJ", t, fanout, m_records, threads, |l, r, ctx| {
        let (out, p) = hash_join_profiled(l, r, ctx, "out");
        (out.len() as u64, Some(iter_join_phases(p)))
    })
}

fn time_lazy(t: u64, fanout: u64, m_records: usize, threads: usize) -> Cell {
    time_join("LaJ", t, fanout, m_records, threads, |l, r, ctx| {
        let (out, p) = lazy_hash_join_profiled(l, r, ctx, "out");
        (out.len() as u64, Some(iter_join_phases(p)))
    })
}

fn time_nlj(t: u64, fanout: u64, m_records: usize, threads: usize) -> Cell {
    time_join("NLJ", t, fanout, m_records, threads, |l, r, ctx| {
        let (out, p) = nested_loops_join_profiled(l, r, ctx, "out");
        (out.len() as u64, Some(vec![p.per_block]))
    })
}

fn time_segj(t: u64, fanout: u64, m_records: usize, threads: usize) -> Cell {
    time_join("SegJ 25%", t, fanout, m_records, threads, |l, r, ctx| {
        let out = segmented_grace_join_frac(l, r, 0.25, ctx, "out").expect("applicable");
        (out.len() as u64, None)
    })
}

fn time_sort(n: u64, m_records: usize, threads: usize) -> Cell {
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "S",
        sort_input(n, KeyOrder::Random, 7),
    );
    let pool = BufferPool::new(m_records * 80);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    let start = Instant::now();
    let (out, profile) = external_merge_sort_profiled(&input, &ctx, "sorted");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.len() as u64, n, "wrong sort result");
    let stats = dev.snapshot().since(&before);
    // Run generation, then each merge pass, end to end.
    let mut phases: Vec<&[IoStats]> = vec![&profile.run_generation];
    phases.extend(profile.merge_passes.iter().map(Vec::as_slice));
    let cp = cp_speedup_from_phases(&stats, &phases, threads);
    Cell {
        algorithm: "ExMS",
        dop: threads,
        wall_ms,
        wall_speedup: 1.0,
        stats,
        cp_speedup: Some(cp),
    }
}

/// Prints one algorithm's rows, fills in the wall-clock speedups, and
/// panics if any degree's counters diverge from the serial run. Returns
/// (wall, critical-path) speedup at DoP 4 (1.0 when not measured).
fn report(dops: &[usize], cells: &mut [Cell]) -> (f64, f64) {
    let base_wall = cells[0].wall_ms;
    let base_stats = cells[0].stats;
    let mut at4 = (1.0, 1.0);
    for (dop, cell) in dops.iter().zip(cells) {
        cell.wall_speedup = base_wall / cell.wall_ms;
        if *dop == 4 {
            at4 = (cell.wall_speedup, cell.cp_speedup.unwrap_or(1.0));
        }
        let counts_ok = cell.stats.cl_reads == base_stats.cl_reads
            && cell.stats.cl_writes == base_stats.cl_writes;
        let cp = cell
            .cp_speedup
            .map_or(format!("{:>9}", "-"), |s| format!("{s:>8.2}x"));
        println!(
            "{:<10} {dop:>4} {:>10.1} {:>8.2}x {cp} {:>12} {:>12}   {}",
            cell.algorithm,
            cell.wall_ms,
            cell.wall_speedup,
            cell.stats.cl_reads,
            cell.stats.cl_writes,
            if counts_ok { "identical" } else { "MISMATCH" },
        );
        assert!(
            counts_ok,
            "{}: simulated counts diverged at DoP {dop} \
             ({:?} vs serial {:?})",
            cell.algorithm, cell.stats, base_stats
        );
    }
    at4
}

/// Runs the parallel algorithms at each degree in `dops` and prints the
/// wall-clock scaling table; returns every measured cell for the JSON
/// baseline. Panics if any degree's simulated cacheline counts diverge
/// from the serial run. With `smoke`, sizes come straight from `scale`
/// (no wall-clock floors) and the wall-clock targets are not evaluated —
/// the CI-friendly counters-and-critical-path check.
pub fn parallel_speedup_cells(scale: &Scale, dops: &[usize], smoke: bool) -> Vec<Cell> {
    // Wall-clock scaling needs enough work per partition to amortize
    // thread spawns; floor the sizes at a few hundred ms of serial work.
    let t = if smoke {
        scale.join_t
    } else {
        scale.join_t.max(30_000)
    };
    let fanout = if smoke {
        scale.join_fanout
    } else {
        scale.join_fanout.max(8)
    };
    let sort_n = if smoke {
        scale.sort_n
    } else {
        scale.sort_n.max(200_000)
    };
    let m_records = (t / 10).max(16) as usize;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    println!("=== Parallel execution: wall-clock and critical-path speedup ===");
    println!(
        "joins: |T| = {t}, |V| = {}, M = {m_records} records; \
         sort: {sort_n} records, M = {} records; host cores: {cores}",
        t * fanout,
        (sort_n / 100).max(16),
    );
    println!(
        "{:<10} {:>4} {:>10} {:>9} {:>9} {:>12} {:>12}   counts",
        "algorithm", "DoP", "wall ms", "wall spd", "crit spd", "cl reads", "cl writes"
    );

    let mut all: Vec<Cell> = Vec::new();
    let mut gj: Vec<Cell> = dops
        .iter()
        .map(|&d| time_grace(t, fanout, m_records, d))
        .collect();
    let (gj_wall, gj_cp) = report(dops, &mut gj);
    all.extend(gj);

    let mut hj: Vec<Cell> = dops
        .iter()
        .map(|&d| time_hash(t, fanout, m_records, d))
        .collect();
    let (hj_wall, hj_cp) = report(dops, &mut hj);
    all.extend(hj);

    let mut nlj: Vec<Cell> = dops
        .iter()
        .map(|&d| time_nlj(t, fanout, m_records, d))
        .collect();
    report(dops, &mut nlj);
    all.extend(nlj);

    let mut laj: Vec<Cell> = dops
        .iter()
        .map(|&d| time_lazy(t, fanout, m_records, d))
        .collect();
    report(dops, &mut laj);
    all.extend(laj);

    let mut segj: Vec<Cell> = dops
        .iter()
        .map(|&d| time_segj(t, fanout, m_records, d))
        .collect();
    report(dops, &mut segj);
    all.extend(segj);

    let mut exms: Vec<Cell> = dops
        .iter()
        .map(|&d| time_sort(sort_n, (sort_n / 100).max(16) as usize, d))
        .collect();
    let (exms_wall, exms_cp) = report(dops, &mut exms);
    all.extend(exms);

    if smoke {
        println!("smoke mode: counters identical at every DoP — PASS");
        return all;
    }

    // The acceptance bar: once accounting is sharded (no shared RMW per
    // counted access), wall-clock catches the ledger-derived critical
    // path — DoP-4 wall within ~25% of the cp speedup and >= 2x
    // absolute. Host-gated: a box with fewer than 4 cores cannot scale
    // wall-clock, so there the run reports cp only.
    let wall_floor = 2.0;
    let gap_floor = 0.75;
    let cp_target = 2.5;
    for (name, wall, cp) in [
        ("GJ", gj_wall, gj_cp),
        ("HJ", hj_wall, hj_cp),
        ("ExMS", exms_wall, exms_cp),
    ] {
        println!(
            "{name} critical-path speedup at DoP 4 (per-worker ledgers, \
             host-independent): {cp:.2}x (target >= {cp_target}x) — {}",
            if cp >= cp_target { "PASS" } else { "FAIL" }
        );
        if cores >= 4 {
            let gap = wall / cp;
            println!(
                "{name} wall-clock speedup at DoP 4: {wall:.2}x, wall/cp \
                 gap {gap:.2} (targets >= {wall_floor}x and >= {gap_floor}) — {}",
                if wall >= wall_floor && gap >= gap_floor {
                    "PASS"
                } else {
                    "FAIL"
                }
            );
            assert!(
                wall >= wall_floor && gap >= gap_floor,
                "{name}: DoP-4 wall-clock speedup {wall:.2}x (wall/cp gap \
                 {gap:.2}) below the acceptance bar (>= {wall_floor}x and \
                 gap >= {gap_floor})"
            );
        } else {
            println!(
                "{name} wall-clock speedup at DoP 4: {wall:.2}x — host has \
                 {cores} core(s), wall cannot scale here; gap assertion skipped"
            );
        }
    }
    all
}

/// Runs the speedup matrix and writes the committed host-independent
/// summary to `BENCH_parallel.json` in the working directory.
pub fn parallel_speedup(scale: &Scale, dops: &[usize]) {
    let cells = parallel_speedup_cells(scale, dops, false);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let path = "BENCH_parallel.json";
    match std::fs::write(path, summary_json(&cells, cores)) {
        Ok(()) => println!("speedup summary written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The wall-gap CI smoke: GJ, HJ, and ExMS at DoP 1 and 4 with inputs
/// just big enough to amortize thread spawns. Counter identity is
/// asserted unconditionally (inside `report`); the wall/cp gap gets a
/// host-tolerant floor — half the full-run bar, evaluated only when the
/// host actually has 4 cores — so the smoke passes on small CI boxes
/// while still catching an accounting-contention regression on real
/// ones.
pub fn wall_gap_smoke(scale: &Scale) {
    let t = scale.join_t.max(12_000);
    let fanout = scale.join_fanout.max(4);
    let sort_n = scale.sort_n.max(120_000);
    let m_records = (t / 10).max(16) as usize;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let dops = [1usize, 4];

    println!("=== Wall-vs-critical-path gap smoke ===");
    println!(
        "joins: |T| = {t}, |V| = {}, M = {m_records} records; \
         sort: {sort_n} records; host cores: {cores}",
        t * fanout,
    );
    println!(
        "{:<10} {:>4} {:>10} {:>9} {:>9} {:>12} {:>12}   counts",
        "algorithm", "DoP", "wall ms", "wall spd", "crit spd", "cl reads", "cl writes"
    );
    let mut gj: Vec<Cell> = dops
        .iter()
        .map(|&d| time_grace(t, fanout, m_records, d))
        .collect();
    let (gj_wall, gj_cp) = report(&dops, &mut gj);
    let mut hj: Vec<Cell> = dops
        .iter()
        .map(|&d| time_hash(t, fanout, m_records, d))
        .collect();
    let (hj_wall, hj_cp) = report(&dops, &mut hj);
    let mut exms: Vec<Cell> = dops
        .iter()
        .map(|&d| time_sort(sort_n, (sort_n / 100).max(16) as usize, d))
        .collect();
    let (exms_wall, exms_cp) = report(&dops, &mut exms);

    if cores < 4 {
        println!(
            "host has {cores} core(s): wall-clock cannot scale; counters \
             checked, gap floor skipped"
        );
        return;
    }
    let wall_floor = 1.5;
    let gap_floor = 0.5;
    for (name, wall, cp) in [
        ("GJ", gj_wall, gj_cp),
        ("HJ", hj_wall, hj_cp),
        ("ExMS", exms_wall, exms_cp),
    ] {
        let gap = wall / cp;
        println!(
            "{name}: wall {wall:.2}x, cp {cp:.2}x, wall/cp gap {gap:.2} \
             (smoke floors >= {wall_floor}x and >= {gap_floor}) — {}",
            if wall >= wall_floor && gap >= gap_floor {
                "PASS"
            } else {
                "FAIL"
            }
        );
        assert!(
            wall >= wall_floor && gap >= gap_floor,
            "{name}: smoke wall-clock speedup {wall:.2}x (gap {gap:.2}) \
             below the host-tolerant floor"
        );
    }
    println!("wall-gap smoke PASS");
}

/// Serializes the measured cells as the committed host-independent
/// summary (hand-rolled JSON; the offline environment has no serde).
///
/// `cp_speedup` comes from the per-worker ledgers, so it is identical on
/// every machine; `wall_cp_gap` (wall speedup ÷ cp speedup) is only
/// meaningful when the recording host could actually scale to the cell's
/// DoP and is `null` otherwise — which keeps the committed file stable
/// across hosts of any width.
pub fn summary_json(cells: &[Cell], cores: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"wl-parallel-summary-v1\",\n");
    out.push_str(&format!(
        "  \"note\": \"cp_speedup is ledger-derived and host-independent; \
         wall_cp_gap = wall_speedup / cp_speedup, null when the recording \
         host had fewer cores than the dop (recorded on a {cores}-core host)\",\n"
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let cp = c
            .cp_speedup
            .map_or("null".to_string(), |s| format!("{s:.4}"));
        let gap = match c.cp_speedup {
            Some(cp) if cores >= c.dop && cp > 0.0 => {
                format!("{:.4}", c.wall_speedup / cp)
            }
            _ => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"dop\": {}, \"cp_speedup\": {cp}, \
             \"wall_cp_gap\": {gap}, \"cl_reads\": {}, \"cl_writes\": {}}}{}\n",
            c.algorithm,
            c.dop,
            c.stats.cl_reads,
            c.stats.cl_writes,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_balances_greedily() {
        assert_eq!(makespan(&[3.0, 3.0, 3.0, 3.0], 4), 3.0);
        assert_eq!(makespan(&[4.0, 2.0, 2.0], 2), 4.0);
        assert_eq!(makespan(&[1.0, 1.0], 1), 2.0);
    }

    #[test]
    fn critical_path_speedups_meet_the_acceptance_target() {
        // The acceptance bar: ledger-derived critical-path speedup of at
        // least 2.5x at DoP 4 for ExMS end-to-end (including the final
        // merge) and for the standard hash join. Deterministic — no
        // wall-clock involved — so it can run on any CI box.
        let exms = time_sort(60_000, 600, 4);
        assert!(
            exms.cp_speedup.expect("profiled") >= 2.5,
            "ExMS critical-path speedup {:?} below 2.5x",
            exms.cp_speedup
        );
        let hj = time_hash(20_000, 4, 2_000, 4);
        assert!(
            hj.cp_speedup.expect("profiled") >= 2.5,
            "HJ critical-path speedup {:?} below 2.5x",
            hj.cp_speedup
        );
    }

    #[test]
    fn summary_json_is_host_independent() {
        let cells = vec![
            Cell {
                algorithm: "GJ",
                dop: 1,
                wall_ms: 40.0,
                wall_speedup: 1.0,
                stats: IoStats::default(),
                cp_speedup: Some(1.0),
            },
            Cell {
                algorithm: "GJ",
                dop: 4,
                wall_ms: 12.5,
                wall_speedup: 3.2,
                stats: IoStats::default(),
                cp_speedup: Some(3.4),
            },
        ];
        // On a wide host the DoP-4 gap is recorded…
        let wide = summary_json(&cells, 8);
        assert!(wide.contains("\"schema\": \"wl-parallel-summary-v1\""));
        assert!(wide.contains("\"cp_speedup\": 3.4000"));
        assert!(wide.contains("\"wall_cp_gap\": 0.9412"));
        // …and on a narrow host it is null (cp stays), so the committed
        // file never encodes the recording machine's width as numbers.
        let narrow = summary_json(&cells, 1);
        assert!(narrow.contains("\"cp_speedup\": 3.4000"));
        assert!(narrow.contains("\"wall_cp_gap\": null"));
        // DoP 1 always has a gap (any host has >= 1 core).
        assert!(narrow.contains("\"wall_cp_gap\": 1.0000"));
    }

    #[test]
    fn smoke_matrix_keeps_counters_identical() {
        // The CI smoke path: a small matrix at DoP 1 vs 4; `report`
        // inside asserts counter identity, so reaching the end is the
        // check.
        let scale = Scale {
            sort_n: 20_000,
            join_t: 3_000,
            join_fanout: 3,
            ..Scale::quick()
        };
        let cells = parallel_speedup_cells(&scale, &[1, 4], true);
        assert_eq!(cells.len(), 12, "six algorithms at two DoPs");
    }
}
