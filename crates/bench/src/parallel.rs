//! Parallel partition execution: the wall-clock speedup scenario.
//!
//! Simulated time is traffic-derived, so the degree of parallelism
//! cannot change it — what parallel partition execution buys is *harness
//! wall-clock*. This scenario runs the partitioned algorithms at DoP 1,
//! 2, 4, and 8 over identical inputs and reports, per degree:
//!
//! * measured wall-clock time and speedup over serial (bounded by the
//!   host's cores — a CI container pinned to one core shows ~1.0×);
//! * the **critical-path speedup**: the ratio between the serial sum of
//!   all phase costs and `serial phases + makespan of the per-partition
//!   costs over DoP workers`, computed from the per-worker ledgers of an
//!   actual run. This is deterministic, host-independent, and is what
//!   the wall-clock converges to on a machine with enough cores;
//! * whether the simulated cacheline counters match the serial run
//!   exactly (they must — the worker pool is count-invariant).

use crate::Scale;
use pmem_sim::{BufferPool, IoStats, LatencyProfile, LayerKind, PCollection, PmDevice};
use std::time::Instant;
use wisconsin::{join_input, sort_input, KeyOrder};
use write_limited::join::{grace_join_profiled, segmented_grace_join_frac, JoinContext};
use write_limited::sort::{external_merge_sort, SortContext};

/// One algorithm's measurement at one degree of parallelism.
struct Cell {
    wall_ms: f64,
    stats: IoStats,
    /// Simulated critical-path speedup at this DoP (1.0 when the
    /// algorithm exposes no per-partition profile).
    cp_speedup: f64,
}

/// Makespan of scheduling `parts` (ns each) greedily onto `dop` workers.
fn makespan(parts: &[f64], dop: usize) -> f64 {
    let mut loads = vec![0.0f64; dop.max(1)];
    for &p in parts {
        let min = loads
            .iter_mut()
            .min_by(|a, b| a.total_cmp(b))
            .expect("non-empty loads");
        *min += p;
    }
    loads.iter().cloned().fold(0.0, f64::max)
}

fn time_grace(t: u64, fanout: u64, m_records: usize, threads: usize) -> Cell {
    let dev = PmDevice::paper_default();
    let w = join_input(t, fanout, 7);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(m_records * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    let start = Instant::now();
    let (out, profile) = grace_join_profiled(&left, &right, &ctx, "out").expect("applicable");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.len() as u64, w.expected_matches, "wrong join result");
    let stats = dev.snapshot().since(&before);

    // Critical path from the per-worker ledgers: each phase's elapsed
    // estimate is the makespan of its independent tasks over `threads`
    // workers; phases run one after the other, exactly as the executor
    // schedules them. The residual (task-creation traffic not captured
    // in any ledger) stays serial.
    let lat = &LatencyProfile::PCM;
    let total_ns = stats.time_ns(lat);
    let ns = |v: &[IoStats]| v.iter().map(|s| s.time_ns(lat)).collect::<Vec<f64>>();
    let (lm, rm, parts) = (
        ns(&profile.per_morsel_left),
        ns(&profile.per_morsel_right),
        ns(&profile.per_partition),
    );
    let covered: f64 = lm.iter().chain(&rm).chain(&parts).sum();
    let cp_ns = (total_ns - covered)
        + makespan(&lm, threads)
        + makespan(&rm, threads)
        + makespan(&parts, threads);
    Cell {
        wall_ms,
        stats,
        cp_speedup: total_ns / cp_ns,
    }
}

fn time_segj(t: u64, fanout: u64, m_records: usize, threads: usize) -> Cell {
    let dev = PmDevice::paper_default();
    let w = join_input(t, fanout, 7);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(m_records * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    let start = Instant::now();
    let out = segmented_grace_join_frac(&left, &right, 0.25, &ctx, "out").expect("applicable");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.len() as u64, w.expected_matches, "wrong join result");
    Cell {
        wall_ms,
        stats: dev.snapshot().since(&before),
        cp_speedup: 1.0,
    }
}

fn time_sort(n: u64, m_records: usize, threads: usize) -> Cell {
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "S",
        sort_input(n, KeyOrder::Random, 7),
    );
    let pool = BufferPool::new(m_records * 80);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    let start = Instant::now();
    let out = external_merge_sort(&input, &ctx, "sorted");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.len() as u64, n, "wrong sort result");
    Cell {
        wall_ms,
        stats: dev.snapshot().since(&before),
        cp_speedup: 1.0,
    }
}

/// Prints one algorithm's rows; returns (wall, critical-path) speedup at
/// DoP 4 (1.0 when that degree was not measured).
fn report(name: &str, dops: &[usize], cells: &[Cell], show_cp: bool) -> (f64, f64) {
    let base = &cells[0];
    let mut at4 = (1.0, 1.0);
    for (dop, cell) in dops.iter().zip(cells) {
        let speedup = base.wall_ms / cell.wall_ms;
        if *dop == 4 {
            at4 = (speedup, cell.cp_speedup);
        }
        let counts_ok = cell.stats.cl_reads == base.stats.cl_reads
            && cell.stats.cl_writes == base.stats.cl_writes;
        let cp = if show_cp {
            format!("{:>8.2}x", cell.cp_speedup)
        } else {
            format!("{:>9}", "-")
        };
        println!(
            "{name:<10} {dop:>4} {:>10.1} {speedup:>8.2}x {cp} {:>12} {:>12}   {}",
            cell.wall_ms,
            cell.stats.cl_reads,
            cell.stats.cl_writes,
            if counts_ok { "identical" } else { "MISMATCH" },
        );
        assert!(
            counts_ok,
            "{name}: simulated counts diverged at DoP {dop} \
             ({:?} vs serial {:?})",
            cell.stats, base.stats
        );
    }
    at4
}

/// Runs the partitioned algorithms at each degree in `dops` and prints
/// the wall-clock scaling table. Panics if any degree's simulated
/// cacheline counts diverge from the serial run.
pub fn parallel_speedup(scale: &Scale, dops: &[usize]) {
    // Wall-clock scaling needs enough work per partition to amortize
    // thread spawns; floor the sizes at a few hundred ms of serial work.
    let t = scale.join_t.max(30_000);
    let fanout = scale.join_fanout.max(8);
    let sort_n = scale.sort_n.max(200_000);
    let m_records = (t / 10) as usize;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    println!("=== Parallel partition execution: wall-clock speedup ===");
    println!(
        "Grace join: |T| = {t}, |V| = {}, M = {m_records} records; \
         sort: {sort_n} records; host cores: {cores}",
        t * fanout
    );
    println!(
        "{:<10} {:>4} {:>10} {:>9} {:>9} {:>12} {:>12}   counts",
        "algorithm", "DoP", "wall ms", "wall spd", "crit spd", "cl reads", "cl writes"
    );

    let gj: Vec<Cell> = dops
        .iter()
        .map(|&d| time_grace(t, fanout, m_records, d))
        .collect();
    let (gj_wall, gj_cp) = report("GJ", dops, &gj, true);

    let segj: Vec<Cell> = dops
        .iter()
        .map(|&d| time_segj(t, fanout, m_records, d))
        .collect();
    report("SegJ 25%", dops, &segj, false);

    let exms: Vec<Cell> = dops
        .iter()
        .map(|&d| time_sort(sort_n, (sort_n / 100) as usize, d))
        .collect();
    report("ExMS", dops, &exms, false);

    let target = 1.8;
    if cores >= 4 {
        println!(
            "GJ wall-clock speedup at DoP 4: {gj_wall:.2}x \
             (target >= {target}x) — {}",
            if gj_wall >= target { "PASS" } else { "FAIL" }
        );
    } else {
        println!(
            "GJ wall-clock speedup at DoP 4: {gj_wall:.2}x — host has \
             {cores} core(s), so wall-clock cannot exceed ~1x here"
        );
    }
    println!(
        "GJ critical-path speedup at DoP 4 (per-worker ledgers, \
         host-independent): {gj_cp:.2}x (target >= {target}x) — {}",
        if gj_cp >= target { "PASS" } else { "FAIL" }
    );
}
