//! One function per table/figure of the paper's evaluation. Each prints
//! the same rows/series the paper reports, from freshly simulated runs.

use crate::measure::{run_join, run_sort, Measurement};
use crate::scale::Scale;
use crate::table::{fmt3, fmt_millions, print_table, render_heatmap};
use pmem_sim::{LatencyProfile, LayerKind};
use write_limited::cost::{estimate_join, estimate_sort, join_costs};
use write_limited::join::JoinAlgorithm;
use write_limited::sort::SortAlgorithm;
use write_limited::stats::kendall_tau;

/// The sort line-up of Fig. 5/6.
fn sort_lineup() -> Vec<SortAlgorithm> {
    vec![
        SortAlgorithm::ExMS,
        SortAlgorithm::LaS,
        SortAlgorithm::HybS { x: 0.2 },
        SortAlgorithm::HybS { x: 0.8 },
        SortAlgorithm::SegS { x: 0.2 },
        SortAlgorithm::SegS { x: 0.8 },
    ]
}

/// The join line-up of Fig. 7(a)/8.
fn join_lineup() -> Vec<JoinAlgorithm> {
    vec![
        JoinAlgorithm::NLJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::LaJ,
        JoinAlgorithm::SegJ { frac: 0.5 },
        JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
    ]
}

fn mem_header(scale: &Scale) -> Vec<String> {
    std::iter::once("algorithm".to_string())
        .chain(
            scale
                .mem_fractions
                .iter()
                .map(|f| format!("M={:.1}%", f * 100.0)),
        )
        .collect()
}

fn cell(m: Option<Measurement>) -> String {
    m.map(|m| fmt3(m.secs)).unwrap_or_else(|| "n/a".into())
}

/// Table 1: the analytic progression of standard vs. lazy hash join —
/// reads/writes per iteration and the lazy savings/penalty — followed by
/// measured end-to-end counters for both algorithms.
pub fn table1(scale: &Scale) {
    let lambda = LatencyProfile::PCM.lambda();
    let m = 8.0f64; // illustrative iteration count, as in the paper's table
    let unit = 1.0; // (M + M_T) normalized
    let mut rows = Vec::new();
    for i in 1..=m as u64 {
        let i_f = i as f64;
        rows.push(vec![
            i.to_string(),
            format!("{:.0}·(M+Mt)", (m - i_f + 1.0) * unit),
            format!("{:.0}·(M+Mt)", (m - i_f) * unit),
            format!("{:.0}·(M+Mt)", m * unit),
            "0".to_string(),
            format!("{:.0}λr", (m - i_f) * unit),
            format!("{:.0}r", (i_f - 1.0) * unit),
        ]);
    }
    print_table(
        "Table 1: standard vs lazy hash join progression (m = 8)",
        &[
            "iter".into(),
            "std reads".into(),
            "std writes".into(),
            "lazy reads".into(),
            "lazy writes".into(),
            "savings".into(),
            "penalty".into(),
        ],
        &rows,
    );
    println!(
        "(corrected Eq. 11 materialization point at λ = {lambda}: iteration ⌊k·λ/(λ+1)⌋ = {})",
        ((m * lambda) / (lambda + 1.0)).floor()
    );

    // Measured confirmation at harness scale.
    let mut rows = Vec::new();
    for algo in [JoinAlgorithm::HJ, JoinAlgorithm::LaJ] {
        if let Some(meas) = run_join(
            algo,
            LayerKind::BlockedMemory,
            scale.join_t,
            scale.join_fanout,
            0.05,
            LatencyProfile::PCM,
            7,
        ) {
            rows.push(vec![
                algo.label(),
                fmt_millions(meas.writes),
                fmt_millions(meas.reads),
                fmt3(meas.secs),
            ]);
        }
    }
    print_table(
        "Table 1 (measured, M = 5% of left input)",
        &[
            "algorithm".into(),
            "writes (M)".into(),
            "reads (M)".into(),
            "time (s)".into(),
        ],
        &rows,
    );
}

/// Fig. 2: heatmaps of the hybrid-join cost function Jh(x, y) for
/// |T|/|V| ∈ {1, 10, 100} × λ ∈ {2, 5, 8}.
pub fn fig2() {
    println!(
        "\n=== Fig. 2: hybrid Grace/NL join cost surface (light ' ' = cheap, '@' = costly) ==="
    );
    let v = 100_000.0;
    let m = 2_000.0;
    for lambda in [2.0, 5.0, 8.0] {
        for ratio in [1.0, 10.0, 100.0] {
            let t = v / ratio;
            let surface = join_costs::hybrid_cost_surface(t, v, m, lambda, 20);
            println!("\n|T|/|V| = 1/{ratio}, λ = {lambda}  (x→ right, y↑ up)");
            print!("{}", render_heatmap(&surface));
            let (bx, by) = join_costs::optimal_hybrid_xy(t, v, m, lambda, 20);
            println!("grid minimum at x = {bx:.2}, y = {by:.2}");
        }
    }
}

/// Fig. 5: sorting response time vs memory size (blocked memory) plus
/// the min/max writes(reads) table.
pub fn fig5(scale: &Scale) {
    let mut rows = Vec::new();
    let mut extremes: Vec<(String, Measurement, Measurement)> = Vec::new();
    for algo in sort_lineup() {
        let mut row = vec![algo.label()];
        let mut best: Option<Measurement> = None;
        let mut worst: Option<Measurement> = None;
        for &f in &scale.mem_fractions {
            let m = run_sort(
                algo,
                LayerKind::BlockedMemory,
                scale.sort_n,
                f,
                LatencyProfile::PCM,
                42,
            );
            if let Some(m) = m {
                let bw = best.map_or(u64::MAX, |b| b.writes);
                if m.writes < bw {
                    best = Some(m);
                }
                let ww = worst.map_or(0, |w| w.writes);
                if m.writes > ww {
                    worst = Some(m);
                }
            }
            row.push(cell(m));
        }
        rows.push(row);
        if let (Some(b), Some(w)) = (best, worst) {
            extremes.push((algo.label(), b, w));
        }
    }
    print_table(
        &format!(
            "Fig. 5: sort response time (s) vs memory, {} records, blocked memory",
            scale.sort_n
        ),
        &mem_header(scale),
        &rows,
    );

    let rows: Vec<Vec<String>> = extremes
        .iter()
        .map(|(label, min, max)| {
            vec![
                label.clone(),
                format!("{} ({})", fmt_millions(min.writes), fmt_millions(min.reads)),
                format!("{} ({})", fmt_millions(max.writes), fmt_millions(max.reads)),
            ]
        })
        .collect();
    print_table(
        "Fig. 5 (bottom): min/max writes (reads), millions of cachelines",
        &[
            "algorithm".into(),
            "min writes (reads)".into(),
            "max writes (reads)".into(),
        ],
        &rows,
    );
}

/// Fig. 6: sorting under the four §3.2 persistence layers.
pub fn fig6(scale: &Scale) {
    for algo in sort_lineup() {
        let mut rows = Vec::new();
        for layer in LayerKind::ALL {
            let mut row = vec![layer.label().to_string()];
            for &f in &scale.mem_fractions {
                row.push(cell(run_sort(
                    algo,
                    layer,
                    scale.sort_n,
                    f,
                    LatencyProfile::PCM,
                    42,
                )));
            }
            rows.push(row);
        }
        let mut header = mem_header(scale);
        header[0] = "implementation".into();
        print_table(
            &format!("Fig. 6: {} across persistence layers (s)", algo.label()),
            &header,
            &rows,
        );
    }
}

/// Fig. 7: join response time vs memory (panels a–d) plus the min/max
/// writes(reads) table.
pub fn fig7(scale: &Scale) {
    let panels: Vec<(&str, Vec<JoinAlgorithm>)> = vec![
        ("(a) overall", join_lineup()),
        (
            "(b) HybJ vs GJ",
            vec![
                JoinAlgorithm::GJ,
                JoinAlgorithm::HybJ { x: 0.2, y: 0.8 },
                JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
                JoinAlgorithm::HybJ { x: 0.8, y: 0.2 },
            ],
        ),
        (
            "(c) SegJ vs GJ",
            vec![
                JoinAlgorithm::GJ,
                JoinAlgorithm::SegJ { frac: 0.2 },
                JoinAlgorithm::SegJ { frac: 0.5 },
                JoinAlgorithm::SegJ { frac: 0.8 },
            ],
        ),
        (
            "(d) LaJ vs HJ, GJ",
            vec![JoinAlgorithm::HJ, JoinAlgorithm::GJ, JoinAlgorithm::LaJ],
        ),
    ];
    let mut extreme_rows = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (panel, algos) in panels {
        let mut rows = Vec::new();
        for algo in &algos {
            let mut row = vec![algo.label()];
            let mut best: Option<Measurement> = None;
            let mut worst: Option<Measurement> = None;
            for &f in &scale.mem_fractions {
                let m = run_join(
                    *algo,
                    LayerKind::BlockedMemory,
                    scale.join_t,
                    scale.join_fanout,
                    f,
                    LatencyProfile::PCM,
                    42,
                );
                if let Some(m) = m {
                    if best.is_none_or(|b| m.writes < b.writes) {
                        best = Some(m);
                    }
                    if worst.is_none_or(|w| m.writes > w.writes) {
                        worst = Some(m);
                    }
                }
                row.push(cell(m));
            }
            rows.push(row);
            if seen.insert(algo.label()) {
                if let (Some(b), Some(w)) = (best, worst) {
                    extreme_rows.push(vec![
                        algo.label(),
                        format!("{} ({})", fmt_millions(b.writes), fmt_millions(b.reads)),
                        format!("{} ({})", fmt_millions(w.writes), fmt_millions(w.reads)),
                    ]);
                }
            }
        }
        print_table(
            &format!(
                "Fig. 7 {panel}: join time (s) vs memory, |T| = {}, |V| = {}",
                scale.join_t,
                scale.join_t * scale.join_fanout
            ),
            &mem_header(scale),
            &rows,
        );
    }
    print_table(
        "Fig. 7 (bottom): min/max writes (reads), millions of cachelines",
        &[
            "algorithm".into(),
            "min writes (reads)".into(),
            "max writes (reads)".into(),
        ],
        &extreme_rows,
    );
}

/// Fig. 8: joins under the four §3.2 persistence layers.
pub fn fig8(scale: &Scale) {
    for algo in join_lineup() {
        let mut rows = Vec::new();
        for layer in LayerKind::ALL {
            let mut row = vec![layer.label().to_string()];
            for &f in &scale.mem_fractions {
                row.push(cell(run_join(
                    algo,
                    layer,
                    scale.join_t,
                    scale.join_fanout,
                    f,
                    LatencyProfile::PCM,
                    42,
                )));
            }
            rows.push(row);
        }
        let mut header = mem_header(scale);
        header[0] = "implementation".into();
        print_table(
            &format!("Fig. 8: {} across persistence layers (s)", algo.label()),
            &header,
            &rows,
        );
    }
}

/// Fig. 9: impact of write intensity on SegS and HybS, all four layers,
/// at a fixed mid-sweep memory size.
pub fn fig9(scale: &Scale) {
    type Maker = fn(f64) -> SortAlgorithm;
    let mem = scale.mem_fractions[scale.mem_fractions.len() / 2];
    let mut rows = Vec::new();
    let makers: [(&str, Maker); 2] = [
        ("HybS", |x| SortAlgorithm::HybS { x }),
        ("SegS", |x| SortAlgorithm::SegS { x }),
    ];
    for layer in LayerKind::ALL {
        for (name, make) in makers {
            let mut row = vec![format!("{name}, {}", layer.label())];
            for &x in &scale.intensities {
                row.push(cell(run_sort(
                    make(x),
                    layer,
                    scale.sort_n,
                    mem,
                    LatencyProfile::PCM,
                    42,
                )));
            }
            rows.push(row);
        }
    }
    let header: Vec<String> = std::iter::once("algorithm, layer".to_string())
        .chain(
            scale
                .intensities
                .iter()
                .map(|x| format!("{:.0}%", x * 100.0)),
        )
        .collect();
    print_table(
        &format!(
            "Fig. 9: sort write-intensity sweep (s), M = {:.1}% of input",
            mem * 100.0
        ),
        &header,
        &rows,
    );
}

/// Fig. 10: impact of write intensity on SegJ and HybJ (blocked memory).
pub fn fig10(scale: &Scale) {
    let mem = scale.mem_fractions[scale.mem_fractions.len() / 2];
    let mut rows = Vec::new();

    let mut seg_row = vec!["SegJ".to_string()];
    for &x in &scale.intensities {
        seg_row.push(cell(run_join(
            JoinAlgorithm::SegJ { frac: x },
            LayerKind::BlockedMemory,
            scale.join_t,
            scale.join_fanout,
            mem,
            LatencyProfile::PCM,
            42,
        )));
    }
    rows.push(seg_row);

    for &fixed in &[0.2, 0.5, 0.8] {
        let mut row = vec![format!("HybJ, x - {:.0}%", fixed * 100.0)];
        for &x in &scale.intensities {
            row.push(cell(run_join(
                JoinAlgorithm::HybJ { x, y: fixed },
                LayerKind::BlockedMemory,
                scale.join_t,
                scale.join_fanout,
                mem,
                LatencyProfile::PCM,
                42,
            )));
        }
        rows.push(row);
        let mut row = vec![format!("HybJ, {:.0}% - x", fixed * 100.0)];
        for &y in &scale.intensities {
            row.push(cell(run_join(
                JoinAlgorithm::HybJ { x: fixed, y },
                LayerKind::BlockedMemory,
                scale.join_t,
                scale.join_fanout,
                mem,
                LatencyProfile::PCM,
                42,
            )));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(
            scale
                .intensities
                .iter()
                .map(|x| format!("{:.0}%", x * 100.0)),
        )
        .collect();
    print_table(
        &format!(
            "Fig. 10: join write-intensity sweep (s), M = {:.1}% of left",
            mem * 100.0
        ),
        &header,
        &rows,
    );
}

/// Fig. 11: write-latency sensitivity of selected sort and join
/// algorithms (blocked memory, ≤50% intensity).
pub fn fig11(scale: &Scale) {
    let mem = scale.mem_fractions[scale.mem_fractions.len() / 2];
    let sorts = [
        SortAlgorithm::LaS,
        SortAlgorithm::HybS { x: 0.2 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::SegS { x: 0.2 },
        SortAlgorithm::SegS { x: 0.5 },
    ];
    let mut rows = Vec::new();
    for algo in sorts {
        let mut row = vec![algo.label()];
        for &w in &scale.write_latencies {
            let latency = LatencyProfile {
                read_ns: 10.0,
                write_ns: w,
            };
            row.push(cell(run_sort(
                algo,
                LayerKind::BlockedMemory,
                scale.sort_n,
                mem,
                latency,
                42,
            )));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(scale.write_latencies.iter().map(|w| format!("{w:.0}ns")))
        .collect();
    print_table(
        "Fig. 11 (left): sort time (s) vs write latency",
        &header,
        &rows,
    );

    let joins = [
        JoinAlgorithm::HybJ { x: 0.5, y: 0.2 },
        JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
        JoinAlgorithm::SegJ { frac: 0.2 },
        JoinAlgorithm::SegJ { frac: 0.5 },
        JoinAlgorithm::LaJ,
    ];
    let mut rows = Vec::new();
    for algo in joins {
        let mut row = vec![algo.label()];
        for &w in &scale.write_latencies {
            let latency = LatencyProfile {
                read_ns: 10.0,
                write_ns: w,
            };
            row.push(cell(run_join(
                algo,
                LayerKind::BlockedMemory,
                scale.join_t,
                scale.join_fanout,
                mem,
                latency,
                42,
            )));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 11 (right): join time (s) vs write latency",
        &header,
        &rows,
    );
}

/// Fig. 12: Kendall's-τ concordance between estimated and measured
/// rankings, for all algorithms and for the write-limited subset.
pub fn fig12(scale: &Scale) {
    let lambda = LatencyProfile::PCM.lambda();
    let sort_all: Vec<SortAlgorithm> = vec![
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.2 },
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::SegS { x: 0.8 },
        SortAlgorithm::HybS { x: 0.2 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.8 },
    ];
    let join_all: Vec<JoinAlgorithm> = vec![
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::NLJ,
        JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
        JoinAlgorithm::HybJ { x: 0.8, y: 0.2 },
        JoinAlgorithm::SegJ { frac: 0.2 },
        JoinAlgorithm::SegJ { frac: 0.5 },
        JoinAlgorithm::SegJ { frac: 0.8 },
    ];

    let sort_buffers = (scale.sort_n * 80).div_ceil(64) as f64;
    let t_buf = (scale.join_t * 80).div_ceil(64) as f64;
    let v_buf = t_buf * scale.join_fanout as f64;

    let mut rows = Vec::new();
    for &f in &scale.mem_fractions {
        let m_sort = sort_buffers * f;
        let m_join = t_buf * f;

        let tau = |est: &[f64], meas: &[f64]| {
            kendall_tau(est, meas)
                .map(fmt3)
                .unwrap_or_else(|| "n/a".into())
        };

        // Sorting: estimated vs measured, all and write-limited-only.
        let mut est = Vec::new();
        let mut meas = Vec::new();
        for algo in &sort_all {
            if let Some(m) = run_sort(
                *algo,
                LayerKind::BlockedMemory,
                scale.sort_n,
                f,
                LatencyProfile::PCM,
                42,
            ) {
                est.push(estimate_sort(algo, sort_buffers, m_sort, lambda));
                meas.push(m.secs);
            }
        }
        let sort_all_tau = tau(&est, &meas);
        let sort_wl_tau = tau(&est[1..], &meas[1..]); // drop ExMS

        let mut est = Vec::new();
        let mut meas = Vec::new();
        let mut wl_est = Vec::new();
        let mut wl_meas = Vec::new();
        for algo in &join_all {
            if let Some(m) = run_join(
                *algo,
                LayerKind::BlockedMemory,
                scale.join_t,
                scale.join_fanout,
                f,
                LatencyProfile::PCM,
                42,
            ) {
                let e = estimate_join(algo, t_buf, v_buf, m_join, lambda);
                est.push(e);
                meas.push(m.secs);
                if matches!(
                    algo,
                    JoinAlgorithm::HybJ { .. } | JoinAlgorithm::SegJ { .. }
                ) {
                    wl_est.push(e);
                    wl_meas.push(m.secs);
                }
            }
        }
        rows.push(vec![
            format!("{:.1}%", f * 100.0),
            sort_all_tau,
            sort_wl_tau,
            tau(&est, &meas),
            tau(&wl_est, &wl_meas),
        ]);
    }
    print_table(
        "Fig. 12: Kendall's τ, estimated vs measured ranking",
        &[
            "memory".into(),
            "sort (all)".into(),
            "sort (WL)".into(),
            "join (all)".into(),
            "join (WL)".into(),
        ],
        &rows,
    );
}
