//! Plain-text table/series printing in the style of the paper's figures.

/// Prints a titled, column-aligned table.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
            } else {
                s.push_str(&format!("{:>w$}", c, w = widths[i] + 2));
            }
        }
        s
    };
    println!("{}", line(header));
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum()));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats a float with three significant decimals.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a count in millions (the unit of the paper's write/read
/// tables).
pub fn fmt_millions(v: u64) -> String {
    format!("{:.2}", v as f64 / 1e6)
}

/// Renders a Fig. 2-style heatmap as ASCII shades (darker = costlier),
/// rows printed top-to-bottom as y descends, matching the paper's plots.
pub fn render_heatmap(surface: &[Vec<f64>]) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for row in surface {
        for &v in row {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = (hi - lo).max(1e-12);
    let mut out = String::new();
    for row in surface.iter().rev() {
        for &v in row {
            let idx = (((v - lo) / span) * (SHADES.len() - 1) as f64).round() as usize;
            let c = SHADES[idx.min(SHADES.len() - 1)] as char;
            out.push(c);
            out.push(c);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shades_span_the_range() {
        let surface = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        let s = render_heatmap(&surface);
        assert!(s.contains(' ') && s.contains('@'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn millions_format() {
        assert_eq!(fmt_millions(11_420_000), "11.42");
    }
}
