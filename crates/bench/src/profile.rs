//! Span-tree profiling of the parallel algorithms: where does the wall
//! clock go at DoP 4?
//!
//! Simulated counters are DoP-invariant, so the parallel story lives in
//! *host* time — and the wall-clock speedup at DoP 4 routinely lands
//! below the ledger-derived critical-path bound. This scenario runs each
//! parallel algorithm at DoP 1 and DoP 4 under a span profile
//! ([`pmem_sim::span`]) and reports, per worker-pool phase, the per-task
//! wall breakdown: total task-seconds, the makespan (slowest task), and
//! the inflation of DoP-4 task-seconds over the DoP-1 run of the same
//! phase. Phases whose task-seconds *grow* with DoP are the contended
//! ones (allocator, memory bandwidth); phases whose makespan dominates
//! are the imbalanced ones. `repro --profile` writes the full span
//! trees to `BENCH_profile.json` (hand-rolled JSON — the offline
//! environment has no serde); `repro --profile-smoke` validates the
//! structure at CI scale.

use crate::Scale;
use pmem_sim::span::{begin_profile, end_profile};
use pmem_sim::{BufferPool, IoStats, LayerKind, PCollection, PmDevice, SpanNode};
use std::time::Instant;
use wisconsin::{join_input, sort_input, KeyOrder};
use write_limited::join::{grace_join, hash_join, lazy_hash_join, nested_loops_join, JoinContext};
use write_limited::sort::{external_merge_sort, SortContext};

/// One algorithm's profiled run at one degree of parallelism.
pub struct ProfiledRun {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Degree of parallelism of this run.
    pub dop: usize,
    /// Harness wall-clock of the whole run in milliseconds.
    pub wall_ms: f64,
    /// Simulated traffic of the run (must be identical across DoPs).
    pub stats: IoStats,
    /// The recorded span tree.
    pub tree: SpanNode,
}

/// Per-phase wall breakdown extracted from a run's `tasks[n]` spans.
pub struct PhaseBreakdown {
    /// The pool-phase label (`tasks[n]`), qualified by occurrence index
    /// so repeated phases (merge passes) stay distinguishable.
    pub label: String,
    /// Number of task leaves under the phase.
    pub tasks: usize,
    /// Sum of the task leaves' wall time (task-seconds), ms.
    pub task_wall_sum_ms: f64,
    /// Slowest single task (the phase's makespan floor), ms.
    pub task_wall_max_ms: f64,
}

/// Collects the worker-pool phases (`tasks[n]` spans) of a tree in
/// pre-order, with their per-task wall totals.
pub fn phase_breakdown(tree: &SpanNode) -> Vec<PhaseBreakdown> {
    let mut out = Vec::new();
    collect_phases(tree, &mut out);
    out
}

fn collect_phases(node: &SpanNode, out: &mut Vec<PhaseBreakdown>) {
    if node.label.starts_with("tasks[") {
        let leaves: Vec<&SpanNode> = node
            .children
            .iter()
            .filter(|c| c.label.starts_with("task-"))
            .collect();
        let sum: u64 = leaves.iter().map(|t| t.wall_ns).sum();
        let max = leaves.iter().map(|t| t.wall_ns).max().unwrap_or(0);
        out.push(PhaseBreakdown {
            label: format!("{}#{}", node.label, out.len()),
            tasks: leaves.len(),
            task_wall_sum_ms: sum as f64 / 1e6,
            task_wall_max_ms: max as f64 / 1e6,
        });
    }
    for child in &node.children {
        collect_phases(child, out);
    }
}

fn profiled<F: FnOnce()>(
    algorithm: &'static str,
    dop: usize,
    dev: &PmDevice,
    work: F,
) -> ProfiledRun {
    let before = dev.snapshot();
    begin_profile(algorithm);
    let start = Instant::now();
    work();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let tree = end_profile().expect("profile was active");
    let stats = dev.snapshot().since(&before);
    ProfiledRun {
        algorithm,
        dop,
        wall_ms,
        stats,
        tree,
    }
}

fn profile_sort(n: u64, m_records: usize, dop: usize) -> ProfiledRun {
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "S",
        sort_input(n, KeyOrder::Random, 7),
    );
    let pool = BufferPool::new(m_records * 80);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(dop);
    profiled("ExMS", dop, &dev, || {
        let out = external_merge_sort(&input, &ctx, "sorted");
        assert_eq!(out.len() as u64, n, "wrong sort result");
    })
}

fn profile_join(
    algorithm: &'static str,
    t: u64,
    fanout: u64,
    m_records: usize,
    dop: usize,
) -> ProfiledRun {
    let dev = PmDevice::paper_default();
    let w = join_input(t, fanout, 7);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(m_records * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(dop);
    profiled(algorithm, dop, &dev, || {
        let len = match algorithm {
            "GJ" => grace_join(&left, &right, &ctx, "out")
                .expect("applicable")
                .len(),
            "HJ" => hash_join(&left, &right, &ctx, "out").len(),
            "NLJ" => nested_loops_join(&left, &right, &ctx, "out").len(),
            "LaJ" => lazy_hash_join(&left, &right, &ctx, "out").len(),
            other => unreachable!("unprofiled algorithm {other}"),
        };
        assert_eq!(
            len as u64, w.expected_matches,
            "{algorithm}: wrong join result"
        );
    })
}

/// Runs every parallel algorithm at each degree in `dops` under a span
/// profile and prints the per-phase wall breakdown, comparing each
/// phase's task-seconds against the DoP-1 run to localize contention.
/// Panics if any run's simulated counters diverge across DoPs (the
/// profile must observe, never perturb).
pub fn profile_runs(scale: &Scale, dops: &[usize]) -> Vec<ProfiledRun> {
    let t = scale.join_t;
    let fanout = scale.join_fanout;
    let sort_n = scale.sort_n;
    let m_records = (t / 10).max(16) as usize;
    println!("=== Span-tree profile: per-task wall breakdown by DoP ===");
    println!(
        "joins: |T| = {t}, |V| = {}, M = {m_records} records; sort: {sort_n} records",
        t * fanout
    );

    let mut runs: Vec<ProfiledRun> = Vec::new();
    let jobs: [&'static str; 5] = ["ExMS", "GJ", "HJ", "NLJ", "LaJ"];
    for algorithm in jobs {
        let mut per_dop: Vec<ProfiledRun> = dops
            .iter()
            .map(|&d| {
                if algorithm == "ExMS" {
                    profile_sort(sort_n, (sort_n / 100).max(16) as usize, d)
                } else {
                    profile_join(algorithm, t, fanout, m_records, d)
                }
            })
            .collect();
        report_algorithm(&per_dop);
        runs.append(&mut per_dop);
    }
    runs
}

/// Prints one algorithm's phase table and asserts counter identity and
/// span-tree validity for every DoP.
fn report_algorithm(runs: &[ProfiledRun]) {
    let base = &runs[0];
    base.tree.validate().expect("span sums hold");
    let base_phases = phase_breakdown(&base.tree);
    for run in runs {
        run.tree.validate().expect("span sums hold");
        assert_eq!(
            (run.stats.cl_reads, run.stats.cl_writes),
            (base.stats.cl_reads, base.stats.cl_writes),
            "{}: simulated counters diverged at DoP {}",
            run.algorithm,
            run.dop
        );
        // The profile must cover the whole device delta.
        assert_eq!(
            run.tree.io.cl_reads, run.stats.cl_reads,
            "{}",
            run.algorithm
        );
        assert_eq!(
            run.tree.io.cl_writes, run.stats.cl_writes,
            "{}",
            run.algorithm
        );
        let phases = phase_breakdown(&run.tree);
        println!(
            "{:<6} DoP {}  wall {:>8.1} ms  {:>4} tasks in {:>2} pool phases",
            run.algorithm,
            run.dop,
            run.wall_ms,
            run.tree.task_count(),
            phases.len(),
        );
        for (i, p) in phases.iter().enumerate() {
            // Same phase in the DoP-1 run (task partitioning is
            // DoP-independent, so phase i lines up with phase i).
            let inflation = base_phases
                .get(i)
                .filter(|b| b.task_wall_sum_ms > 0.0)
                .map(|b| p.task_wall_sum_ms / b.task_wall_sum_ms);
            let note = match inflation {
                Some(f) if run.dop > 1 && f > 1.25 => {
                    format!("  <-- {f:.2}x task-seconds vs DoP 1: contention")
                }
                Some(f) if run.dop > 1 => format!("  ({f:.2}x task-seconds vs DoP 1)"),
                _ => String::new(),
            };
            println!(
                "        {:<12} {:>3} tasks  sum {:>8.2} ms  max {:>7.2} ms{note}",
                p.label, p.tasks, p.task_wall_sum_ms, p.task_wall_max_ms
            );
        }
    }
}

/// Serializes the profiled runs — summary fields plus the full span
/// trees — as JSON.
pub fn profile_json(runs: &[ProfiledRun]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"algorithm\": \"{}\", \"dop\": {}, \"wall_ms\": {:.3}, \
             \"cl_reads\": {}, \"cl_writes\": {}, \"tasks\": {},\n   \"phases\": [",
            r.algorithm,
            r.dop,
            r.wall_ms,
            r.stats.cl_reads,
            r.stats.cl_writes,
            r.tree.task_count(),
        ));
        let phases = phase_breakdown(&r.tree);
        for (j, p) in phases.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"label\": \"{}\", \"tasks\": {}, \"task_wall_sum_ms\": {:.3}, \
                 \"task_wall_max_ms\": {:.3}}}",
                if j == 0 { "" } else { ", " },
                p.label,
                p.tasks,
                p.task_wall_sum_ms,
                p.task_wall_max_ms
            ));
        }
        out.push_str("],\n   \"span_tree\": ");
        span_json(&r.tree, &mut out);
        out.push_str(&format!(
            "}}{}\n",
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn span_json(node: &SpanNode, out: &mut String) {
    let rows = node.rows.map_or("null".to_string(), |n| n.to_string());
    out.push_str(&format!(
        "{{\"label\": \"{}\", \"thread\": {}, \"wall_ns\": {}, \"reads\": {}, \
         \"writes\": {}, \"software_ns\": {:.1}, \"rows\": {rows}, \"children\": [",
        node.label.replace('"', "'"),
        node.thread,
        node.wall_ns,
        node.io.cl_reads,
        node.io.cl_writes,
        node.io.software_ns,
    ));
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        span_json(child, out);
    }
    out.push_str("]}");
}

/// `repro --profile`: runs the profile matrix at DoP 1 and 4 and writes
/// `BENCH_profile.json`.
pub fn profile_to_file(scale: &Scale) {
    let runs = profile_runs(scale, &[1, 4]);
    let path = "BENCH_profile.json";
    match std::fs::write(path, profile_json(&runs)) {
        Ok(()) => println!("span-tree profile written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// `repro --profile-smoke`: the CI-sized structural check. Runs the
/// matrix, validates every tree, checks that DoP-4 runs actually fanned
/// out, and that the JSON document is balanced and complete.
pub fn profile_smoke(scale: &Scale) {
    let runs = profile_runs(scale, &[1, 4]);
    assert_eq!(runs.len(), 10, "five algorithms at two DoPs");
    for r in &runs {
        assert!(r.tree.task_count() > 0, "{}: no task leaves", r.algorithm);
        assert!(
            !phase_breakdown(&r.tree).is_empty(),
            "{}: no pool phases",
            r.algorithm
        );
    }
    let json = profile_json(&runs);
    assert!(json.starts_with("[\n") && json.ends_with("]\n"));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON"
    );
    assert_eq!(json.matches("\"span_tree\"").count(), 10);
    println!("profile smoke: 10 runs, all trees valid, JSON well-formed — PASS");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_sort_produces_a_valid_tree_with_task_leaves() {
        let run = profile_sort(4_000, 40, 4);
        run.tree.validate().expect("span sums hold");
        assert_eq!(run.tree.label, "ExMS");
        assert!(run.tree.task_count() > 0, "worker tasks recorded");
        let phases = phase_breakdown(&run.tree);
        assert!(!phases.is_empty());
        assert!(phases
            .iter()
            .all(|p| p.task_wall_sum_ms >= p.task_wall_max_ms));
    }

    #[test]
    fn profile_json_is_balanced_and_carries_trees() {
        let run = profile_join("HJ", 500, 2, 100, 2);
        let json = profile_json(&[run]);
        assert!(json.contains("\"algorithm\": \"HJ\""));
        assert!(json.contains("\"span_tree\": {"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn counters_are_identical_across_dops_under_profiling() {
        let a = profile_join("GJ", 800, 2, 80, 1);
        let b = profile_join("GJ", 800, 2, 80, 4);
        assert_eq!(a.stats.cl_reads, b.stats.cl_reads);
        assert_eq!(a.stats.cl_writes, b.stats.cl_writes);
        assert!(b.tree.task_count() >= a.tree.task_count());
    }
}
