//! Ablations beyond the paper's figures: the runtime-driven adaptive
//! join versus fixed knobs, and cost-model-driven algorithm selection
//! versus an oracle.

use crate::measure::{run_join, run_sort, Measurement};
use crate::scale::Scale;
use crate::table::{fmt3, fmt_millions, print_table};
use pmem_sim::{BufferPool, DeviceConfig, LatencyProfile, LayerKind, PCollection, PmDevice};
use wisconsin::{join_input, WisconsinRecord};
use write_limited::adaptive::adaptive_grace_join;
use write_limited::cost::{choose_join, choose_sort};
use write_limited::join::{JoinAlgorithm, JoinContext};
use write_limited::sort::SortAlgorithm;

/// Runs the adaptive join once at the given λ and returns its traffic.
fn run_adaptive(scale: &Scale, lambda: f64, mem_fraction: f64) -> Measurement {
    let latency = LatencyProfile::with_lambda(10.0, lambda);
    let dev = PmDevice::new(DeviceConfig::paper_default().with_latency(latency));
    let w = join_input(scale.join_t, scale.join_fanout, 42);
    let left: PCollection<WisconsinRecord> =
        PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right: PCollection<WisconsinRecord> =
        PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::fraction_of(left.bytes(), mem_fraction);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let before = dev.snapshot();
    let out = adaptive_grace_join(&left, &right, &ctx, "out").expect("applicable");
    let stats = dev.snapshot().since(&before);
    Measurement {
        secs: stats.time_secs(&latency),
        reads: stats.cl_reads,
        writes: stats.cl_writes,
        output_records: out.len() as u64,
    }
}

/// Adaptive (§3.1 rules) vs fixed-knob SegJ and GJ across λ.
pub fn adaptive_vs_fixed(scale: &Scale) {
    let mem = scale.mem_fractions[scale.mem_fractions.len() / 2];
    let mut rows = Vec::new();
    for lambda in [2.0, 8.0, 15.0] {
        let latency = LatencyProfile::with_lambda(10.0, lambda);
        let adaptive = run_adaptive(scale, lambda, mem);
        rows.push(vec![
            format!("adaptive (λ={lambda})"),
            fmt3(adaptive.secs),
            fmt_millions(adaptive.writes),
            fmt_millions(adaptive.reads),
        ]);
        for algo in [
            JoinAlgorithm::SegJ { frac: 0.0 },
            JoinAlgorithm::SegJ { frac: 0.5 },
            JoinAlgorithm::SegJ { frac: 1.0 },
            JoinAlgorithm::GJ,
        ] {
            if let Some(m) = run_join(
                algo,
                LayerKind::BlockedMemory,
                scale.join_t,
                scale.join_fanout,
                mem,
                latency,
                42,
            ) {
                rows.push(vec![
                    format!("{} (λ={lambda})", algo.label()),
                    fmt3(m.secs),
                    fmt_millions(m.writes),
                    fmt_millions(m.reads),
                ]);
            }
        }
    }
    print_table(
        "Ablation A: runtime-driven adaptive join vs fixed knobs",
        &[
            "configuration".into(),
            "time (s)".into(),
            "writes (M)".into(),
            "reads (M)".into(),
        ],
        &rows,
    );
}

/// Cost-model-driven algorithm choice vs the measured oracle.
pub fn auto_selection(scale: &Scale) {
    let lambda = LatencyProfile::PCM.lambda();
    let sort_buffers = (scale.sort_n * 80).div_ceil(64) as f64;
    let t_buf = (scale.join_t * 80).div_ceil(64) as f64;
    let v_buf = t_buf * scale.join_fanout as f64;

    let mut rows = Vec::new();
    for &f in &scale.mem_fractions {
        // ---- Sorts ----
        let chosen = choose_sort(sort_buffers, sort_buffers * f, lambda);
        let candidates = [
            SortAlgorithm::ExMS,
            SortAlgorithm::SegS { x: 0.2 },
            SortAlgorithm::SegS { x: 0.5 },
            SortAlgorithm::SegS { x: 0.8 },
            SortAlgorithm::HybS { x: 0.5 },
            SortAlgorithm::SelS,
            chosen,
        ];
        let mut best: Option<(SortAlgorithm, f64)> = None;
        let mut chosen_secs = f64::NAN;
        for algo in candidates {
            if let Some(m) = run_sort(
                algo,
                LayerKind::BlockedMemory,
                scale.sort_n,
                f,
                LatencyProfile::PCM,
                42,
            ) {
                if best.as_ref().is_none_or(|(_, s)| m.secs < *s) {
                    best = Some((algo, m.secs));
                }
                if algo == chosen {
                    chosen_secs = m.secs;
                }
            }
        }
        let (oracle, oracle_secs) = best.expect("at least ExMS ran");
        rows.push(vec![
            format!("sort, M={:.1}%", f * 100.0),
            chosen.label(),
            fmt3(chosen_secs),
            oracle.label(),
            fmt3(oracle_secs),
            fmt3(chosen_secs / oracle_secs),
        ]);

        // ---- Joins ----
        let chosen = choose_join(t_buf, v_buf, t_buf * f, lambda);
        let candidates = [
            JoinAlgorithm::NLJ,
            JoinAlgorithm::GJ,
            JoinAlgorithm::HJ,
            JoinAlgorithm::SegJ { frac: 0.5 },
            JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
            chosen,
        ];
        let mut best: Option<(JoinAlgorithm, f64)> = None;
        let mut chosen_secs = f64::NAN;
        for algo in candidates {
            if let Some(m) = run_join(
                algo,
                LayerKind::BlockedMemory,
                scale.join_t,
                scale.join_fanout,
                f,
                LatencyProfile::PCM,
                42,
            ) {
                if best.as_ref().is_none_or(|(_, s)| m.secs < *s) {
                    best = Some((algo, m.secs));
                }
                if algo == chosen {
                    chosen_secs = m.secs;
                }
            }
        }
        if let Some((oracle, oracle_secs)) = best {
            rows.push(vec![
                format!("join, M={:.1}%", f * 100.0),
                chosen.label(),
                fmt3(chosen_secs),
                oracle.label(),
                fmt3(oracle_secs),
                fmt3(chosen_secs / oracle_secs),
            ]);
        }
    }
    print_table(
        "Ablation B: cost-model-driven choice vs measured oracle",
        &[
            "setting".into(),
            "chosen".into(),
            "chosen (s)".into(),
            "oracle".into(),
            "oracle (s)".into(),
            "ratio".into(),
        ],
        &rows,
    );
}

/// Energy and endurance view of the sort line-up (§4.3: "asymmetry also
/// manifests in terms of power consumption; or device degradation").
pub fn energy_and_wear(scale: &Scale) {
    use pmem_sim::{EnergyModel, IoStats, WearModel};
    let mem = scale.mem_fractions[scale.mem_fractions.len() / 2];
    let energy = EnergyModel::PCM;
    let wear = WearModel::pcm_16gib();
    let mut rows = Vec::new();
    for algo in [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.2 },
        SortAlgorithm::SegS { x: 0.8 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ] {
        if let Some(m) = run_sort(
            algo,
            LayerKind::BlockedMemory,
            scale.sort_n,
            mem,
            LatencyProfile::PCM,
            42,
        ) {
            let stats = IoStats {
                cl_reads: m.reads,
                cl_writes: m.writes,
                ..Default::default()
            };
            rows.push(vec![
                algo.label(),
                fmt3(m.secs),
                format!("{:.1}", energy.energy_uj(&stats) / 1000.0),
                format!("{:.1}", wear.repetitions_to_wearout(&stats) / 1e6),
            ]);
        }
    }
    print_table(
        &format!(
            "Ablation C: energy and endurance (energy asymmetry {}, M = {:.1}%)",
            energy.asymmetry(),
            mem * 100.0
        ),
        &[
            "algorithm".into(),
            "time (s)".into(),
            "energy (mJ)".into(),
            "reps to wearout (M)".into(),
        ],
        &rows,
    );
}

/// Write-limited aggregation (the paper's §6 extension): sort-based at
/// several intensities vs one-pass hash vs segmented hash.
pub fn aggregation(scale: &Scale) {
    use pmem_sim::BufferPool;
    use wisconsin::{sort_input, KeyOrder};
    use write_limited::agg::{hash_aggregate, segmented_hash_aggregate, sort_based_aggregate};
    use write_limited::sort::SortContext;

    let n = scale.sort_n / 2;
    let distinct = (n / 20).max(1);
    let mem = scale.mem_fractions[scale.mem_fractions.len() / 2];
    let mut rows = Vec::new();

    let stage = || {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(n, KeyOrder::FewDistinct { distinct }, 42),
        );
        (dev, input)
    };

    for x in [0.0, 0.5, 1.0] {
        let (dev, input) = stage();
        let pool = BufferPool::fraction_of(input.bytes(), mem);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = sort_based_aggregate(&input, x, |r| r.payload(), &ctx, "agg").expect("valid");
        let s = dev.snapshot().since(&before);
        rows.push(vec![
            format!("sort-based, x={:.0}%", x * 100.0),
            out.len().to_string(),
            fmt3(s.time_secs(&LatencyProfile::PCM)),
            fmt_millions(s.cl_writes),
            fmt_millions(s.cl_reads),
        ]);
    }
    {
        let (dev, input) = stage();
        let pool = BufferPool::fraction_of(input.bytes(), mem);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        if let Ok(out) = hash_aggregate(&input, |r| r.payload(), &ctx, "agg") {
            let s = dev.snapshot().since(&before);
            rows.push(vec![
                "hash (one pass)".into(),
                out.len().to_string(),
                fmt3(s.time_secs(&LatencyProfile::PCM)),
                fmt_millions(s.cl_writes),
                fmt_millions(s.cl_reads),
            ]);
        }
    }
    for materialized_frac in [0.0, 1.0] {
        let (dev, input) = stage();
        let pool = BufferPool::fraction_of(input.bytes(), mem);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let k = 4usize;
        let mat = ((k as f64) * materialized_frac) as usize;
        let before = dev.snapshot();
        let out =
            segmented_hash_aggregate(&input, k, mat, |r| r.payload(), &ctx, "agg").expect("valid");
        let s = dev.snapshot().since(&before);
        rows.push(vec![
            format!("segmented hash, {mat}/{k} mat."),
            out.len().to_string(),
            fmt3(s.time_secs(&LatencyProfile::PCM)),
            fmt_millions(s.cl_writes),
            fmt_millions(s.cl_reads),
        ]);
    }
    print_table(
        &format!("Ablation D: write-limited aggregation ({n} records, {distinct} groups)"),
        &[
            "strategy".into(),
            "groups".into(),
            "time (s)".into(),
            "writes (M)".into(),
            "reads (M)".into(),
        ],
        &rows,
    );
}

/// Write-limited index leaves (the paper's §6 "data structures"
/// extension): sorted vs append-order B⁺-tree leaves under a random
/// insert workload with point and range lookups.
pub fn index_leaf_policies(scale: &Scale) {
    use wl_index::{BPlusTree, LeafPolicy};
    let n = scale.sort_n.min(200_000);
    let mut rows = Vec::new();
    for policy in [LeafPolicy::Sorted, LeafPolicy::Append] {
        let dev = PmDevice::paper_default();
        let mut tree = BPlusTree::new(&dev, 1024, policy);

        let before = dev.snapshot();
        let perm = wisconsin::Permutation::new(n, 42);
        for i in 0..n {
            tree.insert(perm.apply(i), i);
        }
        let inserts = dev.snapshot().since(&before);

        let before = dev.snapshot();
        for key in (0..n).step_by(7) {
            tree.get(key);
        }
        let lookups = dev.snapshot().since(&before);

        let before = dev.snapshot();
        let hits = tree.range(0, n / 10).len();
        let ranges = dev.snapshot().since(&before);
        assert_eq!(hits as u64, n / 10 + 1);

        let latency = LatencyProfile::PCM;
        rows.push(vec![
            format!("{policy:?}"),
            fmt3(inserts.time_secs(&latency)),
            fmt_millions(inserts.cl_writes),
            fmt3(lookups.time_secs(&latency)),
            fmt3(ranges.time_secs(&latency)),
            tree.pages().to_string(),
            tree.height().to_string(),
        ]);
    }
    print_table(
        &format!("Ablation E: B+-tree leaf policies ({n} random inserts)"),
        &[
            "leaf policy".into(),
            "insert (s)".into(),
            "insert writes (M)".into(),
            "lookups (s)".into(),
            "range (s)".into(),
            "pages".into(),
            "height".into(),
        ],
        &rows,
    );
}

/// Input-order sensitivity: replacement selection produces one long run
/// on presorted input (write-limited for free), while reverse order is
/// its worst case — context for the paper's random-permutation default.
pub fn input_order(scale: &Scale) {
    use wisconsin::{sort_input, KeyOrder};
    use write_limited::sort::SortContext;

    let n = scale.sort_n / 2;
    let mem = scale.mem_fractions[scale.mem_fractions.len() / 2];
    let orders: [(&str, KeyOrder); 4] = [
        ("random", KeyOrder::Random),
        ("sorted", KeyOrder::Sorted),
        ("reverse", KeyOrder::Reverse),
        (
            "nearly sorted (1%)",
            KeyOrder::NearlySorted { disorder: 0.01 },
        ),
    ];
    let mut rows = Vec::new();
    for (label, order) in orders {
        for algo in [SortAlgorithm::ExMS, SortAlgorithm::SegS { x: 0.5 }] {
            let dev = PmDevice::paper_default();
            let input = PCollection::from_records_uncounted(
                &dev,
                LayerKind::BlockedMemory,
                "T",
                sort_input(n, order, 42),
            );
            let pool = BufferPool::fraction_of(input.bytes(), mem);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
            let before = dev.snapshot();
            let out = algo.run(&input, &ctx, "sorted").expect("valid");
            let s = dev.snapshot().since(&before);
            assert_eq!(out.len() as u64, n);
            rows.push(vec![
                format!("{} / {}", algo.label(), label),
                fmt3(s.time_secs(&LatencyProfile::PCM)),
                fmt_millions(s.cl_writes),
                fmt_millions(s.cl_reads),
            ]);
        }
    }
    print_table(
        &format!(
            "Ablation F: input-order sensitivity ({n} records, M = {:.1}%)",
            mem * 100.0
        ),
        &[
            "algorithm / order".into(),
            "time (s)".into(),
            "writes (M)".into(),
            "reads (M)".into(),
        ],
        &rows,
    );
}
