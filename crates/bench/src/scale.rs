//! Experiment scaling.
//!
//! The paper sorts ten million 80-byte records and joins one million
//! against ten million on an instrumented testbed. The simulator's cost
//! structure is scale-invariant in the memory *fraction*, so the default
//! harness scale keeps wall-clock time laptop-friendly; set
//! `WL_SCALE=paper` for the full sizes or `WL_SCALE=quick` for smoke
//! runs (`WL_SORT_N`, `WL_JOIN_T`, `WL_JOIN_FANOUT` override
//! individually).

/// Sizes and sweep points for the reproduction experiments.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Records in the sort input.
    pub sort_n: u64,
    /// Records in the join's left input.
    pub join_t: u64,
    /// Right-input records per left record.
    pub join_fanout: u64,
    /// Memory sweep, as fractions of the (left) input size.
    pub mem_fractions: Vec<f64>,
    /// Write-intensity sweep for Figs. 9–10.
    pub intensities: Vec<f64>,
    /// Write-latency sweep (ns) for Fig. 11.
    pub write_latencies: Vec<f64>,
}

impl Scale {
    /// Default harness scale (~seconds per figure).
    pub fn default_scale() -> Self {
        Self {
            sort_n: 100_000,
            join_t: 20_000,
            join_fanout: 10,
            mem_fractions: vec![0.01, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15],
            intensities: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            write_latencies: vec![50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0],
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Self {
            sort_n: 20_000,
            join_t: 4_000,
            join_fanout: 5,
            mem_fractions: vec![0.02, 0.05, 0.10, 0.15],
            intensities: vec![0.2, 0.5, 0.8],
            write_latencies: vec![50.0, 100.0, 150.0, 200.0],
        }
    }

    /// The paper's sizes (minutes to hours of harness time).
    pub fn paper() -> Self {
        Self {
            sort_n: 10_000_000,
            join_t: 1_000_000,
            join_fanout: 10,
            ..Self::default_scale()
        }
    }

    /// Reads the scale from the environment (`WL_SCALE`, `WL_SORT_N`,
    /// `WL_JOIN_T`, `WL_JOIN_FANOUT`).
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("WL_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("paper") => Self::paper(),
            _ => Self::default_scale(),
        };
        if let Ok(n) = std::env::var("WL_SORT_N").map(|v| v.parse::<u64>()) {
            scale.sort_n = n.expect("WL_SORT_N must be an integer");
        }
        if let Ok(n) = std::env::var("WL_JOIN_T").map(|v| v.parse::<u64>()) {
            scale.join_t = n.expect("WL_JOIN_T must be an integer");
        }
        if let Ok(n) = std::env::var("WL_JOIN_FANOUT").map(|v| v.parse::<u64>()) {
            scale.join_fanout = n.expect("WL_JOIN_FANOUT must be an integer");
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::quick().sort_n < Scale::default_scale().sort_n);
        assert!(Scale::default_scale().sort_n < Scale::paper().sort_n);
    }

    #[test]
    fn fractions_are_percentages_of_input() {
        for f in Scale::default_scale().mem_fractions {
            assert!(f > 0.0 && f < 1.0);
        }
    }
}
