//! Crash-injection harness: kill-at-random-offset → reopen → verify.
//!
//! One fault-free **oracle** run measures how many durable bytes the
//! scripted DDL/DML workload writes (WAL frames, fsynced checkpoints).
//! Each seeded trial then reruns the same script against a fresh
//! directory with a fault armed at a random byte offset inside that
//! budget — a mid-write kill with a torn tail, a clean short write, or
//! an ENOSPC refusal — and reopens the directory through crash
//! recovery. The reopened state must equal the committed prefix of the
//! script: every acknowledged (fsynced) statement survives, the one
//! statement in flight at the kill may land either fully or not at all,
//! and nothing else is acceptable. A trial that recovers anything else,
//! or panics, or fails to reopen, is a **divergence**; `repro --crash`
//! requires zero and writes the per-trial log to `BENCH_crash.json`.

use pmem_sim::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use wl_db::durable::read_checkpoint;
use wl_db::{Database, DdlError};

/// One statement of the crash script, mirrored by a logical model so
/// the expected post-crash state is computable without a live database.
#[derive(Clone, Debug)]
enum Op {
    /// `CREATE TABLE name AS WISCONSIN(rows, fanout, seed)`.
    Create {
        name: &'static str,
        rows: u64,
        fanout: u64,
        seed: u64,
    },
    /// `INSERT INTO name VALUES …`.
    Insert { name: &'static str, keys: Vec<u64> },
    /// `DROP TABLE name`.
    Drop { name: &'static str },
    /// `CHECKPOINT` (no logical effect; moves bytes and the WAL base).
    Checkpoint,
}

/// The scripted workload: spans both sides of two checkpoints so kills
/// land in WAL appends, checkpoint images, and WAL resets alike.
fn script() -> Vec<Op> {
    vec![
        Op::Create {
            name: "t",
            rows: 300,
            fanout: 1,
            seed: 3,
        },
        Op::Insert {
            name: "t",
            keys: vec![300, 301, 302, 303],
        },
        Op::Checkpoint,
        Op::Create {
            name: "v",
            rows: 120,
            fanout: 2,
            seed: 7,
        },
        Op::Insert {
            name: "v",
            keys: vec![120, 121],
        },
        Op::Drop { name: "v" },
        Op::Create {
            name: "w",
            rows: 80,
            fanout: 1,
            seed: 1,
        },
        Op::Insert {
            name: "t",
            keys: vec![304, 305, 306],
        },
        Op::Checkpoint,
        Op::Create {
            name: "v",
            rows: 60,
            fanout: 1,
            seed: 9,
        },
    ]
}

/// Logical table state: sorted key multiset per table.
type State = BTreeMap<String, Vec<u64>>;

/// `states[i]` = expected state after the first `i` ops committed.
fn model_states(ops: &[Op]) -> Vec<State> {
    let mut states = vec![State::new()];
    let mut cur = State::new();
    for op in ops {
        match op {
            Op::Create {
                name, rows, fanout, ..
            } => {
                let mut keys = Vec::with_capacity((rows * fanout) as usize);
                for k in 0..*rows {
                    for _ in 0..*fanout {
                        keys.push(k);
                    }
                }
                cur.insert((*name).into(), keys);
            }
            Op::Insert { name, keys } => {
                let table = cur.get_mut(*name).expect("script inserts into live table");
                table.extend(keys);
                table.sort_unstable();
            }
            Op::Drop { name } => {
                cur.remove(*name);
            }
            Op::Checkpoint => {}
        }
        states.push(cur.clone());
    }
    states
}

fn apply(db: &Database, op: &Op) -> Result<(), DdlError> {
    match op {
        Op::Create {
            name,
            rows,
            fanout,
            seed,
        } => db.create_wisconsin(name, *rows, *fanout, *seed).map(|_| ()),
        Op::Insert { name, keys } => db.insert_keys(name, keys).map(|_| ()),
        Op::Drop { name } => db.drop_table(name).map(|_| ()),
        Op::Checkpoint => db.checkpoint().map(|_| ()),
    }
}

/// Reads the recovered state back from the post-recovery checkpoint
/// (reopen always rewrites it, so it holds the full catalog).
fn recovered_state(dir: &Path) -> Result<State, String> {
    let ckpt = read_checkpoint(dir)
        .map_err(|e| e.to_string())?
        .ok_or("no checkpoint after reopen")?;
    let mut state = State::new();
    for table in ckpt.tables {
        let mut keys: Vec<u64> = table.records.iter().map(|r| r.attrs[0]).collect();
        keys.sort_unstable();
        state.insert(table.name, keys);
    }
    Ok(state)
}

/// The fault a trial arms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    /// Kill mid-write, garbling the torn tail.
    Torn,
    /// Kill mid-write with a clean short write.
    Short,
    /// Refuse the crossing write with ENOSPC.
    NoSpace,
}

impl Fault {
    fn label(self) -> &'static str {
        match self {
            Fault::Torn => "torn",
            Fault::Short => "short",
            Fault::NoSpace => "enospc",
        }
    }

    fn plan(self, offset: u64, seed: u64) -> FaultPlan {
        match self {
            Fault::Torn => FaultPlan::kill_at(offset, true, seed),
            Fault::Short => FaultPlan::kill_at(offset, false, seed),
            Fault::NoSpace => FaultPlan::enospc_at(offset),
        }
    }
}

/// One trial's outcome, serialized into `BENCH_crash.json`.
#[derive(Debug)]
pub struct Trial {
    /// RNG seed (also the garble seed).
    pub seed: u64,
    /// Fault flavor (`torn`, `short`, `enospc`).
    pub fault: &'static str,
    /// Byte offset (since arming) at which the fault fires.
    pub offset: u64,
    /// Statements acknowledged before the failure surfaced.
    pub acked: usize,
    /// WAL records replayed by the reopen.
    pub replayed: u64,
    /// `prefix` (= acked state), `prefix+1` (in-flight statement made
    /// it to disk before the kill), or a description of the divergence.
    pub outcome: String,
}

impl Trial {
    /// A trial diverges unless recovery produced one of the two legal
    /// prefixes.
    pub fn diverged(&self) -> bool {
        self.outcome != "prefix" && self.outcome != "prefix+1"
    }
}

fn trial_dir(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("wl-crash-{tag}-{}-{seed}", std::process::id()))
}

/// Fault-free oracle: total durable bytes the script writes after open,
/// sanity-checked against the logical model.
fn oracle_bytes(ops: &[Op], states: &[State]) -> u64 {
    let dir = trial_dir("oracle", 0);
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir).expect("oracle open");
    db.device().arm_faults(FaultPlan::observe());
    for op in ops {
        apply(&db, op).expect("oracle runs fault-free");
    }
    let total = db.device().fault_bytes_written();
    let tables = db.tables();
    drop(db);
    let last = states.last().expect("non-empty model");
    assert_eq!(
        tables.len(),
        last.len(),
        "oracle table count disagrees with the model"
    );
    for (name, rows) in tables {
        let keys = last.get(&name).expect("oracle table in model");
        assert_eq!(rows as usize, keys.len(), "oracle rows for {name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert!(total > 0, "the script must write durable bytes");
    total
}

/// Runs one seeded kill → reopen → verify cycle.
fn run_trial(ops: &[Op], states: &[State], total_bytes: u64, seed: u64) -> Trial {
    let mut rng = StdRng::seed_from_u64(seed);
    let offset = rng.gen_range(1..total_bytes + 1);
    let fault = match seed % 6 {
        5 => Fault::NoSpace,
        n if n % 2 == 0 => Fault::Torn,
        _ => Fault::Short,
    };

    let dir = trial_dir("trial", seed);
    let _ = std::fs::remove_dir_all(&dir);
    let mut trial = Trial {
        seed,
        fault: fault.label(),
        offset,
        acked: 0,
        replayed: 0,
        outcome: String::new(),
    };

    // Phase 1: run the script against the armed database until a
    // statement fails. Failures must be typed errors, never panics
    // (a panic fails the whole harness, which is the point).
    {
        let db = match Database::open(&dir) {
            Ok(db) => db,
            Err(e) => {
                trial.outcome = format!("initial open failed: {e}");
                return trial;
            }
        };
        db.device().arm_faults(fault.plan(offset, seed));
        for op in ops {
            match apply(&db, op) {
                Ok(()) => trial.acked += 1,
                Err(_) => break, // the simulated process dies here
            }
        }
    }

    // Phase 2: crash recovery on a clean device (the old Database is
    // dropped; named files survive in `dir`).
    let db = match Database::reopen(&dir) {
        Ok(db) => db,
        Err(e) => {
            trial.outcome = format!("reopen failed: {e}");
            let _ = std::fs::remove_dir_all(&dir);
            return trial;
        }
    };
    let report = db.recovery_report().expect("reopen is durable");
    trial.replayed = report.replayed_records;
    let recovered = match recovered_state(&dir) {
        Ok(s) => s,
        Err(e) => {
            trial.outcome = format!("unreadable recovered state: {e}");
            let _ = std::fs::remove_dir_all(&dir);
            return trial;
        }
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    // The committed prefix must survive; the statement in flight at the
    // kill may have reached the disk (its WAL record was complete) or
    // not — both are honest, anything else is a divergence.
    trial.outcome = if recovered == states[trial.acked] {
        "prefix".into()
    } else if trial.acked < ops.len() && recovered == states[trial.acked + 1] {
        "prefix+1".into()
    } else {
        format!(
            "recovered {} tables matching neither prefix {} nor {}",
            recovered.len(),
            trial.acked,
            trial.acked + 1
        )
    };
    trial
}

/// Serializes the trial log as JSON (hand-rolled; no serde offline).
pub fn trials_json(trials: &[Trial], total_bytes: u64) -> String {
    let divergences = trials.iter().filter(|t| t.diverged()).count();
    let mut out = format!(
        "{{\n  \"oracle_bytes\": {total_bytes},\n  \"trials\": {},\n  \
         \"divergences\": {divergences},\n  \"log\": [\n",
        trials.len()
    );
    for (i, t) in trials.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"seed\": {}, \"fault\": \"{}\", \"offset\": {}, \
             \"acked\": {}, \"replayed\": {}, \"outcome\": \"{}\"}}{}\n",
            t.seed,
            t.fault,
            t.offset,
            t.acked,
            t.replayed,
            t.outcome.replace('"', "'"),
            if i + 1 == trials.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs `seeds` randomized crash trials and returns the log.
///
/// # Panics
/// Panics if any trial diverges — recovery produced something other
/// than the committed prefix (± the in-flight statement).
pub fn crash_trials(seeds: u64) -> (Vec<Trial>, u64) {
    let ops = script();
    let states = model_states(&ops);
    let total = oracle_bytes(&ops, &states);
    println!("=== Crash injection: {seeds} seeded kills across {total} durable bytes ===",);
    let mut trials = Vec::with_capacity(seeds as usize);
    let mut by_outcome: BTreeMap<String, usize> = BTreeMap::new();
    for seed in 0..seeds {
        let t = run_trial(&ops, &states, total, seed);
        if t.diverged() {
            println!(
                "seed {seed}: DIVERGED at offset {} ({}): {}",
                t.offset, t.fault, t.outcome
            );
        }
        *by_outcome
            .entry(format!("{}/{}", t.fault, t.outcome))
            .or_default() += 1;
        trials.push(t);
    }
    for (outcome, n) in &by_outcome {
        println!("{n:>4}  {outcome}");
    }
    let divergences = trials.iter().filter(|t| t.diverged()).count();
    println!(
        "{} trials, {divergences} divergences — {}",
        trials.len(),
        if divergences == 0 { "PASS" } else { "FAIL" }
    );
    assert_eq!(divergences, 0, "crash recovery diverged from the oracle");
    (trials, total)
}

/// Full harness: 120 seeds, log written to `BENCH_crash.json`.
pub fn crash_harness() {
    let (trials, total) = crash_trials(120);
    let path = "BENCH_crash.json";
    match std::fs::write(path, trials_json(&trials, total)) {
        Ok(()) => println!("crash log written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// CI-sized smoke: 12 seeds, no baseline file. Completing without a
/// divergence (the trials assert) is the check.
pub fn crash_smoke() {
    crash_trials(12);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_the_script() {
        let ops = script();
        let states = model_states(&ops);
        assert_eq!(states.len(), ops.len() + 1);
        assert!(states[0].is_empty());
        // After op 1 (create t) and op 2 (insert 4 keys): 304 rows.
        assert_eq!(states[2]["t"].len(), 304);
        // v is created (240 rows), then dropped, then recreated at 60.
        assert_eq!(states[4]["v"].len(), 240);
        assert!(!states[6].contains_key("v"));
        assert_eq!(states[10]["v"].len(), 60);
        assert_eq!(states[10]["t"].len(), 307);
        assert_eq!(states[10]["w"].len(), 80);
    }

    #[test]
    fn a_handful_of_crash_trials_recover_the_committed_prefix() {
        let ops = script();
        let states = model_states(&ops);
        let total = oracle_bytes(&ops, &states);
        for seed in 100..106 {
            let t = run_trial(&ops, &states, total, seed);
            assert!(!t.diverged(), "seed {seed}: {}", t.outcome);
        }
    }

    #[test]
    fn trial_log_serializes_to_well_formed_json() {
        let trials = vec![Trial {
            seed: 1,
            fault: "torn",
            offset: 42,
            acked: 3,
            replayed: 2,
            outcome: "prefix".into(),
        }];
        let json = trials_json(&trials, 1000);
        assert!(json.contains("\"divergences\": 0"));
        assert!(json.contains("\"oracle_bytes\": 1000"));
        assert!(json.ends_with("}\n"));
    }
}
