//! Single-experiment runners: stage a workload on a device, run one
//! algorithm, and report simulated time plus cacheline traffic.

use pmem_sim::{
    BufferPool, DeviceConfig, IoStats, LatencyProfile, LayerKind, PCollection, PmDevice,
};
use wisconsin::{join_input, sort_input, KeyOrder, WisconsinRecord};
use write_limited::join::{JoinAlgorithm, JoinContext};
use write_limited::sort::{SortAlgorithm, SortContext};

/// One experiment's result.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Simulated response time in seconds.
    pub secs: f64,
    /// Cacheline reads.
    pub reads: u64,
    /// Cacheline writes.
    pub writes: u64,
    /// Output records (for verification).
    pub output_records: u64,
}

impl Measurement {
    fn from_stats(stats: IoStats, latency: &LatencyProfile, output_records: u64) -> Self {
        Self {
            secs: stats.time_secs(latency),
            reads: stats.cl_reads,
            writes: stats.cl_writes,
            output_records,
        }
    }
}

/// Runs one sort experiment: `n` permuted records, DRAM = `mem_fraction`
/// of the input, collections on `layer`, medium at `latency`.
///
/// Returns `None` when the algorithm's preconditions reject the setting
/// (the paper simply omits such points from its plots).
pub fn run_sort(
    algo: SortAlgorithm,
    layer: LayerKind,
    n: u64,
    mem_fraction: f64,
    latency: LatencyProfile,
    seed: u64,
) -> Option<Measurement> {
    let dev = PmDevice::new(DeviceConfig::paper_default().with_latency(latency));
    let input = PCollection::from_records_uncounted(
        &dev,
        layer,
        "T",
        sort_input(n, KeyOrder::Random, seed),
    );
    let input_bytes = input.bytes();
    let pool = BufferPool::fraction_of(input_bytes, mem_fraction);
    let ctx = SortContext::new(&dev, layer, &pool);
    let before = dev.snapshot();
    let out = algo.run(&input, &ctx, "sorted").ok()?;
    debug_assert_eq!(out.len() as u64, n, "sort must be complete");
    Some(Measurement::from_stats(
        dev.snapshot().since(&before),
        &latency,
        out.len() as u64,
    ))
}

/// Runs one join experiment: left `t` records, right `t·fanout`, DRAM =
/// `mem_fraction` of the *left* input (the paper's convention).
pub fn run_join(
    algo: JoinAlgorithm,
    layer: LayerKind,
    t: u64,
    fanout: u64,
    mem_fraction: f64,
    latency: LatencyProfile,
    seed: u64,
) -> Option<Measurement> {
    let dev = PmDevice::new(DeviceConfig::paper_default().with_latency(latency));
    let w = join_input(t, fanout, seed);
    let left: PCollection<WisconsinRecord> =
        PCollection::from_records_uncounted(&dev, layer, "T", w.left);
    let right: PCollection<WisconsinRecord> =
        PCollection::from_records_uncounted(&dev, layer, "V", w.right);
    let pool = BufferPool::fraction_of(left.bytes(), mem_fraction);
    let ctx = JoinContext::new(&dev, layer, &pool);
    let before = dev.snapshot();
    let out = algo.run(&left, &right, &ctx, "joined").ok()?;
    debug_assert_eq!(
        out.len() as u64,
        w.expected_matches,
        "join must be complete"
    );
    Some(Measurement::from_stats(
        dev.snapshot().since(&before),
        &latency,
        out.len() as u64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_measurement_is_populated() {
        let m = run_sort(
            SortAlgorithm::ExMS,
            LayerKind::BlockedMemory,
            5000,
            0.05,
            LatencyProfile::PCM,
            1,
        )
        .expect("ExMS always applicable");
        assert!(m.secs > 0.0 && m.reads > 0 && m.writes > 0);
        assert_eq!(m.output_records, 5000);
    }

    #[test]
    fn join_measurement_is_populated() {
        let m = run_join(
            JoinAlgorithm::GJ,
            LayerKind::BlockedMemory,
            2000,
            5,
            0.05,
            LatencyProfile::PCM,
            1,
        )
        .expect("GJ applicable at 5%");
        assert_eq!(m.output_records, 10_000);
    }

    #[test]
    fn inapplicable_settings_return_none() {
        // Grace join at 0.1% of a tiny input: M ≤ √(f|T|).
        let m = run_join(
            JoinAlgorithm::GJ,
            LayerKind::BlockedMemory,
            5000,
            2,
            0.001,
            LatencyProfile::PCM,
            1,
        );
        assert!(m.is_none());
    }

    #[test]
    fn write_limited_sort_beats_exms_writes() {
        let ex = run_sort(
            SortAlgorithm::ExMS,
            LayerKind::BlockedMemory,
            10_000,
            0.05,
            LatencyProfile::PCM,
            2,
        )
        .expect("ok");
        let las = run_sort(
            SortAlgorithm::LaS,
            LayerKind::BlockedMemory,
            10_000,
            0.05,
            LatencyProfile::PCM,
            2,
        )
        .expect("ok");
        assert!(
            (las.writes as f64) < 0.7 * ex.writes as f64,
            "LaS {} vs ExMS {}",
            las.writes,
            ex.writes
        );
    }
}
