//! Plan-level concordance: does the planner's predicted cost rank whole
//! query plans the way the simulator measures them? A plan-granularity
//! extension of the paper's Fig. 12 experiment, driven through the
//! `wl-db` facade the same way a client session would.
//!
//! For the canonical filter → join → aggregate query, the harness
//! sweeps the write/read ratio λ and the DRAM fraction; in every cell
//! it builds a database at that λ, binds the query through a session,
//! executes the winning plan, and records predicted vs measured cost
//! units. The report prints each cell's ratio plus Kendall's τ between
//! the predicted and measured cost across all cells — high τ means the
//! planner's cross-setting ranking is sound.

use crate::scale::Scale;
use wisconsin::join_input;
use wl_db::Database;
use write_limited::stats::kendall_tau;

/// One measured cell of the plan-concordance sweep.
#[derive(Clone, Debug)]
pub struct PlanCell {
    /// Write/read ratio of the cell's device.
    pub lambda: f64,
    /// DRAM fraction of the build input.
    pub mem_fraction: f64,
    /// Label of the join algorithm the planner chose.
    pub chosen_join: String,
    /// Predicted plan cost in read units.
    pub predicted_units: f64,
    /// Measured plan cost in read units.
    pub measured_units: f64,
}

/// Runs the sweep and returns the cells (library entry point; the bench
/// target prints them).
pub fn run_plan_concordance(scale: &Scale) -> Vec<PlanCell> {
    let t = scale.join_t.min(20_000); // planning sweep stays snappy
    let fanout = scale.join_fanout;
    let lambdas = [1.0, 2.0, 5.0, 15.0, 20.0];
    let mut cells = Vec::new();

    for &mem_fraction in &scale.mem_fractions {
        for &lambda in &lambdas {
            let db = Database::builder()
                .lambda(lambda)
                .dram_budget((t as f64 * 80.0 * mem_fraction) as usize)
                .build();
            let w = join_input(t, fanout, 42);
            db.register_table("t", w.left, t).expect("fresh table");
            db.register_table("v", w.right, t).expect("fresh table");

            let session = db.session();
            let sql = format!(
                "SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key < {} GROUP BY key",
                t / 2
            );
            let Ok(mut stream) = session.query(&sql) else {
                continue; // no applicable plan at this budget — skip, as the paper's plots do
            };
            if stream.drain().is_err() {
                continue;
            }
            let planned = stream.planned();
            let chosen_join = planned
                .choices
                .iter()
                .find(|c| c.node.starts_with("join"))
                .map(|c| c.chosen.clone())
                .unwrap_or_default();
            let predicted_units = planned.predicted.cost_units(lambda);
            let stats = stream.stats().expect("drained");
            cells.push(PlanCell {
                lambda,
                mem_fraction,
                chosen_join,
                predicted_units,
                measured_units: stats.io.cl_reads as f64 + lambda * stats.io.cl_writes as f64,
            });
        }
    }
    cells
}

/// Prints the sweep as the bench target's report.
pub fn plan_concordance(scale: &Scale) {
    println!("=== Plan-level concordance (Fig. 12 extension): σ(T) ⋈ V → γ ===");
    println!(
        "{:>6} {:>6}  {:<28} {:>14} {:>14} {:>7}",
        "λ", "M/|T|", "chosen join", "predicted", "measured", "ratio"
    );
    let cells = run_plan_concordance(scale);
    for c in &cells {
        println!(
            "{:>6} {:>6.3}  {:<28} {:>14.0} {:>14.0} {:>7.2}",
            c.lambda,
            c.mem_fraction,
            c.chosen_join,
            c.predicted_units,
            c.measured_units,
            c.predicted_units / c.measured_units
        );
    }
    let predicted: Vec<f64> = cells.iter().map(|c| c.predicted_units).collect();
    let measured: Vec<f64> = cells.iter().map(|c| c.measured_units).collect();
    match kendall_tau(&predicted, &measured) {
        Some(tau) => println!("\nKendall τ (predicted vs measured across cells): {tau:.3}"),
        None => println!("\nKendall τ undefined (too few cells)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_cells_and_high_concordance() {
        let scale = Scale {
            join_t: 4_000,
            join_fanout: 5,
            mem_fractions: vec![0.05, 0.10],
            ..Scale::quick()
        };
        let cells = run_plan_concordance(&scale);
        assert!(cells.len() >= 8, "most cells must plan and run");
        for c in &cells {
            let ratio = c.predicted_units / c.measured_units;
            assert!(
                (0.2..5.0).contains(&ratio),
                "λ={} M={}: ratio {ratio}",
                c.lambda,
                c.mem_fraction
            );
        }
        let predicted: Vec<f64> = cells.iter().map(|c| c.predicted_units).collect();
        let measured: Vec<f64> = cells.iter().map(|c| c.measured_units).collect();
        let tau = kendall_tau(&predicted, &measured).expect("enough cells");
        assert!(tau >= 0.6, "plan-level concordance collapsed: τ = {tau}");
    }
}
