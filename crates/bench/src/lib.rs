//! # wl-bench — reproduction harness
//!
//! One entry point per table/figure of the paper's evaluation (§4), each
//! printing the rows/series the paper reports from freshly simulated
//! runs, plus ablations for the runtime-driven knobs. Run everything via
//! `cargo bench` (each figure is a `harness = false` bench target) or
//! `cargo run -p wl-bench --bin repro -- --all`.

#![warn(missing_docs)]

pub mod ablation;
pub mod crash;
pub mod figures;
pub mod measure;
pub mod parallel;
pub mod plan;
pub mod profile;
pub mod scale;
pub mod skew;
pub mod table;

pub use crash::{crash_harness, crash_smoke};
pub use measure::{run_join, run_sort, Measurement};
pub use parallel::{parallel_speedup, parallel_speedup_cells, summary_json, wall_gap_smoke};
pub use plan::{plan_concordance, run_plan_concordance, PlanCell};
pub use profile::{profile_runs, profile_smoke, profile_to_file, ProfiledRun};
pub use scale::Scale;
pub use skew::{run_skew_cells, skew_bench, skew_smoke, SkewCell};
