//! The simulated persistent-memory device: configuration plus shared
//! counters.
//!
//! A [`PmDevice`] plays the role the instrumented persistent-memory region
//! plays in the paper's testbed: every persistent collection routes its
//! cacheline traffic through the device's [`Metrics`], and the simulated
//! response time of an operation is derived from the counter deltas around
//! it. Algorithms never see the device directly; they operate on
//! [`crate::collection::PCollection`]s bound to it.

use crate::config::DeviceConfig;
use crate::fault::{FaultKind, FaultPlan, FaultState, WriteVerdict};
use crate::metrics::{IoStats, Metrics};
use std::sync::{Arc, Mutex};

/// A simulated persistent-memory device.
///
/// `PmDevice` is `Send + Sync`: its counter bank is atomic, so
/// partition-parallel workers can share one device handle and charge
/// traffic concurrently while totals stay exact.
#[derive(Debug)]
pub struct PmDevice {
    config: DeviceConfig,
    metrics: Metrics,
    /// Fault-injection schedule for file-backed writes (crash harness
    /// hook); consulted only by the file layer, so the lock is off every
    /// simulated-memory hot path.
    fault: Mutex<FaultState>,
}

/// Shared handle to a device. Collections hold clones of this handle;
/// it is `Arc` so worker pools can fan partition work out across threads
/// (the paper's implementation is single-threaded, but its per-partition
/// work is embarrassingly parallel).
pub type Pm = Arc<PmDevice>;

impl PmDevice {
    /// Creates a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Pm {
        Arc::new(Self {
            config,
            metrics: Metrics::new(),
            fault: Mutex::new(FaultState::default()),
        })
    }

    /// Creates a device with the paper's default configuration
    /// (10 ns / 150 ns PCM latencies, 1024-byte blocks).
    pub fn paper_default() -> Pm {
        Self::new(DeviceConfig::paper_default())
    }

    /// Device configuration.
    #[inline]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Counter bank (used by backends; algorithms should prefer
    /// [`PmDevice::snapshot`]).
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current counter snapshot.
    pub fn snapshot(&self) -> IoStats {
        self.metrics.snapshot()
    }

    /// Simulated time elapsed since the device was created (or last reset),
    /// in seconds.
    pub fn now_secs(&self) -> f64 {
        self.snapshot().time_secs(&self.config.latency)
    }

    /// The medium's write/read cost ratio λ.
    pub fn lambda(&self) -> f64 {
        self.config.latency.lambda()
    }

    /// Resets all counters (e.g., after loading inputs, which the paper
    /// factors out of its reported timings).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// Arms a fault-injection plan for the device's file-backed writes.
    /// Replaces any previous plan and resets the durable-byte counter.
    pub fn arm_faults(&self, plan: FaultPlan) {
        self.fault.lock().expect("fault state").arm(plan);
    }

    /// Removes the fault plan; file-backed writes succeed again.
    pub fn disarm_faults(&self) {
        self.fault.lock().expect("fault state").disarm();
    }

    /// The fault that has tripped, if any (once tripped, every
    /// file-backed write and fsync fails until disarmed).
    pub fn fault_tripped(&self) -> Option<FaultKind> {
        self.fault.lock().expect("fault state").tripped()
    }

    /// File-backed bytes durably written since the plan was armed —
    /// harnesses measure a fault-free run with [`FaultPlan::observe`]
    /// to place kill points on later runs.
    pub fn fault_bytes_written(&self) -> u64 {
        self.fault.lock().expect("fault state").bytes_written()
    }

    /// Verdict for a file-backed write of `len` bytes (file layer only).
    pub(crate) fn fault_before_write(&self, len: usize) -> WriteVerdict {
        self.fault.lock().expect("fault state").before_write(len)
    }

    /// Whether a file-backed fsync may proceed (file layer only).
    pub(crate) fn fault_before_sync(&self) -> Result<(), FaultKind> {
        self.fault.lock().expect("fault state").before_sync()
    }

    /// Seed for torn-tail garbling (file layer only).
    pub(crate) fn fault_garble_seed(&self) -> u64 {
        self.fault.lock().expect("fault state").garble_seed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyProfile;

    #[test]
    fn device_is_send_and_sync() {
        // Compile-time guarantee the worker pool relies on: a device
        // handle may be shared across scoped threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PmDevice>();
        assert_send_sync::<Pm>();
    }

    #[test]
    fn device_reports_lambda_from_config() {
        let dev = PmDevice::new(
            DeviceConfig::paper_default().with_latency(LatencyProfile::with_lambda(10.0, 5.0)),
        );
        assert!((dev.lambda() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_clock() {
        let dev = PmDevice::paper_default();
        dev.metrics().add_writes(1000);
        assert!(dev.now_secs() > 0.0);
        dev.reset_metrics();
        assert_eq!(dev.now_secs(), 0.0);
    }
}
