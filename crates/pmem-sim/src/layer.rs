//! The persistence layer: the thin abstraction between DRAM and persistent
//! memory (Fig. 3 of the paper) and its four §3.2 implementation
//! alternatives.
//!
//! All four backends store the same bytes and expose the same append/scan
//! interface; they differ in *how much I/O and software overhead* the same
//! logical traffic costs:
//!
//! * [`LayerKind::BlockedMemory`] — linked blocks, byte-addressable, zero
//!   software overhead; the reference point ("shows the true potential of
//!   the hardware", §4.3).
//! * [`LayerKind::Pmfs`] — byte-addressable filesystem; cacheline-granular
//!   I/O plus a small per-call cost.
//! * [`LayerKind::RamDisk`] — memory-mounted block filesystem; I/O rounded
//!   to 512-byte records plus a larger per-call cost.
//! * [`LayerKind::DynArray`] — capacity-doubling dynamic array over a
//!   persistent allocator; every expansion *copies* the populated prefix,
//!   paying counted reads and writes for it.

use crate::config::{cachelines, DeviceConfig, CACHELINE, RAMDISK_RECORD};
use crate::device::PmDevice;

/// Selects one of the four §3.2 persistence-layer implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Linked list of fixed-size memory blocks; no overhead beyond raw
    /// medium latency.
    BlockedMemory,
    /// Byte-addressable filesystem (modeled after Intel PMFS).
    Pmfs,
    /// Memory-mounted block filesystem (512-byte records).
    RamDisk,
    /// Capacity-doubling dynamic array (C++ `std::vector` over a
    /// persistent-memory allocator).
    DynArray,
}

impl LayerKind {
    /// All four alternatives, in the paper's overhead order (best first).
    pub const ALL: [LayerKind; 4] = [
        LayerKind::BlockedMemory,
        LayerKind::Pmfs,
        LayerKind::RamDisk,
        LayerKind::DynArray,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            LayerKind::BlockedMemory => "blocked memory",
            LayerKind::Pmfs => "PMFS",
            LayerKind::RamDisk => "RAM disk",
            LayerKind::DynArray => "dyn. array",
        }
    }
}

/// Forward-only read cursor.
///
/// Sequential scans touch each cacheline once no matter how many records it
/// spans; the cursor remembers the next uncounted granule so overlapping
/// record reads are not double-charged. A fresh cursor (new scan) recounts
/// from the beginning — rescans are exactly what the write-limited
/// algorithms pay for, so they must be visible in the counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadCursor {
    next_granule: u64,
    /// Next call-granule not yet charged a layer call (sequential reads
    /// within one filesystem block/record share a single call).
    next_call_granule: u64,
}

impl ReadCursor {
    /// A cursor that will count from the first granule.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Byte storage plus accounting for one persistent collection.
///
/// Reads ([`Storage::read_at`]) take `&self` and charge the device's
/// atomic counters, so any number of worker threads may scan one
/// collection concurrently; appends require `&mut self`.
#[derive(Debug)]
pub struct Storage {
    kind: LayerKind,
    /// Payload bytes. Blocked memory keeps a chain of boxed blocks; the
    /// other three backends are contiguous (file / array semantics).
    blocks: Vec<Box<[u8]>>,
    contiguous: Vec<u8>,
    /// Logical length in bytes.
    len: usize,
    /// Dynamic-array capacity in bytes (DynArray only).
    capacity: usize,
    /// Granules already charged as written (ceil-delta accounting).
    written_granules: u64,
    block_size: usize,
}

/// Initial dynamic-array capacity in bytes (one block).
const DYNARRAY_INITIAL_CAPACITY: usize = 1024;

impl Storage {
    /// Creates empty storage of the given kind under `config`.
    pub fn new(kind: LayerKind, config: &DeviceConfig) -> Self {
        Self {
            kind,
            blocks: Vec::new(),
            contiguous: Vec::new(),
            len: 0,
            capacity: 0,
            written_granules: 0,
            block_size: config.block_size,
        }
    }

    /// Which §3.2 alternative this storage implements.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Logical length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bytes have been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write granularity in bytes: 512-byte records for the RAM disk,
    /// cachelines for the byte-addressable layers.
    fn granule(&self) -> usize {
        match self.kind {
            LayerKind::RamDisk => RAMDISK_RECORD,
            _ => CACHELINE,
        }
    }

    /// Cachelines of medium traffic per granule.
    fn cachelines_per_granule(&self) -> u64 {
        (self.granule() / CACHELINE) as u64
    }

    /// Software cost per layer call in nanoseconds.
    fn call_ns(&self, dev: &PmDevice) -> f64 {
        match self.kind {
            LayerKind::BlockedMemory | LayerKind::DynArray => 0.0,
            LayerKind::Pmfs => dev.config().pmfs_call_ns,
            LayerKind::RamDisk => dev.config().ramdisk_call_ns,
        }
    }

    /// Bytes served per layer call: one filesystem record for the RAM
    /// disk, one collection block for PMFS.
    fn call_granule(&self) -> usize {
        match self.kind {
            LayerKind::RamDisk => RAMDISK_RECORD,
            _ => self.block_size,
        }
    }

    /// Appends `data`, charging writes under this layer's model.
    pub fn append(&mut self, data: &[u8], dev: &PmDevice) {
        if data.is_empty() {
            return;
        }
        let old_len = self.len;
        let new_len = old_len + data.len();

        // Physical placement.
        match self.kind {
            LayerKind::BlockedMemory => self.append_blocked(data),
            LayerKind::DynArray => self.append_dynarray(data, dev),
            LayerKind::Pmfs | LayerKind::RamDisk => self.contiguous.extend_from_slice(data),
        }
        self.len = new_len;

        // Medium traffic: first touch of each granule counts once
        // (write-back buffering within a granule).
        let granule = self.granule() as u64;
        let total_granules = (new_len as u64).div_ceil(granule);
        let new_granules = total_granules - self.written_granules;
        if new_granules > 0 {
            dev.metrics()
                .add_writes(new_granules * self.cachelines_per_granule());
            self.written_granules = total_granules;
        }

        // Software overhead: appends are buffered at call granularity, so
        // one layer call is charged per call-granule first touched
        // (filesystem layers only).
        let call_ns = self.call_ns(dev);
        if call_ns > 0.0 {
            let cg = self.call_granule() as u64;
            let calls = (new_len as u64).div_ceil(cg) - (old_len as u64).div_ceil(cg);
            if calls > 0 {
                dev.metrics().add_software_ns(call_ns * calls as f64);
                dev.metrics().add_calls(calls);
            }
        }
    }

    fn append_blocked(&mut self, data: &[u8]) {
        let bs = self.block_size;
        let mut pos = self.len;
        let mut remaining = data;
        while !remaining.is_empty() {
            let off = pos % bs;
            if off == 0 {
                self.blocks.push(vec![0u8; bs].into_boxed_slice());
            }
            let block = self.blocks.last_mut().expect("block just ensured");
            let take = remaining.len().min(bs - off);
            block[off..off + take].copy_from_slice(&remaining[..take]);
            pos += take;
            remaining = &remaining[take..];
        }
    }

    fn append_dynarray(&mut self, data: &[u8], dev: &PmDevice) {
        let needed = self.len + data.len();
        if self.capacity == 0 {
            self.capacity = DYNARRAY_INITIAL_CAPACITY;
        }
        while self.capacity < needed {
            // Doubling expansion: allocate 2× and copy the populated
            // prefix over — the copy is real persistent-memory traffic
            // (reads of the old region, writes of the new one), which is
            // exactly the §3.2 criticism of dynamic arrays.
            let copied = self.len;
            let cls = cachelines(copied);
            dev.metrics().add_reads(cls);
            dev.metrics().add_writes(cls);
            self.capacity *= 2;
        }
        self.contiguous
            .reserve(needed.saturating_sub(self.contiguous.capacity()));
        self.contiguous.extend_from_slice(data);
    }

    /// Reads `buf.len()` bytes at `offset`, charging reads through the
    /// forward-only `cursor`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read_at(&self, offset: usize, buf: &mut [u8], cursor: &mut ReadCursor, dev: &PmDevice) {
        assert!(
            offset + buf.len() <= self.len,
            "read past end: offset {} + len {} > {}",
            offset,
            buf.len(),
            self.len
        );
        if buf.is_empty() {
            return;
        }

        // Physical copy.
        match self.kind {
            LayerKind::BlockedMemory => {
                let bs = self.block_size;
                let mut pos = offset;
                let mut out = 0usize;
                while out < buf.len() {
                    let b = pos / bs;
                    let o = pos % bs;
                    let take = (buf.len() - out).min(bs - o);
                    buf[out..out + take].copy_from_slice(&self.blocks[b][o..o + take]);
                    pos += take;
                    out += take;
                }
            }
            _ => buf.copy_from_slice(&self.contiguous[offset..offset + buf.len()]),
        }

        // Medium traffic: granules in [offset, offset+len) not yet counted
        // by this cursor.
        let granule = self.granule() as u64;
        let first = offset as u64 / granule;
        let last = (offset + buf.len() - 1) as u64 / granule;
        let start = first.max(cursor.next_granule);
        if last >= start {
            let n = last - start + 1;
            dev.metrics().add_reads(n * self.cachelines_per_granule());
            cursor.next_granule = last + 1;

            // Software overhead: one layer call per call-granule first
            // fetched (a sequential scan issues one call per block or
            // record, not one per record read).
            let call_ns = self.call_ns(dev);
            if call_ns > 0.0 {
                let cg = self.call_granule() as u64;
                let first_cg = offset as u64 / cg;
                let last_cg = (offset + buf.len() - 1) as u64 / cg;
                let start_cg = first_cg.max(cursor.next_call_granule);
                if last_cg >= start_cg {
                    let calls = last_cg - start_cg + 1;
                    dev.metrics().add_software_ns(call_ns * calls as f64);
                    dev.metrics().add_calls(calls);
                    cursor.next_call_granule = last_cg + 1;
                }
            }
        }
    }

    /// Truncates to zero length. Dynamic arrays keep their capacity (as
    /// C++ `vector::clear` does); blocked memory releases its blocks.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.contiguous.clear();
        self.len = 0;
        self.written_granules = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PmDevice;

    fn dev() -> crate::device::Pm {
        PmDevice::paper_default()
    }

    #[test]
    fn blocked_append_counts_ceil_delta_cachelines() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        s.append(&[0u8; 80], &d);
        assert_eq!(d.snapshot().cl_writes, 2); // ceil(80/64)
        s.append(&[0u8; 80], &d);
        assert_eq!(d.snapshot().cl_writes, 3); // ceil(160/64)
    }

    #[test]
    fn blocked_roundtrips_across_block_boundaries() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        s.append(&data, &d);
        assert_eq!(s.len(), 5000);
        let mut buf = vec![0u8; 5000];
        let mut cur = ReadCursor::new();
        s.read_at(0, &mut buf, &mut cur, &d);
        assert_eq!(buf, data);
    }

    #[test]
    fn sequential_reads_do_not_double_count_shared_cachelines() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        s.append(&[7u8; 160], &d);
        let before = d.snapshot();
        let mut cur = ReadCursor::new();
        let mut buf = [0u8; 80];
        s.read_at(0, &mut buf, &mut cur, &d);
        s.read_at(80, &mut buf, &mut cur, &d);
        let delta = d.snapshot().since(&before);
        assert_eq!(delta.cl_reads, 3); // 160 bytes = 3 cachelines, not 4
    }

    #[test]
    fn fresh_cursor_recounts_a_rescan() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        s.append(&[1u8; 128], &d);
        let mut buf = [0u8; 128];
        let before = d.snapshot();
        let mut c1 = ReadCursor::new();
        s.read_at(0, &mut buf, &mut c1, &d);
        let mut c2 = ReadCursor::new();
        s.read_at(0, &mut buf, &mut c2, &d);
        assert_eq!(d.snapshot().since(&before).cl_reads, 4);
    }

    #[test]
    fn ramdisk_rounds_io_to_512_byte_records() {
        let d = dev();
        let mut s = Storage::new(LayerKind::RamDisk, d.config());
        s.append(&[0u8; 80], &d);
        // One 512-byte record = 8 cachelines.
        assert_eq!(d.snapshot().cl_writes, 8);
        let mut buf = [0u8; 80];
        let mut cur = ReadCursor::new();
        let before = d.snapshot();
        s.read_at(0, &mut buf, &mut cur, &d);
        assert_eq!(d.snapshot().since(&before).cl_reads, 8);
    }

    #[test]
    fn ramdisk_charges_call_overhead() {
        let d = dev();
        let mut s = Storage::new(LayerKind::RamDisk, d.config());
        s.append(&[0u8; 512], &d);
        assert!(d.snapshot().software_ns > 0.0);
    }

    #[test]
    fn pmfs_overhead_is_smaller_than_ramdisk() {
        let d1 = dev();
        let mut p = Storage::new(LayerKind::Pmfs, d1.config());
        let d2 = dev();
        let mut r = Storage::new(LayerKind::RamDisk, d2.config());
        let data = vec![0u8; 64 * 1024];
        p.append(&data, &d1);
        r.append(&data, &d2);
        assert!(d1.snapshot().software_ns < d2.snapshot().software_ns);
    }

    #[test]
    fn dynarray_charges_copy_traffic_on_doubling() {
        let d = dev();
        let mut s = Storage::new(LayerKind::DynArray, d.config());
        // Fill past several doublings, record at a time as the algorithms
        // do (a single bulk append behaves like reserve+insert and copies
        // nothing — also asserted below).
        for _ in 0..(8192 / 64) {
            s.append(&[0u8; 64], &d);
        }
        let stats = d.snapshot();
        // Payload writes: 8192/64 = 128 cachelines; anything beyond that
        // is expansion-copy amplification, which must be non-zero.
        assert!(
            stats.cl_writes > 128,
            "writes {} expected > 128",
            stats.cl_writes
        );
        assert!(stats.cl_reads > 0);
    }

    #[test]
    fn dynarray_roundtrips() {
        let d = dev();
        let mut s = Storage::new(LayerKind::DynArray, d.config());
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 255) as u8).collect();
        s.append(&data, &d);
        let mut buf = vec![0u8; 3000];
        s.read_at(0, &mut buf, &mut ReadCursor::new(), &d);
        assert_eq!(buf, data);
    }

    #[test]
    fn clear_resets_write_accounting() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        s.append(&[0u8; 64], &d);
        s.clear();
        assert_eq!(s.len(), 0);
        s.append(&[0u8; 64], &d);
        assert_eq!(d.snapshot().cl_writes, 2); // both fills counted
    }

    #[test]
    fn all_kinds_store_identical_bytes() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 37 % 256) as u8).collect();
        for kind in LayerKind::ALL {
            let d = dev();
            let mut s = Storage::new(kind, d.config());
            // Append in uneven chunks to stress boundary logic.
            for chunk in data.chunks(173) {
                s.append(chunk, &d);
            }
            assert_eq!(s.len(), data.len(), "{kind:?}");
            let mut buf = vec![0u8; data.len()];
            s.read_at(0, &mut buf, &mut ReadCursor::new(), &d);
            assert_eq!(buf, data, "{kind:?}");
        }
    }
}
