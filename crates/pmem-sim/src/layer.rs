//! The persistence layer: the thin abstraction between DRAM and persistent
//! memory (Fig. 3 of the paper) and its four §3.2 implementation
//! alternatives.
//!
//! All four backends store the same bytes and expose the same append/scan
//! interface; they differ in *how much I/O and software overhead* the same
//! logical traffic costs:
//!
//! * [`LayerKind::BlockedMemory`] — linked blocks, byte-addressable, zero
//!   software overhead; the reference point ("shows the true potential of
//!   the hardware", §4.3).
//! * [`LayerKind::Pmfs`] — byte-addressable filesystem; cacheline-granular
//!   I/O plus a small per-call cost.
//! * [`LayerKind::RamDisk`] — memory-mounted block filesystem; I/O rounded
//!   to 512-byte records plus a larger per-call cost.
//! * [`LayerKind::DynArray`] — capacity-doubling dynamic array over a
//!   persistent allocator; every expansion *copies* the populated prefix,
//!   paying counted reads and writes for it.
//!
//! A fifth, non-paper layer backs the engine's durability work:
//!
//! * [`LayerKind::FileBacked`] — writes a **real file** through the OS,
//!   so the simulated counts can be sanity-checked against actual I/O
//!   ([`Storage::file_stats`]), appends can fail ([`Storage::try_append`]
//!   under an armed [`crate::fault::FaultPlan`]), and contents survive
//!   the process ([`Storage::open_file`]). The WAL and checkpoint files
//!   of the database live on this layer.

use crate::config::{cachelines, DeviceConfig, CACHELINE, FILE_RECORD, RAMDISK_RECORD};
use crate::device::PmDevice;
use crate::error::PmError;
use crate::fault::{FaultKind, WriteVerdict};
use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Selects one of the §3.2 persistence-layer implementations, or the
/// file-backed durability layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Linked list of fixed-size memory blocks; no overhead beyond raw
    /// medium latency.
    BlockedMemory,
    /// Byte-addressable filesystem (modeled after Intel PMFS).
    Pmfs,
    /// Memory-mounted block filesystem (512-byte records).
    RamDisk,
    /// Capacity-doubling dynamic array (C++ `std::vector` over a
    /// persistent-memory allocator).
    DynArray,
    /// A real file on the host filesystem (512-byte records, syscall
    /// overhead): durable across process exit, fallible under fault
    /// injection, with host-side I/O counters next to the simulated
    /// ones.
    FileBacked,
}

impl LayerKind {
    /// All four alternatives, in the paper's overhead order (best first).
    pub const ALL: [LayerKind; 4] = [
        LayerKind::BlockedMemory,
        LayerKind::Pmfs,
        LayerKind::RamDisk,
        LayerKind::DynArray,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            LayerKind::BlockedMemory => "blocked memory",
            LayerKind::Pmfs => "PMFS",
            LayerKind::RamDisk => "RAM disk",
            LayerKind::DynArray => "dyn. array",
            LayerKind::FileBacked => "file-backed",
        }
    }
}

/// Host-side I/O counters of a file-backed storage — the ground truth
/// the simulated counters are sanity-checked against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FileStats {
    /// `write(2)` calls issued to the OS file.
    pub write_syscalls: u64,
    /// Bytes actually handed to the OS file.
    pub bytes_written: u64,
    /// `fdatasync` calls issued.
    pub fsyncs: u64,
}

/// The real OS file behind a [`LayerKind::FileBacked`] storage.
#[derive(Debug)]
struct FileBacking {
    path: PathBuf,
    file: fs::File,
    /// Anonymous scratch file (created by [`Storage::new`]); removed on
    /// drop. Named files ([`Storage::create_file`] / [`Storage::open_file`])
    /// are left behind — durability is their point.
    ephemeral: bool,
    stats: FileStats,
}

impl Drop for FileBacking {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Process-wide counter so concurrent ephemeral files get distinct names.
static EPHEMERAL_FILE_ID: AtomicU64 = AtomicU64::new(0);

/// Forward-only read cursor.
///
/// Sequential scans touch each cacheline once no matter how many records it
/// spans; the cursor remembers the next uncounted granule so overlapping
/// record reads are not double-charged. A fresh cursor (new scan) recounts
/// from the beginning — rescans are exactly what the write-limited
/// algorithms pay for, so they must be visible in the counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadCursor {
    next_granule: u64,
    /// Next call-granule not yet charged a layer call (sequential reads
    /// within one filesystem block/record share a single call).
    next_call_granule: u64,
}

impl ReadCursor {
    /// A cursor that will count from the first granule.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Byte storage plus accounting for one persistent collection.
///
/// Reads ([`Storage::read_at`]) take `&self` and charge the device's
/// atomic counters, so any number of worker threads may scan one
/// collection concurrently; appends require `&mut self`.
#[derive(Debug)]
pub struct Storage {
    kind: LayerKind,
    /// Payload bytes. Blocked memory keeps a chain of boxed blocks; the
    /// other three backends are contiguous (file / array semantics).
    blocks: Vec<Box<[u8]>>,
    contiguous: Vec<u8>,
    /// Logical length in bytes.
    len: usize,
    /// Dynamic-array capacity in bytes (DynArray only).
    capacity: usize,
    /// Granules already charged as written (ceil-delta accounting).
    written_granules: u64,
    block_size: usize,
    /// Real OS file (FileBacked only). `contiguous` doubles as an
    /// in-memory mirror so reads never touch the OS.
    file: Option<FileBacking>,
}

/// Initial dynamic-array capacity in bytes (one block).
const DYNARRAY_INITIAL_CAPACITY: usize = 1024;

impl Storage {
    /// Creates empty storage of the given kind under `config`.
    ///
    /// For [`LayerKind::FileBacked`] this creates an anonymous scratch
    /// file in the OS temp directory, removed when the storage drops;
    /// use [`Storage::create_file`] for a file that should survive.
    ///
    /// # Panics
    /// Panics if the scratch file cannot be created (FileBacked only).
    pub fn new(kind: LayerKind, config: &DeviceConfig) -> Self {
        if kind == LayerKind::FileBacked {
            let path = std::env::temp_dir().join(format!(
                "wl-scratch-{}-{}.bin",
                std::process::id(),
                // audit:allow(counted-io) process-unique scratch-file id, not a device counter
                EPHEMERAL_FILE_ID.fetch_add(1, Ordering::Relaxed)
            ));
            return Self::create_file_at(&path, true, config)
                .expect("create ephemeral file-backed storage");
        }
        Self {
            kind,
            blocks: Vec::new(),
            contiguous: Vec::new(),
            len: 0,
            capacity: 0,
            written_granules: 0,
            block_size: config.block_size,
            file: None,
        }
    }

    /// Creates (truncating) a named file-backed storage at `path`.
    /// The file persists after the storage drops.
    pub fn create_file(path: impl AsRef<Path>, config: &DeviceConfig) -> Result<Self, PmError> {
        Self::create_file_at(path.as_ref(), false, config)
    }

    fn create_file_at(
        path: &Path,
        ephemeral: bool,
        config: &DeviceConfig,
    ) -> Result<Self, PmError> {
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| PmError::Io {
                path: path.display().to_string(),
                offset: 0,
                cause: e.to_string(),
            })?;
        Ok(Self {
            kind: LayerKind::FileBacked,
            blocks: Vec::new(),
            contiguous: Vec::new(),
            len: 0,
            capacity: 0,
            written_granules: 0,
            block_size: config.block_size,
            file: Some(FileBacking {
                path: path.to_path_buf(),
                file,
                ephemeral,
                stats: FileStats::default(),
            }),
        })
    }

    /// Opens an existing file-backed storage at `path`, loading its
    /// contents into the in-memory mirror. Appends continue at the end;
    /// no write traffic is charged for the preexisting bytes.
    pub fn open_file(path: impl AsRef<Path>, config: &DeviceConfig) -> Result<Self, PmError> {
        let path = path.as_ref();
        let io_err = |cause: String| PmError::Io {
            path: path.display().to_string(),
            offset: 0,
            cause,
        };
        let contents = fs::read(path).map_err(|e| io_err(e.to_string()))?;
        let file = fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(e.to_string()))?;
        let len = contents.len();
        Ok(Self {
            kind: LayerKind::FileBacked,
            blocks: Vec::new(),
            contiguous: contents,
            len,
            capacity: 0,
            written_granules: (len as u64).div_ceil(FILE_RECORD as u64),
            block_size: config.block_size,
            file: Some(FileBacking {
                path: path.to_path_buf(),
                file,
                ephemeral: false,
                stats: FileStats::default(),
            }),
        })
    }

    /// Which §3.2 alternative this storage implements.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Logical length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bytes have been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write granularity in bytes: 512-byte records for the RAM disk and
    /// the file layer, cachelines for the byte-addressable layers.
    fn granule(&self) -> usize {
        match self.kind {
            LayerKind::RamDisk => RAMDISK_RECORD,
            LayerKind::FileBacked => FILE_RECORD,
            _ => CACHELINE,
        }
    }

    /// Cachelines of medium traffic per granule.
    fn cachelines_per_granule(&self) -> u64 {
        (self.granule() / CACHELINE) as u64
    }

    /// Software cost per layer call in nanoseconds.
    fn call_ns(&self, dev: &PmDevice) -> f64 {
        match self.kind {
            LayerKind::BlockedMemory | LayerKind::DynArray => 0.0,
            LayerKind::Pmfs => dev.config().pmfs_call_ns,
            LayerKind::RamDisk => dev.config().ramdisk_call_ns,
            LayerKind::FileBacked => dev.config().file_call_ns,
        }
    }

    /// Bytes served per layer call: one filesystem record for the RAM
    /// disk and the file layer, one collection block for PMFS.
    fn call_granule(&self) -> usize {
        match self.kind {
            LayerKind::RamDisk => RAMDISK_RECORD,
            LayerKind::FileBacked => FILE_RECORD,
            _ => self.block_size,
        }
    }

    /// Appends `data`, charging writes under this layer's model.
    ///
    /// # Panics
    /// Panics if the append fails — possible only on the file-backed
    /// layer (OS error or armed fault). Durable code paths that must
    /// survive failure use [`Storage::try_append`] instead.
    pub fn append(&mut self, data: &[u8], dev: &PmDevice) {
        if let Err(e) = self.try_append(data, dev) {
            panic!("append failed: {e}");
        }
    }

    /// Appends `data`, charging writes under this layer's model.
    ///
    /// On the simulated-memory layers this never fails. On the
    /// file-backed layer it consults the device's fault plan first: a
    /// kill mid-write leaves the surviving prefix in the file (garbled
    /// at the tail if the plan says torn) and returns [`PmError::Io`];
    /// ENOSPC refuses the write in full.
    pub fn try_append(&mut self, data: &[u8], dev: &PmDevice) -> Result<(), PmError> {
        if data.is_empty() {
            return Ok(());
        }
        if self.file.is_some() {
            return self.append_file(data, dev);
        }
        let old_len = self.len;
        let new_len = old_len + data.len();

        // Physical placement.
        match self.kind {
            LayerKind::BlockedMemory => self.append_blocked(data),
            LayerKind::DynArray => self.append_dynarray(data, dev),
            LayerKind::Pmfs | LayerKind::RamDisk => self.contiguous.extend_from_slice(data),
            LayerKind::FileBacked => unreachable!("file-backed handled above"),
        }
        self.len = new_len;
        self.charge_append(old_len, new_len, dev);
        Ok(())
    }

    /// Medium traffic (first touch of each granule counts once —
    /// write-back buffering within a granule) plus software overhead
    /// (one layer call per call-granule first touched) for growing the
    /// storage from `old_len` to `new_len` bytes.
    fn charge_append(&mut self, old_len: usize, new_len: usize, dev: &PmDevice) {
        let granule = self.granule() as u64;
        let total_granules = (new_len as u64).div_ceil(granule);
        let new_granules = total_granules - self.written_granules;
        if new_granules > 0 {
            dev.metrics()
                .add_writes(new_granules * self.cachelines_per_granule());
            self.written_granules = total_granules;
        }

        let call_ns = self.call_ns(dev);
        if call_ns > 0.0 {
            let cg = self.call_granule() as u64;
            let calls = (new_len as u64).div_ceil(cg) - (old_len as u64).div_ceil(cg);
            if calls > 0 {
                dev.metrics().add_software_ns(call_ns * calls as f64);
                dev.metrics().add_calls(calls);
            }
        }
    }

    fn append_file(&mut self, data: &[u8], dev: &PmDevice) -> Result<(), PmError> {
        match dev.fault_before_write(data.len()) {
            WriteVerdict::Full => self.file_write(data, dev),
            WriteVerdict::Refuse(kind) => Err(self.file_error(kind.describe())),
            WriteVerdict::Partial { keep, torn } => {
                if keep > 0 {
                    let mut kept = data[..keep].to_vec();
                    if torn {
                        // Garble the tail of the kept prefix: a torn page
                        // that only a checksum can tell from valid data.
                        let pat = (dev.fault_garble_seed() as u8) | 0x01;
                        let n = kept.len().min(CACHELINE);
                        let start = kept.len() - n;
                        for b in &mut kept[start..] {
                            *b ^= pat;
                        }
                    }
                    self.file_write(&kept, dev)?;
                }
                Err(self.file_error(FaultKind::Crash.describe()))
            }
        }
    }

    /// Writes `data` to the OS file and the mirror, then charges the
    /// simulated counters for it.
    fn file_write(&mut self, data: &[u8], dev: &PmDevice) -> Result<(), PmError> {
        let old_len = self.len;
        {
            let fb = self.file.as_mut().expect("file-backed storage");
            if let Err(e) = fb.file.write_all(data) {
                let cause = e.to_string();
                return Err(self.file_error(cause));
            }
            let fb = self.file.as_mut().expect("file-backed storage");
            fb.stats.write_syscalls += 1;
            fb.stats.bytes_written += data.len() as u64;
        }
        self.contiguous.extend_from_slice(data);
        self.len = old_len + data.len();
        self.charge_append(old_len, self.len, dev);
        Ok(())
    }

    /// [`PmError::Io`] at the current end of this storage's file.
    fn file_error(&self, cause: impl Into<String>) -> PmError {
        PmError::Io {
            path: self
                .file
                .as_ref()
                .map(|f| f.path.display().to_string())
                .unwrap_or_default(),
            offset: self.len as u64,
            cause: cause.into(),
        }
    }

    /// Forces written data to the OS file (file-backed only; a no-op on
    /// the simulated layers). Charges one layer call. Fails if a fault
    /// has tripped — data cut by a kill can never be made durable.
    pub fn fsync(&mut self, dev: &PmDevice) -> Result<(), PmError> {
        if self.file.is_none() {
            return Ok(());
        }
        if let Err(kind) = dev.fault_before_sync() {
            return Err(self.file_error(kind.describe()));
        }
        let fb = self.file.as_mut().expect("file-backed storage");
        if let Err(e) = fb.file.sync_data() {
            let cause = e.to_string();
            return Err(self.file_error(cause));
        }
        let fb = self.file.as_mut().expect("file-backed storage");
        fb.stats.fsyncs += 1;
        dev.metrics().add_software_ns(dev.config().file_call_ns);
        dev.metrics().add_calls(1);
        Ok(())
    }

    /// Atomically renames the backing file (file-backed only); the open
    /// handle keeps writing to the same inode, so appends continue to
    /// land in the renamed file. This is the publish step of the
    /// write-tmp-fsync-rename discipline durable code uses.
    pub fn persist_as(&mut self, new_path: impl AsRef<Path>) -> Result<(), PmError> {
        let new_path = new_path.as_ref();
        let Some(fb) = self.file.as_mut() else {
            return Err(PmError::Io {
                path: new_path.display().to_string(),
                offset: 0,
                cause: "persist_as on a non-file-backed storage".into(),
            });
        };
        fs::rename(&fb.path, new_path).map_err(|e| PmError::Io {
            path: fb.path.display().to_string(),
            offset: 0,
            cause: e.to_string(),
        })?;
        fb.path = new_path.to_path_buf();
        fb.ephemeral = false;
        Ok(())
    }

    /// Host-side I/O counters (file-backed only).
    pub fn file_stats(&self) -> Option<FileStats> {
        self.file.as_ref().map(|f| f.stats)
    }

    /// Path of the backing file (file-backed only).
    pub fn file_path(&self) -> Option<&Path> {
        self.file.as_ref().map(|f| f.path.as_path())
    }

    fn append_blocked(&mut self, data: &[u8]) {
        let bs = self.block_size;
        let mut pos = self.len;
        let mut remaining = data;
        while !remaining.is_empty() {
            let off = pos % bs;
            if off == 0 {
                self.blocks.push(vec![0u8; bs].into_boxed_slice());
            }
            let block = self.blocks.last_mut().expect("block just ensured");
            let take = remaining.len().min(bs - off);
            block[off..off + take].copy_from_slice(&remaining[..take]);
            pos += take;
            remaining = &remaining[take..];
        }
    }

    fn append_dynarray(&mut self, data: &[u8], dev: &PmDevice) {
        let needed = self.len + data.len();
        if self.capacity == 0 {
            self.capacity = DYNARRAY_INITIAL_CAPACITY;
        }
        while self.capacity < needed {
            // Doubling expansion: allocate 2× and copy the populated
            // prefix over — the copy is real persistent-memory traffic
            // (reads of the old region, writes of the new one), which is
            // exactly the §3.2 criticism of dynamic arrays.
            let copied = self.len;
            let cls = cachelines(copied);
            dev.metrics().add_reads(cls);
            dev.metrics().add_writes(cls);
            self.capacity *= 2;
        }
        self.contiguous
            .reserve(needed.saturating_sub(self.contiguous.capacity()));
        self.contiguous.extend_from_slice(data);
    }

    /// Reads `buf.len()` bytes at `offset`, charging reads through the
    /// forward-only `cursor`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read_at(&self, offset: usize, buf: &mut [u8], cursor: &mut ReadCursor, dev: &PmDevice) {
        assert!(
            offset + buf.len() <= self.len,
            "read past end: offset {} + len {} > {}",
            offset,
            buf.len(),
            self.len
        );
        if buf.is_empty() {
            return;
        }

        // Physical copy.
        match self.kind {
            LayerKind::BlockedMemory => {
                let bs = self.block_size;
                let mut pos = offset;
                let mut out = 0usize;
                while out < buf.len() {
                    let b = pos / bs;
                    let o = pos % bs;
                    let take = (buf.len() - out).min(bs - o);
                    buf[out..out + take].copy_from_slice(&self.blocks[b][o..o + take]);
                    pos += take;
                    out += take;
                }
            }
            _ => buf.copy_from_slice(&self.contiguous[offset..offset + buf.len()]),
        }

        // Medium traffic: granules in [offset, offset+len) not yet counted
        // by this cursor.
        let granule = self.granule() as u64;
        let first = offset as u64 / granule;
        let last = (offset + buf.len() - 1) as u64 / granule;
        let start = first.max(cursor.next_granule);
        if last >= start {
            let n = last - start + 1;
            dev.metrics().add_reads(n * self.cachelines_per_granule());
            cursor.next_granule = last + 1;

            // Software overhead: one layer call per call-granule first
            // fetched (a sequential scan issues one call per block or
            // record, not one per record read).
            let call_ns = self.call_ns(dev);
            if call_ns > 0.0 {
                let cg = self.call_granule() as u64;
                let first_cg = offset as u64 / cg;
                let last_cg = (offset + buf.len() - 1) as u64 / cg;
                let start_cg = first_cg.max(cursor.next_call_granule);
                if last_cg >= start_cg {
                    let calls = last_cg - start_cg + 1;
                    dev.metrics().add_software_ns(call_ns * calls as f64);
                    dev.metrics().add_calls(calls);
                    cursor.next_call_granule = last_cg + 1;
                }
            }
        }
    }

    /// Truncates to zero length. Dynamic arrays keep their capacity (as
    /// C++ `vector::clear` does); blocked memory releases its blocks;
    /// file-backed storage truncates the OS file (best-effort).
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.contiguous.clear();
        self.len = 0;
        self.written_granules = 0;
        if let Some(fb) = self.file.as_mut() {
            let _ = fb.file.set_len(0);
            let _ = fb.file.seek(SeekFrom::Start(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PmDevice;

    fn dev() -> crate::device::Pm {
        PmDevice::paper_default()
    }

    #[test]
    fn blocked_append_counts_ceil_delta_cachelines() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        s.append(&[0u8; 80], &d);
        assert_eq!(d.snapshot().cl_writes, 2); // ceil(80/64)
        s.append(&[0u8; 80], &d);
        assert_eq!(d.snapshot().cl_writes, 3); // ceil(160/64)
    }

    #[test]
    fn blocked_roundtrips_across_block_boundaries() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        s.append(&data, &d);
        assert_eq!(s.len(), 5000);
        let mut buf = vec![0u8; 5000];
        let mut cur = ReadCursor::new();
        s.read_at(0, &mut buf, &mut cur, &d);
        assert_eq!(buf, data);
    }

    #[test]
    fn sequential_reads_do_not_double_count_shared_cachelines() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        s.append(&[7u8; 160], &d);
        let before = d.snapshot();
        let mut cur = ReadCursor::new();
        let mut buf = [0u8; 80];
        s.read_at(0, &mut buf, &mut cur, &d);
        s.read_at(80, &mut buf, &mut cur, &d);
        let delta = d.snapshot().since(&before);
        assert_eq!(delta.cl_reads, 3); // 160 bytes = 3 cachelines, not 4
    }

    #[test]
    fn fresh_cursor_recounts_a_rescan() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        s.append(&[1u8; 128], &d);
        let mut buf = [0u8; 128];
        let before = d.snapshot();
        let mut c1 = ReadCursor::new();
        s.read_at(0, &mut buf, &mut c1, &d);
        let mut c2 = ReadCursor::new();
        s.read_at(0, &mut buf, &mut c2, &d);
        assert_eq!(d.snapshot().since(&before).cl_reads, 4);
    }

    #[test]
    fn ramdisk_rounds_io_to_512_byte_records() {
        let d = dev();
        let mut s = Storage::new(LayerKind::RamDisk, d.config());
        s.append(&[0u8; 80], &d);
        // One 512-byte record = 8 cachelines.
        assert_eq!(d.snapshot().cl_writes, 8);
        let mut buf = [0u8; 80];
        let mut cur = ReadCursor::new();
        let before = d.snapshot();
        s.read_at(0, &mut buf, &mut cur, &d);
        assert_eq!(d.snapshot().since(&before).cl_reads, 8);
    }

    #[test]
    fn ramdisk_charges_call_overhead() {
        let d = dev();
        let mut s = Storage::new(LayerKind::RamDisk, d.config());
        s.append(&[0u8; 512], &d);
        assert!(d.snapshot().software_ns > 0.0);
    }

    #[test]
    fn pmfs_overhead_is_smaller_than_ramdisk() {
        let d1 = dev();
        let mut p = Storage::new(LayerKind::Pmfs, d1.config());
        let d2 = dev();
        let mut r = Storage::new(LayerKind::RamDisk, d2.config());
        let data = vec![0u8; 64 * 1024];
        p.append(&data, &d1);
        r.append(&data, &d2);
        assert!(d1.snapshot().software_ns < d2.snapshot().software_ns);
    }

    #[test]
    fn dynarray_charges_copy_traffic_on_doubling() {
        let d = dev();
        let mut s = Storage::new(LayerKind::DynArray, d.config());
        // Fill past several doublings, record at a time as the algorithms
        // do (a single bulk append behaves like reserve+insert and copies
        // nothing — also asserted below).
        for _ in 0..(8192 / 64) {
            s.append(&[0u8; 64], &d);
        }
        let stats = d.snapshot();
        // Payload writes: 8192/64 = 128 cachelines; anything beyond that
        // is expansion-copy amplification, which must be non-zero.
        assert!(
            stats.cl_writes > 128,
            "writes {} expected > 128",
            stats.cl_writes
        );
        assert!(stats.cl_reads > 0);
    }

    #[test]
    fn dynarray_roundtrips() {
        let d = dev();
        let mut s = Storage::new(LayerKind::DynArray, d.config());
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 255) as u8).collect();
        s.append(&data, &d);
        let mut buf = vec![0u8; 3000];
        s.read_at(0, &mut buf, &mut ReadCursor::new(), &d);
        assert_eq!(buf, data);
    }

    #[test]
    fn clear_resets_write_accounting() {
        let d = dev();
        let mut s = Storage::new(LayerKind::BlockedMemory, d.config());
        s.append(&[0u8; 64], &d);
        s.clear();
        assert_eq!(s.len(), 0);
        s.append(&[0u8; 64], &d);
        assert_eq!(d.snapshot().cl_writes, 2); // both fills counted
    }

    #[test]
    fn file_backed_roundtrips_and_counts_like_ramdisk() {
        let d = dev();
        let mut s = Storage::new(LayerKind::FileBacked, d.config());
        s.append(&[0u8; 80], &d);
        // One 512-byte record = 8 cachelines, same rounding as the RAM disk.
        assert_eq!(d.snapshot().cl_writes, 8);
        let mut buf = [0u8; 80];
        s.read_at(0, &mut buf, &mut ReadCursor::new(), &d);
        assert_eq!(buf, [0u8; 80]);
    }

    #[test]
    fn file_backed_simulated_counts_match_host_io() {
        let d = dev();
        let mut s = Storage::new(LayerKind::FileBacked, d.config());
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 253) as u8).collect();
        for chunk in data.chunks(100) {
            s.append(chunk, &d);
        }
        s.fsync(&d).unwrap();
        let stats = s.file_stats().unwrap();
        assert_eq!(stats.bytes_written, 3000, "host bytes == logical bytes");
        assert_eq!(stats.write_syscalls, 30);
        assert_eq!(stats.fsyncs, 1);
        // Simulated writes cover the same bytes at record granularity.
        assert_eq!(d.snapshot().cl_writes, 3000u64.div_ceil(512) * 8);
        // And the file on disk really holds the bytes.
        let on_disk = fs::read(s.file_path().unwrap()).unwrap();
        assert_eq!(on_disk, data);
    }

    #[test]
    fn ephemeral_file_is_removed_on_drop() {
        let d = dev();
        let path = {
            let s = Storage::new(LayerKind::FileBacked, d.config());
            let p = s.file_path().unwrap().to_path_buf();
            assert!(p.exists());
            p
        };
        assert!(!path.exists());
    }

    #[test]
    fn named_file_survives_drop_and_reopens() {
        let d = dev();
        let path = std::env::temp_dir().join(format!("wl-layer-test-{}.bin", std::process::id()));
        {
            let mut s = Storage::create_file(&path, d.config()).unwrap();
            s.append(b"hello, durable world", &d);
            s.fsync(&d).unwrap();
        }
        let mut s = Storage::open_file(&path, d.config()).unwrap();
        assert_eq!(s.len(), 20);
        let mut buf = [0u8; 20];
        s.read_at(0, &mut buf, &mut ReadCursor::new(), &d);
        assert_eq!(&buf, b"hello, durable world");
        // Appends continue at the end.
        s.append(b"!", &d);
        s.fsync(&d).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello, durable world!");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn armed_kill_truncates_the_file_and_fails_later_io() {
        let d = dev();
        let mut s = Storage::new(LayerKind::FileBacked, d.config());
        d.arm_faults(crate::fault::FaultPlan::kill_at(100, false, 0));
        s.try_append(&[1u8; 64], &d).unwrap();
        let err = s.try_append(&[2u8; 64], &d).unwrap_err();
        assert!(matches!(err, PmError::Io { .. }), "{err}");
        assert!(err.to_string().contains("injected crash"), "{err}");
        // The surviving prefix (64 full + 36 cut) is in the file.
        assert_eq!(s.len(), 100);
        assert_eq!(fs::read(s.file_path().unwrap()).unwrap().len(), 100);
        // Everything after the kill fails, including fsync.
        assert!(s.try_append(&[0u8; 1], &d).is_err());
        assert!(s.fsync(&d).is_err());
        d.disarm_faults();
        assert!(s.try_append(&[0u8; 1], &d).is_ok());
    }

    #[test]
    fn torn_tail_garbles_the_kept_prefix() {
        let d = dev();
        let mut s = Storage::new(LayerKind::FileBacked, d.config());
        d.arm_faults(crate::fault::FaultPlan::kill_at(100, true, 0xAB));
        assert!(s.try_append(&[0u8; 200], &d).is_err());
        let on_disk = fs::read(s.file_path().unwrap()).unwrap();
        assert_eq!(on_disk.len(), 100);
        assert!(
            on_disk.iter().any(|&b| b != 0),
            "torn tail must differ from the written zeros"
        );
        d.disarm_faults();
    }

    #[test]
    fn enospc_refuses_without_touching_the_file() {
        let d = dev();
        let mut s = Storage::new(LayerKind::FileBacked, d.config());
        d.arm_faults(crate::fault::FaultPlan::enospc_at(10));
        let err = s.try_append(&[0u8; 64], &d).unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(s.len(), 0);
        assert_eq!(fs::read(s.file_path().unwrap()).unwrap().len(), 0);
        d.disarm_faults();
    }

    #[test]
    fn all_kinds_store_identical_bytes() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 37 % 256) as u8).collect();
        for kind in LayerKind::ALL {
            let d = dev();
            let mut s = Storage::new(kind, d.config());
            // Append in uneven chunks to stress boundary logic.
            for chunk in data.chunks(173) {
                s.append(chunk, &d);
            }
            assert_eq!(s.len(), data.len(), "{kind:?}");
            let mut buf = vec![0u8; data.len()];
            s.read_at(0, &mut buf, &mut ReadCursor::new(), &d);
            assert_eq!(buf, data, "{kind:?}");
        }
    }
}
