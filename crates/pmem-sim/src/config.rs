//! Device configuration: latency profiles and granularities.
//!
//! The paper (§2, §4) models persistent-memory I/O in *buffers* equal to the
//! cacheline size and charges `r` cost units per cacheline read and `w` per
//! cacheline write, with `λ = w/r > 1`. The evaluation uses a 10 ns read
//! latency and a 150 ns write latency (following Qureshi et al. and
//! Mnemosyne), and sweeps the write latency between 50 ns and 200 ns in the
//! sensitivity analysis (Fig. 11).

/// Size of one cacheline in bytes — the paper's I/O *buffer* unit.
pub const CACHELINE: usize = 64;

/// Default collection block size in bytes (§4: "We therefore report
/// measurements for 1024-byte blocks").
pub const DEFAULT_BLOCK: usize = 1024;

/// RAM-disk record size in bytes (§3.2: "files are organized in 512-byte
/// records").
pub const RAMDISK_RECORD: usize = 512;

/// File-backed record size in bytes: the file layer goes through a real
/// block filesystem, so its I/O rounds to the same 512-byte records the
/// RAM disk models.
pub const FILE_RECORD: usize = 512;

/// Per-cacheline read/write latencies of the simulated medium.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyProfile {
    /// Nanoseconds to read one cacheline from persistent memory.
    pub read_ns: f64,
    /// Nanoseconds to write one cacheline to persistent memory.
    pub write_ns: f64,
}

impl LatencyProfile {
    /// The paper's default phase-change-memory profile: 10 ns reads,
    /// 150 ns writes (λ = 15).
    pub const PCM: Self = Self {
        read_ns: 10.0,
        write_ns: 150.0,
    };

    /// Creates a profile from a read latency and a write/read ratio λ.
    ///
    /// # Panics
    /// Panics if `read_ns` is not positive or `lambda < 1` (the paper
    /// assumes λ > 1; λ = 1 is allowed for symmetric-I/O baselines).
    pub fn with_lambda(read_ns: f64, lambda: f64) -> Self {
        assert!(read_ns > 0.0, "read latency must be positive");
        assert!(lambda >= 1.0, "write/read ratio must be >= 1");
        Self {
            read_ns,
            write_ns: read_ns * lambda,
        }
    }

    /// The write/read cost ratio λ = w/r.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.write_ns / self.read_ns
    }
}

impl Default for LatencyProfile {
    fn default() -> Self {
        Self::PCM
    }
}

/// Full configuration of a simulated persistent-memory device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceConfig {
    /// Medium latencies (per cacheline).
    pub latency: LatencyProfile,
    /// Collection block size in bytes; a small multiple of the cacheline.
    pub block_size: usize,
    /// Per-call software overhead of the PMFS backend (ns). PMFS is a
    /// kernel filesystem doing CPU load/store file access, so its overhead
    /// is small (§3.2).
    pub pmfs_call_ns: f64,
    /// Per-call software overhead of the RAM-disk backend (ns). The RAM
    /// disk goes through block-device filesystem paths, so its per-call
    /// cost is markedly higher.
    pub ramdisk_call_ns: f64,
    /// Per-call software overhead of the file-backed layer (ns): a real
    /// syscall into a disk filesystem, costlier than the memory-mounted
    /// RAM disk.
    pub file_call_ns: f64,
}

impl DeviceConfig {
    /// Paper-default configuration: PCM latencies, 1024-byte blocks.
    pub fn paper_default() -> Self {
        Self {
            latency: LatencyProfile::PCM,
            block_size: DEFAULT_BLOCK,
            pmfs_call_ns: 60.0,
            ramdisk_call_ns: 220.0,
            file_call_ns: 400.0,
        }
    }

    /// Overrides the latency profile, keeping other knobs.
    pub fn with_latency(mut self, latency: LatencyProfile) -> Self {
        self.latency = latency;
        self
    }

    /// Number of cachelines per collection block.
    pub fn cachelines_per_block(&self) -> usize {
        self.block_size / CACHELINE
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Converts a byte count to the number of cachelines it occupies.
#[inline]
pub fn cachelines(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(CACHELINE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_profile_lambda_is_fifteen() {
        assert!((LatencyProfile::PCM.lambda() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn with_lambda_reconstructs_write_latency() {
        let p = LatencyProfile::with_lambda(10.0, 8.0);
        assert!((p.write_ns - 80.0).abs() < 1e-12);
        assert!((p.lambda() - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "write/read ratio")]
    fn with_lambda_rejects_sub_unit_ratio() {
        let _ = LatencyProfile::with_lambda(10.0, 0.5);
    }

    #[test]
    fn cacheline_rounding() {
        assert_eq!(cachelines(0), 0);
        assert_eq!(cachelines(1), 1);
        assert_eq!(cachelines(64), 1);
        assert_eq!(cachelines(65), 2);
        assert_eq!(cachelines(80), 2);
        assert_eq!(cachelines(1024), 16);
    }

    #[test]
    fn default_config_block_is_sixteen_cachelines() {
        assert_eq!(DeviceConfig::default().cachelines_per_block(), 16);
    }
}
