//! Energy and endurance models.
//!
//! The paper's §4.3 notes that write/read asymmetry "also manifests in
//! terms of power consumption; or device degradation. Our algorithms are
//! applicable then as well and the relative gains may be higher as the
//! asymmetry is more pronounced under such metrics." These models put
//! numbers on that claim: the same counted cacheline traffic is priced
//! in nanojoules (PCM writes cost ~an order of magnitude more energy per
//! bit than reads) and in wear (each cell survives a bounded number of
//! writes).

use crate::metrics::IoStats;

/// Per-cacheline energy costs in nanojoules.
///
/// Defaults follow published PCM characterizations (≈2 pJ/bit reads,
/// ≈20–50 pJ/bit writes): a 64-byte cacheline is 512 bits, giving ≈1 nJ
/// per read and ≈16 nJ per write — an energy asymmetry of 16, slightly
/// above the default latency asymmetry of 15.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Nanojoules per cacheline read.
    pub read_nj: f64,
    /// Nanojoules per cacheline write.
    pub write_nj: f64,
}

impl EnergyModel {
    /// Default PCM energy profile.
    pub const PCM: Self = Self {
        read_nj: 1.0,
        write_nj: 16.0,
    };

    /// The energy asymmetry (write/read energy ratio).
    pub fn asymmetry(&self) -> f64 {
        self.write_nj / self.read_nj
    }

    /// Energy consumed by the given traffic, in microjoules.
    pub fn energy_uj(&self, stats: &IoStats) -> f64 {
        (stats.cl_reads as f64 * self.read_nj + stats.cl_writes as f64 * self.write_nj) / 1000.0
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::PCM
    }
}

/// Device endurance model: how much lifetime a workload's writes consume.
///
/// Persistent-memory cells endure a bounded number of writes (PCM:
/// ~10⁸); perfect wear-leveling spreads writes across the whole device,
/// so lifetime consumption is `writes / (cells × endurance)` with cells
/// counted in cachelines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WearModel {
    /// Device capacity in bytes.
    pub capacity_bytes: u64,
    /// Write endurance per cell (writes survived).
    pub cell_endurance: u64,
}

impl WearModel {
    /// A 16 GiB PCM device at 10⁸ writes/cell.
    pub fn pcm_16gib() -> Self {
        Self {
            capacity_bytes: 16 << 30,
            cell_endurance: 100_000_000,
        }
    }

    /// Fraction of device lifetime consumed by `stats` under ideal
    /// wear-leveling (1.0 = device worn out).
    pub fn lifetime_fraction(&self, stats: &IoStats) -> f64 {
        let cells = (self.capacity_bytes / crate::config::CACHELINE as u64).max(1);
        stats.cl_writes as f64 / (cells as f64 * self.cell_endurance as f64)
    }

    /// How many times the workload could repeat before the device wears
    /// out (∞-safe: returns `f64::INFINITY` for write-free workloads).
    pub fn repetitions_to_wearout(&self, stats: &IoStats) -> f64 {
        let f = self.lifetime_fraction(stats);
        if f == 0.0 {
            f64::INFINITY
        } else {
            1.0 / f
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(reads: u64, writes: u64) -> IoStats {
        IoStats {
            cl_reads: reads,
            cl_writes: writes,
            ..Default::default()
        }
    }

    #[test]
    fn pcm_energy_asymmetry_is_sixteen() {
        assert!((EnergyModel::PCM.asymmetry() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn energy_prices_reads_and_writes() {
        let e = EnergyModel::PCM.energy_uj(&stats(1000, 100));
        // 1000·1 + 100·16 = 2600 nJ = 2.6 µJ.
        assert!((e - 2.6).abs() < 1e-9);
    }

    #[test]
    fn write_saving_saves_more_energy_than_time_at_higher_asymmetry() {
        // Trading 10 writes for 100 reads: time-neutral at λ=10 but an
        // energy win at asymmetry 16.
        let before = stats(0, 10);
        let after = stats(100, 0);
        let m = EnergyModel::PCM;
        assert!(m.energy_uj(&after) < m.energy_uj(&before));
    }

    #[test]
    fn wear_scales_with_writes_only() {
        let w = WearModel::pcm_16gib();
        assert_eq!(w.lifetime_fraction(&stats(1_000_000, 0)), 0.0);
        let f = w.lifetime_fraction(&stats(0, 1_000_000));
        assert!(f > 0.0 && f < 1e-6);
        assert!(w.repetitions_to_wearout(&stats(0, 1_000_000)).is_finite());
        assert!(w.repetitions_to_wearout(&stats(5, 0)).is_infinite());
    }
}
