//! Structured profiling spans.
//!
//! A span brackets a region of work and captures three things: host
//! wall-time, the simulated I/O delta ([`IoStats`], from which simulated
//! time follows under a latency profile), and the thread that ran it.
//! Spans nest, so a profiled query yields a *tree* ([`SpanNode`]) whose
//! shape mirrors the call structure — plan nodes, operator phases, and
//! per-task leaves from the worker pool.
//!
//! Two properties the rest of the system relies on:
//!
//! * **Spans never perturb the counted workload.** Measurement is pure
//!   observation of the thread-local ledgers ([`crate::metrics::thread_flow`]);
//!   no span ever touches a [`crate::Metrics`] bank, so simulated counters
//!   are bit-identical with profiling on or off.
//! * **Child deltas sum to (at most) the parent's.** A frame's delta is
//!   taken from the monotonic per-thread flow ledger, which includes both
//!   the thread's own traffic and traffic it [`crate::metrics::adopt`]ed
//!   from completed worker tasks, so a parent always covers its children
//!   plus its own work ([`SpanNode::validate`]).
//!
//! Profiling is armed per-thread by [`begin_profile`]; while no profile is
//! active on the current thread every entry point here is a cheap no-op,
//! so instrumentation can be left on unconditionally.

use crate::metrics::{thread_flow, IoStats};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One node of a recorded profile tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Human-readable label (plan-node label, phase name, or `task-N`).
    pub label: String,
    /// Profiler-assigned id of the thread that ran the span.
    pub thread: u64,
    /// Host wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Simulated I/O delta over the span, inclusive of children.
    pub io: IoStats,
    /// Result cardinality, when the instrumented site reported one.
    pub rows: Option<u64>,
    /// Nested spans, in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Component-wise sum of the direct children's deltas.
    pub fn children_io(&self) -> IoStats {
        self.children
            .iter()
            .fold(IoStats::default(), |acc, c| acc.plus(&c.io))
    }

    /// This node's own delta: inclusive minus children (saturating, to
    /// stay robust against sub-nanosecond float residue in software time).
    pub fn self_io(&self) -> IoStats {
        let kids = self.children_io();
        IoStats {
            cl_reads: self.io.cl_reads.saturating_sub(kids.cl_reads),
            cl_writes: self.io.cl_writes.saturating_sub(kids.cl_writes),
            software_ns: (self.io.software_ns - kids.software_ns).max(0.0),
            calls: self.io.calls.saturating_sub(kids.calls),
        }
    }

    /// Simulated time of the inclusive delta in nanoseconds.
    pub fn simulated_ns(&self, latency: &crate::LatencyProfile) -> f64 {
        self.io.time_ns(latency)
    }

    /// Checks the tree invariant: at every node, the children's deltas
    /// sum to at most the parent's (per counter; software time gets a
    /// nanosecond of float tolerance). Returns the offending label on
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        let kids = self.children_io();
        if kids.cl_reads > self.io.cl_reads
            || kids.cl_writes > self.io.cl_writes
            || kids.calls > self.io.calls
            || kids.software_ns > self.io.software_ns + 1.0
        {
            return Err(format!(
                "span '{}': children sum {kids:?} exceeds parent delta {:?}",
                self.label, self.io
            ));
        }
        for child in &self.children {
            child.validate()?;
        }
        Ok(())
    }

    /// First node (pre-order) whose label equals `label`.
    pub fn find(&self, label: &str) -> Option<&SpanNode> {
        if self.label == label {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(label))
    }

    /// Number of nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::node_count)
            .sum::<usize>()
    }

    /// Number of worker-task leaves (labels starting with `task-`) in the
    /// subtree.
    pub fn task_count(&self) -> usize {
        let own = usize::from(self.label.starts_with("task-"));
        own + self
            .children
            .iter()
            .map(SpanNode::task_count)
            .sum::<usize>()
    }

    /// Plain indented rendering of the tree (labels plus counters), for
    /// diagnostics and tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let rows = match self.rows {
            Some(n) => format!(", {n} rows"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{pad}{}  [{}r/{}w{rows}, thread {}, {:.1}us wall]\n",
            self.label,
            self.io.cl_reads,
            self.io.cl_writes,
            self.thread,
            self.wall_ns as f64 / 1e3,
        ));
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

struct Frame {
    label: String,
    start: Instant,
    start_flow: IoStats,
    rows: Option<u64>,
    children: Vec<SpanNode>,
}

impl Frame {
    fn open(label: String) -> Self {
        Self {
            label,
            start: Instant::now(),
            start_flow: thread_flow(),
            rows: None,
            children: Vec::new(),
        }
    }

    fn close(self) -> SpanNode {
        SpanNode {
            label: self.label,
            thread: thread_id(),
            wall_ns: self.start.elapsed().as_nanos() as u64,
            io: thread_flow().since(&self.start_flow),
            rows: self.rows,
            children: self.children,
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// Stable profiler id of the calling thread (assigned on first use).
pub fn thread_id() -> u64 {
    TID.with(|t| {
        let id = t.get();
        if id != u64::MAX {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        t.set(id);
        id
    })
}

/// Whether a profile is active on the calling thread.
pub fn profiling() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

/// Arms profiling on the calling thread by opening the root frame.
/// Must be balanced by [`end_profile`].
///
/// # Panics
/// Panics if a profile is already active on this thread (profiles do not
/// nest; nest [`span`]s instead).
pub fn begin_profile(label: &str) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        assert!(
            stack.is_empty(),
            "profile already active on this thread (root '{}')",
            stack[0].label
        );
        stack.push(Frame::open(label.to_string()));
    });
}

/// Closes the root frame and returns the recorded tree; disarms
/// profiling on this thread. Returns `None` if no profile was active.
/// Any frames left open by a non-local exit (error propagation dropped
/// their guards already, so this is belt-and-braces) are folded into
/// their parents rather than lost.
pub fn end_profile() -> Option<SpanNode> {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let mut node = stack.pop()?.close();
        while let Some(mut parent) = stack.pop() {
            parent.children.push(node);
            node = parent.close();
        }
        Some(node)
    })
}

/// RAII guard for one nested span; closes and attaches to its parent on
/// drop. Inert when no profile is active on the thread.
#[derive(Debug)]
pub struct Span {
    armed: bool,
}

impl Span {
    /// Whether this guard actually opened a frame.
    pub fn is_active(&self) -> bool {
        self.armed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // The frame below ours always exists: `span` only arms when
            // the stack is non-empty, and profiles close strictly after
            // the spans nested inside them.
            let node = stack.pop().expect("span stack underflow").close();
            if let Some(parent) = stack.last_mut() {
                parent.children.push(node);
            }
        });
    }
}

/// Opens a nested span labelled `label`. No-op unless a profile is
/// active on the calling thread.
pub fn span(label: &str) -> Span {
    span_with(|| label.to_string())
}

/// Opens a nested span, building the label lazily so inactive call sites
/// pay nothing for formatting.
pub fn span_with(label: impl FnOnce() -> String) -> Span {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.is_empty() {
            return Span { armed: false };
        }
        stack.push(Frame::open(label()));
        Span { armed: true }
    })
}

/// Records the result cardinality on the innermost open frame (no-op
/// when inactive).
pub fn note_rows(rows: u64) {
    STACK.with(|s| {
        if let Some(frame) = s.borrow_mut().last_mut() {
            frame.rows = Some(rows);
        }
    });
}

/// Attaches a completed worker task as a leaf of the innermost open
/// frame (no-op when inactive). The caller is responsible for having
/// [`crate::metrics::adopt`]ed off-thread task traffic so the parent
/// frame's flow delta covers the leaf.
pub fn attach_task(label: String, thread: u64, wall_ns: u64, io: IoStats) {
    STACK.with(|s| {
        if let Some(frame) = s.borrow_mut().last_mut() {
            frame.children.push(SpanNode {
                label,
                thread,
                wall_ns,
                io,
                rows: None,
                children: Vec::new(),
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adopt;
    use crate::Metrics;

    #[test]
    fn spans_are_inert_without_a_profile() {
        assert!(!profiling());
        {
            let s = span("ignored");
            assert!(!s.is_active());
            note_rows(5);
            attach_task("task-0".into(), 0, 0, IoStats::default());
        }
        assert!(end_profile().is_none());
    }

    #[test]
    fn nested_spans_build_a_tree_with_summing_deltas() {
        let m = Metrics::new();
        begin_profile("root");
        {
            let _a = span("a");
            m.add_reads(10);
            {
                let _b = span("a.b");
                m.add_writes(4);
            }
        }
        m.add_reads(1);
        let root = end_profile().expect("profile recorded");
        assert!(!profiling());
        assert_eq!(root.label, "root");
        assert_eq!(root.io.cl_reads, 11);
        assert_eq!(root.io.cl_writes, 4);
        let a = root.find("a").expect("child recorded");
        assert_eq!(a.io.cl_reads, 10);
        assert_eq!(a.io.cl_writes, 4);
        let b = root.find("a.b").expect("grandchild recorded");
        assert_eq!(b.io.cl_writes, 4);
        assert_eq!(b.io.cl_reads, 0);
        root.validate().expect("children sum within parents");
        assert_eq!(root.self_io().cl_reads, 1);
    }

    #[test]
    fn attached_tasks_count_and_validate_after_adoption() {
        let m = Metrics::new();
        begin_profile("root");
        {
            let _p = span("tasks[2]");
            m.add_reads(3); // coordinator's own share
            let worker = IoStats {
                cl_reads: 7,
                cl_writes: 2,
                software_ns: 0.0,
                calls: 1,
            };
            adopt(&worker);
            attach_task("task-0".into(), 99, 1_000, worker);
            attach_task("task-1".into(), 99, 1_000, IoStats::default());
        }
        let root = end_profile().expect("profile recorded");
        root.validate().expect("adopted leaves covered by parent");
        assert_eq!(root.task_count(), 2);
        let pool = root.find("tasks[2]").expect("pool span");
        assert_eq!(pool.io.cl_reads, 10);
        assert_eq!(pool.self_io().cl_reads, 3);
    }

    #[test]
    fn note_rows_lands_on_innermost_frame() {
        begin_profile("root");
        {
            let _s = span("node");
            note_rows(42);
        }
        let root = end_profile().expect("profile recorded");
        assert_eq!(root.rows, None);
        assert_eq!(root.find("node").expect("node").rows, Some(42));
    }

    #[test]
    fn end_profile_folds_frames_left_open_by_unwind() {
        let m = Metrics::new();
        begin_profile("root");
        // Simulate an error path that never closed its span guard in
        // order (guards are Drop-based so this cannot happen in safe
        // code, but end_profile must still terminate).
        STACK.with(|s| s.borrow_mut().push(Frame::open("orphan".into())));
        m.add_writes(5);
        let root = end_profile().expect("profile recorded");
        assert_eq!(root.label, "root");
        assert_eq!(root.find("orphan").expect("folded").io.cl_writes, 5);
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let here = thread_id();
        assert_eq!(here, thread_id());
        let other = std::thread::spawn(thread_id).join().expect("joins");
        assert_ne!(here, other);
    }
}
