//! Fault injection for the file-backed persistence layer.
//!
//! Durable code paths (the WAL, checkpoints) must survive the one event
//! the simulated layers never see: the process dying mid-write. This
//! module gives a device a [`FaultPlan`] — a deterministic description
//! of *when* its file-backed writes start failing and *how* (clean
//! refusal, short write, torn tail, out of space) — so a crash harness
//! can sweep kill points over a workload and assert that recovery
//! reconstructs exactly the acknowledged prefix.
//!
//! The hook sits in the device ([`crate::PmDevice::arm_faults`]): every
//! file-backed write asks the device for a verdict before touching the
//! OS file, and once a fault trips, every later write and fsync fails
//! until the plan is disarmed. Plans are plain data seeded by the
//! harness, so a failing seed reproduces byte-for-byte.

/// How an injected failure presents to the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The simulated process died: the in-flight write was cut at the
    /// kill offset and nothing later reaches the file.
    Crash,
    /// The device ran out of space: the write is refused in full, no
    /// bytes reach the file.
    NoSpace,
}

impl FaultKind {
    /// Stable human-readable cause string (surfaced in I/O errors).
    pub fn describe(&self) -> &'static str {
        match self {
            FaultKind::Crash => "injected crash: process killed mid-write",
            FaultKind::NoSpace => "injected ENOSPC: no space left on device",
        }
    }
}

/// A deterministic fault schedule for file-backed writes.
///
/// Byte offsets count *file-backed bytes attempted since the plan was
/// armed*, across every file on the device — the WAL and checkpoint
/// share one budget, which is exactly how a real kill behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Kill the process once this many bytes have been written: the
    /// write that crosses the boundary is truncated at it, and every
    /// later write or fsync fails with [`FaultKind::Crash`].
    pub kill_after_bytes: Option<u64>,
    /// Refuse (in full) the write that would cross this many bytes with
    /// [`FaultKind::NoSpace`], and every write after it.
    pub enospc_after_bytes: Option<u64>,
    /// When killing mid-write, also garble the tail of the surviving
    /// prefix — a torn page, distinguishable from a clean short write
    /// only by checksums.
    pub torn_tail: bool,
    /// Seed for the torn-tail garble pattern.
    pub garble_seed: u64,
}

impl FaultPlan {
    /// A plan that never fires — armed only to count durable bytes
    /// (harnesses use the total to place kill points on later runs).
    pub fn observe() -> Self {
        Self {
            kill_after_bytes: None,
            enospc_after_bytes: None,
            torn_tail: false,
            garble_seed: 0,
        }
    }

    /// Kill after `bytes` durable bytes; `torn` garbles the cut tail.
    pub fn kill_at(bytes: u64, torn: bool, garble_seed: u64) -> Self {
        Self {
            kill_after_bytes: Some(bytes),
            enospc_after_bytes: None,
            torn_tail: torn,
            garble_seed,
        }
    }

    /// Run out of space after `bytes` durable bytes.
    pub fn enospc_at(bytes: u64) -> Self {
        Self {
            kill_after_bytes: None,
            enospc_after_bytes: Some(bytes),
            torn_tail: false,
            garble_seed: 0,
        }
    }
}

/// The device-side verdict for one file-backed write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteVerdict {
    /// Write all bytes.
    Full,
    /// Write only the first `keep` bytes, then fail: a short write
    /// (`torn == false`) or a torn page (`torn == true`, the layer
    /// garbles the tail of the kept prefix).
    Partial {
        /// Bytes that reach the file.
        keep: usize,
        /// Whether to garble the tail of the kept prefix.
        torn: bool,
    },
    /// Refuse the write entirely.
    Refuse(FaultKind),
}

/// Mutable fault bookkeeping owned by the device.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    plan: Option<FaultPlan>,
    bytes_written: u64,
    tripped: Option<FaultKind>,
}

impl FaultState {
    pub(crate) fn arm(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
        self.bytes_written = 0;
        self.tripped = None;
    }

    pub(crate) fn disarm(&mut self) {
        self.plan = None;
        self.tripped = None;
    }

    pub(crate) fn tripped(&self) -> Option<FaultKind> {
        self.tripped
    }

    pub(crate) fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    pub(crate) fn garble_seed(&self) -> u64 {
        self.plan.map_or(0, |p| p.garble_seed)
    }

    /// Verdict for a write of `len` bytes; accounts the bytes that will
    /// reach the file.
    pub(crate) fn before_write(&mut self, len: usize) -> WriteVerdict {
        if let Some(kind) = self.tripped {
            return WriteVerdict::Refuse(kind);
        }
        let Some(plan) = self.plan else {
            return WriteVerdict::Full;
        };
        let end = self.bytes_written + len as u64;
        if let Some(limit) = plan.enospc_after_bytes {
            if end > limit {
                self.tripped = Some(FaultKind::NoSpace);
                return WriteVerdict::Refuse(FaultKind::NoSpace);
            }
        }
        if let Some(limit) = plan.kill_after_bytes {
            if end > limit {
                let keep = limit.saturating_sub(self.bytes_written) as usize;
                self.bytes_written = limit;
                self.tripped = Some(FaultKind::Crash);
                return WriteVerdict::Partial {
                    keep,
                    torn: plan.torn_tail,
                };
            }
        }
        self.bytes_written = end;
        WriteVerdict::Full
    }

    /// Whether an fsync may proceed (fails once a fault has tripped —
    /// data cut by the kill can never be made durable).
    pub(crate) fn before_sync(&self) -> Result<(), FaultKind> {
        match self.tripped {
            Some(kind) => Err(kind),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_state_passes_everything() {
        let mut s = FaultState::default();
        assert_eq!(s.before_write(1000), WriteVerdict::Full);
        assert!(s.before_sync().is_ok());
        assert_eq!(s.tripped(), None);
    }

    #[test]
    fn observe_plan_counts_bytes_without_firing() {
        let mut s = FaultState::default();
        s.arm(FaultPlan::observe());
        assert_eq!(s.before_write(100), WriteVerdict::Full);
        assert_eq!(s.before_write(28), WriteVerdict::Full);
        assert_eq!(s.bytes_written(), 128);
        assert!(s.before_sync().is_ok());
    }

    #[test]
    fn kill_truncates_the_crossing_write_and_kills_the_rest() {
        let mut s = FaultState::default();
        s.arm(FaultPlan::kill_at(150, true, 7));
        assert_eq!(s.before_write(100), WriteVerdict::Full);
        assert_eq!(
            s.before_write(100),
            WriteVerdict::Partial {
                keep: 50,
                torn: true
            }
        );
        assert_eq!(s.tripped(), Some(FaultKind::Crash));
        assert_eq!(
            s.before_write(10),
            WriteVerdict::Refuse(FaultKind::Crash),
            "dead after the kill"
        );
        assert_eq!(s.before_sync(), Err(FaultKind::Crash));
    }

    #[test]
    fn kill_exactly_at_a_boundary_spares_the_completed_write() {
        let mut s = FaultState::default();
        s.arm(FaultPlan::kill_at(100, false, 0));
        assert_eq!(s.before_write(100), WriteVerdict::Full);
        assert!(s.before_sync().is_ok(), "boundary write was fully durable");
        assert_eq!(
            s.before_write(1),
            WriteVerdict::Partial {
                keep: 0,
                torn: false
            }
        );
    }

    #[test]
    fn enospc_refuses_in_full() {
        let mut s = FaultState::default();
        s.arm(FaultPlan::enospc_at(64));
        assert_eq!(s.before_write(64), WriteVerdict::Full);
        assert_eq!(s.before_write(1), WriteVerdict::Refuse(FaultKind::NoSpace));
        assert_eq!(s.tripped(), Some(FaultKind::NoSpace));
    }

    #[test]
    fn disarm_clears_the_trip() {
        let mut s = FaultState::default();
        s.arm(FaultPlan::kill_at(0, false, 0));
        assert!(matches!(s.before_write(1), WriteVerdict::Partial { .. }));
        s.disarm();
        assert_eq!(s.before_write(1), WriteVerdict::Full);
    }
}
