//! Access-discipline race auditor (debug builds only).
//!
//! The engine's parallel executors follow one write discipline: workers
//! serialize their output into thread-local [`crate::RecordBuffer`]s and
//! the coordinator lands them in deterministic partition order; a
//! collection's record range is only ever rewritten (cleared and
//! refilled) after a **flush barrier** — the worker-pool join — has
//! ordered every earlier write before every later one. The CI check
//! that counters are DoP-invariant validates *totals*, not
//! interleavings; this module turns the discipline itself into a
//! machine-checked assertion ahead of the per-thread ledger-shard
//! refactor, which will rewrite exactly these paths.
//!
//! Mechanics: every [`crate::PCollection`] keeps (in debug builds) a
//! small ledger of the record ranges written into it, each tagged with
//! the **owning thread** — for a buffered flush, the thread that filled
//! the [`crate::RecordBuffer`], not the thread that landed it — and the
//! global barrier **epoch** current at the write. Two ranges that
//! overlap, carry different owners, and share an epoch mean two worker
//! threads raced on the same records without an intervening barrier:
//! the auditor panics with both owners and the offending range.
//! [`flush_barrier`] bumps the epoch; `core`'s worker pool calls it at
//! every join, so phase-ordered rewrites stay silent.
//!
//! Release builds compile all of this away: the ledgers do not exist
//! and [`flush_barrier`] is an empty inline function.

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU64, Ordering};

/// The global barrier epoch. Writes recorded under different epochs are
/// ordered by a barrier and never conflict.
#[cfg(debug_assertions)]
// audit:allow(counted-io) barrier epoch for the race auditor, not a device counter
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Declares a flush barrier: every write that happened before this call
/// is ordered before every write after it. The worker pool calls this
/// at each join; phase transitions that clear and refill collections
/// from different threads must be separated by one.
///
/// No-op in release builds.
#[inline]
pub fn flush_barrier() {
    #[cfg(debug_assertions)]
    // audit:allow(counted-io) barrier epoch for the race auditor, not a device counter
    EPOCH.fetch_add(1, Ordering::SeqCst);
}

/// The current barrier epoch (debug builds; test hook).
#[cfg(debug_assertions)]
pub fn epoch() -> u64 {
    EPOCH.load(Ordering::SeqCst)
}

/// One recorded write: records `[start, end)` of the collection, the
/// owning thread's profiler id, and the epoch it was written under.
#[cfg(debug_assertions)]
#[derive(Debug, Clone, Copy)]
struct WriteRange {
    start: usize,
    end: usize,
    owner: u64,
    epoch: u64,
}

/// Per-collection write ledger. Lives behind the collection's `&mut`,
/// so recording takes no lock; the only shared state is the epoch.
#[cfg(debug_assertions)]
#[derive(Debug, Default)]
pub(crate) struct WriteAudit {
    ranges: Vec<WriteRange>,
}

#[cfg(debug_assertions)]
impl WriteAudit {
    /// Records a write of records `[start, end)` owned by thread
    /// `owner`, panicking if it overlaps a same-epoch write by a
    /// different thread.
    pub(crate) fn note(&mut self, name: &str, start: usize, end: usize, owner: u64) {
        if start == end {
            return;
        }
        let epoch = EPOCH.load(Ordering::SeqCst);
        // Ranges from before the last barrier are ordered; drop them.
        self.ranges.retain(|r| r.epoch == epoch);
        for r in &self.ranges {
            if r.owner != owner && r.start < end && start < r.end {
                panic!(
                    "race auditor: threads {} and {} both wrote records \
                     {}..{} of collection `{name}` (overlap {}..{}) with no \
                     flush barrier between them; parallel phases must be \
                     separated by a pool join (pmem_sim::audit::flush_barrier)",
                    r.owner,
                    owner,
                    r.start.min(start),
                    r.end.max(end),
                    start.max(r.start),
                    end.min(r.end),
                );
            }
        }
        // Coalesce the common case: the same thread extending its run.
        if let Some(last) = self.ranges.last_mut() {
            if last.owner == owner && last.end == start {
                last.end = end;
                return;
            }
        }
        self.ranges.push(WriteRange {
            start,
            end,
            owner,
            epoch,
        });
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use crate::collection::{PCollection, RecordBuffer};
    use crate::device::PmDevice;
    use crate::layer::LayerKind;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Mutex, MutexGuard};

    /// The epoch is process-global, so the barrier test must not run
    /// between another test's two "unflushed" writes: every test in
    /// this module serializes on one lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serialized() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fill(col: &mut PCollection<u64>, n: u64) {
        for i in 0..n {
            col.append(&i);
        }
    }

    /// Runs `f` on a fresh scoped thread, so its writes carry a thread
    /// id distinct from the caller's and from any earlier invocation.
    fn on_other_thread(f: impl FnOnce() + Send) {
        std::thread::scope(|s| {
            s.spawn(f);
        });
    }

    /// Like [`on_other_thread`], but joins explicitly so a panic's
    /// original payload (the auditor's message) comes back to the
    /// caller instead of `scope`'s generic re-panic.
    fn message_from_other_thread(f: impl FnOnce() + Send) -> Option<String> {
        std::thread::scope(|s| s.spawn(f).join())
            .err()
            .map(|p| match p.downcast_ref::<String>() {
                Some(s) => s.clone(),
                None => p
                    .downcast_ref::<&str>()
                    .map_or_else(|| "non-string panic".to_string(), |s| (*s).to_string()),
            })
    }

    #[test]
    fn overlapping_unflushed_cross_thread_writes_are_caught() {
        let _guard = serialized();
        let dev = PmDevice::paper_default();
        let mut col = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "racy");
        on_other_thread(|| fill(&mut col, 64));
        // Rewriting the same records from a second worker thread with no
        // intervening pool join is exactly the interleaving hazard.
        col.clear();
        let msg = message_from_other_thread(|| fill(&mut col, 8)).expect("overlap not caught");
        assert!(msg.contains("race auditor"), "wrong panic: {msg}");
        assert!(msg.contains("`racy`"), "no collection name: {msg}");
    }

    #[test]
    fn a_flush_barrier_orders_the_rewrite() {
        let _guard = serialized();
        let dev = PmDevice::paper_default();
        let mut col = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "phased");
        on_other_thread(|| fill(&mut col, 64));
        col.clear();
        crate::audit::flush_barrier();
        // Same rewrite, now on the far side of a barrier: clean.
        on_other_thread(|| fill(&mut col, 64));
        assert_eq!(col.len(), 64);
    }

    #[test]
    fn same_thread_rewrites_never_trip() {
        let _guard = serialized();
        let dev = PmDevice::paper_default();
        let mut col = PCollection::<u64>::new(&dev, LayerKind::Pmfs, "serial");
        for _ in 0..3 {
            fill(&mut col, 32);
            col.clear();
        }
        fill(&mut col, 32);
        assert_eq!(col.len(), 32);
    }

    #[test]
    fn flushed_buffer_ranges_carry_the_filling_thread() {
        let _guard = serialized();
        let dev = PmDevice::paper_default();
        let mut col = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "tagged");
        let mut buf = RecordBuffer::new();
        on_other_thread(|| {
            for i in 0..16u64 {
                buf.push(&i);
            }
        });
        // The coordinator lands the worker's bytes: the range must be
        // owned by the worker, so a coordinator rewrite of the same
        // records without a barrier is a detected conflict.
        col.append_buffer(&buf);
        col.clear();
        let result = catch_unwind(AssertUnwindSafe(|| fill(&mut col, 4)));
        assert!(result.is_err(), "owner tag lost in append_buffer");
    }

    #[test]
    fn a_record_buffer_filled_by_two_threads_is_caught() {
        let _guard = serialized();
        let mut buf = RecordBuffer::<u64>::new();
        buf.push(&1);
        let msg = message_from_other_thread(|| buf.push(&2)).expect("cross-thread fill not caught");
        assert!(msg.contains("race auditor"), "wrong panic: {msg}");
    }

    #[test]
    fn disjoint_ranges_from_sibling_workers_are_clean() {
        let _guard = serialized();
        let dev = PmDevice::paper_default();
        let mut col = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "split");
        // Two workers' buffers landed back-to-back by the coordinator:
        // consecutive ranges, different owners, no overlap.
        let mut a = RecordBuffer::new();
        let mut b = RecordBuffer::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..8u64 {
                    a.push(&i);
                }
            });
            s.spawn(|| {
                for i in 0..8u64 {
                    b.push(&i);
                }
            });
        });
        col.append_buffer(&a);
        col.append_buffer(&b);
        assert_eq!(col.len(), 16);
    }
}
