//! # pmem-sim — persistent-memory cost simulator
//!
//! Software stand-in for the instrumented persistent-memory testbed of
//! *Write-limited sorts and joins for persistent memory* (Viglas, VLDB
//! 2014). The paper injects artificial per-cacheline delays (10 ns reads /
//! 150 ns writes) after every persistent-memory access and reports response
//! time plus cacheline read/write counts; this crate reproduces the same
//! cost structure deterministically:
//!
//! * every persistent collection charges its cacheline traffic to a shared
//!   [`device::PmDevice`], and
//! * simulated response time is `reads·r + writes·w + software overhead`.
//!
//! The four §3.2 persistence-layer implementations (blocked memory, PMFS,
//! RAM disk, dynamic arrays) are provided as [`layer::LayerKind`] variants
//! that differ only in how much traffic and overhead the same logical
//! workload costs — exactly the axis the paper's implementation comparison
//! explores.
//!
//! ```
//! use pmem_sim::{DeviceConfig, LayerKind, PCollection, PmDevice};
//!
//! let dev = PmDevice::new(DeviceConfig::paper_default());
//! let mut col = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "numbers");
//! for i in 0..1000 {
//!     col.append(&i);
//! }
//! let sum: u64 = col.reader().sum();
//! assert_eq!(sum, 499_500);
//! let stats = dev.snapshot();
//! assert_eq!(stats.cl_writes, col.buffers()); // 8000 B = 125 cachelines
//! assert_eq!(stats.cl_reads, col.buffers());
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod collection;
pub mod config;
pub mod device;
pub mod energy;
pub mod error;
pub mod fault;
pub mod layer;
pub mod metrics;
pub mod pages;
pub mod pool;
pub mod span;

pub use collection::{PCollection, RecordBuffer, RecordReader, Storable};

/// Publishes every piece of pending per-thread accounting — metrics
/// shards ([`metrics::flush_thread_shards`]) and buffer-pool leases
/// ([`pool::flush_thread_leases`]) — into the shared banks/pools. The
/// worker pool calls this at task ends and barrier joins; operators call
/// it at span boundaries and bulk-append flushes. Cheap when nothing is
/// pending; safe to call anywhere.
pub fn flush_thread_accounting() {
    metrics::flush_thread_shards();
    pool::flush_thread_leases();
}
pub use config::{cachelines, DeviceConfig, LatencyProfile, CACHELINE, DEFAULT_BLOCK, FILE_RECORD};
pub use device::{Pm, PmDevice};
pub use energy::{EnergyModel, WearModel};
pub use error::PmError;
pub use fault::{FaultKind, FaultPlan, WriteVerdict};
pub use layer::{FileStats, LayerKind, ReadCursor, Storage};
pub use metrics::{flush_thread_shards, thread_flow, thread_stats, IoStats, Metrics};
pub use pages::{PageId, PageStore};
pub use pool::{flush_thread_leases, BufferPool, Reservation};
pub use span::SpanNode;
