//! A page store: update-in-place pages with dirty-span write accounting.
//!
//! Collections ([`crate::collection::PCollection`]) are append-only —
//! the right shape for runs and partitions, but not for index nodes.
//! [`PageStore`] complements them: fixed-size pages addressed by
//! [`PageId`], where a read charges the whole page (a node lookup pulls
//! the node) and a write charges only the cachelines its byte span
//! actually touches. That asymmetry is what makes write-limited index
//! layouts measurable: an insertion that appends one entry to an
//! unsorted leaf dirties one or two cachelines, while a sorted-order
//! insertion shifts half the page and dirties everything after the
//! insertion point (Chen et al., cited by the paper as \[2\], make
//! exactly this argument for PCM B⁺-trees).

use crate::config::{cachelines, CACHELINE};
use crate::device::Pm;

/// Identifier of a page within a [`PageStore`].
pub type PageId = u32;

/// A persistent-memory page store.
///
/// Like [`crate::collection::PCollection`], a store is `Send` (its
/// device handle is an `Arc` over atomic counters), so index workloads
/// can move between worker threads; mutation still requires `&mut self`,
/// one writer at a time.
#[derive(Debug)]
pub struct PageStore {
    dev: Pm,
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

impl PageStore {
    /// Creates an empty store of `page_size`-byte pages on `dev`.
    ///
    /// # Panics
    /// Panics unless `page_size` is a positive multiple of the cacheline
    /// size.
    pub fn new(dev: &Pm, page_size: usize) -> Self {
        assert!(
            page_size > 0 && page_size.is_multiple_of(CACHELINE),
            "page size must be a positive multiple of {CACHELINE}"
        );
        Self {
            dev: dev.clone(),
            page_size,
            pages: Vec::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no pages have been allocated.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Allocates a zeroed page. Allocation itself is not charged; the
    /// first write to the page is.
    pub fn alloc(&mut self) -> PageId {
        let id = self.pages.len() as PageId;
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        id
    }

    /// Reads a whole page, charging `page_size / 64` cacheline reads.
    ///
    /// # Panics
    /// Panics if `id` was never allocated.
    pub fn read(&self, id: PageId) -> &[u8] {
        self.dev.metrics().add_reads(cachelines(self.page_size));
        &self.pages[id as usize]
    }

    /// Reads a whole page without charging (test/debug introspection).
    pub fn read_uncounted(&self, id: PageId) -> &[u8] {
        &self.pages[id as usize]
    }

    /// Writes `data` at `offset` within the page, charging only the
    /// cachelines the span `[offset, offset + data.len())` touches.
    ///
    /// # Panics
    /// Panics if the span exceeds the page.
    pub fn write(&mut self, id: PageId, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= self.page_size,
            "write span {}..{} exceeds page size {}",
            offset,
            offset + data.len(),
            self.page_size
        );
        if data.is_empty() {
            return;
        }
        let first = offset / CACHELINE;
        let last = (offset + data.len() - 1) / CACHELINE;
        self.dev.metrics().add_writes((last - first + 1) as u64);
        self.pages[id as usize][offset..offset + data.len()].copy_from_slice(data);
    }

    /// The device this store charges.
    pub fn device(&self) -> &Pm {
        &self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PmDevice;

    #[test]
    fn read_charges_whole_page() {
        let dev = PmDevice::paper_default();
        let mut s = PageStore::new(&dev, 1024);
        let p = s.alloc();
        let before = dev.snapshot();
        let _ = s.read(p);
        assert_eq!(dev.snapshot().since(&before).cl_reads, 16);
    }

    #[test]
    fn small_write_charges_one_cacheline() {
        let dev = PmDevice::paper_default();
        let mut s = PageStore::new(&dev, 1024);
        let p = s.alloc();
        let before = dev.snapshot();
        s.write(p, 16, &[1u8; 16]);
        assert_eq!(dev.snapshot().since(&before).cl_writes, 1);
    }

    #[test]
    fn straddling_write_charges_both_lines() {
        let dev = PmDevice::paper_default();
        let mut s = PageStore::new(&dev, 1024);
        let p = s.alloc();
        let before = dev.snapshot();
        s.write(p, 60, &[1u8; 8]); // spans cachelines 0 and 1
        assert_eq!(dev.snapshot().since(&before).cl_writes, 2);
    }

    #[test]
    fn full_page_write_charges_all_lines() {
        let dev = PmDevice::paper_default();
        let mut s = PageStore::new(&dev, 512);
        let p = s.alloc();
        let before = dev.snapshot();
        s.write(p, 0, &[7u8; 512]);
        assert_eq!(dev.snapshot().since(&before).cl_writes, 8);
    }

    #[test]
    fn data_round_trips() {
        let dev = PmDevice::paper_default();
        let mut s = PageStore::new(&dev, 256);
        let a = s.alloc();
        let b = s.alloc();
        s.write(a, 10, b"hello");
        s.write(b, 0, b"world");
        assert_eq!(&s.read(a)[10..15], b"hello");
        assert_eq!(&s.read(b)[..5], b"world");
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_unaligned_page_size() {
        let dev = PmDevice::paper_default();
        let _ = PageStore::new(&dev, 100);
    }
}
