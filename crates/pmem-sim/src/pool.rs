//! DRAM buffer-pool accounting.
//!
//! The algorithms are given a budget of `M` buffers of DRAM (the paper's
//! "bufferpool", Fig. 3). [`BufferPool`] tracks that budget: algorithms
//! reserve bytes for their heaps and working blocks, reservations release
//! on drop, and a high-water mark records the actual peak so tests can
//! assert that no algorithm exceeds its allowance.
//!
//! # Per-thread quota leases
//!
//! Admission mirrors the sharded metrics design (see `metrics`): the
//! shared pool core is only touched when a thread's *lease* cannot cover
//! a request. A successful draw grows the lease by exactly the shortfall
//! (so the admitted total and high-water mark stay exact); releases park
//! the bytes as lease slack for same-thread reuse, and
//! [`flush_thread_leases`] — called from the same barrier/task-end flush
//! points as the metrics shards, from the thread-exit destructor, and
//! implicitly by the pool's own getters — returns slack and publishes
//! the buffered reservation count. The hot path (an operator re-reserving
//! working memory it just released) is therefore RMW-free; budget safety
//! never depends on flushing, because a draw can only admit bytes the
//! CAS proves are within budget.
//!
//! Failed reservations publish eagerly: `exhausted` increments exactly
//! once per refused attempt, at the attempt, so memory-pressure
//! telemetry (`SHOW METRICS`) is never deferred behind a barrier.

use crate::error::PmError;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Source of unique pool identities (see the bank ids in `metrics`: weak
/// pointers alone cannot key thread-local state because addresses can be
/// reused).
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// The shared admission state of a [`BufferPool`].
#[derive(Debug)]
struct PoolCore {
    id: u64,
    budget: usize,
    /// Bytes admitted to thread leases (used + parked slack).
    admitted: AtomicUsize,
    high_water: AtomicUsize,
    reservations: AtomicU64,
    exhausted: AtomicU64,
    /// Draws that actually hit the shared core (diagnostic: lease reuse
    /// keeps this far below `reservations`).
    draws: AtomicU64,
}

impl PoolCore {
    /// Admits `need` more bytes, or refuses and counts the exhaustion.
    /// `caller_free` is the requesting lease's slack, folded into the
    /// error's `available` so callers see what they could still get.
    fn draw(&self, need: usize, requested: usize, caller_free: usize) -> Result<(), PmError> {
        let mut admitted = self.admitted.load(Ordering::Relaxed);
        loop {
            if admitted + need > self.budget {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                return Err(PmError::BudgetExceeded {
                    requested,
                    available: (self.budget - admitted) + caller_free,
                });
            }
            match self.admitted.compare_exchange_weak(
                admitted,
                admitted + need,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => admitted = actual,
            }
        }
        self.high_water
            .fetch_max(admitted + need, Ordering::Relaxed);
        self.draws.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// One thread's lease against one pool: bytes admitted to this thread
/// (`leased`), the portion live reservations hold (`used`), and grants
/// not yet published to the shared reservation counter.
#[derive(Debug)]
struct Lease {
    pool_id: u64,
    core: Weak<PoolCore>,
    leased: usize,
    used: usize,
    pending_grants: u64,
}

/// Every lease the current thread holds. Dropping the registry — the
/// thread-local destructor, running at thread exit even on panic —
/// flushes everything, so worker slack always returns to the budget.
#[derive(Debug, Default)]
struct LeaseRegistry {
    leases: Vec<Lease>,
}

impl LeaseRegistry {
    fn flush_all(&mut self) {
        for lease in &mut self.leases {
            if let Some(core) = lease.core.upgrade() {
                if lease.pending_grants != 0 {
                    core.reservations
                        .fetch_add(lease.pending_grants, Ordering::Relaxed);
                }
                let slack = lease.leased - lease.used;
                if slack != 0 {
                    core.admitted.fetch_sub(slack, Ordering::Relaxed);
                }
            }
            lease.pending_grants = 0;
            lease.leased = lease.used;
        }
        // Leases with live reservations must survive the flush so their
        // eventual release still finds its slot; empty leases go.
        self.leases.retain(|l| l.used != 0);
    }
}

impl Drop for LeaseRegistry {
    fn drop(&mut self) {
        self.flush_all();
    }
}

thread_local! {
    static LEASES: RefCell<LeaseRegistry> = RefCell::new(LeaseRegistry::default());
}

/// Returns the calling thread's parked lease slack to every pool and
/// publishes buffered reservation counts. Called at the same flush
/// points as `metrics::flush_thread_shards`; cheap when nothing is
/// parked. Safe to call anywhere.
pub fn flush_thread_leases() {
    let _ = LEASES.try_with(|reg| reg.borrow_mut().flush_all());
}

/// Runs `f` on the calling thread's lease for `core`, creating an empty
/// lease on first use. Falls back to `f` on a detached one-off lease if
/// the thread-local registry is already destroyed (the caller must then
/// settle with the core directly — see the call sites).
fn with_lease<R>(core: &Arc<PoolCore>, f: impl FnOnce(&mut Lease) -> R) -> Result<R, R> {
    let mut f = Some(f);
    let out = LEASES.try_with(|reg| {
        let reg = &mut *reg.borrow_mut();
        let idx = reg.leases.iter().position(|l| l.pool_id == core.id);
        let slot = match idx {
            Some(i) => &mut reg.leases[i],
            None => {
                reg.leases.push(Lease {
                    pool_id: core.id,
                    core: Arc::downgrade(core),
                    leased: 0,
                    used: 0,
                    pending_grants: 0,
                });
                reg.leases.last_mut().expect("just pushed")
            }
        };
        (f.take().expect("applied once"))(slot)
    });
    match out {
        Ok(r) => Ok(r),
        Err(_) => {
            let mut detached = Lease {
                pool_id: core.id,
                core: Arc::downgrade(core),
                leased: 0,
                used: 0,
                pending_grants: 0,
            };
            Err((f.take().expect("not yet applied"))(&mut detached))
        }
    }
}

/// A DRAM budget of `M` buffers (expressed in bytes).
///
/// A pool can be shared by parallel partition workers (each worker's
/// build table draws from the same budget; the paper's `M` is a
/// per-operator allowance, which under a degree of parallelism `d` is
/// shared `d` ways). Admission goes through per-thread leases, so the
/// shared counters are only touched when a lease grows — never once per
/// reservation on a steady-state hot path.
#[derive(Debug)]
pub struct BufferPool {
    core: Arc<PoolCore>,
}

impl BufferPool {
    /// Creates a pool with `budget` bytes of DRAM.
    pub fn new(budget: usize) -> Self {
        Self {
            core: Arc::new(PoolCore {
                id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
                budget,
                admitted: AtomicUsize::new(0),
                high_water: AtomicUsize::new(0),
                reservations: AtomicU64::new(0),
                exhausted: AtomicU64::new(0),
                draws: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a pool sized as `fraction` of `input_bytes` (the paper's
    /// sweeps express memory as 1%–15% of the input size).
    pub fn fraction_of(input_bytes: usize, fraction: f64) -> Self {
        assert!(fraction > 0.0, "memory fraction must be positive");
        Self::new((input_bytes as f64 * fraction).round() as usize)
    }

    /// Total budget in bytes.
    pub fn budget(&self) -> usize {
        self.core.budget
    }

    /// Budget expressed in the paper's buffer units (cachelines).
    pub fn budget_buffers(&self) -> u64 {
        crate::config::cachelines(self.core.budget)
    }

    /// Bytes currently admitted (live reservations; the calling thread's
    /// parked slack is returned first, other threads' slack returns at
    /// their next flush point).
    pub fn used(&self) -> usize {
        flush_thread_leases();
        self.core.admitted.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.core.budget - self.used()
    }

    /// Peak admission observed over the pool's lifetime. Draws admit
    /// exactly the shortfall of a request, so this is the exact peak of
    /// simultaneously leased bytes.
    pub fn high_water(&self) -> usize {
        self.core.high_water.load(Ordering::Relaxed)
    }

    /// Successful reservations granted over the pool's lifetime
    /// (including lease-covered grants; the calling thread's buffered
    /// grants are published first).
    pub fn reservations(&self) -> u64 {
        flush_thread_leases();
        self.core.reservations.load(Ordering::Relaxed)
    }

    /// Reservation attempts refused because the budget was exhausted
    /// (callers typically respond by spilling or chunking — the paper's
    /// memory-starved regimes — so this counts memory-pressure events).
    /// Published eagerly at the refused attempt, exactly once per
    /// attempt, never deferred to a flush point.
    pub fn exhausted(&self) -> u64 {
        self.core.exhausted.load(Ordering::Relaxed)
    }

    /// Draws that had to touch the shared admission counters (lease
    /// reuse keeps this far below [`BufferPool::reservations`] on
    /// steady-state paths; exposed for contention diagnostics).
    pub fn draws(&self) -> u64 {
        self.core.draws.load(Ordering::Relaxed)
    }

    /// How many fixed-size records fit in the *remaining* budget.
    pub fn records_available(&self, record_size: usize) -> usize {
        self.available() / record_size
    }

    /// Reserves `bytes`, failing if the budget would be exceeded.
    ///
    /// Covered from the calling thread's lease slack when possible (no
    /// shared access); otherwise draws exactly the shortfall from the
    /// pool core. A refused draw increments `exhausted` exactly once.
    pub fn reserve(&self, bytes: usize) -> Result<Reservation<'_>, PmError> {
        let outcome = with_lease(&self.core, |lease| {
            let free = lease.leased - lease.used;
            if free < bytes {
                let core = lease.core.upgrade().expect("pool outlives reservation");
                core.draw(bytes - free, bytes, free)?;
                lease.leased += bytes - free;
            }
            lease.used += bytes;
            lease.pending_grants += 1;
            Ok(())
        });
        match outcome {
            Ok(granted) => granted?,
            Err(granted) => {
                granted?;
                // Thread-local storage is gone (destructor-context
                // caller): the detached lease can't be flushed later, so
                // settle the grant with the core immediately. `used`
                // stays admitted until the Reservation's drop returns it
                // directly.
                self.core.reservations.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(Reservation {
            pool: self,
            bytes,
            _same_thread: PhantomData,
        })
    }

    /// Reserves everything still available.
    pub fn reserve_all(&self) -> Reservation<'_> {
        let bytes = self.available();
        self.reserve(bytes)
            .expect("reserving available bytes cannot fail")
    }

    /// Returns `bytes` from a release to the calling thread's lease
    /// (parked as slack for reuse), or straight to the core if the
    /// thread-local registry is gone.
    fn release(&self, bytes: usize) {
        let outcome = with_lease(&self.core, |lease| {
            debug_assert!(lease.used >= bytes, "release exceeds lease");
            lease.used -= bytes;
        });
        if outcome.is_err() {
            self.core.admitted.fetch_sub(bytes, Ordering::Relaxed);
        }
    }
}

/// An RAII slice of the DRAM budget; releases on drop.
///
/// Releases return bytes to the reserving thread's lease, so a
/// reservation must drop on the thread that took it (`!Send` enforces
/// this — the executors reserve working memory on the thread that uses
/// it, so nothing ships reservations across threads).
#[derive(Debug)]
pub struct Reservation<'p> {
    pool: &'p BufferPool,
    bytes: usize,
    _same_thread: PhantomData<*const ()>,
}

impl Reservation<'_> {
    /// Reserved size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// How many fixed-size records fit in this reservation.
    pub fn records(&self, record_size: usize) -> usize {
        self.bytes / record_size
    }

    /// Shrinks the reservation, returning `give_back` bytes to the pool.
    ///
    /// # Panics
    /// Panics if `give_back` exceeds the reservation.
    pub fn shrink(&mut self, give_back: usize) {
        assert!(
            give_back <= self.bytes,
            "cannot give back more than reserved"
        );
        self.bytes -= give_back;
        self.pool.release(give_back);
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let pool = BufferPool::new(1000);
        {
            let r = pool.reserve(600).expect("fits");
            assert_eq!(r.bytes(), 600);
            assert_eq!(pool.available(), 400);
        }
        assert_eq!(pool.available(), 1000);
        assert_eq!(pool.high_water(), 600);
    }

    #[test]
    fn over_reservation_fails() {
        let pool = BufferPool::new(100);
        let _a = pool.reserve(80).expect("fits");
        assert!(pool.reserve(30).is_err());
        assert_eq!(pool.reservations(), 1);
        assert_eq!(pool.exhausted(), 1);
    }

    #[test]
    fn exhaustion_counts_exactly_once_per_failed_attempt() {
        let pool = BufferPool::new(100);
        let _a = pool.reserve(80).expect("fits");
        for _ in 0..3 {
            assert!(pool.reserve(30).is_err());
        }
        assert_eq!(pool.exhausted(), 3);
        assert_eq!(pool.reservations(), 1);
        // A covered retry after the holder shrinks does not add to
        // either counter's failure side.
        drop(_a);
        let _b = pool.reserve(30).expect("fits now");
        assert_eq!(pool.exhausted(), 3);
        assert_eq!(pool.reservations(), 2);
    }

    #[test]
    fn failed_reserve_reports_lease_slack_as_available() {
        let pool = BufferPool::new(100);
        drop(pool.reserve(40).expect("fits")); // parks 40 of slack
        let _hold = pool.reserve(30).expect("covered by slack");
        // Slack 10 + unadmitted 60 = 70 available; 80 must fail and say so.
        let err = pool.reserve(80).expect_err("over budget");
        match err {
            PmError::BudgetExceeded {
                requested,
                available,
            } => {
                assert_eq!(requested, 80);
                assert_eq!(available, 70);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn lease_reuse_skips_the_shared_core() {
        let pool = BufferPool::new(1000);
        for _ in 0..50 {
            drop(pool.reserve(300).expect("fits"));
        }
        // One draw admitted the lease; 49 reuses were thread-local.
        assert_eq!(pool.draws(), 1);
        assert_eq!(pool.reservations(), 50);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.high_water(), 300);
    }

    #[test]
    fn fraction_of_computes_budget() {
        let pool = BufferPool::fraction_of(1_000_000, 0.05);
        assert_eq!(pool.budget(), 50_000);
    }

    #[test]
    fn records_available_uses_record_size() {
        let pool = BufferPool::new(800);
        assert_eq!(pool.records_available(80), 10);
        let _r = pool.reserve(400).expect("fits");
        assert_eq!(pool.records_available(80), 5);
    }

    #[test]
    fn shrink_returns_bytes() {
        let pool = BufferPool::new(100);
        let mut r = pool.reserve(100).expect("fits");
        r.shrink(40);
        assert_eq!(pool.available(), 40);
        assert_eq!(r.bytes(), 60);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let pool = BufferPool::new(100);
        drop(pool.reserve(90));
        let _r = pool.reserve(10).expect("fits");
        assert_eq!(pool.high_water(), 90);
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
    }

    #[test]
    fn concurrent_reservations_never_exceed_budget() {
        // Raw spawn + join: join waits for full thread teardown, so the
        // thread-exit lease flush is visible here (scope's implicit join
        // does not wait for TLS destructors).
        let pool = std::sync::Arc::new(BufferPool::new(1000));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        if let Ok(r) = pool.reserve(300) {
                            assert!(pool.used() <= pool.budget());
                            drop(r);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker ok");
        }
        // Thread exit flushed every lease's slack back to the budget.
        assert_eq!(pool.used(), 0);
        assert!(pool.high_water() <= 1000);
    }
}
