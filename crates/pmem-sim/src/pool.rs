//! DRAM buffer-pool accounting.
//!
//! The algorithms are given a budget of `M` buffers of DRAM (the paper's
//! "bufferpool", Fig. 3). [`BufferPool`] tracks that budget: algorithms
//! reserve bytes for their heaps and working blocks, reservations release
//! on drop, and a high-water mark records the actual peak so tests can
//! assert that no algorithm exceeds its allowance.

use crate::error::PmError;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A DRAM budget of `M` buffers (expressed in bytes).
///
/// The accounting is atomic, so a pool can be shared by parallel
/// partition workers (each worker's build table draws from the same
/// budget; the paper's `M` is a per-operator allowance, which under a
/// degree of parallelism `d` is shared `d` ways).
#[derive(Debug)]
pub struct BufferPool {
    budget: usize,
    used: AtomicUsize,
    high_water: AtomicUsize,
    reservations: AtomicU64,
    exhausted: AtomicU64,
}

impl BufferPool {
    /// Creates a pool with `budget` bytes of DRAM.
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            used: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            reservations: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// Creates a pool sized as `fraction` of `input_bytes` (the paper's
    /// sweeps express memory as 1%–15% of the input size).
    pub fn fraction_of(input_bytes: usize, fraction: f64) -> Self {
        assert!(fraction > 0.0, "memory fraction must be positive");
        Self::new((input_bytes as f64 * fraction).round() as usize)
    }

    /// Total budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Budget expressed in the paper's buffer units (cachelines).
    pub fn budget_buffers(&self) -> u64 {
        crate::config::cachelines(self.budget)
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.budget - self.used()
    }

    /// Peak reservation observed over the pool's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Successful reservations granted over the pool's lifetime.
    pub fn reservations(&self) -> u64 {
        self.reservations.load(Ordering::Relaxed)
    }

    /// Reservation attempts refused because the budget was exhausted
    /// (callers typically respond by spilling or chunking — the paper's
    /// memory-starved regimes — so this counts memory-pressure events).
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// How many fixed-size records fit in the *remaining* budget.
    pub fn records_available(&self, record_size: usize) -> usize {
        self.available() / record_size
    }

    /// Reserves `bytes`, failing if the budget would be exceeded.
    pub fn reserve(&self, bytes: usize) -> Result<Reservation<'_>, PmError> {
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            if used + bytes > self.budget {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                return Err(PmError::BudgetExceeded {
                    requested: bytes,
                    available: self.budget - used,
                });
            }
            match self.used.compare_exchange_weak(
                used,
                used + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => used = actual,
            }
        }
        self.high_water.fetch_max(used + bytes, Ordering::Relaxed);
        self.reservations.fetch_add(1, Ordering::Relaxed);
        Ok(Reservation { pool: self, bytes })
    }

    /// Reserves everything still available.
    pub fn reserve_all(&self) -> Reservation<'_> {
        let bytes = self.available();
        self.reserve(bytes)
            .expect("reserving available bytes cannot fail")
    }
}

/// An RAII slice of the DRAM budget; releases on drop.
#[derive(Debug)]
pub struct Reservation<'p> {
    pool: &'p BufferPool,
    bytes: usize,
}

impl Reservation<'_> {
    /// Reserved size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// How many fixed-size records fit in this reservation.
    pub fn records(&self, record_size: usize) -> usize {
        self.bytes / record_size
    }

    /// Shrinks the reservation, returning `give_back` bytes to the pool.
    ///
    /// # Panics
    /// Panics if `give_back` exceeds the reservation.
    pub fn shrink(&mut self, give_back: usize) {
        assert!(
            give_back <= self.bytes,
            "cannot give back more than reserved"
        );
        self.bytes -= give_back;
        self.pool.used.fetch_sub(give_back, Ordering::Relaxed);
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        self.pool.used.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let pool = BufferPool::new(1000);
        {
            let r = pool.reserve(600).expect("fits");
            assert_eq!(r.bytes(), 600);
            assert_eq!(pool.available(), 400);
        }
        assert_eq!(pool.available(), 1000);
        assert_eq!(pool.high_water(), 600);
    }

    #[test]
    fn over_reservation_fails() {
        let pool = BufferPool::new(100);
        let _a = pool.reserve(80).expect("fits");
        assert!(pool.reserve(30).is_err());
        assert_eq!(pool.reservations(), 1);
        assert_eq!(pool.exhausted(), 1);
    }

    #[test]
    fn fraction_of_computes_budget() {
        let pool = BufferPool::fraction_of(1_000_000, 0.05);
        assert_eq!(pool.budget(), 50_000);
    }

    #[test]
    fn records_available_uses_record_size() {
        let pool = BufferPool::new(800);
        assert_eq!(pool.records_available(80), 10);
        let _r = pool.reserve(400).expect("fits");
        assert_eq!(pool.records_available(80), 5);
    }

    #[test]
    fn shrink_returns_bytes() {
        let pool = BufferPool::new(100);
        let mut r = pool.reserve(100).expect("fits");
        r.shrink(40);
        assert_eq!(pool.available(), 40);
        assert_eq!(r.bytes(), 60);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let pool = BufferPool::new(100);
        drop(pool.reserve(90));
        let _r = pool.reserve(10).expect("fits");
        assert_eq!(pool.high_water(), 90);
    }

    #[test]
    fn concurrent_reservations_never_exceed_budget() {
        let pool = BufferPool::new(1000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        if let Ok(r) = pool.reserve(300) {
                            assert!(pool.used() <= pool.budget());
                            drop(r);
                        }
                    }
                });
            }
        });
        assert_eq!(pool.used(), 0);
        assert!(pool.high_water() <= 1000);
    }
}
