//! I/O accounting: cacheline read/write counters and the simulated clock.
//!
//! The paper instruments its C++ implementation to report response time and
//! the numbers of cacheline reads and writes (§4, "Datasets and metrics").
//! We reproduce the same three metrics deterministically: the simulated
//! response time is `reads·r + writes·w + software_overhead`.

use crate::config::LatencyProfile;
use std::cell::Cell;

/// A point-in-time snapshot of device counters.
///
/// Snapshots form an affine space: subtracting two snapshots yields the
/// traffic of the interval between them, which is how the harness isolates
/// the cost of a single operation from the cost of loading its inputs
/// (the paper factors data loading out of its timings).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IoStats {
    /// Cachelines read from persistent memory.
    pub cl_reads: u64,
    /// Cachelines written to persistent memory.
    pub cl_writes: u64,
    /// Accumulated software overhead in nanoseconds (filesystem calls,
    /// allocator work) on top of raw medium latency.
    pub software_ns: f64,
    /// Number of I/O calls issued to persistence layers.
    pub calls: u64,
}

impl IoStats {
    /// Traffic between `earlier` and `self` (i.e., `self - earlier`).
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        debug_assert!(self.cl_reads >= earlier.cl_reads);
        debug_assert!(self.cl_writes >= earlier.cl_writes);
        IoStats {
            cl_reads: self.cl_reads - earlier.cl_reads,
            cl_writes: self.cl_writes - earlier.cl_writes,
            software_ns: self.software_ns - earlier.software_ns,
            calls: self.calls - earlier.calls,
        }
    }

    /// Simulated elapsed time in nanoseconds under `latency`.
    pub fn time_ns(&self, latency: &LatencyProfile) -> f64 {
        self.cl_reads as f64 * latency.read_ns
            + self.cl_writes as f64 * latency.write_ns
            + self.software_ns
    }

    /// Simulated elapsed time in seconds under `latency`.
    pub fn time_secs(&self, latency: &LatencyProfile) -> f64 {
        self.time_ns(latency) / 1e9
    }

    /// Abstract cost in read units: `reads + λ·writes` (the paper's cost
    /// expressions are all stated in multiples of `r`).
    pub fn cost_units(&self, lambda: f64) -> f64 {
        self.cl_reads as f64 + lambda * self.cl_writes as f64
    }
}

/// Interior-mutable counter bank shared by every collection of a device.
///
/// The system is single-threaded by design (the paper's implementation is
/// single-threaded, §4), so plain `Cell`s suffice and keep the hot
/// accounting paths branch- and lock-free.
#[derive(Debug, Default)]
pub struct Metrics {
    cl_reads: Cell<u64>,
    cl_writes: Cell<u64>,
    software_ns: Cell<f64>,
    calls: Cell<u64>,
    paused: Cell<bool>,
    breakdown_enabled: Cell<bool>,
    breakdown: std::cell::RefCell<std::collections::HashMap<String, IoStats>>,
}

/// Suspends accounting on a [`Metrics`] bank for its lifetime.
///
/// Used by test/harness facilities (e.g., draining a collection to verify
/// its contents) that must not perturb the measured experiment.
#[derive(Debug)]
pub struct PauseGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.metrics.paused.set(false);
    }
}

impl Metrics {
    /// Creates a zeroed counter bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Suspends accounting until the returned guard is dropped.
    ///
    /// # Panics
    /// Panics if accounting is already paused (pauses do not nest; a nested
    /// pause would silently re-enable accounting too early).
    pub fn pause(&self) -> PauseGuard<'_> {
        assert!(!self.paused.get(), "metrics already paused");
        self.paused.set(true);
        PauseGuard { metrics: self }
    }

    /// Records `n` cacheline reads.
    #[inline]
    pub fn add_reads(&self, n: u64) {
        if !self.paused.get() {
            self.cl_reads.set(self.cl_reads.get() + n);
        }
    }

    /// Records `n` cacheline writes.
    #[inline]
    pub fn add_writes(&self, n: u64) {
        if !self.paused.get() {
            self.cl_writes.set(self.cl_writes.get() + n);
        }
    }

    /// Records `ns` nanoseconds of software overhead.
    #[inline]
    pub fn add_software_ns(&self, ns: f64) {
        if !self.paused.get() {
            self.software_ns.set(self.software_ns.get() + ns);
        }
    }

    /// Records `n` persistence-layer calls.
    #[inline]
    pub fn add_calls(&self, n: u64) {
        if !self.paused.get() {
            self.calls.set(self.calls.get() + n);
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            cl_reads: self.cl_reads.get(),
            cl_writes: self.cl_writes.get(),
            software_ns: self.software_ns.get(),
            calls: self.calls.get(),
        }
    }

    /// Resets every counter to zero (including any per-collection
    /// breakdown).
    pub fn reset(&self) {
        self.cl_reads.set(0);
        self.cl_writes.set(0);
        self.software_ns.set(0.0);
        self.calls.set(0);
        self.breakdown.borrow_mut().clear();
    }

    /// Enables per-collection I/O attribution. Off by default — when
    /// enabled, collections snapshot around their storage operations and
    /// attribute the deltas by name, which costs a hash update per
    /// operation.
    pub fn enable_breakdown(&self) {
        self.breakdown_enabled.set(true);
    }

    /// Whether per-collection attribution is on.
    #[inline]
    pub fn breakdown_enabled(&self) -> bool {
        self.breakdown_enabled.get()
    }

    /// Attributes `delta` to `tag` (no-op unless breakdown is enabled;
    /// paused accounting also suppresses attribution).
    pub fn attribute(&self, tag: &str, delta: IoStats) {
        if !self.breakdown_enabled.get() || self.paused.get() {
            return;
        }
        let mut map = self.breakdown.borrow_mut();
        let slot = map.entry(tag.to_string()).or_default();
        slot.cl_reads += delta.cl_reads;
        slot.cl_writes += delta.cl_writes;
        slot.software_ns += delta.software_ns;
        slot.calls += delta.calls;
    }

    /// The per-collection breakdown, sorted by writes descending.
    /// Empty unless [`Metrics::enable_breakdown`] was called.
    pub fn breakdown(&self) -> Vec<(String, IoStats)> {
        let mut v: Vec<(String, IoStats)> = self
            .breakdown
            .borrow()
            .iter()
            .map(|(k, s)| (k.clone(), *s))
            .collect();
        v.sort_by(|a, b| b.1.cl_writes.cmp(&a.1.cl_writes).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let m = Metrics::new();
        m.add_reads(3);
        m.add_writes(2);
        m.add_software_ns(5.0);
        m.add_calls(1);
        let s = m.snapshot();
        assert_eq!(s.cl_reads, 3);
        assert_eq!(s.cl_writes, 2);
        assert_eq!(s.software_ns, 5.0);
        assert_eq!(s.calls, 1);
    }

    #[test]
    fn since_computes_interval_traffic() {
        let m = Metrics::new();
        m.add_reads(10);
        let before = m.snapshot();
        m.add_reads(5);
        m.add_writes(7);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.cl_reads, 5);
        assert_eq!(delta.cl_writes, 7);
    }

    #[test]
    fn time_matches_latency_profile() {
        let s = IoStats {
            cl_reads: 100,
            cl_writes: 10,
            software_ns: 50.0,
            calls: 0,
        };
        let t = s.time_ns(&LatencyProfile::PCM);
        assert!((t - (100.0 * 10.0 + 10.0 * 150.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn cost_units_weight_writes_by_lambda() {
        let s = IoStats {
            cl_reads: 4,
            cl_writes: 2,
            ..Default::default()
        };
        assert!((s.cost_units(15.0) - 34.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.add_reads(1);
        m.add_writes(1);
        m.reset();
        assert_eq!(m.snapshot(), IoStats::default());
    }
}
