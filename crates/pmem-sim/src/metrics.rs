//! I/O accounting: cacheline read/write counters and the simulated clock.
//!
//! The paper instruments its C++ implementation to report response time and
//! the numbers of cacheline reads and writes (§4, "Datasets and metrics").
//! We reproduce the same three metrics deterministically: the simulated
//! response time is `reads·r + writes·w + software_overhead`.
//!
//! The counter bank is lock-free and `Send + Sync`: counters are atomics so
//! partition-parallel workers can charge traffic to one shared device, and
//! software time is accumulated in integer picoseconds so the total is
//! exact and independent of the order in which threads interleave their
//! additions (no floating-point reassociation). Each thread additionally
//! mirrors its own traffic into a thread-local ledger ([`thread_stats`]),
//! which is how the worker pool attributes per-partition costs without
//! perturbing — or being perturbed by — its siblings.

use crate::config::LatencyProfile;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Internal software-time resolution: picoseconds per nanosecond. Storing
/// integer picoseconds makes concurrent accumulation exact (u64 addition
/// commutes; f64 addition does not).
const PS_PER_NS: f64 = 1000.0;

/// A point-in-time snapshot of device counters.
///
/// Snapshots form an affine space: subtracting two snapshots yields the
/// traffic of the interval between them, which is how the harness isolates
/// the cost of a single operation from the cost of loading its inputs
/// (the paper factors data loading out of its timings).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IoStats {
    /// Cachelines read from persistent memory.
    pub cl_reads: u64,
    /// Cachelines written to persistent memory.
    pub cl_writes: u64,
    /// Accumulated software overhead in nanoseconds (filesystem calls,
    /// allocator work) on top of raw medium latency.
    pub software_ns: f64,
    /// Number of I/O calls issued to persistence layers.
    pub calls: u64,
}

impl IoStats {
    /// Traffic between `earlier` and `self` (i.e., `self - earlier`).
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not actually earlier — every
    /// field is checked, so a reset (or a snapshot torn across a reset)
    /// between the two observations is caught instead of silently
    /// producing wrapped counters or negative software time.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        debug_assert!(
            self.cl_reads >= earlier.cl_reads,
            "cl_reads went backwards: {} < {}",
            self.cl_reads,
            earlier.cl_reads
        );
        debug_assert!(
            self.cl_writes >= earlier.cl_writes,
            "cl_writes went backwards: {} < {}",
            self.cl_writes,
            earlier.cl_writes
        );
        debug_assert!(
            self.software_ns >= earlier.software_ns,
            "software_ns went backwards: {} < {}",
            self.software_ns,
            earlier.software_ns
        );
        debug_assert!(
            self.calls >= earlier.calls,
            "calls went backwards: {} < {}",
            self.calls,
            earlier.calls
        );
        IoStats {
            cl_reads: self.cl_reads - earlier.cl_reads,
            cl_writes: self.cl_writes - earlier.cl_writes,
            software_ns: self.software_ns - earlier.software_ns,
            calls: self.calls - earlier.calls,
        }
    }

    /// Component-wise sum (used to reconcile per-worker ledgers against
    /// the device totals).
    #[must_use]
    pub fn plus(&self, other: &IoStats) -> IoStats {
        IoStats {
            cl_reads: self.cl_reads + other.cl_reads,
            cl_writes: self.cl_writes + other.cl_writes,
            software_ns: self.software_ns + other.software_ns,
            calls: self.calls + other.calls,
        }
    }

    /// Simulated elapsed time in nanoseconds under `latency`.
    pub fn time_ns(&self, latency: &LatencyProfile) -> f64 {
        self.cl_reads as f64 * latency.read_ns
            + self.cl_writes as f64 * latency.write_ns
            + self.software_ns
    }

    /// Simulated elapsed time in seconds under `latency`.
    pub fn time_secs(&self, latency: &LatencyProfile) -> f64 {
        self.time_ns(latency) / 1e9
    }

    /// Abstract cost in read units: `reads + λ·writes` (the paper's cost
    /// expressions are all stated in multiples of `r`).
    pub fn cost_units(&self, lambda: f64) -> f64 {
        self.cl_reads as f64 + lambda * self.cl_writes as f64
    }
}

/// Per-thread mirror of everything the current thread has charged to any
/// [`Metrics`] bank, in raw units (picoseconds for software time).
#[derive(Clone, Copy, Debug, Default)]
struct LocalLedger {
    reads: u64,
    writes: u64,
    software_ps: u64,
    calls: u64,
}

thread_local! {
    static LEDGER: Cell<LocalLedger> = const { Cell::new(LocalLedger {
        reads: 0,
        writes: 0,
        software_ps: 0,
        calls: 0,
    }) };
}

#[inline]
fn ledger_update(f: impl FnOnce(&mut LocalLedger)) {
    LEDGER.with(|l| {
        let mut v = l.get();
        f(&mut v);
        l.set(v);
    });
}

/// Cumulative traffic charged *by the calling thread* since it started,
/// across all devices. Monotonic and never reset; take two observations
/// and [`IoStats::since`] them to cost a code region. This is the
/// per-worker ledger the parallel executor uses: unlike a device
/// snapshot, it is unaffected by concurrent siblings, so per-partition
/// cost deltas stay deterministic at any degree of parallelism.
pub fn thread_stats() -> IoStats {
    let l = LEDGER.with(Cell::get);
    IoStats {
        cl_reads: l.reads,
        cl_writes: l.writes,
        software_ns: l.software_ps as f64 / PS_PER_NS,
        calls: l.calls,
    }
}

thread_local! {
    static ADOPTED: Cell<LocalLedger> = const { Cell::new(LocalLedger {
        reads: 0,
        writes: 0,
        software_ps: 0,
        calls: 0,
    }) };
}

/// Credits `stats` — traffic charged by *another* thread on this thread's
/// behalf (a completed worker task whose results this thread consumed) —
/// to the calling thread's adopted ledger, so [`thread_flow`] accounts
/// for delegated work. Adopted amounts are kept in the same raw integer
/// units as the ledger itself, so adoption round-trips exactly.
pub fn adopt(stats: &IoStats) {
    ADOPTED.with(|l| {
        let mut v = l.get();
        v.reads += stats.cl_reads;
        v.writes += stats.cl_writes;
        v.software_ps += (stats.software_ns * PS_PER_NS).round() as u64;
        v.calls += stats.calls;
        l.set(v);
    });
}

/// [`thread_stats`] plus everything this thread has [`adopt`]ed from
/// workers: the total traffic this thread is *responsible* for. Like the
/// ledger it is monotonic and never reset, so flow deltas around a code
/// region cost that region inclusive of any parallel fan-out it consumed
/// — which is exactly the quantity profiling spans report.
pub fn thread_flow() -> IoStats {
    let own = LEDGER.with(Cell::get);
    let ad = ADOPTED.with(Cell::get);
    IoStats {
        cl_reads: own.reads + ad.reads,
        cl_writes: own.writes + ad.writes,
        software_ns: (own.software_ps + ad.software_ps) as f64 / PS_PER_NS,
        calls: own.calls + ad.calls,
    }
}

/// Interior-mutable counter bank shared by every collection of a device.
///
/// All counters are atomic, so the bank is `Send + Sync` and a worker
/// pool can charge partition traffic concurrently; totals are exact
/// regardless of interleaving. Multi-field [`Metrics::snapshot`]s are
/// only guaranteed internally consistent while no other thread is
/// mid-operation — the executors take their measurement snapshots on the
/// coordinating thread, outside parallel sections.
#[derive(Debug, Default)]
pub struct Metrics {
    cl_reads: AtomicU64,
    cl_writes: AtomicU64,
    software_ps: AtomicU64,
    calls: AtomicU64,
    paused: AtomicBool,
    breakdown_enabled: AtomicBool,
    breakdown: Mutex<std::collections::HashMap<String, IoStats>>,
}

/// Suspends accounting on a [`Metrics`] bank for its lifetime.
///
/// Used by test/harness facilities (e.g., draining a collection to verify
/// its contents) that must not perturb the measured experiment. The pause
/// flag is device-global: pausing while parallel workers are mid-flight
/// would suppress their accounting too, so pauses belong on the
/// coordinating thread only.
#[derive(Debug)]
pub struct PauseGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.metrics.paused.store(false, Ordering::Relaxed);
    }
}

impl Metrics {
    /// Creates a zeroed counter bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Suspends accounting until the returned guard is dropped.
    ///
    /// # Panics
    /// Panics if accounting is already paused (pauses do not nest; a nested
    /// pause would silently re-enable accounting too early).
    pub fn pause(&self) -> PauseGuard<'_> {
        assert!(
            !self.paused.swap(true, Ordering::Relaxed),
            "metrics already paused"
        );
        PauseGuard { metrics: self }
    }

    /// Records `n` cacheline reads.
    #[inline]
    pub fn add_reads(&self, n: u64) {
        if !self.paused.load(Ordering::Relaxed) {
            self.cl_reads.fetch_add(n, Ordering::Relaxed);
            ledger_update(|l| l.reads += n);
        }
    }

    /// Records `n` cacheline writes.
    #[inline]
    pub fn add_writes(&self, n: u64) {
        if !self.paused.load(Ordering::Relaxed) {
            self.cl_writes.fetch_add(n, Ordering::Relaxed);
            ledger_update(|l| l.writes += n);
        }
    }

    /// Records `ns` nanoseconds of software overhead (rounded to the
    /// picosecond internally, so concurrent accumulation stays exact).
    #[inline]
    pub fn add_software_ns(&self, ns: f64) {
        if !self.paused.load(Ordering::Relaxed) {
            let ps = (ns * PS_PER_NS).round() as u64;
            self.software_ps.fetch_add(ps, Ordering::Relaxed);
            ledger_update(|l| l.software_ps += ps);
        }
    }

    /// Records `n` persistence-layer calls.
    #[inline]
    pub fn add_calls(&self, n: u64) {
        if !self.paused.load(Ordering::Relaxed) {
            self.calls.fetch_add(n, Ordering::Relaxed);
            ledger_update(|l| l.calls += n);
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            cl_reads: self.cl_reads.load(Ordering::Relaxed),
            cl_writes: self.cl_writes.load(Ordering::Relaxed),
            software_ns: self.software_ps.load(Ordering::Relaxed) as f64 / PS_PER_NS,
            calls: self.calls.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (including any per-collection
    /// breakdown). Thread-local ledgers are cumulative and unaffected.
    pub fn reset(&self) {
        self.cl_reads.store(0, Ordering::Relaxed);
        self.cl_writes.store(0, Ordering::Relaxed);
        self.software_ps.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
        self.breakdown
            .lock()
            .expect("breakdown lock poisoned")
            .clear();
    }

    /// Enables per-collection I/O attribution. Off by default — when
    /// enabled, collections snapshot around their storage operations and
    /// attribute the deltas by name, which costs a hash update per
    /// operation (and, under concurrency, can interleave deltas between
    /// collections; enable it for single-threaded diagnostics runs).
    pub fn enable_breakdown(&self) {
        self.breakdown_enabled.store(true, Ordering::Relaxed);
    }

    /// Whether per-collection attribution is on.
    #[inline]
    pub fn breakdown_enabled(&self) -> bool {
        self.breakdown_enabled.load(Ordering::Relaxed)
    }

    /// Attributes `delta` to `tag` (no-op unless breakdown is enabled;
    /// paused accounting also suppresses attribution).
    pub fn attribute(&self, tag: &str, delta: IoStats) {
        if !self.breakdown_enabled() || self.paused.load(Ordering::Relaxed) {
            return;
        }
        let mut map = self.breakdown.lock().expect("breakdown lock poisoned");
        let slot = map.entry(tag.to_string()).or_default();
        slot.cl_reads += delta.cl_reads;
        slot.cl_writes += delta.cl_writes;
        slot.software_ns += delta.software_ns;
        slot.calls += delta.calls;
    }

    /// The per-collection breakdown, sorted by writes descending.
    /// Empty unless [`Metrics::enable_breakdown`] was called.
    pub fn breakdown(&self) -> Vec<(String, IoStats)> {
        let mut v: Vec<(String, IoStats)> = self
            .breakdown
            .lock()
            .expect("breakdown lock poisoned")
            .iter()
            .map(|(k, s)| (k.clone(), *s))
            .collect();
        v.sort_by(|a, b| b.1.cl_writes.cmp(&a.1.cl_writes).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let m = Metrics::new();
        m.add_reads(3);
        m.add_writes(2);
        m.add_software_ns(5.0);
        m.add_calls(1);
        let s = m.snapshot();
        assert_eq!(s.cl_reads, 3);
        assert_eq!(s.cl_writes, 2);
        assert_eq!(s.software_ns, 5.0);
        assert_eq!(s.calls, 1);
    }

    #[test]
    fn since_computes_interval_traffic() {
        let m = Metrics::new();
        m.add_reads(10);
        let before = m.snapshot();
        m.add_reads(5);
        m.add_writes(7);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.cl_reads, 5);
        assert_eq!(delta.cl_writes, 7);
    }

    #[test]
    fn time_matches_latency_profile() {
        let s = IoStats {
            cl_reads: 100,
            cl_writes: 10,
            software_ns: 50.0,
            calls: 0,
        };
        let t = s.time_ns(&LatencyProfile::PCM);
        assert!((t - (100.0 * 10.0 + 10.0 * 150.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn cost_units_weight_writes_by_lambda() {
        let s = IoStats {
            cl_reads: 4,
            cl_writes: 2,
            ..Default::default()
        };
        assert!((s.cost_units(15.0) - 34.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.add_reads(1);
        m.add_writes(1);
        m.reset();
        assert_eq!(m.snapshot(), IoStats::default());
    }

    #[test]
    fn metrics_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Metrics>();
        assert_send_sync::<IoStats>();
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        m.add_reads(1);
                        m.add_writes(2);
                        m.add_software_ns(0.5);
                        m.add_calls(1);
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.cl_reads, 40_000);
        assert_eq!(s.cl_writes, 80_000);
        assert_eq!(s.calls, 40_000);
        assert!((s.software_ns - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn thread_ledger_mirrors_this_threads_traffic_only() {
        let m = Metrics::new();
        let before = thread_stats();
        m.add_reads(7);
        m.add_writes(3);
        std::thread::scope(|s| {
            s.spawn(|| {
                // A sibling's traffic must not appear in our ledger.
                m.add_reads(1000);
                let own = thread_stats();
                assert!(own.cl_reads >= 1000);
            });
        });
        let delta = thread_stats().since(&before);
        assert_eq!(delta.cl_reads, 7);
        assert_eq!(delta.cl_writes, 3);
        assert_eq!(m.snapshot().cl_reads, 1007);
    }

    #[test]
    fn paused_accounting_skips_ledger_too() {
        let m = Metrics::new();
        let before = thread_stats();
        {
            let _p = m.pause();
            m.add_reads(5);
        }
        assert_eq!(thread_stats().since(&before).cl_reads, 0);
    }

    #[test]
    fn adopted_traffic_flows_but_stays_out_of_thread_stats() {
        let m = Metrics::new();
        let own0 = thread_stats();
        let flow0 = thread_flow();
        m.add_reads(2);
        adopt(&IoStats {
            cl_reads: 10,
            cl_writes: 4,
            software_ns: 1.5,
            calls: 3,
        });
        let own = thread_stats().since(&own0);
        assert_eq!(own.cl_reads, 2);
        assert_eq!(own.cl_writes, 0);
        let flow = thread_flow().since(&flow0);
        assert_eq!(flow.cl_reads, 12);
        assert_eq!(flow.cl_writes, 4);
        assert_eq!(flow.calls, 3);
        assert!((flow.software_ns - 1.5).abs() < 1e-9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "went backwards")]
    fn since_rejects_non_monotonic_software_time() {
        let later = IoStats {
            software_ns: 1.0,
            ..Default::default()
        };
        let earlier = IoStats {
            software_ns: 2.0,
            ..Default::default()
        };
        let _ = later.since(&earlier);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "calls went backwards")]
    fn since_rejects_non_monotonic_calls() {
        let later = IoStats::default();
        let earlier = IoStats {
            calls: 3,
            ..Default::default()
        };
        let _ = later.since(&earlier);
    }
}
