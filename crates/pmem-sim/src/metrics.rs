//! I/O accounting: cacheline read/write counters and the simulated clock.
//!
//! The paper instruments its C++ implementation to report response time and
//! the numbers of cacheline reads and writes (§4, "Datasets and metrics").
//! We reproduce the same three metrics deterministically: the simulated
//! response time is `reads·r + writes·w + software_overhead`.
//!
//! # Sharded hot-path accounting
//!
//! Counting must not serialize the harness: if every counted access did a
//! `fetch_add` on shared atomics, partition-parallel workers would spend
//! their wall-clock ping-ponging the counter cachelines instead of
//! scaling (measured: critical-path speedups of 3.4–6.2× at DoP 4–8 with
//! wall-clock stuck at ≤ 1.0×). So the *only* hot-path bookkeeping is
//! thread-local:
//!
//! * every charge lands in the calling thread's cumulative ledger
//!   ([`thread_stats`]) — how the worker pool attributes per-partition
//!   costs without perturbing, or being perturbed by, its siblings — and
//! * in a per-thread, per-bank *shard* of pending deltas (including any
//!   per-collection breakdown attribution), which is bulk-published into
//!   the shared [`Metrics`] bank by `Bank::merge_shard` at flush points:
//!   [`flush_thread_shards`] calls at worker-pool task ends and barrier
//!   joins, bulk `append_buffer` flushes, operator span boundaries — and
//!   implicitly whenever the owning thread reads the bank
//!   ([`Metrics::snapshot`] and friends flush the caller's own shard
//!   first, so single-threaded observations are always exact).
//!
//! A thread's shard also flushes when the thread exits (a thread-local
//! destructor), so raw `thread::scope` users and mid-task panics never
//! lose pending counts — and a flush zeroes the shard, so counts are
//! never published twice. Cross-thread visibility relies on the same
//! happens-before edges the results themselves use (channel sends, scope
//! joins), which is why `Relaxed` atomics remain sufficient. Multi-field
//! [`Metrics::snapshot`]s are only guaranteed internally consistent while
//! no other thread is mid-operation — the executors take their
//! measurement snapshots on the coordinating thread, outside parallel
//! sections.

use crate::config::LatencyProfile;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Internal software-time resolution: picoseconds per nanosecond. Storing
/// integer picoseconds makes concurrent accumulation exact (u64 addition
/// commutes; f64 addition does not).
const PS_PER_NS: f64 = 1000.0;

/// A point-in-time snapshot of device counters.
///
/// Snapshots form an affine space: subtracting two snapshots yields the
/// traffic of the interval between them, which is how the harness isolates
/// the cost of a single operation from the cost of loading its inputs
/// (the paper factors data loading out of its timings).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IoStats {
    /// Cachelines read from persistent memory.
    pub cl_reads: u64,
    /// Cachelines written to persistent memory.
    pub cl_writes: u64,
    /// Accumulated software overhead in nanoseconds (filesystem calls,
    /// allocator work) on top of raw medium latency.
    pub software_ns: f64,
    /// Number of I/O calls issued to persistence layers.
    pub calls: u64,
}

impl IoStats {
    /// Traffic between `earlier` and `self` (i.e., `self - earlier`).
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not actually earlier — every
    /// field is checked, so a reset (or a snapshot torn across a reset)
    /// between the two observations is caught instead of silently
    /// producing wrapped counters or negative software time.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        debug_assert!(
            self.cl_reads >= earlier.cl_reads,
            "cl_reads went backwards: {} < {}",
            self.cl_reads,
            earlier.cl_reads
        );
        debug_assert!(
            self.cl_writes >= earlier.cl_writes,
            "cl_writes went backwards: {} < {}",
            self.cl_writes,
            earlier.cl_writes
        );
        debug_assert!(
            self.software_ns >= earlier.software_ns,
            "software_ns went backwards: {} < {}",
            self.software_ns,
            earlier.software_ns
        );
        debug_assert!(
            self.calls >= earlier.calls,
            "calls went backwards: {} < {}",
            self.calls,
            earlier.calls
        );
        IoStats {
            cl_reads: self.cl_reads - earlier.cl_reads,
            cl_writes: self.cl_writes - earlier.cl_writes,
            software_ns: self.software_ns - earlier.software_ns,
            calls: self.calls - earlier.calls,
        }
    }

    /// Component-wise sum (used to reconcile per-worker ledgers against
    /// the device totals).
    #[must_use]
    pub fn plus(&self, other: &IoStats) -> IoStats {
        IoStats {
            cl_reads: self.cl_reads + other.cl_reads,
            cl_writes: self.cl_writes + other.cl_writes,
            software_ns: self.software_ns + other.software_ns,
            calls: self.calls + other.calls,
        }
    }

    /// Simulated elapsed time in nanoseconds under `latency`.
    pub fn time_ns(&self, latency: &LatencyProfile) -> f64 {
        self.cl_reads as f64 * latency.read_ns
            + self.cl_writes as f64 * latency.write_ns
            + self.software_ns
    }

    /// Simulated elapsed time in seconds under `latency`.
    pub fn time_secs(&self, latency: &LatencyProfile) -> f64 {
        self.time_ns(latency) / 1e9
    }

    /// Abstract cost in read units: `reads + λ·writes` (the paper's cost
    /// expressions are all stated in multiples of `r`).
    pub fn cost_units(&self, lambda: f64) -> f64 {
        self.cl_reads as f64 + lambda * self.cl_writes as f64
    }
}

/// Per-thread mirror of everything the current thread has charged to any
/// [`Metrics`] bank, in raw units (picoseconds for software time).
#[derive(Clone, Copy, Debug, Default)]
struct LocalLedger {
    reads: u64,
    writes: u64,
    software_ps: u64,
    calls: u64,
}

thread_local! {
    static LEDGER: Cell<LocalLedger> = const { Cell::new(LocalLedger {
        reads: 0,
        writes: 0,
        software_ps: 0,
        calls: 0,
    }) };
}

#[inline]
fn ledger_update(f: impl FnOnce(&mut LocalLedger)) {
    let _ = LEDGER.try_with(|l| {
        let mut v = l.get();
        f(&mut v);
        l.set(v);
    });
}

/// Cumulative traffic charged *by the calling thread* since it started,
/// across all devices. Monotonic and never reset; take two observations
/// and [`IoStats::since`] them to cost a code region. This is the
/// per-worker ledger the parallel executor uses: unlike a device
/// snapshot, it is unaffected by concurrent siblings, so per-partition
/// cost deltas stay deterministic at any degree of parallelism.
pub fn thread_stats() -> IoStats {
    let l = LEDGER.with(Cell::get);
    IoStats {
        cl_reads: l.reads,
        cl_writes: l.writes,
        software_ns: l.software_ps as f64 / PS_PER_NS,
        calls: l.calls,
    }
}

thread_local! {
    static ADOPTED: Cell<LocalLedger> = const { Cell::new(LocalLedger {
        reads: 0,
        writes: 0,
        software_ps: 0,
        calls: 0,
    }) };
}

/// Credits `stats` — traffic charged by *another* thread on this thread's
/// behalf (a completed worker task whose results this thread consumed) —
/// to the calling thread's adopted ledger, so [`thread_flow`] accounts
/// for delegated work. Adopted amounts are kept in the same raw integer
/// units as the ledger itself, so adoption round-trips exactly.
pub fn adopt(stats: &IoStats) {
    ADOPTED.with(|l| {
        let mut v = l.get();
        v.reads += stats.cl_reads;
        v.writes += stats.cl_writes;
        v.software_ps += (stats.software_ns * PS_PER_NS).round() as u64;
        v.calls += stats.calls;
        l.set(v);
    });
}

/// [`thread_stats`] plus everything this thread has [`adopt`]ed from
/// workers: the total traffic this thread is *responsible* for. Like the
/// ledger it is monotonic and never reset, so flow deltas around a code
/// region cost that region inclusive of any parallel fan-out it consumed
/// — which is exactly the quantity profiling spans report.
pub fn thread_flow() -> IoStats {
    let own = LEDGER.with(Cell::get);
    let ad = ADOPTED.with(Cell::get);
    IoStats {
        cl_reads: own.reads + ad.reads,
        cl_writes: own.writes + ad.writes,
        software_ns: (own.software_ps + ad.software_ps) as f64 / PS_PER_NS,
        calls: own.calls + ad.calls,
    }
}

/// Source of unique bank identities. Weak handles alone cannot key the
/// shard registry: an `Arc<Bank>` address can be reused by a later
/// allocation, so shards match on an id that is never reused.
static NEXT_BANK_ID: AtomicU64 = AtomicU64::new(1);

/// The shared counter core of a [`Metrics`] bank. Threads never touch
/// these atomics per access; [`Bank::merge_shard`] publishes a thread
/// shard's pending deltas in bulk at flush points.
#[derive(Debug)]
struct Bank {
    id: u64,
    cl_reads: AtomicU64,
    cl_writes: AtomicU64,
    software_ps: AtomicU64,
    calls: AtomicU64,
    breakdown: Mutex<HashMap<String, IoStats>>,
}

impl Bank {
    fn new() -> Self {
        Bank {
            id: NEXT_BANK_ID.fetch_add(1, Ordering::Relaxed),
            cl_reads: AtomicU64::new(0),
            cl_writes: AtomicU64::new(0),
            software_ps: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            breakdown: Mutex::new(HashMap::new()),
        }
    }

    /// Bulk-publishes one thread shard into the shared counters: a
    /// handful of `fetch_add`s and at most one breakdown lock per flush,
    /// regardless of how many accesses the shard buffered. This is the
    /// only place pending deltas enter the bank (the `ledger-only`
    /// wl-audit rule pins callers to this file).
    fn merge_shard(&self, pending: &ShardDelta) {
        if pending.reads != 0 {
            self.cl_reads.fetch_add(pending.reads, Ordering::Relaxed);
        }
        if pending.writes != 0 {
            self.cl_writes.fetch_add(pending.writes, Ordering::Relaxed);
        }
        if pending.software_ps != 0 {
            self.software_ps
                .fetch_add(pending.software_ps, Ordering::Relaxed);
        }
        if pending.calls != 0 {
            self.calls.fetch_add(pending.calls, Ordering::Relaxed);
        }
        if !pending.breakdown.is_empty() {
            let mut map = self.breakdown.lock().expect("breakdown lock poisoned");
            for (tag, d) in &pending.breakdown {
                let slot = map.entry(tag.clone()).or_default();
                slot.cl_reads += d.cl_reads;
                slot.cl_writes += d.cl_writes;
                slot.software_ns += d.software_ns;
                slot.calls += d.calls;
            }
        }
    }
}

/// One thread's not-yet-published deltas against one bank, in raw
/// integer units, plus any buffered per-collection attribution.
#[derive(Debug, Default)]
struct ShardDelta {
    reads: u64,
    writes: u64,
    software_ps: u64,
    calls: u64,
    breakdown: HashMap<String, IoStats>,
}

/// A thread's pending shard for one bank. The bank is held weakly so a
/// dropped device never keeps thread state alive (and a dead bank's
/// pending deltas are discarded at the next flush).
#[derive(Debug)]
struct Shard {
    bank_id: u64,
    bank: Weak<Bank>,
    delta: ShardDelta,
}

/// Every shard the current thread has pending. Dropping the registry —
/// the thread-local destructor, running at thread exit even on panic —
/// flushes everything, so raw-thread callers and mid-task panics never
/// lose counts.
#[derive(Debug, Default)]
struct ShardRegistry {
    shards: Vec<Shard>,
}

impl ShardRegistry {
    fn flush_all(&mut self) {
        for s in &mut self.shards {
            if let Some(bank) = s.bank.upgrade() {
                bank.merge_shard(&s.delta);
            }
        }
        // Zeroing by clearing: a published delta must never merge twice.
        self.shards.clear();
    }
}

impl Drop for ShardRegistry {
    fn drop(&mut self) {
        self.flush_all();
    }
}

thread_local! {
    static SHARDS: RefCell<ShardRegistry> = RefCell::new(ShardRegistry::default());
}

/// Buffers a delta in the calling thread's shard for `bank`. If the
/// thread-local registry is already destroyed (a charge from inside
/// another thread-local's destructor), publishes directly — correctness
/// over buffering on that cold path.
#[inline]
fn buffer_in_shard(bank: &Arc<Bank>, f: impl FnOnce(&mut ShardDelta)) {
    let mut f = Some(f);
    let buffered = SHARDS.try_with(|reg| {
        let reg = &mut *reg.borrow_mut();
        let idx = reg.shards.iter().position(|s| s.bank_id == bank.id);
        let slot = match idx {
            Some(i) => &mut reg.shards[i],
            None => {
                reg.shards.push(Shard {
                    bank_id: bank.id,
                    bank: Arc::downgrade(bank),
                    delta: ShardDelta::default(),
                });
                reg.shards.last_mut().expect("just pushed")
            }
        };
        (f.take().expect("applied once"))(&mut slot.delta);
    });
    if buffered.is_err() {
        if let Some(f) = f.take() {
            let mut delta = ShardDelta::default();
            f(&mut delta);
            bank.merge_shard(&delta);
        }
    }
}

/// Publishes every pending shard of the calling thread into its bank and
/// zeroes the shards. The worker pool calls this at task ends and
/// barrier joins; `PCollection::append_buffer` and the exec operators
/// call it at their flush/span boundaries; bank reads flush implicitly.
/// Safe (and cheap — a no-op on empty shards) to call anywhere.
pub fn flush_thread_shards() {
    let _ = SHARDS.try_with(|reg| reg.borrow_mut().flush_all());
}

/// Interior-mutable counter bank shared by every collection of a device.
///
/// The bank is `Send + Sync`; charges buffer in per-thread shards and
/// publish at flush points (see the module docs), so totals are exact
/// under any interleaving once the charging threads have flushed —
/// thread exit, [`flush_thread_shards`], and same-thread reads all
/// flush.
#[derive(Debug)]
pub struct Metrics {
    bank: Arc<Bank>,
    paused: AtomicBool,
    breakdown_enabled: AtomicBool,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Suspends accounting on a [`Metrics`] bank for its lifetime.
///
/// Used by test/harness facilities (e.g., draining a collection to verify
/// its contents) that must not perturb the measured experiment. The pause
/// flag is device-global: pausing while parallel workers are mid-flight
/// would suppress their accounting too, so pauses belong on the
/// coordinating thread only.
#[derive(Debug)]
pub struct PauseGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.metrics.paused.store(false, Ordering::Relaxed);
    }
}

impl Metrics {
    /// Creates a zeroed counter bank.
    pub fn new() -> Self {
        Metrics {
            bank: Arc::new(Bank::new()),
            paused: AtomicBool::new(false),
            breakdown_enabled: AtomicBool::new(false),
        }
    }

    /// Suspends accounting until the returned guard is dropped.
    ///
    /// # Panics
    /// Panics if accounting is already paused (pauses do not nest; a nested
    /// pause would silently re-enable accounting too early).
    pub fn pause(&self) -> PauseGuard<'_> {
        assert!(
            !self.paused.swap(true, Ordering::Relaxed),
            "metrics already paused"
        );
        PauseGuard { metrics: self }
    }

    /// Records `n` cacheline reads (thread-locally; published at the next
    /// flush point — no shared atomics on this path).
    #[inline]
    pub fn add_reads(&self, n: u64) {
        if !self.paused.load(Ordering::Relaxed) {
            ledger_update(|l| l.reads += n);
            buffer_in_shard(&self.bank, |d| d.reads += n);
        }
    }

    /// Records `n` cacheline writes (thread-locally; published at the
    /// next flush point).
    #[inline]
    pub fn add_writes(&self, n: u64) {
        if !self.paused.load(Ordering::Relaxed) {
            ledger_update(|l| l.writes += n);
            buffer_in_shard(&self.bank, |d| d.writes += n);
        }
    }

    /// Records `ns` nanoseconds of software overhead (rounded to the
    /// picosecond internally, so concurrent accumulation stays exact).
    #[inline]
    pub fn add_software_ns(&self, ns: f64) {
        if !self.paused.load(Ordering::Relaxed) {
            let ps = (ns * PS_PER_NS).round() as u64;
            ledger_update(|l| l.software_ps += ps);
            buffer_in_shard(&self.bank, |d| d.software_ps += ps);
        }
    }

    /// Records `n` persistence-layer calls (thread-locally; published at
    /// the next flush point).
    #[inline]
    pub fn add_calls(&self, n: u64) {
        if !self.paused.load(Ordering::Relaxed) {
            ledger_update(|l| l.calls += n);
            buffer_in_shard(&self.bank, |d| d.calls += n);
        }
    }

    /// Current counter values. Flushes the calling thread's own pending
    /// shards first, so a thread always observes its own charges;
    /// other threads' charges appear once they reach a flush point.
    pub fn snapshot(&self) -> IoStats {
        flush_thread_shards();
        IoStats {
            cl_reads: self.bank.cl_reads.load(Ordering::Relaxed),
            cl_writes: self.bank.cl_writes.load(Ordering::Relaxed),
            software_ns: self.bank.software_ps.load(Ordering::Relaxed) as f64 / PS_PER_NS,
            calls: self.bank.calls.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (including any per-collection
    /// breakdown), discarding the calling thread's pending shard for
    /// this bank. Thread-local ledgers are cumulative and unaffected.
    /// Like snapshots, resets belong on the coordinating thread outside
    /// parallel sections.
    pub fn reset(&self) {
        let _ = SHARDS.try_with(|reg| {
            reg.borrow_mut()
                .shards
                .retain(|s| s.bank_id != self.bank.id);
        });
        self.bank.cl_reads.store(0, Ordering::Relaxed);
        self.bank.cl_writes.store(0, Ordering::Relaxed);
        self.bank.software_ps.store(0, Ordering::Relaxed);
        self.bank.calls.store(0, Ordering::Relaxed);
        self.bank
            .breakdown
            .lock()
            .expect("breakdown lock poisoned")
            .clear();
    }

    /// Enables per-collection I/O attribution. Off by default — when
    /// enabled, collections measure their storage operations through the
    /// thread ledger and attribute the deltas by name, buffered in the
    /// thread shard (a local hash update per operation; the shared map
    /// is only locked once per flush).
    pub fn enable_breakdown(&self) {
        self.breakdown_enabled.store(true, Ordering::Relaxed);
    }

    /// Whether per-collection attribution is on.
    #[inline]
    pub fn breakdown_enabled(&self) -> bool {
        self.breakdown_enabled.load(Ordering::Relaxed)
    }

    /// Attributes `delta` to `tag` (no-op unless breakdown is enabled;
    /// paused accounting also suppresses attribution). Buffered in the
    /// calling thread's shard and merged at the same flush points as the
    /// counters.
    pub fn attribute(&self, tag: &str, delta: IoStats) {
        if !self.breakdown_enabled() || self.paused.load(Ordering::Relaxed) {
            return;
        }
        buffer_in_shard(&self.bank, |d| {
            if let Some(slot) = d.breakdown.get_mut(tag) {
                slot.cl_reads += delta.cl_reads;
                slot.cl_writes += delta.cl_writes;
                slot.software_ns += delta.software_ns;
                slot.calls += delta.calls;
            } else {
                d.breakdown.insert(tag.to_string(), delta);
            }
        });
    }

    /// The per-collection breakdown, sorted by writes descending.
    /// Empty unless [`Metrics::enable_breakdown`] was called. Flushes
    /// the calling thread's pending shards first.
    pub fn breakdown(&self) -> Vec<(String, IoStats)> {
        flush_thread_shards();
        let mut v: Vec<(String, IoStats)> = self
            .bank
            .breakdown
            .lock()
            .expect("breakdown lock poisoned")
            .iter()
            .map(|(k, s)| (k.clone(), *s))
            .collect();
        v.sort_by(|a, b| b.1.cl_writes.cmp(&a.1.cl_writes).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let m = Metrics::new();
        m.add_reads(3);
        m.add_writes(2);
        m.add_software_ns(5.0);
        m.add_calls(1);
        let s = m.snapshot();
        assert_eq!(s.cl_reads, 3);
        assert_eq!(s.cl_writes, 2);
        assert_eq!(s.software_ns, 5.0);
        assert_eq!(s.calls, 1);
    }

    #[test]
    fn since_computes_interval_traffic() {
        let m = Metrics::new();
        m.add_reads(10);
        let before = m.snapshot();
        m.add_reads(5);
        m.add_writes(7);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.cl_reads, 5);
        assert_eq!(delta.cl_writes, 7);
    }

    #[test]
    fn time_matches_latency_profile() {
        let s = IoStats {
            cl_reads: 100,
            cl_writes: 10,
            software_ns: 50.0,
            calls: 0,
        };
        let t = s.time_ns(&LatencyProfile::PCM);
        assert!((t - (100.0 * 10.0 + 10.0 * 150.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn cost_units_weight_writes_by_lambda() {
        let s = IoStats {
            cl_reads: 4,
            cl_writes: 2,
            ..Default::default()
        };
        assert!((s.cost_units(15.0) - 34.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.add_reads(1);
        m.add_writes(1);
        m.reset();
        assert_eq!(m.snapshot(), IoStats::default());
    }

    #[test]
    fn reset_discards_this_threads_pending_shard() {
        let m = Metrics::new();
        m.add_reads(9); // pending, unflushed
        m.reset();
        // The pending 9 reads must not resurface at the next flush.
        assert_eq!(m.snapshot(), IoStats::default());
        m.add_reads(2);
        assert_eq!(m.snapshot().cl_reads, 2);
    }

    #[test]
    fn metrics_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Metrics>();
        assert_send_sync::<IoStats>();
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        // Raw spawn + join so the thread-exit shard flush is visible
        // (scope's implicit join does not wait for TLS destructors).
        let m = std::sync::Arc::new(Metrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.add_reads(1);
                        m.add_writes(2);
                        m.add_software_ns(0.5);
                        m.add_calls(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker ok");
        }
        let s = m.snapshot();
        assert_eq!(s.cl_reads, 40_000);
        assert_eq!(s.cl_writes, 80_000);
        assert_eq!(s.calls, 40_000);
        assert!((s.software_ns - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn thread_ledger_mirrors_this_threads_traffic_only() {
        let m = Metrics::new();
        let before = thread_stats();
        m.add_reads(7);
        m.add_writes(3);
        std::thread::scope(|s| {
            s.spawn(|| {
                // A sibling's traffic must not appear in our ledger.
                m.add_reads(1000);
                let own = thread_stats();
                assert!(own.cl_reads >= 1000);
                // Publish before the scope joins (the implicit join does
                // not wait for the thread-exit TLS flush).
                flush_thread_shards();
            });
        });
        let delta = thread_stats().since(&before);
        assert_eq!(delta.cl_reads, 7);
        assert_eq!(delta.cl_writes, 3);
        assert_eq!(m.snapshot().cl_reads, 1007);
    }

    #[test]
    fn explicit_flush_publishes_without_a_bank_read() {
        // A worker flushes mid-life (no snapshot, no exit); the
        // coordinator must observe its counts.
        let m = std::sync::Arc::new(Metrics::new());
        let (flushed_tx, flushed_rx) = std::sync::mpsc::channel::<()>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = {
            let m = std::sync::Arc::clone(&m);
            std::thread::spawn(move || {
                m.add_reads(41);
                flush_thread_shards();
                flushed_tx.send(()).expect("receiver alive");
                // Stay alive until the coordinator has looked, so the
                // observation cannot be satisfied by the exit flush.
                done_rx.recv().expect("sender alive");
            })
        };
        flushed_rx.recv().expect("worker flushed");
        assert_eq!(m.snapshot().cl_reads, 41);
        done_tx.send(()).expect("worker alive");
        worker.join().expect("worker exits cleanly");
    }

    #[test]
    fn flush_is_idempotent_and_never_double_merges() {
        let m = Metrics::new();
        m.add_writes(6);
        flush_thread_shards();
        flush_thread_shards();
        assert_eq!(m.snapshot().cl_writes, 6);
        // And a snapshot-triggered flush after an explicit one is also
        // publish-once.
        assert_eq!(m.snapshot().cl_writes, 6);
    }

    #[test]
    fn panicking_thread_publishes_its_shard_exactly_once() {
        let m = std::sync::Arc::new(Metrics::new());
        let handle = {
            let m = std::sync::Arc::clone(&m);
            std::thread::spawn(move || {
                m.add_reads(7);
                panic!("mid-task failure");
            })
        };
        assert!(handle.join().is_err(), "the thread must have panicked");
        // The thread-local destructor flushed the shard on unwind: the
        // partial traffic is published once, not lost, not doubled.
        assert_eq!(m.snapshot().cl_reads, 7);
        assert_eq!(m.snapshot().cl_reads, 7);
    }

    #[test]
    fn paused_accounting_skips_ledger_too() {
        let m = Metrics::new();
        let before = thread_stats();
        {
            let _p = m.pause();
            m.add_reads(5);
        }
        assert_eq!(thread_stats().since(&before).cl_reads, 0);
    }

    #[test]
    fn adopted_traffic_flows_but_stays_out_of_thread_stats() {
        let m = Metrics::new();
        let own0 = thread_stats();
        let flow0 = thread_flow();
        m.add_reads(2);
        adopt(&IoStats {
            cl_reads: 10,
            cl_writes: 4,
            software_ns: 1.5,
            calls: 3,
        });
        let own = thread_stats().since(&own0);
        assert_eq!(own.cl_reads, 2);
        assert_eq!(own.cl_writes, 0);
        let flow = thread_flow().since(&flow0);
        assert_eq!(flow.cl_reads, 12);
        assert_eq!(flow.cl_writes, 4);
        assert_eq!(flow.calls, 3);
        assert!((flow.software_ns - 1.5).abs() < 1e-9);
    }

    #[test]
    fn attribution_buffers_in_the_shard_until_flush() {
        let m = Metrics::new();
        m.enable_breakdown();
        m.attribute(
            "runs",
            IoStats {
                cl_writes: 5,
                ..Default::default()
            },
        );
        m.attribute(
            "runs",
            IoStats {
                cl_writes: 2,
                cl_reads: 1,
                ..Default::default()
            },
        );
        let b = m.breakdown(); // flush-on-read
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].0, "runs");
        assert_eq!(b[0].1.cl_writes, 7);
        assert_eq!(b[0].1.cl_reads, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "went backwards")]
    fn since_rejects_non_monotonic_software_time() {
        let later = IoStats {
            software_ns: 1.0,
            ..Default::default()
        };
        let earlier = IoStats {
            software_ns: 2.0,
            ..Default::default()
        };
        let _ = later.since(&earlier);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "calls went backwards")]
    fn since_rejects_non_monotonic_calls() {
        let later = IoStats::default();
        let earlier = IoStats {
            calls: 3,
            ..Default::default()
        };
        let _ = later.since(&earlier);
    }
}
