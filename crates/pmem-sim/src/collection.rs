//! Persistent collections: typed, append-only record sequences hosted on a
//! simulated persistent-memory device.
//!
//! A [`PCollection`] is the paper's *persistent collection* (Fig. 3): the
//! unit the runtime algorithms read from and offload to. Records are
//! fixed-width ([`Storable`]), appended sequentially, and scanned through
//! forward-only readers whose cacheline traffic is charged to the owning
//! device.

use crate::config::cachelines;
use crate::device::Pm;
use crate::layer::{LayerKind, ReadCursor, Storage};
use std::marker::PhantomData;

/// A fixed-width record that can live in persistent memory.
///
/// Implementations must round-trip exactly: `read_from(write_to(r)) == r`.
pub trait Storable: Copy {
    /// Serialized size in bytes.
    const SIZE: usize;

    /// Serializes into `buf` (exactly `SIZE` bytes).
    fn write_to(&self, buf: &mut [u8]);

    /// Deserializes from `buf` (exactly `SIZE` bytes).
    fn read_from(buf: &[u8]) -> Self;
}

impl Storable for u64 {
    const SIZE: usize = 8;

    fn write_to(&self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"))
    }
}

impl Storable for (u64, u64) {
    const SIZE: usize = 16;

    fn write_to(&self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.0.to_le_bytes());
        buf[8..16].copy_from_slice(&self.1.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        (
            u64::from_le_bytes(buf[..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        )
    }
}

/// A typed persistent collection of `R` records.
#[derive(Debug)]
pub struct PCollection<R: Storable> {
    name: String,
    dev: Pm,
    storage: Storage,
    n_records: usize,
    scratch: Vec<u8>,
    /// Write-range ledger of the access-discipline race auditor
    /// ([`crate::audit`]); debug builds only.
    #[cfg(debug_assertions)]
    write_audit: crate::audit::WriteAudit,
    _marker: PhantomData<R>,
}

impl<R: Storable> PCollection<R> {
    /// Creates an empty collection named `name` on `dev` using the given
    /// persistence-layer implementation.
    pub fn new(dev: &Pm, kind: LayerKind, name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            dev: dev.clone(),
            storage: Storage::new(kind, dev.config()),
            n_records: 0,
            scratch: vec![0u8; R::SIZE],
            #[cfg(debug_assertions)]
            write_audit: crate::audit::WriteAudit::default(),
            _marker: PhantomData,
        }
    }

    /// Collection name (unique identifiers are the runtime's only
    /// assumption about collections, §3.1).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Persistence-layer implementation backing this collection.
    pub fn kind(&self) -> LayerKind {
        self.storage.kind()
    }

    /// The device this collection is charged to.
    pub fn device(&self) -> &Pm {
        &self.dev
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_records
    }

    /// True if the collection holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Size in bytes.
    pub fn bytes(&self) -> usize {
        self.storage.len()
    }

    /// Size in the paper's buffer units (cachelines).
    pub fn buffers(&self) -> u64 {
        cachelines(self.storage.len())
    }

    /// Appends one record, charging writes to the device (attributed to
    /// this collection's name when the breakdown is enabled).
    pub fn append(&mut self, record: &R) {
        record.write_to(&mut self.scratch);
        // scratch is sized in the constructor; split borrow via take.
        let mut scratch = std::mem::take(&mut self.scratch);
        if self.dev.metrics().breakdown_enabled() {
            // Measure through the thread ledger, not a device snapshot:
            // the ledger only sees this thread's charges (so parallel
            // siblings can't pollute the attribution) and costs no flush.
            let before = crate::metrics::thread_stats();
            self.storage.append(&scratch, &self.dev);
            let delta = crate::metrics::thread_stats().since(&before);
            self.dev.metrics().attribute(&self.name, delta);
        } else {
            self.storage.append(&scratch, &self.dev);
        }
        scratch.iter_mut().for_each(|b| *b = 0);
        self.scratch = scratch;
        self.n_records += 1;
        #[cfg(debug_assertions)]
        self.write_audit.note(
            &self.name,
            self.n_records - 1,
            self.n_records,
            crate::span::thread_id(),
        );
    }

    /// Appends every record in `records`.
    pub fn extend_from_slice(&mut self, records: &[R]) {
        for r in records {
            self.append(r);
        }
    }

    /// Appends a pre-serialized batch of records in one storage append.
    ///
    /// This is the flush half of the parallel executors' output path:
    /// workers serialize their partition's output into a
    /// [`RecordBuffer`] off the critical section, and the coordinating
    /// thread lands the bytes here in deterministic partition order. The
    /// charged traffic telescopes to exactly what the same records
    /// appended one at a time would cost on the granular layers (writes
    /// and calls are both ceil-delta accounted); the dynamic-array layer
    /// treats the batch as a single reserve-and-insert, as a bulk
    /// `vector` insertion would.
    pub fn append_buffer(&mut self, buf: &RecordBuffer<R>) {
        if buf.is_empty() {
            return;
        }
        if self.dev.metrics().breakdown_enabled() {
            let before = crate::metrics::thread_stats();
            self.storage.append(&buf.bytes, &self.dev);
            let delta = crate::metrics::thread_stats().since(&before);
            self.dev.metrics().attribute(&self.name, delta);
        } else {
            self.storage.append(&buf.bytes, &self.dev);
        }
        // A bulk flush is an accounting boundary: publish this thread's
        // pending shards so coordinator-side snapshots taken right after
        // landing a batch observe it.
        crate::flush_thread_accounting();
        self.n_records += buf.n_records;
        // The flushed range belongs to the thread that *filled* the
        // buffer (a worker), not the one landing it (the coordinator).
        #[cfg(debug_assertions)]
        self.write_audit.note(
            &self.name,
            self.n_records - buf.n_records,
            self.n_records,
            buf.owner.unwrap_or_else(crate::span::thread_id),
        );
    }

    /// A fresh forward-only reader positioned at the first record. Each
    /// reader re-counts the cachelines it touches, so creating a second
    /// reader models the rescans lazy algorithms pay for.
    pub fn reader(&self) -> RecordReader<'_, R> {
        self.range_reader(0, self.n_records)
    }

    /// A reader over records `[start, end)` — used by segment algorithms
    /// that process a contiguous slice of the input. Seeking to `start`
    /// is free (the medium is byte-addressable); only touched cachelines
    /// are charged.
    ///
    /// # Panics
    /// Panics if `start > end` or `end` exceeds the collection length.
    pub fn range_reader(&self, start: usize, end: usize) -> RecordReader<'_, R> {
        assert!(
            start <= end && end <= self.n_records,
            "bad range {start}..{end}"
        );
        RecordReader {
            col: self,
            next_record: start,
            end,
            cursor: ReadCursor::new(),
            buf: vec![0u8; R::SIZE],
        }
    }

    /// Reads the record at `idx` through an ad-hoc cursor (charged as an
    /// isolated random access).
    pub fn get(&self, idx: usize) -> R {
        let mut cursor = ReadCursor::new();
        self.get_with_cursor(idx, &mut cursor)
    }

    /// Reads the record at `idx` through a caller-held cursor, so
    /// forward sequences of point reads are charged like a scan (records
    /// sharing a cacheline count it once). Used by iterator-style
    /// consumers that cannot hold a borrowing [`RecordReader`].
    pub fn get_with_cursor(&self, idx: usize, cursor: &mut ReadCursor) -> R {
        assert!(
            idx < self.n_records,
            "record {idx} out of {}",
            self.n_records
        );
        let mut buf = vec![0u8; R::SIZE];
        self.storage
            .read_at(idx * R::SIZE, &mut buf, cursor, &self.dev);
        R::read_from(&buf)
    }

    /// Removes all records; write accounting restarts from zero.
    pub fn clear(&mut self) {
        self.storage.clear();
        self.n_records = 0;
    }

    /// Drains the collection into a DRAM vector **without** charging reads
    /// — test/harness convenience for verifying contents out-of-band.
    pub fn to_vec_uncounted(&self) -> Vec<R> {
        let _pause = self.dev.metrics().pause();
        self.reader().collect()
    }

    /// Reads records `[start, end)` into a DRAM vector **without**
    /// charging reads — the result-delivery path streaming consumers use
    /// to hand batches to the client outside the simulated cost model
    /// (the run that *produced* the collection was already counted).
    pub fn range_to_vec_uncounted(&self, start: usize, end: usize) -> Vec<R> {
        let _pause = self.dev.metrics().pause();
        self.range_reader(start, end).collect()
    }

    /// Builds a collection from `records` **without** charging writes.
    ///
    /// The paper factors the cost of loading input data out of its reported
    /// timings ("our tests did not perform any disk I/O apart from the
    /// necessary for loading the data before processing, which we have
    /// factored out", §4); experiment inputs are staged through this
    /// constructor so only the algorithm's own traffic is measured.
    pub fn from_records_uncounted(
        dev: &Pm,
        kind: LayerKind,
        name: impl Into<String>,
        records: impl IntoIterator<Item = R>,
    ) -> Self {
        let mut col = Self::new(dev, kind, name);
        {
            let _pause = dev.metrics().pause();
            for r in records {
                col.append(&r);
            }
        }
        col
    }
}

/// A DRAM staging buffer of serialized records, built by parallel
/// workers and flushed into a [`PCollection`] with
/// [`PCollection::append_buffer`].
///
/// Buffer contents live in (unbudgeted) DRAM and charge nothing until
/// flushed; serializing in the worker keeps the coordinating thread's
/// flush a single bulk copy.
#[derive(Debug)]
pub struct RecordBuffer<R: Storable> {
    bytes: Vec<u8>,
    n_records: usize,
    /// Profiler id of the thread that first pushed into this buffer —
    /// the range's owner when it lands ([`crate::audit`]); debug only.
    #[cfg(debug_assertions)]
    owner: Option<u64>,
    _marker: PhantomData<R>,
}

impl<R: Storable> Default for RecordBuffer<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Storable> RecordBuffer<R> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self {
            bytes: Vec::new(),
            n_records: 0,
            #[cfg(debug_assertions)]
            owner: None,
            _marker: PhantomData,
        }
    }

    /// Serializes one record onto the end of the buffer.
    pub fn push(&mut self, record: &R) {
        #[cfg(debug_assertions)]
        {
            let me = crate::span::thread_id();
            match self.owner {
                None => self.owner = Some(me),
                Some(owner) if owner != me => panic!(
                    "race auditor: RecordBuffer filled by threads {owner} and {me}; \
                     a staging buffer belongs to exactly one worker"
                ),
                Some(_) => {}
            }
        }
        let start = self.bytes.len();
        self.bytes.resize(start + R::SIZE, 0);
        record.write_to(&mut self.bytes[start..]);
        self.n_records += 1;
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.n_records
    }

    /// True if nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }
}

/// Forward-only record iterator over a [`PCollection`].
#[derive(Debug)]
pub struct RecordReader<'a, R: Storable> {
    col: &'a PCollection<R>,
    next_record: usize,
    end: usize,
    cursor: ReadCursor,
    buf: Vec<u8>,
}

impl<'a, R: Storable> RecordReader<'a, R> {
    /// Index of the record the next call to `next` will return.
    pub fn position(&self) -> usize {
        self.next_record
    }

    /// Remaining record count.
    pub fn remaining(&self) -> usize {
        self.end - self.next_record
    }
}

impl<'a, R: Storable> Iterator for RecordReader<'a, R> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        if self.next_record >= self.end {
            return None;
        }
        let attributing = self.col.dev.metrics().breakdown_enabled();
        let before = attributing.then(crate::metrics::thread_stats);
        self.col.storage.read_at(
            self.next_record * R::SIZE,
            &mut self.buf,
            &mut self.cursor,
            &self.col.dev,
        );
        if let Some(before) = before {
            let delta = crate::metrics::thread_stats().since(&before);
            self.col.dev.metrics().attribute(&self.col.name, delta);
        }
        self.next_record += 1;
        Some(R::read_from(&self.buf))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl<'a, R: Storable> ExactSizeIterator for RecordReader<'a, R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PmDevice;

    #[test]
    fn append_then_scan_roundtrips() {
        let dev = PmDevice::paper_default();
        let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "t");
        for i in 0..1000u64 {
            c.append(&(i * 7));
        }
        let read: Vec<u64> = c.reader().collect();
        assert_eq!(read, (0..1000u64).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn buffers_match_ceil_bytes_over_cacheline() {
        let dev = PmDevice::paper_default();
        let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "t");
        for i in 0..100u64 {
            c.append(&i);
        }
        assert_eq!(c.bytes(), 800);
        assert_eq!(c.buffers(), 13); // ceil(800/64)
    }

    #[test]
    fn full_scan_costs_len_in_buffers() {
        let dev = PmDevice::paper_default();
        let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "t");
        for i in 0..1000u64 {
            c.append(&i);
        }
        let before = dev.snapshot();
        let _: Vec<u64> = c.reader().collect();
        assert_eq!(dev.snapshot().since(&before).cl_reads, c.buffers());
    }

    #[test]
    fn two_readers_double_the_read_traffic() {
        let dev = PmDevice::paper_default();
        let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "t");
        for i in 0..512u64 {
            c.append(&i);
        }
        let before = dev.snapshot();
        let _: Vec<u64> = c.reader().collect();
        let _: Vec<u64> = c.reader().collect();
        assert_eq!(dev.snapshot().since(&before).cl_reads, 2 * c.buffers());
    }

    #[test]
    fn get_fetches_by_index() {
        let dev = PmDevice::paper_default();
        let mut c = PCollection::<u64>::new(&dev, LayerKind::Pmfs, "t");
        for i in 0..64u64 {
            c.append(&(i * i));
        }
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(7), 49);
        assert_eq!(c.get(63), 63 * 63);
    }

    #[test]
    fn tuple_records_roundtrip() {
        let dev = PmDevice::paper_default();
        let mut c = PCollection::<(u64, u64)>::new(&dev, LayerKind::DynArray, "t");
        c.append(&(1, 2));
        c.append(&(u64::MAX, 0));
        let v: Vec<(u64, u64)> = c.reader().collect();
        assert_eq!(v, vec![(1, 2), (u64::MAX, 0)]);
    }

    #[test]
    fn to_vec_uncounted_leaves_counters_unchanged() {
        let dev = PmDevice::paper_default();
        let mut c = PCollection::<u64>::new(&dev, LayerKind::RamDisk, "t");
        for i in 0..100u64 {
            c.append(&i);
        }
        let before = dev.snapshot();
        let v = c.to_vec_uncounted();
        assert_eq!(v.len(), 100);
        assert_eq!(dev.snapshot(), before);
    }

    #[test]
    fn reader_position_tracks_records() {
        let dev = PmDevice::paper_default();
        let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "t");
        for i in 0..10u64 {
            c.append(&i);
        }
        let mut r = c.reader();
        assert_eq!(r.position(), 0);
        r.next();
        r.next();
        assert_eq!(r.position(), 2);
        assert_eq!(r.remaining(), 8);
    }

    #[test]
    fn append_buffer_charges_like_per_record_appends() {
        for kind in [
            LayerKind::BlockedMemory,
            LayerKind::Pmfs,
            LayerKind::RamDisk,
        ] {
            let d1 = PmDevice::paper_default();
            let mut one = PCollection::<u64>::new(&d1, kind, "one");
            let d2 = PmDevice::paper_default();
            let mut two = PCollection::<u64>::new(&d2, kind, "two");
            // Interleave plain and buffered appends so batch boundaries
            // land mid-cacheline and mid-call-granule.
            for round in 0..5u64 {
                for i in 0..3 {
                    one.append(&(round * 100 + i));
                }
                let mut buf = RecordBuffer::new();
                for i in 0..37 {
                    buf.push(&(round * 100 + 10 + i));
                }
                one.append_buffer(&buf);

                for i in 0..3 {
                    two.append(&(round * 100 + i));
                }
                for i in 0..37 {
                    two.append(&(round * 100 + 10 + i));
                }
            }
            assert_eq!(one.len(), two.len(), "{kind:?}");
            assert_eq!(one.to_vec_uncounted(), two.to_vec_uncounted(), "{kind:?}");
            assert_eq!(d1.snapshot(), d2.snapshot(), "{kind:?}");
        }
    }

    #[test]
    fn clear_empties_collection() {
        let dev = PmDevice::paper_default();
        let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "t");
        c.append(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.reader().count(), 0);
    }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;
    use crate::device::PmDevice;
    use crate::layer::LayerKind;

    #[test]
    fn breakdown_attributes_io_per_collection() {
        let dev = PmDevice::paper_default();
        dev.metrics().enable_breakdown();
        let mut a = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "runs");
        let mut b = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "output");
        for i in 0..100u64 {
            a.append(&i);
        }
        for i in 0..200u64 {
            b.append(&i);
        }
        let _: Vec<u64> = a.reader().collect();

        let breakdown = dev.metrics().breakdown();
        assert_eq!(breakdown.len(), 2);
        // Sorted by writes descending: output first.
        assert_eq!(breakdown[0].0, "output");
        assert_eq!(breakdown[0].1.cl_writes, b.buffers());
        assert_eq!(breakdown[1].0, "runs");
        assert_eq!(breakdown[1].1.cl_writes, a.buffers());
        assert_eq!(breakdown[1].1.cl_reads, a.buffers());
        // The attributed totals reconcile with the global counters.
        let total_writes: u64 = breakdown.iter().map(|(_, s)| s.cl_writes).sum();
        assert_eq!(total_writes, dev.snapshot().cl_writes);
    }

    #[test]
    fn breakdown_is_free_when_disabled() {
        let dev = PmDevice::paper_default();
        let mut a = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "a");
        a.append(&1);
        assert!(dev.metrics().breakdown().is_empty());
    }

    #[test]
    fn pause_suppresses_attribution() {
        let dev = PmDevice::paper_default();
        dev.metrics().enable_breakdown();
        let mut a = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "a");
        {
            let _p = dev.metrics().pause();
            a.append(&1);
        }
        assert!(dev.metrics().breakdown().is_empty());
    }
}
