//! Error types for the persistent-memory simulator.

use std::fmt;

/// Errors surfaced by the simulator's fallible operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmError {
    /// A DRAM reservation exceeded the buffer-pool budget.
    BudgetExceeded {
        /// Bytes requested.
        requested: usize,
        /// Bytes that were still available.
        available: usize,
    },
    /// An algorithm precondition on the memory budget does not hold
    /// (e.g., Grace join requires M > sqrt(f·|T|)).
    InsufficientMemory {
        /// Human-readable description of the violated precondition.
        requirement: String,
    },
    /// A tuning knob was outside its valid domain (e.g., write intensity
    /// must lie in (0, 1)).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// A file-backed operation failed — a real OS error or an injected
    /// fault. Always carries the file, the byte offset the failure hit,
    /// and the cause, so callers can render an actionable message.
    Io {
        /// Path of the backing file.
        path: String,
        /// Byte offset in the file where the failure occurred.
        offset: u64,
        /// What went wrong (OS error string or injected-fault label).
        cause: String,
    },
}

impl fmt::Display for PmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmError::BudgetExceeded {
                requested,
                available,
            } => write!(
                f,
                "DRAM budget exceeded: requested {requested} bytes, {available} available"
            ),
            PmError::InsufficientMemory { requirement } => {
                write!(f, "insufficient memory: {requirement}")
            }
            PmError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            PmError::Io {
                path,
                offset,
                cause,
            } => {
                write!(f, "I/O failure at {path}+{offset}: {cause}")
            }
        }
    }
}

impl std::error::Error for PmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PmError::BudgetExceeded {
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));

        let e = PmError::InvalidParameter {
            name: "x",
            message: "must be in (0,1)".into(),
        };
        assert!(e.to_string().contains("x"));
    }
}
