//! # wl-index — a write-limited persistent B⁺-tree
//!
//! The paper's §6 lists index structures as the natural next target for
//! write-limited techniques. This crate provides a B⁺-tree over
//! simulated persistent-memory pages with two leaf policies — the
//! textbook sorted layout versus the write-limited append layout (Chen
//! et al., the paper's \[2\]) — so the same workload can be priced under
//! both and the write savings measured.
//!
//! ```
//! use pmem_sim::PmDevice;
//! use wl_index::{BPlusTree, LeafPolicy};
//!
//! let dev = PmDevice::paper_default();
//! let mut t = BPlusTree::new(&dev, 1024, LeafPolicy::Append);
//! for i in 0..1000u64 {
//!     t.insert(i * 37 % 1000, i);
//! }
//! assert_eq!(t.get(370), Some(10));
//! assert_eq!(t.range(0, 9).len(), 10);
//! ```

#![warn(missing_docs)]

pub mod node;
pub mod tree;

pub use node::Node;
pub use tree::{BPlusTree, LeafPolicy};
