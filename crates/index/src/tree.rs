//! A persistent B⁺-tree with a write-limited leaf policy.
//!
//! Two leaf layouts over the same tree:
//!
//! * [`LeafPolicy::Sorted`] — the textbook layout: entries kept in key
//!   order, so every insertion shifts the suffix and dirties every
//!   cacheline after the insertion point.
//! * [`LeafPolicy::Append`] — the write-limited layout (Chen et al.,
//!   the paper's \[2\]): entries appended in arrival order, dirtying one
//!   or two cachelines per insertion; leaves are sorted only when they
//!   split, and lookups pay a DRAM-side linear scan instead (reads are
//!   cheap, writes are not — the same trade the paper's sorts and joins
//!   make).
//!
//! Inner nodes are always sorted (they change only on splits). Keys are
//! unique; inserting an existing key overwrites in place. Deletion is
//! out of scope, matching the paper's query-processing focus.

use crate::node::{capacity, Node, ENTRY, TAG_LEAF};
use pmem_sim::{PageId, PageStore, Pm};

/// Leaf organization strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafPolicy {
    /// Entries kept sorted in the page (write-heavy insertions).
    Sorted,
    /// Entries appended in arrival order (write-limited insertions).
    Append,
}

/// A persistent-memory B⁺-tree.
#[derive(Debug)]
pub struct BPlusTree {
    store: PageStore,
    root: PageId,
    policy: LeafPolicy,
    len: usize,
    height: usize,
}

impl BPlusTree {
    /// Creates an empty tree with `page_size`-byte nodes on `dev`.
    pub fn new(dev: &Pm, page_size: usize, policy: LeafPolicy) -> Self {
        let mut store = PageStore::new(dev, page_size);
        let root = store.alloc();
        let leaf = Node::leaf().encode(page_size);
        store.write(root, 0, &leaf[..crate::node::HEADER]);
        Self {
            store,
            root,
            policy,
            len: 0,
            height: 1,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pages allocated.
    pub fn pages(&self) -> usize {
        self.store.len()
    }

    /// The leaf policy in effect.
    pub fn policy(&self) -> LeafPolicy {
        self.policy
    }

    fn max_entries(&self) -> usize {
        capacity(self.store.page_size())
    }

    /// Descends to the leaf for `key`, returning the inner-node path
    /// (root first) and the leaf id.
    fn descend(&self, key: u64) -> (Vec<PageId>, PageId) {
        let mut path = Vec::with_capacity(self.height);
        let mut id = self.root;
        loop {
            let node = Node::decode(self.store.read(id));
            if node.tag == TAG_LEAF {
                return (path, id);
            }
            path.push(id);
            id = node.route(key);
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let (_, leaf_id) = self.descend(key);
        let leaf = Node::decode(self.store.read(leaf_id));
        match self.policy {
            LeafPolicy::Sorted => leaf
                .entries
                .binary_search_by_key(&key, |e| e.0)
                .ok()
                .map(|i| leaf.entries[i].1),
            LeafPolicy::Append => leaf.entries.iter().find(|e| e.0 == key).map(|e| e.1),
        }
    }

    /// Inserts `key → value`; returns the previous value when the key
    /// already existed (overwritten in place).
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let (path, leaf_id) = self.descend(key);
        let mut leaf = Node::decode(self.store.read(leaf_id));

        // Overwrite in place: a single-entry write either way.
        if let Some(pos) = leaf.entries.iter().position(|e| e.0 == key) {
            let old = leaf.entries[pos].1;
            self.store.write(
                leaf_id,
                Node::entry_offset(pos),
                &Node::encode_entry(key, value),
            );
            return Some(old);
        }

        if leaf.entries.len() < self.max_entries() {
            match self.policy {
                LeafPolicy::Sorted => {
                    let pos = leaf.entries.partition_point(|e| e.0 < key);
                    leaf.entries.insert(pos, (key, value));
                    // Rewrite the shifted suffix and the count — the
                    // write-heavy path the append policy avoids.
                    let mut suffix = Vec::with_capacity((leaf.entries.len() - pos) * ENTRY);
                    for &(k, v) in &leaf.entries[pos..] {
                        suffix.extend_from_slice(&Node::encode_entry(k, v));
                    }
                    self.store.write(leaf_id, Node::entry_offset(pos), &suffix);
                }
                LeafPolicy::Append => {
                    let pos = leaf.entries.len();
                    leaf.entries.push((key, value));
                    self.store.write(
                        leaf_id,
                        Node::entry_offset(pos),
                        &Node::encode_entry(key, value),
                    );
                }
            }
            self.store
                .write(leaf_id, 2, &(leaf.entries.len() as u16).to_le_bytes());
            self.len += 1;
            return None;
        }

        // Split: sort (no-op for the sorted policy), halve, push the
        // separator up. Splits rewrite both pages fully — both policies
        // pay this; the append policy just pays it far less often per
        // cacheline than sorted insertion pays shifting.
        let mut all = leaf.entries.clone();
        all.push((key, value));
        all.sort_unstable_by_key(|e| e.0);
        let mid = all.len() / 2;
        let sep = all[mid].0;

        let right_id = self.store.alloc();
        let mut right = Node::leaf();
        right.entries = all.split_off(mid);
        right.link = leaf.link;
        let mut left = Node::leaf();
        left.entries = all;
        left.link = Some(right_id);

        let page_size = self.store.page_size();
        let left_bytes = left.encode(page_size);
        let right_bytes = right.encode(page_size);
        let used = |n: &Node| crate::node::HEADER + n.entries.len() * ENTRY;
        self.store.write(leaf_id, 0, &left_bytes[..used(&left)]);
        self.store.write(right_id, 0, &right_bytes[..used(&right)]);

        self.insert_into_parent(path, sep, leaf_id, right_id);
        self.len += 1;
        None
    }

    /// Inserts separator `sep` splitting `left_id`/`right_id` into the
    /// parent chain, splitting inner nodes as needed.
    fn insert_into_parent(
        &mut self,
        mut path: Vec<PageId>,
        sep: u64,
        left_id: PageId,
        right_id: PageId,
    ) {
        let Some(parent_id) = path.pop() else {
            // Root split: a new root with one separator.
            let new_root = self.store.alloc();
            let mut root = Node::inner(right_id);
            root.entries = vec![(sep, left_id as u64)];
            let bytes = root.encode(self.store.page_size());
            let used = crate::node::HEADER + ENTRY;
            self.store.write(new_root, 0, &bytes[..used]);
            self.root = new_root;
            self.height += 1;
            return;
        };

        let mut parent = Node::decode(self.store.read(parent_id));
        // Replace the old routing slot for `left_id` with `right_id` and
        // insert `(sep, left_id)` before it.
        if let Some(j) = parent.entries.iter().position(|e| e.1 == left_id as u64) {
            parent.entries[j].1 = right_id as u64;
            parent.entries.insert(j, (sep, left_id as u64));
        } else {
            debug_assert_eq!(
                parent.link,
                Some(left_id),
                "split child missing from parent"
            );
            parent.link = Some(right_id);
            parent.entries.push((sep, left_id as u64));
        }

        let page_size = self.store.page_size();
        if parent.entries.len() <= self.max_entries() {
            let bytes = parent.encode(page_size);
            let used = crate::node::HEADER + parent.entries.len() * ENTRY;
            self.store.write(parent_id, 0, &bytes[..used]);
            return;
        }

        // Inner split: promote the middle separator.
        let mid = parent.entries.len() / 2;
        let promoted = parent.entries[mid].0;
        let new_right_id = self.store.alloc();
        let mut new_right = Node::inner(parent.link.expect("inner has rightmost"));
        new_right.entries = parent.entries.split_off(mid + 1);
        let (.., mid_child) = parent.entries.pop().expect("mid entry exists");
        let mut new_left = Node::inner(mid_child as PageId);
        new_left.entries = parent.entries;

        let lb = new_left.encode(page_size);
        let rb = new_right.encode(page_size);
        let used = |n: &Node| crate::node::HEADER + n.entries.len() * ENTRY;
        self.store.write(parent_id, 0, &lb[..used(&new_left)]);
        self.store.write(new_right_id, 0, &rb[..used(&new_right)]);

        self.insert_into_parent(path, promoted, parent_id, new_right_id);
    }

    /// All `(key, value)` pairs with `start ≤ key ≤ end`, in key order.
    pub fn range(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        assert!(start <= end, "empty range {start}..={end}");
        let (_, mut leaf_id) = self.descend(start);
        let mut out = Vec::new();
        loop {
            let leaf = Node::decode(self.store.read(leaf_id));
            let mut entries = leaf.entries;
            if self.policy == LeafPolicy::Append {
                entries.sort_unstable_by_key(|e| e.0); // DRAM-side sort
            }
            let mut past_end = false;
            for (k, v) in entries {
                if k > end {
                    past_end = true;
                    break;
                }
                if k >= start {
                    out.push((k, v));
                }
            }
            if past_end {
                break;
            }
            match leaf.link {
                Some(next) => leaf_id = next,
                None => break,
            }
        }
        out
    }

    /// The device this tree charges.
    pub fn device(&self) -> &Pm {
        self.store.device()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::PmDevice;

    fn tree(policy: LeafPolicy) -> BPlusTree {
        let dev = PmDevice::paper_default();
        BPlusTree::new(&dev, 256, policy) // capacity 15: splits early
    }

    #[test]
    fn insert_get_round_trip_both_policies() {
        for policy in [LeafPolicy::Sorted, LeafPolicy::Append] {
            let mut t = tree(policy);
            for i in 0..500u64 {
                let key = (i * 7919) % 500; // scrambled unique keys
                assert_eq!(t.insert(key, key * 10), None, "{policy:?}");
            }
            assert_eq!(t.len(), 500);
            for key in 0..500u64 {
                assert_eq!(t.get(key), Some(key * 10), "{policy:?} key {key}");
            }
            assert_eq!(t.get(10_000), None);
        }
    }

    #[test]
    fn overwrite_returns_old_value() {
        for policy in [LeafPolicy::Sorted, LeafPolicy::Append] {
            let mut t = tree(policy);
            assert_eq!(t.insert(5, 1), None);
            assert_eq!(t.insert(5, 2), Some(1));
            assert_eq!(t.get(5), Some(2));
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn range_scan_is_sorted_and_complete() {
        for policy in [LeafPolicy::Sorted, LeafPolicy::Append] {
            let mut t = tree(policy);
            for i in 0..300u64 {
                t.insert((i * 13) % 300, i);
            }
            let r = t.range(50, 100);
            let keys: Vec<u64> = r.iter().map(|e| e.0).collect();
            assert_eq!(keys, (50..=100).collect::<Vec<_>>(), "{policy:?}");
            // Full range covers everything.
            assert_eq!(t.range(0, u64::MAX).len(), 300, "{policy:?}");
        }
    }

    #[test]
    fn tree_grows_in_height() {
        let mut t = tree(LeafPolicy::Sorted);
        for i in 0..2000u64 {
            t.insert(i, i);
        }
        assert!(t.height() >= 3, "height {}", t.height());
        assert!(t.pages() > 100);
        for i in (0..2000).step_by(97) {
            assert_eq!(t.get(i), Some(i));
        }
    }

    #[test]
    fn append_policy_writes_fewer_cachelines_than_sorted() {
        // Ascending insertion is the *best* case for sorted leaves; use
        // random order, the realistic index workload.
        let run = |policy| {
            let dev = PmDevice::paper_default();
            let mut t = BPlusTree::new(&dev, 1024, policy);
            let before = dev.snapshot();
            for i in 0..5000u64 {
                t.insert((i * 7919) % 5000, i);
            }
            dev.snapshot().since(&before).cl_writes
        };
        let sorted = run(LeafPolicy::Sorted);
        let append = run(LeafPolicy::Append);
        assert!(
            (append as f64) < 0.6 * sorted as f64,
            "append {append} vs sorted {sorted}"
        );
    }

    #[test]
    fn append_policy_same_read_cost_per_lookup() {
        // Lookups read whole pages either way; the policies differ only
        // in DRAM-side search.
        let run = |policy| {
            let dev = PmDevice::paper_default();
            let mut t = BPlusTree::new(&dev, 1024, policy);
            for i in 0..2000u64 {
                t.insert(i, i);
            }
            let before = dev.snapshot();
            for i in 0..2000u64 {
                t.get(i);
            }
            dev.snapshot().since(&before).cl_reads
        };
        assert_eq!(run(LeafPolicy::Sorted), run(LeafPolicy::Append));
    }

    #[test]
    fn empty_tree_behaves() {
        let t = tree(LeafPolicy::Sorted);
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert!(t.range(0, 100).is_empty());
    }
}
