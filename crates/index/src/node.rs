//! B⁺-tree node layout over raw page bytes.
//!
//! Both node kinds share a 16-byte header:
//!
//! ```text
//! offset 0   u8   node type (1 = leaf, 2 = inner)
//! offset 1   u8   padding
//! offset 2   u16  entry count
//! offset 4   u32  padding
//! offset 8   u64  leaf: next-leaf page id (+1, 0 = none)
//!                 inner: rightmost child page id
//! offset 16       entries, 16 bytes each:
//!                 leaf  (u64 key, u64 value)
//!                 inner (u64 separator key, u64 left child page id)
//! ```
//!
//! Inner-node semantics: entry `i` routes keys `< key_i` (and
//! `≥ key_{i-1}`) to `child_i`; keys `≥` the last separator go to the
//! rightmost child in the header.

use pmem_sim::PageId;

/// Byte offset where entries begin.
pub const HEADER: usize = 16;
/// Bytes per entry (two u64s).
pub const ENTRY: usize = 16;

/// Node type tag for leaves.
pub const TAG_LEAF: u8 = 1;
/// Node type tag for inner nodes.
pub const TAG_INNER: u8 = 2;

/// Entries that fit in a page of `page_size` bytes.
pub const fn capacity(page_size: usize) -> usize {
    (page_size - HEADER) / ENTRY
}

/// A decoded view of a node page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// `TAG_LEAF` or `TAG_INNER`.
    pub tag: u8,
    /// Number of entries.
    pub count: usize,
    /// Leaf: next-leaf link (`None` at the end of the chain).
    /// Inner: rightmost child.
    pub link: Option<PageId>,
    /// `(key, value-or-child)` pairs.
    pub entries: Vec<(u64, u64)>,
}

impl Node {
    /// Creates an empty leaf.
    pub fn leaf() -> Self {
        Self {
            tag: TAG_LEAF,
            count: 0,
            link: None,
            entries: Vec::new(),
        }
    }

    /// Creates an inner node with the given rightmost child.
    pub fn inner(rightmost: PageId) -> Self {
        Self {
            tag: TAG_INNER,
            count: 0,
            link: Some(rightmost),
            entries: Vec::new(),
        }
    }

    /// Decodes a node from page bytes.
    ///
    /// # Panics
    /// Panics on an unknown node tag (corrupt page).
    pub fn decode(bytes: &[u8]) -> Self {
        let tag = bytes[0];
        assert!(
            tag == TAG_LEAF || tag == TAG_INNER,
            "corrupt node tag {tag}"
        );
        let count = u16::from_le_bytes(bytes[2..4].try_into().expect("2 bytes")) as usize;
        let raw_link = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let link = match tag {
            TAG_LEAF => (raw_link != 0).then(|| (raw_link - 1) as PageId),
            _ => Some(raw_link as PageId),
        };
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = HEADER + i * ENTRY;
            let k = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
            let v = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().expect("8 bytes"));
            entries.push((k, v));
        }
        Self {
            tag,
            count,
            link,
            entries,
        }
    }

    /// Encodes the full node into a page-sized buffer.
    pub fn encode(&self, page_size: usize) -> Vec<u8> {
        let mut buf = vec![0u8; page_size];
        buf[0] = self.tag;
        buf[2..4].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        let raw_link = match self.tag {
            TAG_LEAF => self.link.map_or(0, |l| l as u64 + 1),
            _ => self
                .link
                .expect("inner nodes always have a rightmost child") as u64,
        };
        buf[8..16].copy_from_slice(&raw_link.to_le_bytes());
        for (i, (k, v)) in self.entries.iter().enumerate() {
            let off = HEADER + i * ENTRY;
            buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
            buf[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
        }
        buf
    }

    /// Encodes one entry (for targeted small writes).
    pub fn encode_entry(key: u64, value: u64) -> [u8; ENTRY] {
        let mut e = [0u8; ENTRY];
        e[..8].copy_from_slice(&key.to_le_bytes());
        e[8..].copy_from_slice(&value.to_le_bytes());
        e
    }

    /// Byte offset of entry `i`.
    pub fn entry_offset(i: usize) -> usize {
        HEADER + i * ENTRY
    }

    /// Routes `key` through an inner node: the child page to descend to.
    ///
    /// # Panics
    /// Panics on leaves.
    pub fn route(&self, key: u64) -> PageId {
        assert_eq!(self.tag, TAG_INNER, "routing through a leaf");
        for &(sep, child) in &self.entries {
            if key < sep {
                return child as PageId;
            }
        }
        self.link
            .expect("inner nodes always have a rightmost child")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trips() {
        let mut n = Node::leaf();
        n.entries = vec![(1, 10), (5, 50)];
        n.count = 2;
        n.link = Some(7);
        let decoded = Node::decode(&n.encode(256));
        assert_eq!(decoded.entries, n.entries);
        assert_eq!(decoded.link, Some(7));
        assert_eq!(decoded.tag, TAG_LEAF);
    }

    #[test]
    fn leaf_without_link_round_trips() {
        let n = Node::leaf();
        let decoded = Node::decode(&n.encode(256));
        assert_eq!(decoded.link, None);
    }

    #[test]
    fn inner_routes_by_separator() {
        let mut n = Node::inner(99);
        n.entries = vec![(10, 1), (20, 2)];
        n.count = 2;
        assert_eq!(n.route(5), 1);
        assert_eq!(n.route(10), 2);
        assert_eq!(n.route(15), 2);
        assert_eq!(n.route(20), 99);
        assert_eq!(n.route(1000), 99);
    }

    #[test]
    fn capacity_accounts_for_header() {
        assert_eq!(capacity(1024), 63);
        assert_eq!(capacity(256), 15);
    }
}
