//! # planner — write-aware cost-based query planning
//!
//! The paper's §4.2.3 knob optimizer picks a sort/join variant and its
//! write-intensity knob per *operator*; this crate lifts that choice to
//! whole *plans*. A [`LogicalPlan`] describes what to compute over
//! named Wisconsin tables (`scan / filter / sort / join / aggregate`);
//! the [`Planner`] enumerates, for every sort and join node, the full
//! algorithm field — ExMS/SegS/HybS/LaS/SelS and NLJ/GJ/HJ/HybJ/SegJ/
//! LaJ in both build orders — costs each candidate with the Eqs. 1–11
//! models (`write_limited::cost`) under the target medium's λ, DRAM
//! budget, and persistence layer, decides deferred-vs-materialized for
//! build-side filters with the §3.1 runtime rules
//! ([`wl_runtime::plan_verdict`]), and returns the cheapest
//! [`PhysicalPlan`] plus the whole candidate table as evidence.
//!
//! [`execute`] lowers the winning plan onto the Volcano operators of
//! `write_limited::exec` and runs it against `pmem_sim`, so predicted
//! cacheline reads/writes can be compared against measured ones — a
//! plan-level extension of the paper's Fig. 12 concordance experiment.
//! [`execute_naive`] is the DRAM reference oracle lowered plans must
//! agree with.
//!
//! ```
//! use planner::{Catalog, LogicalPlan, Planner, Predicate};
//! use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
//! use std::sync::Arc;
//!
//! let dev = PmDevice::paper_default();
//! let w = wisconsin::join_input(2_000, 4, 7);
//! let t = Arc::new(PCollection::from_records_uncounted(
//!     &dev, LayerKind::BlockedMemory, "T", w.left));
//! let v = Arc::new(PCollection::from_records_uncounted(
//!     &dev, LayerKind::BlockedMemory, "V", w.right));
//! let mut catalog = Catalog::new();
//! catalog.add_table("T", Arc::clone(&t), 2_000);
//! catalog.add_table("V", Arc::clone(&v), 2_000);
//!
//! let query = LogicalPlan::scan("T")
//!     .filter(Predicate::KeyBelow(1_000))
//!     .join(LogicalPlan::scan("V"))
//!     .aggregate();
//! let pool = BufferPool::new(200 * 80);
//! let planner = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory);
//! let planned = planner.plan(&query, &catalog).unwrap();
//!
//! let run = planner::execute(&planned, &catalog, &dev,
//!     LayerKind::BlockedMemory, &pool).unwrap();
//! assert_eq!(run.output.len(), 1_000); // 1000 surviving keys × 1 group
//! let reference = planner::execute_naive(&query, &catalog).unwrap();
//! assert_eq!(run.output.canonical(), reference.canonical());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod enumerate;
pub mod logical;
pub mod lower;
pub mod naive;
pub mod physical;
pub mod report;

pub use catalog::{Catalog, TableStats};
pub use enumerate::{Candidate, NodeChoice, PlanError, PlannedQuery, Planner, MAX_JOIN_RELATIONS};
pub use logical::{LogicalPlan, Predicate};
pub use lower::{
    execute, execute_stream, execute_stream_profiled, AdaptedPlan, ExecError, Executed,
    ExecutedStream, OutputRows, ResultSet, WisPair,
};
pub use naive::execute_naive;
pub use physical::{ChainSlots, Materialization, NodeCost, PhysicalPlan};
pub use report::{
    render_analyze, render_analyze_plan, render_choices, render_concordance,
    render_concordance_stats, render_plan,
};
