//! Costed physical plans: the enumerator's output, the executor's input.

use crate::logical::Predicate;
use wl_runtime::Rule;
use write_limited::cost::IoPrediction;
use write_limited::join::JoinAlgorithm;
use write_limited::sort::SortAlgorithm;

/// Whether a filter's output collection is produced on persistent
/// memory or kept as a deferred view re-filtered on each scan (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Materialization {
    /// The output is written once and read back.
    Materialized,
    /// The output is a view; each consumer scan re-filters the source.
    Deferred,
}

/// Payload-slot bookkeeping of a join that is part of an n-way chain
/// (≥ 3 base relations). Chain joins fold their pair output into flat
/// rows that carry one payload per base relation: relation `s` (its
/// position in the logical join order) lands in payload slot `s`. Each
/// side contributes either one slot (a base-relation leaf, whose records
/// still hold their payload in the native position) or several (a chain
/// join child, whose records are already slotted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSlots {
    /// Slots the logical left side contributes, in its own join order.
    pub left: Vec<usize>,
    /// Slots the logical right side contributes, in its own join order.
    pub right: Vec<usize>,
}

impl ChainSlots {
    /// Total number of base relations under this join.
    pub fn tables(&self) -> usize {
        self.left.len() + self.right.len()
    }
}

/// Per-node cost annotation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeCost {
    /// Predicted cacheline traffic of *this* node (inputs excluded).
    pub io: IoPrediction,
    /// Estimated output cardinality in rows.
    pub out_rows: f64,
    /// Estimated output size in buffers (cachelines).
    pub out_buffers: f64,
    /// Estimated number of distinct keys in the output (drives join
    /// cardinality and aggregation group counts).
    pub distinct_keys: f64,
}

/// A physical plan node: the logical operation plus the chosen
/// algorithm, knob settings, and materialization decisions.
#[derive(Clone, Debug)]
pub enum PhysicalPlan {
    /// Scan of a named base table.
    Scan {
        /// Catalog name.
        table: String,
        /// Cost annotation.
        cost: NodeCost,
    },
    /// Filter with a §3.1 materialization decision.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Key predicate.
        predicate: Predicate,
        /// Estimated selectivity.
        selectivity: f64,
        /// Materialize or defer the filtered collection.
        materialization: Materialization,
        /// The §3.1 rule that produced the decision, or `None` when the
        /// position in the plan structurally requires materialization
        /// (no deferred-view lowering exists for it).
        rule: Option<Rule>,
        /// Cost annotation.
        cost: NodeCost,
    },
    /// Sort with the chosen algorithm and knob.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Chosen algorithm (knobs inside).
        algo: SortAlgorithm,
        /// Cost annotation.
        cost: NodeCost,
    },
    /// Join with the chosen algorithm, knobs, and build-side order.
    Join {
        /// Build-side input as written in the logical plan.
        left: Box<PhysicalPlan>,
        /// Probe-side input as written in the logical plan.
        right: Box<PhysicalPlan>,
        /// Chosen algorithm (knobs inside).
        algo: JoinAlgorithm,
        /// True when the enumerator swapped build and probe sides
        /// (the physical build side is the logical `right`).
        swapped: bool,
        /// `Some` when this join is part of an n-way chain and folds its
        /// pair output into slotted flat rows; `None` for the classic
        /// two-way join delivering pairs.
        chain: Option<ChainSlots>,
        /// Hot keys a cardinality-guided join keeps resident (the
        /// catalog heavy hitters of both sides); empty for every other
        /// algorithm.
        hot: Vec<u64>,
        /// True when this node was produced by mid-plan re-planning
        /// after an observed cardinality drifted from its estimate.
        replanned: bool,
        /// Cost annotation.
        cost: NodeCost,
    },
    /// Sort-based aggregation at write intensity `x`.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Write intensity handed to the underlying segment sort.
        x: f64,
        /// Cost annotation.
        cost: NodeCost,
    },
}

impl PhysicalPlan {
    /// This node's cost annotation.
    pub fn cost(&self) -> &NodeCost {
        match self {
            PhysicalPlan::Scan { cost, .. }
            | PhysicalPlan::Filter { cost, .. }
            | PhysicalPlan::Sort { cost, .. }
            | PhysicalPlan::Join { cost, .. }
            | PhysicalPlan::Aggregate { cost, .. } => cost,
        }
    }

    /// Total predicted traffic of the subtree rooted here.
    pub fn total_io(&self) -> IoPrediction {
        let own = self.cost().io;
        match self {
            PhysicalPlan::Scan { .. } => own,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Aggregate { input, .. } => own.plus(input.total_io()),
            PhysicalPlan::Join { left, right, .. } => {
                own.plus(left.total_io()).plus(right.total_io())
            }
        }
    }

    /// Direct children, left before right — the same order execution
    /// evaluates them, so a profile's span tree lines up with a
    /// pre-order walk of the plan.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::Scan { .. } => Vec::new(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Aggregate { input, .. } => vec![input],
            PhysicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// One-line label of this node's operation and choice.
    pub fn label(&self) -> String {
        match self {
            PhysicalPlan::Scan { table, .. } => format!("scan {table}"),
            PhysicalPlan::Filter {
                predicate,
                materialization,
                ..
            } => {
                let m = match materialization {
                    Materialization::Materialized => "materialized",
                    Materialization::Deferred => "deferred",
                };
                format!("filter [{}] ({m})", predicate.describe())
            }
            PhysicalPlan::Sort { algo, .. } => format!("sort via {}", algo.label()),
            PhysicalPlan::Join {
                algo,
                swapped,
                chain,
                replanned,
                ..
            } => {
                let mut out = format!("join via {}", algo.label());
                if *swapped {
                    out.push_str(" (sides swapped)");
                }
                if let Some(slots) = chain {
                    out.push_str(&format!(
                        " (fold {:?} + {:?})",
                        slots.left.as_slice(),
                        slots.right.as_slice()
                    ));
                }
                if *replanned {
                    out.push_str(" (re-planned)");
                }
                out
            }
            PhysicalPlan::Aggregate { x, .. } => format!("aggregate (x = {x:.2})"),
        }
    }

    /// Indented tree rendering with per-node predicted traffic.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_into(&mut out, 0);
        out
    }

    fn describe_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let c = self.cost();
        out.push_str(&format!(
            "{pad}{}  [~{:.0} rows, {:.0}r/{:.0}w buffers]\n",
            self.label(),
            c.out_rows,
            c.io.reads,
            c.io.writes,
        ));
        match self {
            PhysicalPlan::Scan { .. } => {}
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Aggregate { input, .. } => input.describe_into(out, depth + 1),
            PhysicalPlan::Join { left, right, .. } => {
                left.describe_into(out, depth + 1);
                right.describe_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(reads: f64) -> PhysicalPlan {
        PhysicalPlan::Scan {
            table: "T".into(),
            cost: NodeCost {
                io: IoPrediction { reads, writes: 0.0 },
                out_rows: 10.0,
                out_buffers: 13.0,
                distinct_keys: 10.0,
            },
        }
    }

    #[test]
    fn total_io_sums_subtrees() {
        let join = PhysicalPlan::Join {
            left: Box::new(leaf(100.0)),
            right: Box::new(leaf(200.0)),
            algo: JoinAlgorithm::GJ,
            swapped: false,
            chain: None,
            hot: Vec::new(),
            replanned: false,
            cost: NodeCost {
                io: IoPrediction {
                    reads: 600.0,
                    writes: 300.0,
                },
                out_rows: 100.0,
                out_buffers: 250.0,
                distinct_keys: 10.0,
            },
        };
        let total = join.total_io();
        assert_eq!(total.reads, 900.0);
        assert_eq!(total.writes, 300.0);
        assert_eq!(total.cost_units(15.0), 900.0 + 15.0 * 300.0);
    }

    #[test]
    fn labels_cover_choices() {
        assert_eq!(leaf(1.0).label(), "scan T");
        let sort = PhysicalPlan::Sort {
            input: Box::new(leaf(1.0)),
            algo: SortAlgorithm::SegS { x: 0.25 },
            cost: *leaf(1.0).cost(),
        };
        assert_eq!(sort.label(), "sort via SegS, 25%");
        assert!(sort.describe().contains("scan T"));
    }
}
