//! The logical-plan DSL: what to compute, with no algorithm choices.
//!
//! A [`LogicalPlan`] is a small relational tree over named base tables —
//! `scan / filter / sort / join / aggregate` — annotated with enough
//! information (predicates with derivable selectivities) for the
//! enumerator to estimate cardinalities. Algorithms, knobs (`x`, `d`),
//! and materialization decisions belong to the physical plan.

use wisconsin::Record;

/// A key predicate with a derivable selectivity estimate.
///
/// Predicates are expressed over the record *key* so one filter applies
/// uniformly to base records, join pairs (keyed by the join key), and
/// aggregate groups.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Predicate {
    /// `key < bound`.
    KeyBelow(u64),
    /// `key >= bound`.
    KeyAtLeast(u64),
    /// `key % modulus == residue`.
    KeyModEq {
        /// Modulus of the congruence.
        modulus: u64,
        /// Expected residue.
        residue: u64,
    },
}

impl Predicate {
    /// Evaluates the predicate on a record.
    pub fn matches<R: Record>(&self, record: &R) -> bool {
        let key = record.key();
        match self {
            Predicate::KeyBelow(b) => key < *b,
            Predicate::KeyAtLeast(b) => key >= *b,
            Predicate::KeyModEq { modulus, residue } => key % modulus == *residue,
        }
    }

    /// Selectivity estimate under uniform keys in `[0, key_domain)`.
    pub fn selectivity(&self, key_domain: u64) -> f64 {
        if key_domain == 0 {
            return 1.0;
        }
        let d = key_domain as f64;
        match self {
            Predicate::KeyBelow(b) => ((*b).min(key_domain) as f64 / d).clamp(0.0, 1.0),
            Predicate::KeyAtLeast(b) => {
                ((key_domain.saturating_sub(*b)) as f64 / d).clamp(0.0, 1.0)
            }
            Predicate::KeyModEq { modulus, .. } => 1.0 / (*modulus).max(1) as f64,
        }
    }

    /// Short display form, e.g. `key < 5000`.
    pub fn describe(&self) -> String {
        match self {
            Predicate::KeyBelow(b) => format!("key < {b}"),
            Predicate::KeyAtLeast(b) => format!("key >= {b}"),
            Predicate::KeyModEq { modulus, residue } => format!("key % {modulus} == {residue}"),
        }
    }
}

/// A logical query plan node.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalPlan {
    /// Scan a named base table.
    Scan {
        /// Catalog name of the table.
        table: String,
    },
    /// Keep records matching the predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Key predicate.
        predicate: Predicate,
    },
    /// Order the input by key.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Equi-join the two inputs on their keys.
    Join {
        /// Build-side input.
        left: Box<LogicalPlan>,
        /// Probe-side input.
        right: Box<LogicalPlan>,
    },
    /// Group by key, aggregating the payload attribute (count, sum,
    /// min, max per group).
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Starts a plan with a base-table scan.
    pub fn scan(table: impl Into<String>) -> Self {
        LogicalPlan::Scan {
            table: table.into(),
        }
    }

    /// Filters this plan's output.
    #[must_use]
    pub fn filter(self, predicate: Predicate) -> Self {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Sorts this plan's output by key.
    #[must_use]
    pub fn sort(self) -> Self {
        LogicalPlan::Sort {
            input: Box::new(self),
        }
    }

    /// Joins this plan (build side) with `right` (probe side) on key.
    #[must_use]
    pub fn join(self, right: LogicalPlan) -> Self {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Aggregates this plan's output by key.
    #[must_use]
    pub fn aggregate(self) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(self),
        }
    }

    /// Indented tree rendering.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_into(&mut out, 0);
        out
    }

    fn describe_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table } => out.push_str(&format!("{pad}scan {table}\n")),
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}filter [{}]\n", predicate.describe()));
                input.describe_into(out, depth + 1);
            }
            LogicalPlan::Sort { input } => {
                out.push_str(&format!("{pad}sort\n"));
                input.describe_into(out, depth + 1);
            }
            LogicalPlan::Join { left, right } => {
                out.push_str(&format!("{pad}join\n"));
                left.describe_into(out, depth + 1);
                right.describe_into(out, depth + 1);
            }
            LogicalPlan::Aggregate { input } => {
                out.push_str(&format!("{pad}aggregate\n"));
                input.describe_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisconsin::WisconsinRecord;

    #[test]
    fn predicates_match_and_estimate() {
        let r = WisconsinRecord::from_key(10);
        assert!(Predicate::KeyBelow(11).matches(&r));
        assert!(!Predicate::KeyBelow(10).matches(&r));
        assert!(Predicate::KeyAtLeast(10).matches(&r));
        assert!(Predicate::KeyModEq {
            modulus: 5,
            residue: 0
        }
        .matches(&r));

        assert!((Predicate::KeyBelow(50).selectivity(100) - 0.5).abs() < 1e-12);
        assert!((Predicate::KeyAtLeast(75).selectivity(100) - 0.25).abs() < 1e-12);
        assert!(
            (Predicate::KeyModEq {
                modulus: 4,
                residue: 1
            }
            .selectivity(100)
                - 0.25)
                .abs()
                < 1e-12
        );
        // Out-of-domain bounds clamp.
        assert_eq!(Predicate::KeyBelow(500).selectivity(100), 1.0);
        assert_eq!(Predicate::KeyAtLeast(500).selectivity(100), 0.0);
    }

    #[test]
    fn builder_produces_the_expected_tree() {
        let plan = LogicalPlan::scan("T")
            .filter(Predicate::KeyBelow(5000))
            .join(LogicalPlan::scan("V"))
            .aggregate()
            .sort();
        let rendered = plan.describe();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "sort");
        assert_eq!(lines[1], "  aggregate");
        assert_eq!(lines[2], "    join");
        assert_eq!(lines[3].trim(), "filter [key < 5000]");
        assert_eq!(lines[4].trim(), "scan T");
        assert_eq!(lines[5].trim(), "scan V");
    }
}
