//! Reference executor: evaluates a *logical* plan directly in DRAM,
//! without the cost simulator, algorithms, or knobs. Lowered plans must
//! produce exactly these rows — the planner's correctness oracle.

use crate::catalog::Catalog;
use crate::enumerate::{collect_join_leaves, PlanError};
use crate::logical::LogicalPlan;
use crate::lower::{fold_pair, ExecError, OutputRows};
use std::collections::BTreeMap;
use wisconsin::{Record, WisconsinRecord};
use write_limited::agg::GroupAgg;

/// Evaluates `logical` over the catalog's bound tables in DRAM.
///
/// # Errors
/// Returns [`ExecError`] for unknown/unbound tables or shapes outside
/// the supported algebra (joins over non-base inputs, nested
/// aggregates).
pub fn execute_naive(logical: &LogicalPlan, catalog: &Catalog) -> Result<OutputRows, ExecError> {
    eval(logical, catalog)
}

fn eval(logical: &LogicalPlan, catalog: &Catalog) -> Result<OutputRows, ExecError> {
    match logical {
        LogicalPlan::Scan { table } => {
            let col = catalog
                .data(table)
                .ok_or_else(|| ExecError::MissingData(table.clone()))?;
            Ok(OutputRows::Wis(col.to_vec_uncounted()))
        }
        LogicalPlan::Filter { input, predicate } => {
            let rows = eval(input, catalog)?;
            Ok(match rows {
                OutputRows::Wis(v) => {
                    OutputRows::Wis(v.into_iter().filter(|r| predicate.matches(r)).collect())
                }
                OutputRows::Pairs(v) => OutputRows::Pairs(
                    v.into_iter()
                        .filter(|(l, _)| predicate.matches(l))
                        .collect(),
                ),
                OutputRows::Multi { rows, tables } => OutputRows::Multi {
                    rows: rows.into_iter().filter(|r| predicate.matches(r)).collect(),
                    tables,
                },
                OutputRows::Groups(v) => {
                    OutputRows::Groups(v.into_iter().filter(|g| predicate.matches(g)).collect())
                }
            })
        }
        LogicalPlan::Sort { input } => {
            let rows = eval(input, catalog)?;
            Ok(match rows {
                OutputRows::Wis(mut v) => {
                    v.sort_by_key(Record::key);
                    OutputRows::Wis(v)
                }
                OutputRows::Pairs(mut v) => {
                    v.sort_by_key(|(l, _)| l.key());
                    OutputRows::Pairs(v)
                }
                OutputRows::Multi { mut rows, tables } => {
                    rows.sort_by_key(Record::key);
                    OutputRows::Multi { rows, tables }
                }
                OutputRows::Groups(mut v) => {
                    v.sort_by_key(|g| g.key);
                    OutputRows::Groups(v)
                }
            })
        }
        LogicalPlan::Join { left, right } => {
            let mut leaves = Vec::new();
            collect_join_leaves(logical, &mut leaves);
            if leaves.len() > 2 {
                return eval_chain(&leaves, catalog);
            }
            let (OutputRows::Wis(l), OutputRows::Wis(r)) =
                (eval(left, catalog)?, eval(right, catalog)?)
            else {
                return Err(ExecError::Plan(PlanError::Unsupported(
                    "join inputs must produce base records".into(),
                )));
            };
            let mut by_key: BTreeMap<u64, Vec<WisconsinRecord>> = BTreeMap::new();
            for rec in &l {
                by_key.entry(rec.key()).or_default().push(*rec);
            }
            let mut out = Vec::new();
            for probe in &r {
                if let Some(matches) = by_key.get(&probe.key()) {
                    for build in matches {
                        out.push((*build, *probe));
                    }
                }
            }
            Ok(OutputRows::Pairs(out))
        }
        LogicalPlan::Aggregate { input } => {
            let rows = eval(input, catalog)?;
            let kv: Vec<(u64, u64)> = match rows {
                OutputRows::Wis(v) => v.iter().map(|r| (r.key(), r.payload())).collect(),
                OutputRows::Pairs(v) => v.iter().map(|(l, r)| (l.key(), r.payload())).collect(),
                // Last-joined relation's payload, as in the lowered path.
                OutputRows::Multi { rows, tables } => {
                    rows.iter().map(|r| (r.key(), r.attrs[tables])).collect()
                }
                OutputRows::Groups(_) => {
                    return Err(ExecError::Plan(PlanError::Unsupported(
                        "aggregate over aggregate".into(),
                    )))
                }
            };
            let mut groups: BTreeMap<u64, GroupAgg> = BTreeMap::new();
            for (k, v) in kv {
                groups
                    .entry(k)
                    .and_modify(|g| g.fold(v))
                    .or_insert_with(|| GroupAgg::seed(k, v));
            }
            Ok(OutputRows::Groups(groups.into_values().collect()))
        }
    }
}

/// Evaluates an n-way (≥ 3 relation) join subtree: hash-joins the
/// relation leaves left-deep in logical order, folding each match into a
/// slotted chain row with the same [`fold_pair`] the lowered path uses —
/// so rows agree bit-for-bit with any join order the DP picks.
fn eval_chain(leaves: &[&LogicalPlan], catalog: &Catalog) -> Result<OutputRows, ExecError> {
    let n = leaves.len();
    let mut acc: Vec<WisconsinRecord> = Vec::new();
    let mut acc_slots: Vec<usize> = vec![0];
    for (i, leaf) in leaves.iter().enumerate() {
        let OutputRows::Wis(rows) = eval(leaf, catalog)? else {
            return Err(ExecError::Plan(PlanError::Unsupported(
                "join inputs must produce base records".into(),
            )));
        };
        if i == 0 {
            acc = rows;
            continue;
        }
        let mut by_key: BTreeMap<u64, Vec<WisconsinRecord>> = BTreeMap::new();
        for rec in &acc {
            by_key.entry(rec.key()).or_default().push(*rec);
        }
        let mut out = Vec::new();
        for probe in &rows {
            if let Some(matches) = by_key.get(&probe.key()) {
                for build in matches {
                    out.push(fold_pair(build, &acc_slots, probe, &[i]));
                }
            }
        }
        acc = out;
        acc_slots.push(i);
    }
    Ok(OutputRows::Multi {
        rows: acc,
        tables: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::Predicate;
    use pmem_sim::{LayerKind, PCollection, PmDevice};

    #[test]
    fn naive_join_aggregate_counts_fanout() {
        let dev = PmDevice::paper_default();
        let w = wisconsin::join_input(20, 3, 1);
        let left = std::sync::Arc::new(PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            w.left,
        ));
        let right = std::sync::Arc::new(PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "V",
            w.right,
        ));
        let mut cat = Catalog::new();
        cat.add_table("T", left, 20);
        cat.add_table("V", right, 20);

        let logical = LogicalPlan::scan("T")
            .join(LogicalPlan::scan("V"))
            .aggregate();
        let out = execute_naive(&logical, &cat).expect("evaluates");
        let OutputRows::Groups(groups) = out else {
            panic!("expected groups")
        };
        assert_eq!(groups.len(), 20);
        assert!(groups.iter().all(|g| g.count == 3));
    }

    #[test]
    fn naive_filter_sort_orders_survivors() {
        let dev = PmDevice::paper_default();
        let input = std::sync::Arc::new(PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            wisconsin::sort_input(100, wisconsin::KeyOrder::Random, 3),
        ));
        let mut cat = Catalog::new();
        cat.add_table("T", input, 100);
        let logical = LogicalPlan::scan("T")
            .filter(Predicate::KeyBelow(40))
            .sort();
        let out = execute_naive(&logical, &cat).expect("evaluates");
        assert_eq!(out.len(), 40);
        assert_eq!(out.keys(), (0..40).collect::<Vec<_>>());
    }
}
