//! Table metadata the planner estimates from and the executor binds to.
//!
//! A [`Catalog`] names Wisconsin-style base tables and carries the two
//! things the planner needs per table: cardinality statistics (rows,
//! record width, key domain) and — when the catalog is built for
//! execution rather than pure planning — a shared handle to the actual
//! persistent collection. Bound tables are held as
//! [`Arc<PCollection>`](std::sync::Arc), so a catalog is `Clone` and
//! free of borrowed lifetimes: a database facade can own the base
//! tables, hand cheap catalog snapshots to concurrent sessions, and let
//! result streams outlive the call that produced them.

use pmem_sim::{PCollection, CACHELINE};
use std::collections::BTreeMap;
use std::sync::Arc;
use wisconsin::WisconsinRecord;
use write_limited::stats::TableStatistics;

/// Statistics of one base table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableStats {
    /// Number of records.
    pub rows: u64,
    /// Record width in bytes.
    pub record_bytes: usize,
    /// Size of the key domain; keys are assumed uniform in
    /// `[0, key_domain)`. For Wisconsin permutation inputs this equals
    /// `rows` (unique keys).
    pub key_domain: u64,
}

impl TableStats {
    /// Stats for a Wisconsin permutation table of `rows` records
    /// (80-byte records, unique keys).
    pub fn wisconsin(rows: u64) -> Self {
        Self {
            rows,
            record_bytes: wisconsin::WISCONSIN_ATTRS * 8,
            key_domain: rows,
        }
    }

    /// Table size in the paper's buffer units (cachelines).
    pub fn buffers(&self) -> f64 {
        (self.rows as f64 * self.record_bytes as f64 / CACHELINE as f64).ceil()
    }
}

/// One catalog entry: stats plus, optionally, the bound data and the
/// ingest-time skew statistics (sketch, histogram, heavy hitters).
#[derive(Clone, Debug)]
struct Table {
    stats: TableStats,
    data: Option<Arc<PCollection<WisconsinRecord>>>,
    statistics: Option<Arc<TableStatistics>>,
}

/// Named base tables with statistics and (optionally) bound collections.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table by statistics only (planning without data).
    pub fn add_stats(&mut self, name: impl Into<String>, stats: TableStats) {
        self.tables.insert(
            name.into(),
            Table {
                stats,
                data: None,
                statistics: None,
            },
        );
    }

    /// Registers a table bound to a collection; rows and width are taken
    /// from the collection, the key domain from `key_domain`. No skew
    /// statistics are attached — estimates fall back to the uniform-key
    /// assumption (see [`Catalog::add_table_with_statistics`]).
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        data: Arc<PCollection<WisconsinRecord>>,
        key_domain: u64,
    ) {
        self.install(name, data, key_domain, None);
    }

    /// [`Catalog::add_table`] plus ingest-time skew statistics the
    /// planner's selectivity and join-cardinality estimates consume.
    pub fn add_table_with_statistics(
        &mut self,
        name: impl Into<String>,
        data: Arc<PCollection<WisconsinRecord>>,
        key_domain: u64,
        statistics: Arc<TableStatistics>,
    ) {
        self.install(name, data, key_domain, Some(statistics));
    }

    fn install(
        &mut self,
        name: impl Into<String>,
        data: Arc<PCollection<WisconsinRecord>>,
        key_domain: u64,
        statistics: Option<Arc<TableStatistics>>,
    ) {
        let stats = TableStats {
            rows: data.len() as u64,
            record_bytes: wisconsin::WISCONSIN_ATTRS * 8,
            key_domain,
        };
        self.tables.insert(
            name.into(),
            Table {
                stats,
                data: Some(data),
                statistics,
            },
        );
    }

    /// Removes a table; returns whether it was registered.
    pub fn remove(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some()
    }

    /// The table's statistics, if registered.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name).map(|t| &t.stats)
    }

    /// The table's bound collection, if registered with data.
    pub fn data(&self, name: &str) -> Option<&Arc<PCollection<WisconsinRecord>>> {
        self.tables.get(name).and_then(|t| t.data.as_ref())
    }

    /// The table's ingest-time skew statistics, if any were attached.
    pub fn statistics(&self, name: &str) -> Option<&Arc<TableStatistics>> {
        self.tables.get(name).and_then(|t| t.statistics.as_ref())
    }

    /// Registered table names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Iterates all bound tables in name order: `(name, stats, data)`.
    /// Stats-only entries are skipped — checkpointing and other
    /// whole-database walks only care about tables that hold rows.
    pub fn bound_entries(
        &self,
    ) -> impl Iterator<Item = (&str, &TableStats, &Arc<PCollection<WisconsinRecord>>)> {
        self.tables
            .iter()
            .filter_map(|(name, t)| Some((name.as_str(), &t.stats, t.data.as_ref()?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{LayerKind, PmDevice};

    #[test]
    fn wisconsin_stats_buffer_math() {
        let s = TableStats::wisconsin(1000);
        // 1000 × 80 B = 80 000 B = 1250 cachelines.
        assert_eq!(s.buffers(), 1250.0);
        assert_eq!(s.key_domain, 1000);
    }

    #[test]
    fn bound_tables_expose_stats_and_data() {
        let dev = PmDevice::paper_default();
        let col = Arc::new(PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            (0..50).map(WisconsinRecord::from_key),
        ));
        let mut cat = Catalog::new();
        cat.add_table("T", Arc::clone(&col), 50);
        assert_eq!(cat.stats("T").unwrap().rows, 50);
        assert!(cat.data("T").is_some());
        assert!(cat.stats("missing").is_none());
        assert_eq!(cat.names(), vec!["T"]);
        // Catalogs are cheap snapshots: clones share the bound data.
        let snapshot = cat.clone();
        assert!(Arc::ptr_eq(snapshot.data("T").unwrap(), &col));
        assert!(cat.remove("T"));
        assert!(!cat.remove("T"));
        assert!(snapshot.data("T").is_some());
    }

    #[test]
    fn attached_statistics_survive_catalog_snapshots() {
        let dev = PmDevice::paper_default();
        let keys: Vec<u64> = (0..100).map(|i| i % 10).collect();
        let col = Arc::new(PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            keys.iter().map(|&k| WisconsinRecord::from_key(k)),
        ));
        let statistics = Arc::new(TableStatistics::build(&keys, 7));
        let mut cat = Catalog::new();
        cat.add_table_with_statistics("T", col, 10, Arc::clone(&statistics));
        cat.add_stats("S", TableStats::wisconsin(10));
        let snapshot = cat.clone();
        let got = snapshot.statistics("T").expect("attached");
        assert!(Arc::ptr_eq(got, &statistics));
        assert_eq!(got.rows(), 100.0);
        assert!(snapshot.statistics("S").is_none(), "stats-only entry");
        assert!(snapshot.statistics("missing").is_none());
    }

    #[test]
    fn stats_only_tables_have_no_data() {
        let mut cat = Catalog::new();
        cat.add_stats("S", TableStats::wisconsin(10));
        assert!(cat.data("S").is_none());
        assert_eq!(cat.stats("S").unwrap().buffers(), 13.0);
    }

    #[test]
    fn bound_entries_walks_bound_tables_in_name_order() {
        let dev = PmDevice::paper_default();
        let col = |n: u64| {
            Arc::new(PCollection::from_records_uncounted(
                &dev,
                LayerKind::BlockedMemory,
                "t",
                (0..n).map(WisconsinRecord::from_key),
            ))
        };
        let mut cat = Catalog::new();
        cat.add_table("b", col(3), 3);
        cat.add_table("a", col(5), 5);
        cat.add_stats("stats_only", TableStats::wisconsin(7));
        let seen: Vec<(&str, u64)> = cat
            .bound_entries()
            .map(|(name, stats, data)| {
                assert_eq!(stats.rows, data.len() as u64);
                (name, stats.rows)
            })
            .collect();
        assert_eq!(seen, vec![("a", 5), ("b", 3)]);
    }
}
