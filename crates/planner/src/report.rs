//! Human-readable planning and concordance reports.

use crate::enumerate::PlannedQuery;
use crate::lower::Executed;
use pmem_sim::LatencyProfile;

/// Renders the per-node candidate tables: every alternative the
/// enumerator costed, cheapest first, with the winner marked.
pub fn render_choices(planned: &PlannedQuery) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "candidates at λ = {}, M = {:.0} buffers:\n",
        planned.lambda, planned.m_buffers
    ));
    for choice in &planned.choices {
        out.push_str(&format!("  {}\n", choice.node));
        for cand in &choice.candidates {
            let marker = if cand.label == choice.chosen {
                "→"
            } else {
                " "
            };
            out.push_str(&format!(
                "   {marker} {:<28} {:>14.0} units  ({:.0}r / {:.0}w)\n",
                cand.label, cand.cost_units, cand.io.reads, cand.io.writes
            ));
        }
    }
    out
}

/// Renders the chosen physical plan tree.
pub fn render_plan(planned: &PlannedQuery) -> String {
    format!("chosen plan:\n{}", indent(&planned.plan.describe(), 2))
}

/// Renders predicted vs measured cacheline traffic for one execution —
/// the plan-level Fig. 12 concordance row.
pub fn render_concordance(
    planned: &PlannedQuery,
    executed: &Executed,
    latency: &LatencyProfile,
) -> String {
    render_concordance_stats(planned, &executed.stats, latency)
}

/// [`render_concordance`] from raw measured traffic — the form streaming
/// consumers (which never materialize an [`Executed`]) use.
pub fn render_concordance_stats(
    planned: &PlannedQuery,
    measured: &pmem_sim::IoStats,
    latency: &LatencyProfile,
) -> String {
    let p = planned.predicted;
    let m = measured;
    let ratio = |pred: f64, meas: u64| {
        if meas == 0 {
            if pred == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            pred / meas as f64
        }
    };
    let pred_units = p.cost_units(planned.lambda);
    let meas_units = m.cl_reads as f64 + planned.lambda * m.cl_writes as f64;
    format!(
        "predicted vs measured (cachelines):\n\
         \x20 reads   {:>12.0} predicted   {:>12} measured   ({:.2}x)\n\
         \x20 writes  {:>12.0} predicted   {:>12} measured   ({:.2}x)\n\
         \x20 cost    {:>12.0} predicted   {:>12.0} measured   ({:.2}x)  [{:.3}s simulated]\n",
        p.reads,
        m.cl_reads,
        ratio(p.reads, m.cl_reads),
        p.writes,
        m.cl_writes,
        ratio(p.writes, m.cl_writes),
        pred_units,
        meas_units,
        if meas_units > 0.0 {
            pred_units / meas_units
        } else {
            1.0
        },
        m.time_secs(latency),
    )
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines().map(|l| format!("{pad}{l}\n")).collect::<String>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, TableStats};
    use crate::enumerate::Planner;
    use crate::logical::LogicalPlan;
    use pmem_sim::LayerKind;

    #[test]
    fn choice_report_marks_the_winner() {
        let mut cat = Catalog::new();
        cat.add_stats("T", TableStats::wisconsin(10_000));
        let planned = Planner::new(15.0, 625.0, LayerKind::BlockedMemory)
            .plan(&LogicalPlan::scan("T").sort(), &cat)
            .expect("plans");
        let report = render_choices(&planned);
        assert!(report.contains("→"));
        assert!(report.contains("ExMS"));
        let plan_report = render_plan(&planned);
        assert!(plan_report.contains("sort via"));
        assert!(plan_report.contains("scan T"));
    }
}
