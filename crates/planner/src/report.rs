//! Human-readable planning and concordance reports.

use crate::enumerate::PlannedQuery;
use crate::lower::Executed;
use pmem_sim::LatencyProfile;

/// Renders the per-node candidate tables: every alternative the
/// enumerator costed, cheapest first, with the winner marked.
pub fn render_choices(planned: &PlannedQuery) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "candidates at λ = {}, M = {:.0} buffers:\n",
        planned.lambda, planned.m_buffers
    ));
    for choice in &planned.choices {
        out.push_str(&format!("  {}\n", choice.node));
        for cand in &choice.candidates {
            let marker = if cand.label == choice.chosen {
                "→"
            } else {
                " "
            };
            out.push_str(&format!(
                "   {marker} {:<28} {:>14.0} units  ({:.0}r / {:.0}w)\n",
                cand.label, cand.cost_units, cand.io.reads, cand.io.writes
            ));
        }
    }
    out
}

/// Renders the chosen physical plan tree.
pub fn render_plan(planned: &PlannedQuery) -> String {
    format!("chosen plan:\n{}", indent(&planned.plan.describe(), 2))
}

/// Renders predicted vs measured cacheline traffic for one execution —
/// the plan-level Fig. 12 concordance row.
pub fn render_concordance(
    planned: &PlannedQuery,
    executed: &Executed,
    latency: &LatencyProfile,
) -> String {
    render_concordance_stats(planned, &executed.stats, latency)
}

/// [`render_concordance`] from raw measured traffic — the form streaming
/// consumers (which never materialize an [`Executed`]) use.
pub fn render_concordance_stats(
    planned: &PlannedQuery,
    measured: &pmem_sim::IoStats,
    latency: &LatencyProfile,
) -> String {
    let p = planned.predicted;
    let m = measured;
    let ratio = |pred: f64, meas: u64| {
        if meas == 0 {
            if pred == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            pred / meas as f64
        }
    };
    let pred_units = p.cost_units(planned.lambda);
    let meas_units = m.cl_reads as f64 + planned.lambda * m.cl_writes as f64;
    format!(
        "predicted vs measured (cachelines):\n\
         \x20 reads   {:>12.0} predicted   {:>12} measured   ({:.2}x)\n\
         \x20 writes  {:>12.0} predicted   {:>12} measured   ({:.2}x)\n\
         \x20 cost    {:>12.0} predicted   {:>12.0} measured   ({:.2}x)  [{:.3}s simulated]\n",
        p.reads,
        m.cl_reads,
        ratio(p.reads, m.cl_reads),
        p.writes,
        m.cl_writes,
        ratio(p.writes, m.cl_writes),
        pred_units,
        meas_units,
        if meas_units > 0.0 {
            pred_units / meas_units
        } else {
            1.0
        },
        m.time_secs(latency),
    )
}

/// Renders the physical plan annotated per node with measured rows,
/// measured-vs-predicted cacheline traffic, simulated time, and host
/// wall time — the `EXPLAIN ANALYZE` body. `profile` is the span tree a
/// profiled execution recorded ([`crate::lower::execute_stream_profiled`]);
/// its plan-node spans carry the same labels as the plan, so the two
/// trees are walked in lock-step. Per-node traffic and simulated time
/// are *exclusive* of plan children (matching the per-node predictions,
/// which exclude inputs) but inclusive of the node's own operator
/// phases and worker tasks; wall time is inclusive.
pub fn render_analyze(
    planned: &PlannedQuery,
    profile: &pmem_sim::SpanNode,
    latency: &LatencyProfile,
) -> String {
    render_analyze_plan(&planned.plan, profile, latency)
}

/// [`render_analyze`] over an explicit plan tree — the form adaptive
/// executions use, where the plan that ran (re-planned subtree spliced
/// in) differs from the plan the enumerator chose up front.
pub fn render_analyze_plan(
    plan: &crate::physical::PhysicalPlan,
    profile: &pmem_sim::SpanNode,
    latency: &LatencyProfile,
) -> String {
    let mut out =
        String::from("analyzed plan (node traffic excludes inputs; wall is inclusive):\n");
    // The profile root is the "query" frame wrapping the plan-root span.
    match profile.find(&plan.label()) {
        Some(root_span) => analyze_into(plan, root_span, profile, latency, 1, &mut out),
        None => analyze_missing(plan, 1, &mut out),
    }
    out
}

fn io_minus(a: pmem_sim::IoStats, b: &pmem_sim::IoStats) -> pmem_sim::IoStats {
    pmem_sim::IoStats {
        cl_reads: a.cl_reads.saturating_sub(b.cl_reads),
        cl_writes: a.cl_writes.saturating_sub(b.cl_writes),
        software_ns: (a.software_ns - b.software_ns).max(0.0),
        calls: a.calls.saturating_sub(b.calls),
    }
}

fn analyze_into(
    plan: &crate::physical::PhysicalPlan,
    span: &pmem_sim::SpanNode,
    profile: &pmem_sim::SpanNode,
    latency: &LatencyProfile,
    depth: usize,
    out: &mut String,
) {
    // Match plan children to this span's children by label, in order
    // (execution opened them in the same pre-order the plan lists them).
    // An adaptive run pre-executes the first-materializing join outside
    // its parent's frame, so a child missing here falls back to a
    // whole-profile search; such out-of-place spans are rendered but not
    // subtracted from this node's own delta (their traffic was never
    // part of it).
    let children = plan.children();
    let mut matched: Vec<(Option<&pmem_sim::SpanNode>, bool)> = Vec::with_capacity(children.len());
    let mut cursor = 0usize;
    for child in &children {
        let label = child.label();
        let found = span.children[cursor..]
            .iter()
            .position(|c| c.label == label)
            .map(|p| {
                cursor += p + 1;
                &span.children[cursor - 1]
            });
        match found {
            Some(s) => matched.push((Some(s), true)),
            None => matched.push((profile.find(&label), false)),
        }
    }

    // This node's own delta: inclusive minus plan-child subtrees. What
    // remains covers the node's operator phases, staging, and tasks.
    let mut own = span.io;
    let mut child_tasks = 0usize;
    for (m, direct) in &matched {
        if let (Some(m), true) = (m, direct) {
            own = io_minus(own, &m.io);
            child_tasks += m.task_count();
        }
    }
    let tasks = span.task_count().saturating_sub(child_tasks);

    let c = plan.cost();
    let rows = match span.rows {
        Some(n) => format!("est ~{:.0} / obs {n} rows", c.out_rows),
        None => format!("est ~{:.0} rows", c.out_rows),
    };
    let task_note = if tasks > 0 {
        format!(" | {tasks} tasks")
    } else {
        String::new()
    };
    let pad = "  ".repeat(depth);
    out.push_str(&format!(
        "{pad}{}  [{rows} | {}r/{}w meas, {:.0}r/{:.0}w pred | {:.4}s sim | {:.1}ms wall{task_note}]\n",
        plan.label(),
        own.cl_reads,
        own.cl_writes,
        c.io.reads,
        c.io.writes,
        own.time_secs(latency),
        span.wall_ns as f64 / 1e6,
    ));
    for (child, (m, _)) in children.iter().zip(matched) {
        match m {
            Some(child_span) => analyze_into(child, child_span, profile, latency, depth + 1, out),
            None => analyze_missing(child, depth + 1, out),
        }
    }
}

/// Fallback rendering for a plan subtree the profile carries no span
/// for (should not happen; kept so a report never panics).
fn analyze_missing(plan: &crate::physical::PhysicalPlan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&format!("{pad}{}  [not measured]\n", plan.label()));
    for child in plan.children() {
        analyze_missing(child, depth + 1, out);
    }
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines().map(|l| format!("{pad}{l}\n")).collect::<String>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, TableStats};
    use crate::enumerate::Planner;
    use crate::logical::LogicalPlan;
    use crate::lower::execute_stream_profiled;
    use pmem_sim::{BufferPool, LayerKind, PmDevice};
    use std::sync::Arc;

    #[test]
    fn choice_report_marks_the_winner() {
        let mut cat = Catalog::new();
        cat.add_stats("T", TableStats::wisconsin(10_000));
        let planned = Planner::new(15.0, 625.0, LayerKind::BlockedMemory)
            .plan(&LogicalPlan::scan("T").sort(), &cat)
            .expect("plans");
        let report = render_choices(&planned);
        assert!(report.contains("→"));
        assert!(report.contains("ExMS"));
        let plan_report = render_plan(&planned);
        assert!(plan_report.contains("sort via"));
        assert!(plan_report.contains("scan T"));
    }

    #[test]
    fn analyze_report_annotates_every_plan_node() {
        let dev = PmDevice::paper_default();
        let rows = 2000u64;
        let data = Arc::new(pmem_sim::PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            wisconsin::sort_input(rows, wisconsin::KeyOrder::Random, 7),
        ));
        let mut cat = Catalog::new();
        cat.add_table("T", data, rows);
        let pool = BufferPool::new(rows as usize * 8); // force external behaviour
        let planned = Planner::new(
            dev.lambda(),
            pool.budget_buffers() as f64,
            LayerKind::BlockedMemory,
        )
        .plan(
            &LogicalPlan::scan("T")
                .filter(crate::logical::Predicate::KeyBelow(1000))
                .sort(),
            &cat,
        )
        .expect("plans");
        let run = execute_stream_profiled(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool)
            .expect("executes");
        let profile = run.profile.expect("profile recorded");
        profile.validate().expect("span sums hold");
        // The profile covers exactly the measured device delta.
        assert_eq!(profile.io.cl_reads, run.stats.cl_reads);
        assert_eq!(profile.io.cl_writes, run.stats.cl_writes);
        let report = render_analyze(&planned, &profile, &dev.config().latency);
        assert!(report.contains("sort via"));
        assert!(report.contains("scan T"));
        assert!(report.contains("obs 1000 rows"));
        assert!(report.contains("ms wall"));
        assert!(!report.contains("not measured"));
    }
}
