//! The plan enumerator: logical plan → costed physical plan.
//!
//! For every sort and join node the enumerator consults the Eqs. 1–11
//! cost models (via `write_limited::cost`) for the whole applicable
//! candidate field — ExMS/SegS/HybS/LaS/SelS for sorts, NLJ/GJ/HJ/HybJ/
//! SegJ/LaJ (both build orders) for joins — and keeps the cheapest. For
//! filters feeding a join's build side it additionally consults the
//! §3.1 runtime rules ([`wl_runtime::plan_verdict`]) to gate a
//! *deferred-view* candidate where the filter output is never written
//! and the iterate-only join re-filters the source on every pass.

use crate::catalog::Catalog;
use crate::logical::{LogicalPlan, Predicate};
use crate::lower::WisPair;
use crate::physical::{ChainSlots, Materialization, NodeCost, PhysicalPlan};
use pmem_sim::{BufferPool, DeviceConfig, LayerKind, Pm, Storable, CACHELINE};
use std::collections::HashMap;
use wisconsin::WisconsinRecord;
use wl_runtime::{plan_verdict, Decision};
use write_limited::agg::GroupAgg;
use write_limited::cost::join_costs::guided_io;
use write_limited::cost::{
    join_candidates, join_parallel_split, predict_join_io, predict_sort_io, sort_candidates,
    sort_parallel_split, IoPrediction,
};
use write_limited::join::{JoinAlgorithm, HASH_TABLE_FACTOR};
use write_limited::sort::SortAlgorithm;
use write_limited::stats::TableStatistics;

/// Base record width in bytes (what join build sides hold).
const WIS_BYTES: f64 = WisconsinRecord::SIZE as f64;
/// Pair record width in bytes after a Wisconsin ⋈ Wisconsin join.
const PAIR_BYTES: f64 = WisPair::SIZE as f64;
/// GroupAgg record width in bytes.
const GROUP_BYTES: f64 = GroupAgg::SIZE as f64;

/// Most base relations one join chain may combine. Chain rows carry one
/// payload slot per relation inside an 80-byte Wisconsin record (nine
/// slots available); eight keeps the `3^n` subset DP comfortably small
/// while leaving the row format headroom.
pub const MAX_JOIN_RELATIONS: usize = 8;

/// Planning failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A scanned table is not in the catalog.
    UnknownTable(String),
    /// The plan shape is outside what the executor supports.
    Unsupported(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            PlanError::Unsupported(what) => write!(f, "unsupported plan shape: {what}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One costed alternative the enumerator considered for a node.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Display label, e.g. `SegS, 32%` or `GJ (swapped)`.
    pub label: String,
    /// Predicted traffic of the node under this alternative.
    pub io: IoPrediction,
    /// The figure the planner ranks by, in read units. At degree of
    /// parallelism 1 this is the Eqs. 1–11 scalar cost; with `threads >
    /// 1` it is the *critical-path* estimate — the serial share plus the
    /// partition-parallel share divided by the effective worker count —
    /// so partitioned algorithms get cheaper relative to iterative ones
    /// and plan choice can shift under parallelism.
    pub cost_units: f64,
}

/// The full candidate field of one enumerated node.
#[derive(Clone, Debug)]
pub struct NodeChoice {
    /// Which node this is, e.g. `sort over ~5000 rows`.
    pub node: String,
    /// All alternatives, sorted cheapest first.
    pub candidates: Vec<Candidate>,
    /// Label of the winner.
    pub chosen: String,
}

/// A planned query: the winning physical plan plus the evidence.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// The winning physical plan.
    pub plan: PhysicalPlan,
    /// Per-node candidate fields, in planning order.
    pub choices: Vec<NodeChoice>,
    /// Write/read cost ratio the plan was costed at.
    pub lambda: f64,
    /// DRAM budget in buffers.
    pub m_buffers: f64,
    /// Degree of parallelism the plan was costed for (and that the
    /// executor fans partitioned operators out to).
    pub threads: usize,
    /// Total predicted traffic of the plan.
    pub predicted: IoPrediction,
    /// Whether the executor may re-plan the remaining join subtree when
    /// an observed cardinality drifts from its estimate.
    pub adapt: bool,
}

/// The write-aware planner: carries the device cost parameters the
/// enumerator ranks candidates under.
#[derive(Clone, Debug)]
pub struct Planner {
    /// Write/read cost ratio λ of the target medium.
    pub lambda: f64,
    /// DRAM budget in buffers (cachelines).
    pub m_buffers: f64,
    /// Persistence layer targeted by intermediates.
    pub layer: LayerKind,
    /// Degree of parallelism the partitioned operators will run at;
    /// drives the critical-path ranking. Defaults to 1 (rank by the
    /// serial Eqs. 1–11 sums); planning for a parallel runtime is an
    /// explicit choice via [`Planner::with_threads`], so plan choices
    /// stay stable no matter what `WL_THREADS` the *executor* runs at.
    pub threads: usize,
    /// Whether executors may re-enumerate the remaining join subtree
    /// mid-plan when observed cardinalities drift from the estimates.
    /// On by default; turned off for static-uniform baselines and for
    /// adaptivity-invariance experiments.
    pub adapt: bool,
    /// Per-storage-call software overhead expressed in read units.
    call_overhead_units: f64,
    /// Cachelines per collection block (call granularity).
    block_cachelines: f64,
}

impl Planner {
    /// Builds a planner from explicit λ and memory budget, taking the
    /// per-layer overhead parameters from the paper-default device
    /// configuration.
    pub fn new(lambda: f64, m_buffers: f64, layer: LayerKind) -> Self {
        Self::with_config(lambda, m_buffers, layer, &DeviceConfig::paper_default())
    }

    /// Builds a planner matching a live device and buffer pool — the
    /// form used right before execution.
    pub fn for_device(dev: &Pm, pool: &BufferPool, layer: LayerKind) -> Self {
        Self::with_config(
            dev.lambda(),
            pool.budget_buffers() as f64,
            layer,
            dev.config(),
        )
    }

    /// Explicit-configuration constructor.
    pub fn with_config(lambda: f64, m_buffers: f64, layer: LayerKind, cfg: &DeviceConfig) -> Self {
        assert!(lambda >= 1.0, "write/read ratio must be >= 1");
        assert!(m_buffers >= 1.0, "need at least one buffer of DRAM");
        let call_ns = match layer {
            LayerKind::Pmfs => cfg.pmfs_call_ns,
            LayerKind::RamDisk => cfg.ramdisk_call_ns,
            LayerKind::FileBacked => cfg.file_call_ns,
            LayerKind::BlockedMemory | LayerKind::DynArray => 0.0,
        };
        Self {
            lambda,
            m_buffers,
            layer,
            threads: 1,
            adapt: true,
            call_overhead_units: call_ns / cfg.latency.read_ns,
            block_cachelines: cfg.cachelines_per_block() as f64,
        }
    }

    /// Sets the degree of parallelism the plan is costed for. The
    /// executor fans partitioned operators out to the same degree, so
    /// the critical-path ranking and the run agree.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables mid-plan re-planning for queries planned by
    /// this planner.
    #[must_use]
    pub fn with_adaptivity(mut self, adapt: bool) -> Self {
        self.adapt = adapt;
        self
    }

    /// Critical-path scaling of a costed candidate: the ratio between
    /// the split's elapsed estimate at `self.threads` workers and its
    /// serial sum, applied to the overhead-inclusive figure (overhead
    /// accrues on the same traffic, so it scales with it).
    fn scale_units(&self, units: f64, split: write_limited::cost::ParallelSplit) -> f64 {
        let serial_sum = split.critical_path_units(1);
        if self.threads <= 1 || serial_sum <= 0.0 {
            return units;
        }
        units * split.critical_path_units(self.threads) / serial_sum
    }

    /// Software-overhead surcharge for `traffic` buffers of layer I/O,
    /// in read units: one storage call per block touched. Zero for the
    /// load/store layers, significant for the RAM disk — this is what
    /// makes the planner layer-aware beyond pure cacheline counts.
    fn layer_overhead(&self, traffic_buffers: f64) -> f64 {
        self.call_overhead_units * (traffic_buffers / self.block_cachelines).ceil()
    }

    fn with_overhead(&self, io: IoPrediction) -> IoPrediction {
        IoPrediction {
            reads: io.reads + self.layer_overhead(io.reads + io.writes),
            writes: io.writes,
        }
    }

    /// Enumerates physical plans for `logical` and returns the cheapest
    /// together with the candidate evidence.
    ///
    /// # Errors
    /// Returns [`PlanError`] for unknown tables or plan shapes the
    /// executor cannot lower.
    pub fn plan(
        &self,
        logical: &LogicalPlan,
        catalog: &Catalog,
    ) -> Result<PlannedQuery, PlanError> {
        let mut choices = Vec::new();
        let plan = self.plan_node(logical, catalog, &mut choices)?;
        let predicted = plan.total_io();
        Ok(PlannedQuery {
            plan,
            choices,
            lambda: self.lambda,
            m_buffers: self.m_buffers,
            threads: self.threads,
            predicted,
            adapt: self.adapt,
        })
    }

    fn plan_node(
        &self,
        logical: &LogicalPlan,
        catalog: &Catalog,
        choices: &mut Vec<NodeChoice>,
    ) -> Result<PhysicalPlan, PlanError> {
        match logical {
            LogicalPlan::Scan { table } => {
                let stats = catalog
                    .stats(table)
                    .ok_or_else(|| PlanError::UnknownTable(table.clone()))?;
                Ok(PhysicalPlan::Scan {
                    table: table.clone(),
                    cost: NodeCost {
                        io: IoPrediction::ZERO, // charged by the consumer
                        out_rows: stats.rows as f64,
                        out_buffers: stats.buffers(),
                        distinct_keys: (stats.rows.min(stats.key_domain)) as f64,
                    },
                })
            }
            LogicalPlan::Filter { input, predicate } => {
                let child = self.plan_node(input, catalog, choices)?;
                Ok(self.plan_filter(child, *predicate, input, catalog))
            }
            LogicalPlan::Sort { input } => {
                let child = self.plan_node(input, catalog, choices)?;
                Ok(self.plan_sort(child, choices))
            }
            LogicalPlan::Join { .. } => self.plan_join_tree(logical, catalog, choices),
            LogicalPlan::Aggregate { input } => {
                let child = self.plan_node(input, catalog, choices)?;
                Ok(self.plan_agg(child))
            }
        }
    }

    /// Filters default to materialized: read the input once, write the
    /// qualifying rows. [`Planner::plan_join`] revisits build-side
    /// filters and may flip them to deferred views. With ingest
    /// statistics attached, selectivity comes from the equi-depth
    /// histogram instead of the uniform key-domain assumption.
    fn plan_filter(
        &self,
        child: PhysicalPlan,
        predicate: Predicate,
        logical_input: &LogicalPlan,
        catalog: &Catalog,
    ) -> PhysicalPlan {
        let in_rows = child.cost().out_rows;
        let in_buffers = child.cost().out_buffers;
        let (selectivity, distinct) = match stats_for(logical_input, catalog) {
            Some(s) => {
                let sel = match predicate {
                    Predicate::KeyBelow(b) => s.fraction_below(b),
                    Predicate::KeyAtLeast(b) => s.fraction_at_least(b),
                    Predicate::KeyModEq { modulus, .. } => 1.0 / modulus.max(1) as f64,
                };
                let filtered = apply_predicate(&s, predicate);
                (sel, filtered.distinct_keys().max(1.0))
            }
            None => {
                let key_domain = base_key_domain(logical_input, catalog);
                let sel = predicate.selectivity(key_domain);
                (sel, (child.cost().distinct_keys * sel).ceil().max(1.0))
            }
        };
        let out_rows = (in_rows * selectivity).ceil();
        let out_buffers = (in_buffers * selectivity).ceil();
        let io = self.with_overhead(IoPrediction {
            reads: in_buffers,
            writes: out_buffers,
        });
        PhysicalPlan::Filter {
            input: Box::new(child),
            predicate,
            selectivity,
            materialization: Materialization::Materialized,
            rule: None,
            cost: NodeCost {
                io,
                out_rows,
                out_buffers,
                distinct_keys: distinct,
            },
        }
    }

    fn plan_sort(&self, child: PhysicalPlan, choices: &mut Vec<NodeChoice>) -> PhysicalPlan {
        let t = child.cost().out_buffers.max(1.0);
        let out_rows = child.cost().out_rows;
        let mut candidates: Vec<(SortAlgorithm, Candidate)> =
            sort_candidates(t, self.m_buffers, self.lambda)
                .into_iter()
                .map(|algo| {
                    let io =
                        self.with_overhead(predict_sort_io(&algo, t, self.m_buffers, self.lambda));
                    let split = sort_parallel_split(&algo, t, self.m_buffers, self.lambda);
                    let cand = Candidate {
                        label: algo.label(),
                        cost_units: self.scale_units(io.cost_units(self.lambda), split),
                        io,
                    };
                    (algo, cand)
                })
                .collect();
        candidates.sort_by(|a, b| a.1.cost_units.total_cmp(&b.1.cost_units));
        let (algo, winner) = candidates[0].clone();
        choices.push(NodeChoice {
            node: format!("sort over ~{out_rows:.0} rows ({t:.0} buffers)"),
            candidates: candidates.into_iter().map(|(_, c)| c).collect(),
            chosen: winner.label.clone(),
        });
        let distinct = child.cost().distinct_keys;
        PhysicalPlan::Sort {
            input: Box::new(child),
            algo,
            cost: NodeCost {
                io: winner.io,
                out_rows,
                out_buffers: t,
                distinct_keys: distinct,
            },
        }
    }

    /// Plans an entire join subtree. Two base relations keep the classic
    /// single-edge enumeration (pair output); three or more go through
    /// the Selinger-style DP join-order search over relation subsets.
    fn plan_join_tree(
        &self,
        logical: &LogicalPlan,
        catalog: &Catalog,
        choices: &mut Vec<NodeChoice>,
    ) -> Result<PhysicalPlan, PlanError> {
        let mut leaves = Vec::new();
        collect_join_leaves(logical, &mut leaves);
        let n = leaves.len();
        if n > MAX_JOIN_RELATIONS {
            return Err(PlanError::Unsupported(format!(
                "join of {n} relations exceeds the {MAX_JOIN_RELATIONS}-relation limit"
            )));
        }
        let entries: Vec<(&LogicalPlan, Vec<usize>)> = leaves
            .iter()
            .enumerate()
            .map(|(i, leaf)| (*leaf, vec![i]))
            .collect();
        self.plan_join_slotted(&entries, catalog, choices)
    }

    /// The join-order search over explicit `(relation, payload slots)`
    /// entries. Fresh plans give every base relation its own slot;
    /// mid-plan re-planning re-enters with an already-joined intermediate
    /// occupying several slots plus the remaining base relations.
    pub(crate) fn plan_join_slotted(
        &self,
        entries: &[(&LogicalPlan, Vec<usize>)],
        catalog: &Catalog,
        choices: &mut Vec<NodeChoice>,
    ) -> Result<PhysicalPlan, PlanError> {
        // Per-subset memo of the best physical plan found so far. All
        // relations join on the shared key, so every subset is connected
        // and every split of it is a valid (cross-product-free) join.
        struct Memo {
            plan: PhysicalPlan,
            units: f64,
            choices: Vec<NodeChoice>,
            slots: Vec<usize>,
            stats: Option<TableStatistics>,
            expr: String,
        }
        let n = entries.len();
        if n > MAX_JOIN_RELATIONS {
            return Err(PlanError::Unsupported(format!(
                "join of {n} relations exceeds the {MAX_JOIN_RELATIONS}-relation limit"
            )));
        }
        let total_slots: usize = entries.iter().map(|(_, s)| s.len()).sum();
        if n == 2 && total_slots == 2 {
            let l = self.plan_node(entries[0].0, catalog, choices)?;
            let r = self.plan_node(entries[1].0, catalog, choices)?;
            let lu = l.total_io().cost_units(self.lambda);
            let ru = r.total_io().cost_units(self.lambda);
            let ls = stats_for(entries[0].0, catalog);
            let rs = stats_for(entries[1].0, catalog);
            let planned = self.plan_join(l, r, lu, ru, None, ls.as_ref(), rs.as_ref())?;
            choices.push(planned.choice);
            return Ok(planned.plan);
        }

        let mut memo: HashMap<u32, Memo> = HashMap::new();
        for (i, (leaf, slots)) in entries.iter().enumerate() {
            let mut leaf_choices = Vec::new();
            let plan = self.plan_node(leaf, catalog, &mut leaf_choices)?;
            let units = plan.total_io().cost_units(self.lambda);
            memo.insert(
                1 << i,
                Memo {
                    plan,
                    units,
                    choices: leaf_choices,
                    slots: slots.clone(),
                    stats: stats_for(leaf, catalog),
                    expr: leaf_relation_name(leaf),
                },
            );
        }

        let full: u32 = (1u32 << n) - 1;
        let mut considered = 0usize;
        let mut root_alternatives: Vec<Candidate> = Vec::new();
        // Numeric order visits every proper submask before its superset.
        for mask in 3..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            let lowbit = mask & mask.wrapping_neg();
            let mut best: Option<Memo> = None;
            let mut split_err = None;
            // Enumerate unordered splits by pinning the lowest relation
            // to the left side; plan_join itself tries both build orders.
            let mut l = (mask - 1) & mask;
            while l > 0 {
                if l & lowbit != 0 {
                    let r = mask ^ l;
                    let (ml, mr) = (&memo[&l], &memo[&r]);
                    considered += 1;
                    match self.plan_join(
                        ml.plan.clone(),
                        mr.plan.clone(),
                        ml.units,
                        mr.units,
                        Some((&ml.slots, &mr.slots)),
                        ml.stats.as_ref(),
                        mr.stats.as_ref(),
                    ) {
                        Ok(planned) => {
                            let expr = format!("({} ⋈ {})", ml.expr, mr.expr);
                            if mask == full {
                                root_alternatives.push(Candidate {
                                    label: expr.clone(),
                                    io: planned.plan.total_io(),
                                    cost_units: planned.units,
                                });
                            }
                            if best.as_ref().is_none_or(|b| planned.units < b.units) {
                                let mut sub_choices = ml.choices.clone();
                                sub_choices.extend(mr.choices.iter().cloned());
                                sub_choices.push(planned.choice);
                                let mut slots = ml.slots.clone();
                                slots.extend(&mr.slots);
                                best = Some(Memo {
                                    plan: planned.plan,
                                    units: planned.units,
                                    choices: sub_choices,
                                    slots,
                                    stats: planned.stats,
                                    expr,
                                });
                            }
                        }
                        Err(e) => split_err = Some(e),
                    }
                }
                l = (l - 1) & mask;
            }
            let best = best.ok_or_else(|| {
                split_err.unwrap_or_else(|| {
                    PlanError::Unsupported("no joinable split for a relation subset".into())
                })
            })?;
            memo.insert(mask, best);
        }

        let root = memo.remove(&full).expect("full subset planned");
        root_alternatives.sort_by(|a, b| a.cost_units.total_cmp(&b.cost_units));
        choices.push(NodeChoice {
            node: format!("join order over {n} relations ({considered} subplans considered)"),
            candidates: root_alternatives,
            chosen: root.expr,
        });
        choices.extend(root.choices);
        Ok(root.plan)
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_join(
        &self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        left_units: f64,
        right_units: f64,
        chain: Option<(&[usize], &[usize])>,
        l_stats: Option<&TableStatistics>,
        r_stats: Option<&TableStatistics>,
    ) -> Result<JoinPlanned, PlanError> {
        let lb = left.cost().out_buffers.max(1.0);
        let rb = right.cost().out_buffers.max(1.0);
        let l_rows = left.cost().out_rows;
        let r_rows = right.cost().out_rows;

        // Equi-join cardinality. With ingest statistics on both sides,
        // heavy-hitter frequencies multiply per hot key and the residual
        // mass joins uniformly; otherwise fall back to the uniform-key
        // containment formula: rows-per-key on each side times the
        // matching key count.
        let l_distinct = left.cost().distinct_keys.max(1.0);
        let r_distinct = right.cost().distinct_keys.max(1.0);
        let (out_rows, matching, out_stats) = match (l_stats, r_stats) {
            (Some(ls), Some(rs)) => {
                let (rows, stats) = ls.join(rs);
                (rows, stats.distinct_keys().max(1.0), Some(stats))
            }
            _ => {
                let matching = l_distinct.min(r_distinct);
                let rows = (l_rows / l_distinct) * (r_rows / r_distinct) * matching;
                (rows, matching, None)
            }
        };
        let pair_buffers = (out_rows * PAIR_BYTES / CACHELINE as f64).ceil();
        // Chain joins fold the pair output into slotted 80-byte rows in
        // one extra staged pass: re-read the pairs, write the flat rows.
        let chain_buffers = (out_rows * WIS_BYTES / CACHELINE as f64).ceil();
        let fold_io = if chain.is_some() {
            IoPrediction {
                reads: pair_buffers,
                writes: chain_buffers,
            }
        } else {
            IoPrediction::ZERO
        };
        let out_buffers = if chain.is_some() {
            chain_buffers
        } else {
            pair_buffers
        };
        let output_writes = IoPrediction {
            reads: fold_io.reads,
            writes: pair_buffers + fold_io.writes,
        };

        // Candidate field: every applicable algorithm in both build
        // orders. The cost models assume t ≤ v, which either order may
        // satisfy; applicability of the Grace family is checked per
        // order against the DRAM budget.
        let mut field: Vec<(JoinAlgorithm, bool, Candidate)> = Vec::new();
        for (swapped, t, v, t_rows) in [(false, lb, rb, l_rows), (true, rb, lb, r_rows)] {
            for algo in join_candidates(t, v, self.m_buffers, self.lambda) {
                if grace_family(&algo) && !self.grace_ok(t_rows) {
                    continue;
                }
                let io = self.with_overhead(
                    predict_join_io(&algo, t, v, self.m_buffers, self.lambda).plus(output_writes),
                );
                let split = join_parallel_split(&algo, t, v, self.m_buffers, self.lambda);
                let label = if swapped {
                    format!("{} (swapped)", algo.label())
                } else {
                    algo.label()
                };
                field.push((
                    algo,
                    swapped,
                    Candidate {
                        label,
                        cost_units: self.scale_units(io.cost_units(self.lambda), split),
                        io,
                    },
                ));
            }
        }

        // Cardinality-guided candidate: when the ingest statistics
        // expose heavy hitters on either side, the hot keys can bypass
        // the Grace partition round-trip — the guided join keeps their
        // build rows resident and probes hot rows straight through. Only
        // offered when a hot set exists (uniform tables degrade to GJ
        // exactly, so the candidate would be pure noise).
        let mut guided_hot: Vec<u64> = Vec::new();
        if let (Some(ls), Some(rs)) = (l_stats, r_stats) {
            let mut hot = ls.heavy_keys();
            hot.extend(rs.heavy_keys());
            hot.sort_unstable();
            hot.dedup();
            if !hot.is_empty() {
                let cover = |s: &TableStatistics| {
                    if s.rows() <= 0.0 {
                        return 0.0;
                    }
                    (hot.iter().map(|&k| s.frequency(k)).sum::<f64>() / s.rows()).min(1.0)
                };
                let (cover_l, cover_r) = (cover(ls), cover(rs));
                let m_records = self.m_buffers * CACHELINE as f64 / WIS_BYTES;
                for (swapped, t, v, t_rows, hot_t, hot_v) in [
                    (false, lb, rb, l_rows, cover_l, cover_r),
                    (true, rb, lb, r_rows, cover_r, cover_l),
                ] {
                    // The resident hot build rows (hash-table blow-up
                    // included) may claim at most half the budget — the
                    // other half stays for the cold partition pairs.
                    let resident = hot_t * t_rows * HASH_TABLE_FACTOR;
                    if !self.grace_ok(t_rows) || resident > 0.5 * m_records {
                        continue;
                    }
                    let (r, w) = guided_io(t, v, hot_t, hot_v);
                    let io = self.with_overhead(
                        IoPrediction {
                            reads: r,
                            writes: w,
                        }
                        .plus(output_writes),
                    );
                    let split =
                        join_parallel_split(&JoinAlgorithm::CGJ, t, v, self.m_buffers, self.lambda);
                    let label = if swapped {
                        "CGJ (swapped)".to_string()
                    } else {
                        "CGJ".to_string()
                    };
                    guided_hot.clone_from(&hot);
                    field.push((
                        JoinAlgorithm::CGJ,
                        swapped,
                        Candidate {
                            label,
                            cost_units: self.scale_units(io.cost_units(self.lambda), split),
                            io,
                        },
                    ));
                }
            }
        }

        // Deferred-view candidate: when the build side is a filtered
        // base-table scan, the §3.1 rules may prefer never writing the
        // filtered collection; the iterate-only join then re-filters the
        // source on every pass.
        let mut deferred_candidate = None;
        if let PhysicalPlan::Filter {
            cost: filter_cost,
            input: filter_input,
            ..
        } = &left
        {
            if matches!(**filter_input, PhysicalPlan::Scan { .. })
                && self.grace_ok(filter_input.cost().out_rows)
            {
                let src = filter_input.cost().out_buffers.max(1.0);
                let filtered = filter_cost.out_buffers.max(1.0);
                // The iterate-only join partitions by the *source*
                // cardinality (it cannot know the filtered count up
                // front) over the hash-table-adjusted build capacity —
                // mirror `JoinContext::grace_partitions`.
                let k = self.grace_partitions_est(filter_input.cost().out_rows);
                let verdict = plan_verdict(filtered, src, k, self.lambda);
                if verdict.decision == Decision::Defer {
                    let io = self.with_overhead(
                        IoPrediction {
                            reads: k * (src + rb),
                            writes: 0.0,
                        }
                        .plus(output_writes),
                    );
                    // The iterate-only passes fan out like SegJ at
                    // frac = 0 (the re-filtering scans are the passes).
                    let split = join_parallel_split(
                        &JoinAlgorithm::SegJ { frac: 0.0 },
                        src,
                        rb,
                        self.m_buffers,
                        self.lambda,
                    );
                    deferred_candidate = Some((
                        verdict,
                        Candidate {
                            label: "SegJ, 0% over deferred σ".into(),
                            cost_units: self.scale_units(io.cost_units(self.lambda), split),
                            io,
                        },
                    ));
                }
            }
        }

        if field.is_empty() && deferred_candidate.is_none() {
            return Err(PlanError::Unsupported(
                "no applicable join algorithm under this DRAM budget".into(),
            ));
        }

        // Fixed candidates rely on the build filter being materialized;
        // that cost lives in the filter node, while the deferred view
        // zeroes it and carries re-filtering in its own figure. To keep
        // every row of the evidence table on one basis, fold the build
        // filter's cost into the fixed candidates whenever a deferred
        // alternative is in play — then the cheapest row IS the winner.
        let filter_units = left.cost().io.cost_units(self.lambda);
        if deferred_candidate.is_some() {
            let filter_io = left.cost().io;
            for (_, _, cand) in &mut field {
                cand.io = cand.io.plus(filter_io);
                cand.cost_units += filter_units;
            }
        }

        let mut all: Vec<Candidate> = field.iter().map(|(_, _, c)| c.clone()).collect();
        if let Some((_, c)) = &deferred_candidate {
            all.push(c.clone());
        }
        all.sort_by(|a, b| a.cost_units.total_cmp(&b.cost_units));

        let best_fixed = field
            .iter()
            .min_by(|a, b| a.2.cost_units.total_cmp(&b.2.cost_units))
            .cloned();
        let deferred_wins = match (&deferred_candidate, &best_fixed) {
            (Some((_, d)), Some((_, _, f))) => d.cost_units < f.cost_units,
            (Some(_), None) => true,
            _ => false,
        };

        let chain_slots = chain.map(|(l, r)| ChainSlots {
            left: l.to_vec(),
            right: r.to_vec(),
        });
        let node_label = format!("join ~{l_rows:.0} x ~{r_rows:.0} rows ({lb:.0}/{rb:.0} buffers)");
        let (plan, chosen_label, units) = if deferred_wins {
            let (verdict, cand) = deferred_candidate.expect("checked");
            let mut left = left;
            if let PhysicalPlan::Filter {
                materialization,
                rule,
                cost,
                ..
            } = &mut left
            {
                *materialization = Materialization::Deferred;
                *rule = Some(verdict.rule);
                // The view is never written; its traffic is carried by
                // the join's per-pass re-filtering.
                cost.io = IoPrediction::ZERO;
            }
            let label = cand.label.clone();
            // The filter's materialization units leave the left subtree;
            // re-filtering is carried by this node's own figure.
            let units = left_units - filter_units + right_units + cand.cost_units;
            (
                PhysicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    algo: JoinAlgorithm::SegJ { frac: 0.0 },
                    swapped: false,
                    chain: chain_slots,
                    hot: Vec::new(),
                    replanned: false,
                    cost: NodeCost {
                        io: cand.io,
                        out_rows,
                        out_buffers,
                        distinct_keys: matching,
                    },
                },
                label,
                units,
            )
        } else {
            let (algo, swapped, cand) = best_fixed.expect("field is non-empty");
            let label = cand.label.clone();
            // The node's own cost excludes the build filter's traffic
            // (the filter node carries it); undo the table-basis fold.
            let (node_io, node_units) = if deferred_candidate.is_some() {
                (
                    IoPrediction {
                        reads: cand.io.reads - left.cost().io.reads,
                        writes: cand.io.writes - left.cost().io.writes,
                    },
                    cand.cost_units - filter_units,
                )
            } else {
                (cand.io, cand.cost_units)
            };
            let units = left_units + right_units + node_units;
            let hot = if algo == JoinAlgorithm::CGJ {
                guided_hot
            } else {
                Vec::new()
            };
            (
                PhysicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    algo,
                    swapped,
                    chain: chain_slots,
                    hot,
                    replanned: false,
                    cost: NodeCost {
                        io: node_io,
                        out_rows,
                        out_buffers,
                        distinct_keys: matching,
                    },
                },
                label,
                units,
            )
        };
        Ok(JoinPlanned {
            plan,
            choice: NodeChoice {
                node: node_label,
                candidates: all,
                chosen: chosen_label,
            },
            units,
            stats: out_stats,
        })
    }

    /// Aggregation is lowered onto the write-limited sort-based
    /// aggregator; its dominant cost is the segment sort of the input at
    /// intensity `x`, plus writing one group row per distinct key.
    fn plan_agg(&self, child: PhysicalPlan) -> PhysicalPlan {
        let t = child.cost().out_buffers.max(1.0);
        // x = 0 never materializes sorted runs — the aggregator consumes
        // merge streams — so high λ favors it; at λ close to 1 run
        // generation (x = 1) reads less overall. Pick by the segment
        // cost model.
        let (x, io) = [0.0, 0.25, 0.5, 0.75, 1.0]
            .into_iter()
            .map(|x| {
                let algo = write_limited::sort::SortAlgorithm::SegS { x };
                (x, predict_sort_io(&algo, t, self.m_buffers, self.lambda))
            })
            .min_by(|a, b| {
                a.1.cost_units(self.lambda)
                    .total_cmp(&b.1.cost_units(self.lambda))
            })
            .expect("non-empty sweep");
        // One output row per distinct key.
        let groups = child.cost().distinct_keys.max(1.0);
        let out_buffers = (groups * GROUP_BYTES / CACHELINE as f64).ceil();
        // The segment cost model already charges λ·t for writing the
        // sorted output; the aggregator instead writes only group rows.
        // Correct the write side accordingly.
        let io = IoPrediction {
            reads: io.reads,
            writes: (io.writes - t).max(0.0) + out_buffers,
        };
        let io = self.with_overhead(io);
        PhysicalPlan::Aggregate {
            input: Box::new(child),
            x,
            cost: NodeCost {
                io,
                out_rows: groups,
                out_buffers,
                distinct_keys: groups,
            },
        }
    }

    /// Mirrors `JoinContext::grace_applicable` in planning units:
    /// `M_records > √(f·|T|_records)`.
    fn grace_ok(&self, t_rows: f64) -> bool {
        let m_records = self.m_buffers * CACHELINE as f64 / WIS_BYTES;
        m_records > (HASH_TABLE_FACTOR * t_rows).sqrt()
    }

    /// Mirrors `JoinContext::grace_partitions`: `⌈f·|T| / M⌉` in
    /// records.
    fn grace_partitions_est(&self, t_rows: f64) -> f64 {
        let m_records = self.m_buffers * CACHELINE as f64 / WIS_BYTES;
        let cap = (m_records / HASH_TABLE_FACTOR).max(1.0);
        (t_rows / cap).ceil().max(1.0)
    }
}

/// One planned join edge: the composed plan, its evidence row, the
/// ranking figure of the whole subtree (used by the join-order DP), and
/// the composed output statistics when both inputs carried some.
struct JoinPlanned {
    plan: PhysicalPlan,
    choice: NodeChoice,
    units: f64,
    stats: Option<TableStatistics>,
}

/// Flattens a maximal join subtree into its relation leaves (the
/// non-join subplans), in logical (SQL) order.
pub(crate) fn collect_join_leaves<'a>(plan: &'a LogicalPlan, out: &mut Vec<&'a LogicalPlan>) {
    match plan {
        LogicalPlan::Join { left, right } => {
            collect_join_leaves(left, out);
            collect_join_leaves(right, out);
        }
        other => out.push(other),
    }
}

/// Display name of a join-order leaf: the base table it scans (with a σ
/// marker when filtered).
fn leaf_relation_name(leaf: &LogicalPlan) -> String {
    match leaf {
        LogicalPlan::Scan { table } => table.clone(),
        LogicalPlan::Filter { input, .. } => format!("σ{}", leaf_relation_name(input)),
        LogicalPlan::Sort { input } | LogicalPlan::Aggregate { input } => leaf_relation_name(input),
        LogicalPlan::Join { left, .. } => leaf_relation_name(left),
    }
}

/// Derives the skew statistics of a logical subtree from the catalog's
/// ingest-time per-table statistics: filters condition them, sorts pass
/// them through, joins compose them. `None` as soon as any base table
/// lacks statistics — estimates then fall back to the uniform-key
/// assumption.
pub(crate) fn stats_for(logical: &LogicalPlan, catalog: &Catalog) -> Option<TableStatistics> {
    match logical {
        LogicalPlan::Scan { table } => catalog.statistics(table).map(|s| (**s).clone()),
        LogicalPlan::Filter { input, predicate } => {
            Some(apply_predicate(&stats_for(input, catalog)?, *predicate))
        }
        LogicalPlan::Sort { input } | LogicalPlan::Aggregate { input } => stats_for(input, catalog),
        LogicalPlan::Join { left, right } => {
            let l = stats_for(left, catalog)?;
            let r = stats_for(right, catalog)?;
            Some(l.join(&r).1)
        }
    }
}

/// Conditions table statistics on a key predicate.
fn apply_predicate(stats: &TableStatistics, predicate: Predicate) -> TableStatistics {
    match predicate {
        Predicate::KeyBelow(b) => stats.filtered_below(b),
        Predicate::KeyAtLeast(b) => stats.filtered_at_least(b),
        Predicate::KeyModEq { modulus, residue } => stats.filtered_mod(modulus, residue),
    }
}

/// Key domain of the base table(s) under a plan, for selectivity
/// estimation.
fn base_key_domain(logical: &LogicalPlan, catalog: &Catalog) -> u64 {
    match logical {
        LogicalPlan::Scan { table } => catalog.stats(table).map_or(0, |s| s.key_domain),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input }
        | LogicalPlan::Aggregate { input } => base_key_domain(input, catalog),
        LogicalPlan::Join { left, .. } => base_key_domain(left, catalog),
    }
}

fn grace_family(algo: &JoinAlgorithm) -> bool {
    matches!(
        algo,
        JoinAlgorithm::GJ
            | JoinAlgorithm::HybJ { .. }
            | JoinAlgorithm::SegJ { .. }
            | JoinAlgorithm::CGJ
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableStats;
    use write_limited::sort::SortAlgorithm;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stats("T", TableStats::wisconsin(10_000));
        c.add_stats("V", TableStats::wisconsin(100_000));
        c
    }

    #[test]
    fn sort_choice_tracks_lambda() {
        let cat = catalog();
        let logical = LogicalPlan::scan("T").sort();
        // Symmetric medium: ExMS (or full-intensity variants) wins.
        let sym = Planner::new(1.0, 625.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        // Write-expensive medium: a write-limited algorithm wins.
        let asym = Planner::new(15.0, 625.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        let algo_of = |p: &PlannedQuery| match &p.plan {
            PhysicalPlan::Sort { algo, .. } => *algo,
            other => panic!("expected sort root, got {}", other.label()),
        };
        // The paper's claim in planner form: as λ → 1 the optimal write
        // intensity approaches full mergesort; as λ grows the chosen
        // intensity drops (writes traded for reads).
        let intensity = |a: SortAlgorithm| match a {
            SortAlgorithm::ExMS => 1.0,
            SortAlgorithm::SegS { x } | SortAlgorithm::HybS { x } => x,
            SortAlgorithm::LaS | SortAlgorithm::SelS => 0.0,
        };
        assert!(
            intensity(algo_of(&sym)) > 0.9,
            "λ=1 should pick near-full intensity, got {:?}",
            algo_of(&sym)
        );
        assert!(
            intensity(algo_of(&asym)) < 0.7,
            "λ=15 should pick a write-limited sort, got {:?}",
            algo_of(&asym)
        );
    }

    #[test]
    fn join_enumeration_reports_both_orders() {
        let cat = catalog();
        let logical = LogicalPlan::scan("T").join(LogicalPlan::scan("V"));
        let planned = Planner::new(15.0, 1250.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        let join_choice = planned
            .choices
            .iter()
            .find(|c| c.node.starts_with("join"))
            .expect("join node enumerated");
        assert!(join_choice
            .candidates
            .iter()
            .any(|c| c.label.contains("swapped")));
        assert!(join_choice.candidates.len() >= 8);
        // Candidates are sorted cheapest-first and the winner is first.
        assert!(join_choice
            .candidates
            .windows(2)
            .all(|w| w[0].cost_units <= w[1].cost_units));
        assert_eq!(join_choice.chosen, join_choice.candidates[0].label);
    }

    #[test]
    fn three_way_join_runs_the_order_search() {
        let mut cat = catalog();
        cat.add_stats("W", TableStats::wisconsin(1_000));
        let logical = LogicalPlan::scan("T")
            .join(LogicalPlan::scan("V"))
            .join(LogicalPlan::scan("W"));
        let planned = Planner::new(15.0, 1250.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        let order = planned
            .choices
            .iter()
            .find(|c| c.node.starts_with("join order"))
            .expect("order search summary");
        assert!(order.node.contains("3 relations"), "{}", order.node);
        assert_eq!(order.candidates.len(), 3, "three root splits");
        assert_eq!(order.chosen, order.candidates[0].label);
        // Two per-edge evidence tables follow the summary.
        let edges = planned
            .choices
            .iter()
            .filter(|c| c.node.starts_with("join ~"))
            .count();
        assert_eq!(edges, 2);
        // The root is a chain join covering all three relations.
        let PhysicalPlan::Join {
            chain: Some(slots), ..
        } = &planned.plan
        else {
            panic!("expected chain join root, got {}", planned.plan.label());
        };
        assert_eq!(slots.tables(), 3);
        let mut all: Vec<usize> = slots.left.iter().chain(&slots.right).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
        // The cheapest root split should put the two small relations
        // (T: 10k, W: 1k) together before touching the 100k-row V.
        assert!(
            order.chosen.contains("(T ⋈ W)") || order.chosen.contains("(W ⋈ T)"),
            "expected the small relations joined first, got {}",
            order.chosen
        );
    }

    #[test]
    fn nested_logical_joins_flatten_into_the_same_search() {
        let mut cat = catalog();
        cat.add_stats("W", TableStats::wisconsin(1_000));
        // Bushy input shape: join(T, join(V, W)).
        let bushy =
            LogicalPlan::scan("T").join(LogicalPlan::scan("V").join(LogicalPlan::scan("W")));
        let left_deep = LogicalPlan::scan("T")
            .join(LogicalPlan::scan("V"))
            .join(LogicalPlan::scan("W"));
        let planner = Planner::new(15.0, 1250.0, LayerKind::BlockedMemory);
        let a = planner.plan(&bushy, &cat).expect("plans");
        let b = planner.plan(&left_deep, &cat).expect("plans");
        // Same leaves → same search → same predicted traffic.
        assert_eq!(a.predicted, b.predicted);
    }

    #[test]
    fn too_many_relations_is_a_plan_error() {
        let mut cat = Catalog::new();
        let mut logical = LogicalPlan::scan("r0");
        cat.add_stats("r0", TableStats::wisconsin(100));
        for i in 1..=MAX_JOIN_RELATIONS {
            let name = format!("r{i}");
            cat.add_stats(&name, TableStats::wisconsin(100));
            logical = logical.join(LogicalPlan::scan(&name));
        }
        let err = Planner::new(15.0, 625.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .unwrap_err();
        assert!(
            matches!(err, PlanError::Unsupported(ref m) if m.contains("exceeds")),
            "{err}"
        );
    }

    #[test]
    fn unknown_table_is_an_error() {
        let cat = catalog();
        let logical = LogicalPlan::scan("missing").sort();
        let err = Planner::new(15.0, 100.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .unwrap_err();
        assert_eq!(err, PlanError::UnknownTable("missing".into()));
    }

    #[test]
    fn selective_build_filter_materializes_nonselective_defers() {
        let cat = catalog();
        let planner = Planner::new(15.0, 250.0, LayerKind::BlockedMemory);
        // Selective: 1% of T — cheap to write, every rule favors
        // materializing before the join.
        let selective = LogicalPlan::scan("T")
            .filter(Predicate::KeyBelow(100))
            .join(LogicalPlan::scan("V"));
        let planned = planner.plan(&selective, &cat).expect("plans");
        if let PhysicalPlan::Join { left, .. } = &planned.plan {
            if let PhysicalPlan::Filter {
                materialization, ..
            } = &**left
            {
                assert_eq!(*materialization, Materialization::Materialized);
            } else {
                panic!("expected filter under join");
            }
        } else {
            panic!("expected join root");
        }
    }

    #[test]
    fn parallelism_knob_scales_every_candidates_critical_path() {
        // λ = 1, M = |T|/4: serially the read-only block-nested-loops
        // plan edges out the Grace family (it avoids the partition
        // writes). Before the morsel-driven executors, only the
        // partitioned candidates could shrink under workers and the
        // winner flipped away from NLJ; now NLJ fans out over its outer
        // blocks too, so it keeps both its serial win *and* its lead at
        // DoP 8 — and every candidate's critical path must shrink.
        let mut cat = Catalog::new();
        cat.add_stats("T", TableStats::wisconsin(10_000));
        cat.add_stats("V", TableStats::wisconsin(15_000));
        let logical = LogicalPlan::scan("T").join(LogicalPlan::scan("V"));

        let serial = Planner::new(1.0, 3125.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        let par = Planner::new(1.0, 3125.0, LayerKind::BlockedMemory)
            .with_threads(8)
            .plan(&logical, &cat)
            .expect("plans");
        assert_eq!(serial.threads, 1);
        assert_eq!(par.threads, 8);

        let join_choice = |p: &PlannedQuery| {
            p.choices
                .iter()
                .find(|c| c.node.starts_with("join"))
                .expect("join enumerated")
                .clone()
        };
        let (serial_join, par_join) = (join_choice(&serial), join_choice(&par));
        assert_eq!(
            serial_join.chosen, "NLJ",
            "serial baseline should win at λ=1"
        );
        // The flip the critical path buys now happens *within* the NLJ
        // family: swapping the build side makes more (smaller) outer
        // blocks, which serially costs extra block reads but at DoP 8
        // fans out wider — the swapped variant overtakes.
        assert!(
            par_join.chosen.starts_with("NLJ"),
            "block-parallel NLJ keeps its lead under workers, got {}",
            par_join.chosen
        );
        assert_ne!(
            par_join.chosen, serial_join.chosen,
            "the wider-fan-out build order should win under workers"
        );
        assert!(
            par_join.candidates[0].cost_units < serial_join.candidates[0].cost_units,
            "critical path must undercut the serial sum"
        );
        // Every candidate family shrinks: no all-serial joins are left.
        for c in &par_join.candidates {
            let serial_units = serial_join
                .candidates
                .iter()
                .find(|s| s.label == c.label)
                .expect("same candidate field")
                .cost_units;
            assert!(
                c.cost_units < serial_units,
                "{}: {} !< {serial_units}",
                c.label,
                c.cost_units
            );
        }
    }

    #[test]
    fn skew_statistics_surface_a_guided_candidate_and_fix_the_estimate() {
        use pmem_sim::{LayerKind as LK, PmDevice};
        use std::sync::Arc;
        use wisconsin::Record as _;

        let dev = PmDevice::paper_default();
        let zipf_keys = |n: u64, fanout: u64, seed: u64| -> Vec<u64> {
            wisconsin::skewed_input(n, fanout, 1.2, seed)
                .iter()
                .map(|r| r.key())
                .collect()
        };
        let mut cat = Catalog::new();
        let add = |cat: &mut Catalog, name: &str, keys: &[u64], domain: u64| {
            let col = Arc::new(pmem_sim::PCollection::from_records_uncounted(
                &dev,
                LK::BlockedMemory,
                name,
                keys.iter().map(|&k| WisconsinRecord::from_key(k)),
            ));
            let stats = Arc::new(TableStatistics::build(keys, 42));
            cat.add_table_with_statistics(name, col, domain, stats);
        };
        // Center: unique keys. Two skewed dimensions sharing the head.
        let center: Vec<u64> = (0..2000).collect();
        add(&mut cat, "C", &center, 2000);
        add(&mut cat, "D1", &zipf_keys(8000, 4, 1), 2000);
        add(&mut cat, "D2", &zipf_keys(8000, 4, 2), 2000);

        let logical = LogicalPlan::scan("C")
            .join(LogicalPlan::scan("D1"))
            .join(LogicalPlan::scan("D2"));
        let planner = Planner::new(15.0, 2500.0, LayerKind::BlockedMemory);
        let planned = planner.plan(&logical, &cat).expect("plans");
        assert!(planned.adapt, "adaptivity defaults on");

        // The skew-aware estimate must see D1 ⋈ D2 exploding (hot keys
        // multiply), so no chosen order starts with (D1 ⋈ D2).
        let order = planned
            .choices
            .iter()
            .find(|c| c.node.starts_with("join order"))
            .expect("order search");
        assert!(
            !order.chosen.starts_with("((D1 ⋈ D2)"),
            "skewed dimensions must not join first: {}",
            order.chosen
        );
        // And at least one join edge offers the guided candidate.
        let has_cgj = planned
            .choices
            .iter()
            .filter(|c| c.node.starts_with("join ~"))
            .any(|c| c.candidates.iter().any(|cand| cand.label.contains("CGJ")));
        assert!(has_cgj, "guided join must be in the candidate field");

        // With adaptivity off the flag propagates.
        let frozen = planner
            .clone()
            .with_adaptivity(false)
            .plan(&logical, &cat)
            .expect("plans");
        assert!(!frozen.adapt);
    }

    #[test]
    fn histogram_selectivity_beats_uniform_on_skewed_filters() {
        use pmem_sim::{LayerKind as LK, PmDevice};
        use std::sync::Arc;

        let dev = PmDevice::paper_default();
        // 90% of rows carry keys below 100, domain reaches 10 000.
        let keys: Vec<u64> = (0..10_000u64)
            .map(|i| if i % 10 == 0 { 100 + i % 9900 } else { i % 100 })
            .collect();
        let col = Arc::new(pmem_sim::PCollection::from_records_uncounted(
            &dev,
            LK::BlockedMemory,
            "S",
            keys.iter().map(|&k| WisconsinRecord::from_key(k)),
        ));
        let mut cat = Catalog::new();
        cat.add_table_with_statistics(
            "S",
            col,
            10_000,
            Arc::new(TableStatistics::build(&keys, 42)),
        );
        let logical = LogicalPlan::scan("S").filter(Predicate::KeyBelow(100));
        let planned = Planner::new(15.0, 625.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        let PhysicalPlan::Filter { selectivity, .. } = &planned.plan else {
            panic!("filter root");
        };
        // Uniform assumption would say 1%; the histogram knows ~90%.
        assert!(
            *selectivity > 0.8,
            "histogram must see the skew: {selectivity}"
        );
    }

    #[test]
    fn layer_overhead_raises_ramdisk_costs() {
        let cat = catalog();
        let logical = LogicalPlan::scan("T").sort();
        let cheap = Planner::new(15.0, 625.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        let pricey = Planner::new(15.0, 625.0, LayerKind::RamDisk)
            .plan(&logical, &cat)
            .expect("plans");
        assert!(
            pricey.predicted.reads > cheap.predicted.reads,
            "RAM-disk call overhead must surface in predictions"
        );
    }
}
