//! Lowering: physical plan → executable operator tree → measured run.
//!
//! Streaming segments (scan → filter) lower onto the Volcano operators
//! in `write_limited::exec` and are staged into persistent collections
//! at blocking boundaries with [`write_limited::exec::stage`]; blocking
//! nodes (sort, join, aggregate) then invoke the chosen algorithm on the
//! staged collections, so every cacheline the plan touches flows through
//! the counted device. Deferred filters are lowered onto the §3.1
//! runtime ([`DeferredFilter`] + [`filtered_iterate_join`]), which
//! re-filters the source per pass instead of writing the view.

use crate::catalog::Catalog;
use crate::enumerate::{PlanError, PlannedQuery};
use crate::logical::Predicate;
use crate::physical::{Materialization, PhysicalPlan};
use pmem_sim::{BufferPool, IoStats, LayerKind, Pm, PmError};
use wisconsin::{Pair, Record, WisconsinRecord};
use wl_runtime::OpCtx;
use write_limited::agg::{sort_based_aggregate, GroupAgg};
use write_limited::exec::{stage, FilterOp, ScanOp};
use write_limited::join::JoinContext;
use write_limited::pipeline::{filtered_iterate_join, DeferredFilter};
use write_limited::sort::{SortAlgorithm, SortContext};

/// A joined Wisconsin pair.
pub type WisPair = Pair<WisconsinRecord, WisconsinRecord>;

/// Execution failure.
#[derive(Debug)]
pub enum ExecError {
    /// Planning-level problem discovered at lowering time.
    Plan(PlanError),
    /// A scanned table was registered without data.
    MissingData(String),
    /// The underlying algorithm rejected the setting.
    Pm(PmError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Plan(e) => write!(f, "{e}"),
            ExecError::MissingData(t) => write!(f, "table {t:?} has no bound data"),
            ExecError::Pm(e) => write!(f, "{e:?}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PmError> for ExecError {
    fn from(e: PmError) -> Self {
        ExecError::Pm(e)
    }
}

/// The rows a plan produced, drained to DRAM (uncounted) for
/// verification. Pairs are normalized to logical order (build-side
/// swaps undone).
#[derive(Clone, Debug, PartialEq)]
pub enum OutputRows {
    /// Base records.
    Wis(Vec<WisconsinRecord>),
    /// Joined pairs in logical (left, right) order.
    Pairs(Vec<(WisconsinRecord, WisconsinRecord)>),
    /// Aggregation groups.
    Groups(Vec<GroupAgg>),
}

impl OutputRows {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            OutputRows::Wis(v) => v.len(),
            OutputRows::Pairs(v) => v.len(),
            OutputRows::Groups(v) => v.len(),
        }
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical multiset form for cross-plan equivalence: one sorted
    /// `(key, a, b)` triple per row.
    pub fn canonical(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = match self {
            OutputRows::Wis(rows) => rows.iter().map(|r| (r.key(), r.payload(), 0)).collect(),
            OutputRows::Pairs(rows) => rows
                .iter()
                .map(|(l, r)| (l.key(), l.payload(), r.payload()))
                .collect(),
            OutputRows::Groups(rows) => rows.iter().map(|g| (g.key, g.count, g.sum)).collect(),
        };
        v.sort_unstable();
        v
    }

    /// The key sequence in produced order (for sortedness checks).
    pub fn keys(&self) -> Vec<u64> {
        match self {
            OutputRows::Wis(rows) => rows.iter().map(Record::key).collect(),
            OutputRows::Pairs(rows) => rows.iter().map(|(l, _)| l.key()).collect(),
            OutputRows::Groups(rows) => rows.iter().map(|g| g.key).collect(),
        }
    }
}

/// One measured plan execution.
#[derive(Clone, Debug)]
pub struct Executed {
    /// The produced rows (drained uncounted).
    pub output: OutputRows,
    /// Cacheline traffic the run charged to the device.
    pub stats: IoStats,
    /// Simulated wall-clock seconds of the run.
    pub secs: f64,
}

/// Intermediate result of one plan subtree.
enum Stream<'a> {
    Borrowed(&'a pmem_sim::PCollection<WisconsinRecord>),
    Wis(pmem_sim::PCollection<WisconsinRecord>),
    Pairs {
        col: pmem_sim::PCollection<WisPair>,
        swapped: bool,
    },
    Groups(pmem_sim::PCollection<GroupAgg>),
}

/// Executes a planned query against the catalog's bound tables,
/// measuring the traffic between entry and exit.
///
/// # Errors
/// Returns [`ExecError`] when a table has no data bound or an algorithm
/// rejects its inputs.
pub fn execute(
    planned: &PlannedQuery,
    catalog: &Catalog<'_>,
    dev: &Pm,
    layer: LayerKind,
    pool: &BufferPool,
) -> Result<Executed, ExecError> {
    let mut lowerer = Lowerer {
        catalog,
        dev,
        layer,
        pool,
        threads: planned.threads,
        fresh: 0,
    };
    let before = dev.snapshot();
    let result = lowerer.eval(&planned.plan)?;
    let stats = dev.snapshot().since(&before);
    let output = match result {
        Stream::Borrowed(col) => OutputRows::Wis(col.to_vec_uncounted()),
        Stream::Wis(col) => OutputRows::Wis(col.to_vec_uncounted()),
        Stream::Pairs { col, swapped } => OutputRows::Pairs(
            col.to_vec_uncounted()
                .into_iter()
                .map(|p| {
                    if swapped {
                        (p.right, p.left)
                    } else {
                        (p.left, p.right)
                    }
                })
                .collect(),
        ),
        Stream::Groups(col) => OutputRows::Groups(col.to_vec_uncounted()),
    };
    Ok(Executed {
        output,
        secs: stats.time_secs(&dev.config().latency),
        stats,
    })
}

struct Lowerer<'a, 'c> {
    catalog: &'a Catalog<'c>,
    dev: &'a Pm,
    layer: LayerKind,
    pool: &'a BufferPool,
    /// Degree of parallelism the plan was costed for; partitioned
    /// operators fan out to the same degree so prediction and run agree.
    threads: usize,
    fresh: u64,
}

impl<'a, 'c> Lowerer<'a, 'c> {
    fn name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}-{}", self.fresh)
    }

    fn eval(&mut self, plan: &PhysicalPlan) -> Result<Stream<'c>, ExecError> {
        match plan {
            PhysicalPlan::Scan { table, .. } => {
                let col = self
                    .catalog
                    .data(table)
                    .ok_or_else(|| ExecError::MissingData(table.clone()))?;
                Ok(Stream::Borrowed(col))
            }
            PhysicalPlan::Filter {
                input, predicate, ..
            } => {
                // Deferred filters are consumed by the parent join; if
                // one is evaluated directly the view semantics collapse
                // to a single materializing pass, which is identical
                // traffic-wise.
                let child = self.eval(input)?;
                self.filter_stream(child, *predicate)
            }
            PhysicalPlan::Sort { input, algo, .. } => {
                let child = self.eval(input)?;
                self.sort_stream(child, *algo)
            }
            PhysicalPlan::Join {
                left,
                right,
                algo,
                swapped,
                ..
            } => self.join(left, right, *algo, *swapped),
            PhysicalPlan::Aggregate { input, x, .. } => {
                let child = self.eval(input)?;
                self.aggregate_stream(child, *x)
            }
        }
    }

    /// Lowers a filter as a Volcano `scan → filter` chain staged into a
    /// fresh persistent collection.
    fn filter_stream(
        &mut self,
        child: Stream<'c>,
        predicate: Predicate,
    ) -> Result<Stream<'c>, ExecError> {
        fn run<R: Record>(
            col: &pmem_sim::PCollection<R>,
            predicate: Predicate,
            dev: &Pm,
            layer: LayerKind,
            name: &str,
        ) -> Result<pmem_sim::PCollection<R>, PmError> {
            let mut op = FilterOp::new(ScanOp::new(col), move |r: &R| predicate.matches(r));
            stage(&mut op, dev, layer, name)
        }
        let name = self.name("filtered");
        match child {
            Stream::Borrowed(col) => Ok(Stream::Wis(run(
                col, predicate, self.dev, self.layer, &name,
            )?)),
            Stream::Wis(col) => Ok(Stream::Wis(run(
                &col, predicate, self.dev, self.layer, &name,
            )?)),
            Stream::Pairs { col, swapped } => Ok(Stream::Pairs {
                col: run(&col, predicate, self.dev, self.layer, &name)?,
                swapped,
            }),
            Stream::Groups(col) => Ok(Stream::Groups(run(
                &col, predicate, self.dev, self.layer, &name,
            )?)),
        }
    }

    fn sort_stream(
        &mut self,
        child: Stream<'c>,
        algo: SortAlgorithm,
    ) -> Result<Stream<'c>, ExecError> {
        let ctx = SortContext::new(self.dev, self.layer, self.pool).with_threads(self.threads);
        let name = self.name("sorted");
        match child {
            Stream::Borrowed(col) => Ok(Stream::Wis(algo.run(col, &ctx, &name)?)),
            Stream::Wis(col) => Ok(Stream::Wis(algo.run(&col, &ctx, &name)?)),
            Stream::Pairs { col, swapped } => Ok(Stream::Pairs {
                col: algo.run(&col, &ctx, &name)?,
                swapped,
            }),
            Stream::Groups(col) => Ok(Stream::Groups(algo.run(&col, &ctx, &name)?)),
        }
    }

    fn join(
        &mut self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        algo: write_limited::join::JoinAlgorithm,
        swapped: bool,
    ) -> Result<Stream<'c>, ExecError> {
        let ctx = JoinContext::new(self.dev, self.layer, self.pool).with_threads(self.threads);
        let name = self.name("joined");

        // Deferred-view build side: §3.1 runtime path.
        if let PhysicalPlan::Filter {
            input,
            predicate,
            selectivity,
            materialization: Materialization::Deferred,
            ..
        } = left
        {
            let src = match self.eval(input)? {
                Stream::Borrowed(col) => col,
                _ => {
                    return Err(ExecError::Plan(PlanError::Unsupported(
                        "deferred filter over a non-base input".into(),
                    )))
                }
            };
            let probe = self.eval_to_wis(right)?;
            let mut rt = OpCtx::new(self.dev.lambda());
            let p = *predicate;
            let mut filter = DeferredFilter::new(src, move |r| p.matches(r), *selectivity, &mut rt);
            let out = filtered_iterate_join(&mut filter, probe.as_ref(), &ctx, &mut rt, &name)?;
            return Ok(Stream::Pairs {
                col: out,
                swapped: false,
            });
        }

        let build = self.eval_to_wis(left)?;
        let probe = self.eval_to_wis(right)?;
        let (b, p) = if swapped {
            (probe.as_ref(), build.as_ref())
        } else {
            (build.as_ref(), probe.as_ref())
        };
        let out = algo.run(b, p, &ctx, &name)?;
        Ok(Stream::Pairs { col: out, swapped })
    }

    /// Evaluates a subtree that must produce base records (join inputs).
    fn eval_to_wis(&mut self, plan: &PhysicalPlan) -> Result<WisHandle<'c>, ExecError> {
        match self.eval(plan)? {
            Stream::Borrowed(col) => Ok(WisHandle::Borrowed(col)),
            Stream::Wis(col) => Ok(WisHandle::Owned(col)),
            _ => Err(ExecError::Plan(PlanError::Unsupported(
                "join inputs must produce base records".into(),
            ))),
        }
    }

    fn aggregate_stream(&mut self, child: Stream<'c>, x: f64) -> Result<Stream<'c>, ExecError> {
        let ctx = SortContext::new(self.dev, self.layer, self.pool).with_threads(self.threads);
        let name = self.name("groups");
        let out = match child {
            Stream::Borrowed(col) => sort_based_aggregate(col, x, |r| r.payload(), &ctx, &name)?,
            Stream::Wis(col) => sort_based_aggregate(&col, x, |r| r.payload(), &ctx, &name)?,
            Stream::Pairs { col, swapped } => {
                if swapped {
                    sort_based_aggregate(&col, x, |p| p.left.payload(), &ctx, &name)?
                } else {
                    sort_based_aggregate(&col, x, |p| p.right.payload(), &ctx, &name)?
                }
            }
            Stream::Groups(_) => {
                return Err(ExecError::Plan(PlanError::Unsupported(
                    "aggregate over aggregate".into(),
                )))
            }
        };
        Ok(Stream::Groups(out))
    }
}

/// Borrowed-or-owned Wisconsin collection.
enum WisHandle<'c> {
    Borrowed(&'c pmem_sim::PCollection<WisconsinRecord>),
    Owned(pmem_sim::PCollection<WisconsinRecord>),
}

impl<'c> WisHandle<'c> {
    fn as_ref(&self) -> &pmem_sim::PCollection<WisconsinRecord> {
        match self {
            WisHandle::Borrowed(c) => c,
            WisHandle::Owned(c) => c,
        }
    }
}
