//! Lowering: physical plan → executable operator tree → measured run.
//!
//! Streaming segments (scan → filter) lower onto the Volcano operators
//! in `write_limited::exec` and are staged into persistent collections
//! at blocking boundaries with [`write_limited::exec::stage`]; blocking
//! nodes (sort, join, aggregate) then invoke the chosen algorithm on the
//! staged collections, so every cacheline the plan touches flows through
//! the counted device. Deferred filters are lowered onto the §3.1
//! runtime ([`DeferredFilter`] + [`filtered_iterate_join`]), which
//! re-filters the source per pass instead of writing the view.
//!
//! Two entry points share the machinery: [`execute_stream`] runs the
//! plan and hands back an owned [`ResultSet`] that clients drain in
//! batches (the `wl-db` facade's streaming path), while [`execute`]
//! drains it eagerly into [`OutputRows`] for tests and harnesses.

use crate::catalog::Catalog;
use crate::enumerate::{NodeChoice, PlanError, PlannedQuery, Planner};
use crate::logical::{LogicalPlan, Predicate};
use crate::physical::{ChainSlots, Materialization, PhysicalPlan};
use pmem_sim::{BufferPool, IoStats, LayerKind, Pm, PmError};
use std::borrow::Cow;
use std::sync::Arc;
use wisconsin::{Pair, Record, WisconsinRecord};
use wl_runtime::OpCtx;
use write_limited::agg::{sort_based_aggregate, GroupAgg};
use write_limited::exec::{stage, FilterOp, MapOp, ScanOp};
use write_limited::join::{guided_join_with, JoinAlgorithm, JoinContext};
use write_limited::pipeline::{filtered_iterate_join, DeferredFilter};
use write_limited::sort::{SortAlgorithm, SortContext};
use write_limited::stats::TableStatistics;

/// Observed-over-estimated (or the inverse) ratio past which a chain
/// join's first materialization triggers re-enumeration of the
/// remaining join subtree.
const DRIFT_THRESHOLD: f64 = 2.0;

/// Seed the observed-intermediate statistics sketch is built with —
/// fixed, so adaptation is deterministic across runs and thread counts.
const OBSERVED_STATS_SEED: u64 = 0xADA7;

/// A joined Wisconsin pair.
pub type WisPair = Pair<WisconsinRecord, WisconsinRecord>;

/// Builds one flat chain row from a joined pair: the join key lands in
/// `attrs[0]`, each relation's payload in its logical slot
/// (`attrs[1 + slot]`), and every other attribute is zeroed — so lowered
/// and naive n-way evaluation produce bit-identical rows.
pub(crate) fn fold_pair(
    left: &WisconsinRecord,
    l_slots: &[usize],
    right: &WisconsinRecord,
    r_slots: &[usize],
) -> WisconsinRecord {
    let mut out = WisconsinRecord {
        attrs: [0; wisconsin::WISCONSIN_ATTRS],
    };
    out.attrs[0] = left.key();
    copy_slots(&mut out, left, l_slots);
    copy_slots(&mut out, right, r_slots);
    out
}

fn copy_slots(out: &mut WisconsinRecord, rec: &WisconsinRecord, slots: &[usize]) {
    match slots {
        // A base-relation leaf still carries its payload natively.
        [slot] => out.attrs[1 + slot] = rec.payload(),
        // A chain-join child is already slotted.
        _ => {
            for &s in slots {
                out.attrs[1 + s] = rec.attrs[1 + s];
            }
        }
    }
}

/// Execution failure.
#[derive(Debug)]
pub enum ExecError {
    /// Planning-level problem discovered at lowering time.
    Plan(PlanError),
    /// A scanned table was registered without data.
    MissingData(String),
    /// The underlying algorithm rejected the setting.
    Pm(PmError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Plan(e) => write!(f, "{e}"),
            ExecError::MissingData(t) => write!(f, "table {t:?} has no bound data"),
            ExecError::Pm(e) => write!(f, "{e:?}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PmError> for ExecError {
    fn from(e: PmError) -> Self {
        ExecError::Pm(e)
    }
}

/// The rows a plan produced, drained to DRAM (uncounted) for
/// verification or client delivery. Pairs are normalized to logical
/// order (build-side swaps undone).
#[derive(Clone, Debug, PartialEq)]
pub enum OutputRows {
    /// Base records.
    Wis(Vec<WisconsinRecord>),
    /// Joined pairs in logical (left, right) order.
    Pairs(Vec<(WisconsinRecord, WisconsinRecord)>),
    /// n-way joined chain rows: `attrs[0]` is the join key,
    /// `attrs[1..=tables]` one payload per base relation in logical
    /// (SQL) join order.
    Multi {
        /// Slotted chain rows.
        rows: Vec<WisconsinRecord>,
        /// Number of base relations joined.
        tables: usize,
    },
    /// Aggregation groups.
    Groups(Vec<GroupAgg>),
}

impl OutputRows {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            OutputRows::Wis(v) => v.len(),
            OutputRows::Pairs(v) => v.len(),
            OutputRows::Multi { rows, .. } => rows.len(),
            OutputRows::Groups(v) => v.len(),
        }
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical multiset form for cross-plan equivalence: one sorted
    /// `(key, a, b)` triple per row. n-way rows keep their first two
    /// payload slots; use [`OutputRows::canonical_wide`] for the full
    /// row.
    pub fn canonical(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = match self {
            OutputRows::Wis(rows) => rows.iter().map(|r| (r.key(), r.payload(), 0)).collect(),
            OutputRows::Pairs(rows) => rows
                .iter()
                .map(|(l, r)| (l.key(), l.payload(), r.payload()))
                .collect(),
            OutputRows::Multi { rows, .. } => rows
                .iter()
                .map(|r| (r.key(), r.attrs[1], r.attrs[2]))
                .collect(),
            OutputRows::Groups(rows) => rows.iter().map(|g| (g.key, g.count, g.sum)).collect(),
        };
        v.sort_unstable();
        v
    }

    /// Expands each row into its full column values, in produced order —
    /// base: `key, payload`; pairs: `key, l.payload, r.payload`; n-way:
    /// `key, payloads…`; groups: `key, count, sum, min, max`. The one
    /// shape-to-columns mapping that result projection and the
    /// equivalence surfaces share.
    pub fn wide_rows(&self) -> Vec<Vec<u64>> {
        match self {
            OutputRows::Wis(rows) => rows.iter().map(|r| vec![r.key(), r.payload()]).collect(),
            OutputRows::Pairs(rows) => rows
                .iter()
                .map(|(l, r)| vec![l.key(), l.payload(), r.payload()])
                .collect(),
            OutputRows::Multi { rows, tables } => {
                rows.iter().map(|r| r.attrs[..=*tables].to_vec()).collect()
            }
            OutputRows::Groups(rows) => rows
                .iter()
                .map(|g| vec![g.key, g.count, g.sum, g.min, g.max])
                .collect(),
        }
    }

    /// Canonical multiset form carrying every column — the n-way
    /// equivalence surface: one sorted value vector per row.
    pub fn canonical_wide(&self) -> Vec<Vec<u64>> {
        let mut v = self.wide_rows();
        v.sort_unstable();
        v
    }

    /// The key sequence in produced order (for sortedness checks).
    pub fn keys(&self) -> Vec<u64> {
        match self {
            OutputRows::Wis(rows) => rows.iter().map(Record::key).collect(),
            OutputRows::Pairs(rows) => rows.iter().map(|(l, _)| l.key()).collect(),
            OutputRows::Multi { rows, .. } => rows.iter().map(Record::key).collect(),
            OutputRows::Groups(rows) => rows.iter().map(|g| g.key).collect(),
        }
    }
}

/// A shared-or-owned Wisconsin collection: base tables come out of the
/// catalog as shared [`Arc`] handles, intermediates are owned.
#[derive(Debug)]
enum WisSource {
    Shared(Arc<pmem_sim::PCollection<WisconsinRecord>>),
    Owned(Box<pmem_sim::PCollection<WisconsinRecord>>),
}

impl WisSource {
    fn as_col(&self) -> &pmem_sim::PCollection<WisconsinRecord> {
        match self {
            WisSource::Shared(c) => c,
            WisSource::Owned(c) => c,
        }
    }
}

/// The materialized output of one plan execution, owned (no borrows on
/// the catalog) so it can be drained incrementally after the call that
/// produced it returns.
#[derive(Debug)]
pub enum ResultSet {
    /// Base records.
    Wis(WisResult),
    /// Joined pairs; `swapped` records whether the physical build side
    /// was the logical right (undone when rows are drained).
    Pairs {
        /// The joined output collection.
        col: pmem_sim::PCollection<WisPair>,
        /// True when build and probe sides were swapped by the planner.
        swapped: bool,
    },
    /// n-way chain rows (already normalized to logical slot order).
    Multi {
        /// The folded chain-row collection.
        col: pmem_sim::PCollection<WisconsinRecord>,
        /// Number of base relations joined.
        tables: usize,
    },
    /// Aggregation groups.
    Groups(pmem_sim::PCollection<GroupAgg>),
}

/// Base-record result payload (shared base table or owned intermediate).
#[derive(Debug)]
pub struct WisResult(WisSource);

impl ResultSet {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        match self {
            ResultSet::Wis(w) => w.0.as_col().len(),
            ResultSet::Pairs { col, .. } => col.len(),
            ResultSet::Multi { col, .. } => col.len(),
            ResultSet::Groups(col) => col.len(),
        }
    }

    /// True when the result holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains rows `[start, start + max)` (clamped to the result length)
    /// into DRAM without charging reads — result delivery to the client
    /// sits outside the simulated cost model, which already charged the
    /// run that produced the collection. Returns `None` once `start` is
    /// past the end; pair rows are normalized to logical order.
    pub fn rows(&self, start: usize, max: usize) -> Option<OutputRows> {
        let len = self.len();
        if start >= len {
            return None;
        }
        let end = start.saturating_add(max).min(len);
        Some(match self {
            ResultSet::Wis(w) => OutputRows::Wis(w.0.as_col().range_to_vec_uncounted(start, end)),
            ResultSet::Pairs { col, swapped } => OutputRows::Pairs(
                col.range_to_vec_uncounted(start, end)
                    .into_iter()
                    .map(|p| {
                        if *swapped {
                            (p.right, p.left)
                        } else {
                            (p.left, p.right)
                        }
                    })
                    .collect(),
            ),
            ResultSet::Multi { col, tables } => OutputRows::Multi {
                rows: col.range_to_vec_uncounted(start, end),
                tables: *tables,
            },
            ResultSet::Groups(col) => OutputRows::Groups(col.range_to_vec_uncounted(start, end)),
        })
    }

    /// Drains every row at once (the eager path).
    pub fn all_rows(&self) -> OutputRows {
        let len = self.len();
        self.rows(0, len).unwrap_or_else(|| self.empty_rows())
    }

    /// An empty [`OutputRows`] of this result's shape.
    pub fn empty_rows(&self) -> OutputRows {
        match self {
            ResultSet::Wis(_) => OutputRows::Wis(Vec::new()),
            ResultSet::Pairs { .. } => OutputRows::Pairs(Vec::new()),
            ResultSet::Multi { tables, .. } => OutputRows::Multi {
                rows: Vec::new(),
                tables: *tables,
            },
            ResultSet::Groups(_) => OutputRows::Groups(Vec::new()),
        }
    }
}

/// Evidence of one mid-plan re-planning event: the plan that actually
/// executed and the drift that triggered it.
#[derive(Clone, Debug)]
pub struct AdaptedPlan {
    /// The full plan as executed: the original tree with the re-planned
    /// join subtree spliced in (re-planned nodes carry a marker in their
    /// labels, and the observed intermediate appears as the subtree that
    /// produced it).
    pub plan: PhysicalPlan,
    /// Candidate evidence of the re-enumeration.
    pub choices: Vec<NodeChoice>,
    /// Rows the first materialization actually produced.
    pub observed_rows: u64,
    /// Rows the static plan estimated for it.
    pub estimated_rows: f64,
}

/// One measured plan execution with the result left un-drained: the
/// streaming entry point's return value.
#[derive(Debug)]
pub struct ExecutedStream {
    /// The produced rows, owned and drainable in batches.
    pub result: ResultSet,
    /// Cacheline traffic the run charged to the device.
    pub stats: IoStats,
    /// Simulated wall-clock seconds of the run.
    pub secs: f64,
    /// Recorded span tree when the run was profiled
    /// ([`execute_stream_profiled`]); `None` otherwise.
    pub profile: Option<pmem_sim::SpanNode>,
    /// `Some` when the executor re-planned the remaining join subtree
    /// after an observed cardinality drifted from its estimate.
    pub adapted: Option<AdaptedPlan>,
}

/// One measured plan execution, eagerly drained.
#[derive(Clone, Debug)]
pub struct Executed {
    /// The produced rows (drained uncounted).
    pub output: OutputRows,
    /// Cacheline traffic the run charged to the device.
    pub stats: IoStats,
    /// Simulated wall-clock seconds of the run.
    pub secs: f64,
}

/// Result cardinality of an intermediate stream (profiling annotation).
fn stream_len(s: &Stream) -> usize {
    match s {
        Stream::Wis(src) => src.as_col().len(),
        Stream::Pairs { col, .. } => col.len(),
        Stream::Chain { col, .. } => col.len(),
        Stream::Groups(col) => col.len(),
    }
}

/// Intermediate result of one plan subtree.
enum Stream {
    Wis(WisSource),
    Pairs {
        col: pmem_sim::PCollection<WisPair>,
        swapped: bool,
    },
    Chain {
        col: pmem_sim::PCollection<WisconsinRecord>,
        tables: usize,
    },
    Groups(pmem_sim::PCollection<GroupAgg>),
}

/// Executes a planned query against the catalog's bound tables,
/// measuring the traffic between entry and exit, and returns the result
/// as an owned, batch-drainable [`ResultSet`].
///
/// # Errors
/// Returns [`ExecError`] when a table has no data bound or an algorithm
/// rejects its inputs.
pub fn execute_stream(
    planned: &PlannedQuery,
    catalog: &Catalog,
    dev: &Pm,
    layer: LayerKind,
    pool: &BufferPool,
) -> Result<ExecutedStream, ExecError> {
    execute_stream_inner(planned, catalog, dev, layer, pool, false)
}

/// [`execute_stream`] with profiling armed: every plan node, operator
/// phase, and worker task records a span, and the resulting tree comes
/// back in [`ExecutedStream::profile`]. The spans observe the
/// thread-local ledgers without touching the device counters, so the
/// measured traffic is bit-identical to an unprofiled run.
///
/// # Errors
/// Returns [`ExecError`] when a table has no data bound or an algorithm
/// rejects its inputs.
///
/// # Panics
/// Panics if a profile is already active on the calling thread.
pub fn execute_stream_profiled(
    planned: &PlannedQuery,
    catalog: &Catalog,
    dev: &Pm,
    layer: LayerKind,
    pool: &BufferPool,
) -> Result<ExecutedStream, ExecError> {
    execute_stream_inner(planned, catalog, dev, layer, pool, true)
}

fn execute_stream_inner(
    planned: &PlannedQuery,
    catalog: &Catalog,
    dev: &Pm,
    layer: LayerKind,
    pool: &BufferPool,
    profile: bool,
) -> Result<ExecutedStream, ExecError> {
    // Re-planning re-enters the enumerator with the same knobs the
    // original plan was costed under.
    let planner = planned.adapt.then(|| {
        Planner::with_config(planned.lambda, planned.m_buffers, layer, dev.config())
            .with_threads(planned.threads)
    });
    let mut lowerer = Lowerer {
        catalog: Cow::Borrowed(catalog),
        dev,
        layer,
        pool,
        threads: planned.threads,
        fresh: 0,
        planner,
        in_join: false,
        adapted: None,
    };
    let before = dev.snapshot();
    if profile {
        pmem_sim::span::begin_profile("query");
    }
    let result = lowerer.eval(&planned.plan);
    // Close the root frame on success *and* error so the thread-local
    // profiling stack never leaks across queries.
    let tree = if profile {
        pmem_sim::span::end_profile()
    } else {
        None
    };
    let result = result?;
    let stats = dev.snapshot().since(&before);
    let adapted = lowerer.adapted.take().map(|mut a| {
        a.plan = replace_topmost_join(&planned.plan, &a.plan);
        a
    });
    let result = match result {
        Stream::Wis(src) => ResultSet::Wis(WisResult(src)),
        Stream::Pairs { col, swapped } => ResultSet::Pairs { col, swapped },
        Stream::Chain { col, tables } => ResultSet::Multi { col, tables },
        Stream::Groups(col) => ResultSet::Groups(col),
    };
    Ok(ExecutedStream {
        result,
        secs: stats.time_secs(&dev.config().latency),
        stats,
        profile: tree,
        adapted,
    })
}

/// The original plan with its (single) join subtree replaced by the
/// subtree that actually executed — wrapper nodes above the join tree
/// are preserved.
fn replace_topmost_join(plan: &PhysicalPlan, subtree: &PhysicalPlan) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Join { .. } => subtree.clone(),
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Aggregate { input, .. } => {
            let mut out = plan.clone();
            let (PhysicalPlan::Filter { input: slot, .. }
            | PhysicalPlan::Sort { input: slot, .. }
            | PhysicalPlan::Aggregate { input: slot, .. }) = &mut out
            else {
                unreachable!("matched a wrapper above")
            };
            **slot = replace_topmost_join(input, subtree);
            out
        }
        PhysicalPlan::Scan { .. } => plan.clone(),
    }
}

/// Executes a planned query and drains every row — [`execute_stream`]
/// plus an eager drain, for tests and harnesses.
///
/// # Errors
/// Returns [`ExecError`] when a table has no data bound or an algorithm
/// rejects its inputs.
pub fn execute(
    planned: &PlannedQuery,
    catalog: &Catalog,
    dev: &Pm,
    layer: LayerKind,
    pool: &BufferPool,
) -> Result<Executed, ExecError> {
    let run = execute_stream(planned, catalog, dev, layer, pool)?;
    Ok(Executed {
        output: run.result.all_rows(),
        stats: run.stats,
        secs: run.secs,
    })
}

struct Lowerer<'a> {
    /// Catalog snapshot; adaptation clones it on write to register the
    /// observed intermediate as a pseudo-table the re-planned subtree
    /// scans.
    catalog: Cow<'a, Catalog>,
    dev: &'a Pm,
    layer: LayerKind,
    pool: &'a BufferPool,
    /// Degree of parallelism the plan was costed for; partitioned
    /// operators fan out to the same degree so prediction and run agree.
    threads: usize,
    fresh: u64,
    /// `Some` when mid-plan re-planning is armed ([`PlannedQuery::adapt`]).
    planner: Option<Planner>,
    /// True while evaluating inside a join tree — adaptation only
    /// intercepts at the topmost chain join.
    in_join: bool,
    /// Set when re-planning fired; surfaced on [`ExecutedStream`].
    adapted: Option<AdaptedPlan>,
}

impl<'a> Lowerer<'a> {
    fn name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}-{}", self.fresh)
    }

    /// Evaluates `plan` inside a span labelled like the node, recording
    /// the result cardinality — so a profiled run yields a span tree
    /// whose plan-node spans mirror the physical plan's shape (plus
    /// operator-phase and per-task spans nested below them). Inert when
    /// no profile is armed.
    fn eval(&mut self, plan: &PhysicalPlan) -> Result<Stream, ExecError> {
        if let Some(out) = self.try_adaptive(plan)? {
            return Ok(out);
        }
        let span = pmem_sim::span::span_with(|| plan.label());
        let out = self.eval_node(plan)?;
        if span.is_active() {
            pmem_sim::span::note_rows(stream_len(&out) as u64);
        }
        drop(span);
        Ok(out)
    }

    /// Mid-plan adaptivity, intercepting at the topmost join of an
    /// adaptive n-way chain (n ≥ 3): execute the first-materializing
    /// join, compare its observed cardinality with the estimate, and on
    /// drift past [`DRIFT_THRESHOLD`] re-enumerate the remaining join
    /// subtree with statistics observed from the intermediate. Without
    /// drift the original structure executes unchanged (the intermediate
    /// is consumed exactly as the static plan would consume it), so a
    /// no-drift adaptive run is traffic-identical to a static one.
    /// Returns `None` when `plan` is not an interception point.
    fn try_adaptive(&mut self, plan: &PhysicalPlan) -> Result<Option<Stream>, ExecError> {
        let PhysicalPlan::Join {
            chain: Some(slots), ..
        } = plan
        else {
            return Ok(None);
        };
        if self.in_join || self.planner.is_none() || slots.tables() < 3 {
            return Ok(None);
        }
        let innermost = first_executed_join(plan);
        if std::ptr::eq(innermost, plan) {
            return Ok(None);
        }
        // Every leaf outside the first join must be re-plannable (a base
        // scan, possibly filtered) for the drift path to exist.
        let mut leaves = Vec::new();
        let mut inner_slots = Vec::new();
        let PhysicalPlan::Join { left, right, .. } = plan else {
            return Ok(None);
        };
        if !collect_remaining(left, &slots.left, innermost, &mut leaves, &mut inner_slots)
            || !collect_remaining(
                right,
                &slots.right,
                innermost,
                &mut leaves,
                &mut inner_slots,
            )
        {
            return Ok(None);
        }

        self.in_join = true;
        let Stream::Chain { col, tables: _ } = self.eval(innermost)? else {
            return Err(ExecError::Plan(PlanError::Unsupported(
                "chain join produced a non-chain stream".into(),
            )));
        };
        let observed = col.len() as u64;
        let estimated = innermost.cost().out_rows;
        let ratio = {
            let o = (observed as f64).max(1.0);
            let e = estimated.max(1.0);
            (o / e).max(e / o)
        };

        // Register the intermediate as a pseudo-table: the remaining
        // joins scan the very collection the first join wrote, so no
        // extra traffic is charged relative to the static pipeline.
        let pseudo = self.name("~mid");
        let keys: Vec<u64> = col
            .to_vec_uncounted()
            .iter()
            .map(wisconsin::Record::key)
            .collect();
        let mut domain = keys.clone();
        domain.sort_unstable();
        domain.dedup();
        let stats = Arc::new(TableStatistics::observed(&keys, OBSERVED_STATS_SEED));
        self.catalog.to_mut().add_table_with_statistics(
            &pseudo,
            Arc::new(col),
            (domain.len() as u64).max(1),
            stats,
        );

        let replanned = if ratio > DRIFT_THRESHOLD {
            self.replan_remaining(&pseudo, &inner_slots, &leaves, observed, estimated)
        } else {
            None
        };
        let out = match replanned {
            Some(adapted_root) => {
                let out = self.eval(&adapted_root)?;
                // For reporting, show the executed intermediate's subtree
                // where the re-planned tree scans the pseudo-table.
                let mut report = adapted_root;
                splice_scan(&mut report, &pseudo, innermost);
                if let Some(a) = self.adapted.as_mut() {
                    a.plan = report;
                }
                out
            }
            None => {
                let rewritten = substitute_scan(plan, innermost, &pseudo);
                self.eval(&rewritten)?
            }
        };
        self.in_join = false;
        Ok(Some(out))
    }

    /// Re-enumerates the remaining join subtree over the observed
    /// intermediate plus the not-yet-consumed base relations. Returns
    /// `None` (static fallback) if the enumerator rejects the entries.
    fn replan_remaining(
        &mut self,
        pseudo: &str,
        inner_slots: &[usize],
        leaves: &[(LogicalPlan, Vec<usize>)],
        observed: u64,
        estimated: f64,
    ) -> Option<PhysicalPlan> {
        let planner = self.planner.clone()?;
        let pseudo_scan = LogicalPlan::scan(pseudo);
        let mut entries: Vec<(&LogicalPlan, Vec<usize>)> =
            vec![(&pseudo_scan, inner_slots.to_vec())];
        for (leaf, slots) in leaves {
            entries.push((leaf, slots.clone()));
        }
        let mut choices = Vec::new();
        let mut subtree = planner
            .plan_join_slotted(&entries, self.catalog.as_ref(), &mut choices)
            .ok()?;
        mark_replanned(&mut subtree);
        self.adapted = Some(AdaptedPlan {
            plan: subtree.clone(),
            choices,
            observed_rows: observed,
            estimated_rows: estimated,
        });
        Some(subtree)
    }

    fn eval_node(&mut self, plan: &PhysicalPlan) -> Result<Stream, ExecError> {
        match plan {
            PhysicalPlan::Scan { table, .. } => {
                let col = self
                    .catalog
                    .data(table)
                    .ok_or_else(|| ExecError::MissingData(table.clone()))?;
                Ok(Stream::Wis(WisSource::Shared(Arc::clone(col))))
            }
            PhysicalPlan::Filter {
                input, predicate, ..
            } => {
                // Deferred filters are consumed by the parent join; if
                // one is evaluated directly the view semantics collapse
                // to a single materializing pass, which is identical
                // traffic-wise.
                let child = self.eval(input)?;
                self.filter_stream(child, *predicate)
            }
            PhysicalPlan::Sort { input, algo, .. } => {
                let child = self.eval(input)?;
                self.sort_stream(child, *algo)
            }
            PhysicalPlan::Join {
                left,
                right,
                algo,
                swapped,
                chain,
                hot,
                ..
            } => {
                let prev = self.in_join;
                self.in_join = true;
                let out = self.join(left, right, *algo, *swapped, chain.as_ref(), hot);
                self.in_join = prev;
                out
            }
            PhysicalPlan::Aggregate { input, x, .. } => {
                let child = self.eval(input)?;
                self.aggregate_stream(child, *x)
            }
        }
    }

    /// Lowers a filter as a Volcano `scan → filter` chain staged into a
    /// fresh persistent collection.
    fn filter_stream(&mut self, child: Stream, predicate: Predicate) -> Result<Stream, ExecError> {
        fn run<R: Record>(
            col: &pmem_sim::PCollection<R>,
            predicate: Predicate,
            dev: &Pm,
            layer: LayerKind,
            name: &str,
        ) -> Result<pmem_sim::PCollection<R>, PmError> {
            let mut op = FilterOp::new(ScanOp::new(col), move |r: &R| predicate.matches(r));
            stage(&mut op, dev, layer, name)
        }
        let name = self.name("filtered");
        match child {
            Stream::Wis(src) => Ok(Stream::Wis(WisSource::Owned(Box::new(run(
                src.as_col(),
                predicate,
                self.dev,
                self.layer,
                &name,
            )?)))),
            Stream::Pairs { col, swapped } => Ok(Stream::Pairs {
                col: run(&col, predicate, self.dev, self.layer, &name)?,
                swapped,
            }),
            Stream::Chain { col, tables } => Ok(Stream::Chain {
                col: run(&col, predicate, self.dev, self.layer, &name)?,
                tables,
            }),
            Stream::Groups(col) => Ok(Stream::Groups(run(
                &col, predicate, self.dev, self.layer, &name,
            )?)),
        }
    }

    fn sort_stream(&mut self, child: Stream, algo: SortAlgorithm) -> Result<Stream, ExecError> {
        let ctx = SortContext::new(self.dev, self.layer, self.pool).with_threads(self.threads);
        let name = self.name("sorted");
        match child {
            Stream::Wis(src) => Ok(Stream::Wis(WisSource::Owned(Box::new(algo.run(
                src.as_col(),
                &ctx,
                &name,
            )?)))),
            Stream::Pairs { col, swapped } => Ok(Stream::Pairs {
                col: algo.run(&col, &ctx, &name)?,
                swapped,
            }),
            Stream::Chain { col, tables } => Ok(Stream::Chain {
                col: algo.run(&col, &ctx, &name)?,
                tables,
            }),
            Stream::Groups(col) => Ok(Stream::Groups(algo.run(&col, &ctx, &name)?)),
        }
    }

    fn join(
        &mut self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        algo: JoinAlgorithm,
        swapped: bool,
        chain: Option<&ChainSlots>,
        hot: &[u64],
    ) -> Result<Stream, ExecError> {
        let ctx = JoinContext::new(self.dev, self.layer, self.pool).with_threads(self.threads);
        let name = self.name("joined");

        // Deferred-view build side: §3.1 runtime path.
        if let PhysicalPlan::Filter {
            input,
            predicate,
            selectivity,
            materialization: Materialization::Deferred,
            ..
        } = left
        {
            // The deferred view bypasses the Filter node's `eval` (its
            // work happens inside the iterate-join), so open its span
            // here to keep the profile tree congruent with the plan.
            let src = {
                let _fspan = pmem_sim::span::span_with(|| left.label());
                match self.eval(input)? {
                    Stream::Wis(WisSource::Shared(col)) => col,
                    _ => {
                        return Err(ExecError::Plan(PlanError::Unsupported(
                            "deferred filter over a non-base input".into(),
                        )))
                    }
                }
            };
            let probe = self.eval_to_wis(right)?;
            let mut rt = OpCtx::new(self.dev.lambda());
            let p = *predicate;
            let mut filter =
                DeferredFilter::new(&src, move |r| p.matches(r), *selectivity, &mut rt);
            let out = filtered_iterate_join(&mut filter, probe.as_col(), &ctx, &mut rt, &name)?;
            return self.finish_join(out, false, chain);
        }

        let build = self.eval_to_wis(left)?;
        let probe = self.eval_to_wis(right)?;
        let (b, p) = if swapped {
            (probe.as_col(), build.as_col())
        } else {
            (build.as_col(), probe.as_col())
        };
        // The cardinality-guided join takes the planner's hot-key set
        // (from the catalog statistics) instead of re-scanning inputs.
        let out = if algo == JoinAlgorithm::CGJ {
            guided_join_with(b, p, hot, &ctx, &name)?
        } else {
            algo.run(b, p, &ctx, &name)?
        };
        self.finish_join(out, swapped, chain)
    }

    /// Delivers a join's pair output: two-way joins stream the pairs,
    /// chain joins fold them into slotted flat rows in one staged pass
    /// (the fold normalizes swapped sides back to logical order, so
    /// chain streams never carry a swap flag).
    fn finish_join(
        &mut self,
        out: pmem_sim::PCollection<WisPair>,
        swapped: bool,
        chain: Option<&ChainSlots>,
    ) -> Result<Stream, ExecError> {
        let Some(slots) = chain else {
            return Ok(Stream::Pairs { col: out, swapped });
        };
        let name = self.name("chained");
        let (ls, rs) = (slots.left.clone(), slots.right.clone());
        let mut op = MapOp::new(ScanOp::new(&out), move |p: &WisPair| {
            let (l, r) = if swapped {
                (&p.right, &p.left)
            } else {
                (&p.left, &p.right)
            };
            fold_pair(l, &ls, r, &rs)
        });
        let col = stage(&mut op, self.dev, self.layer, &name)?;
        Ok(Stream::Chain {
            col,
            tables: slots.tables(),
        })
    }

    /// Evaluates a subtree that must produce flat Wisconsin records —
    /// base records or already-folded chain rows (join inputs).
    fn eval_to_wis(&mut self, plan: &PhysicalPlan) -> Result<WisSource, ExecError> {
        match self.eval(plan)? {
            Stream::Wis(src) => Ok(src),
            Stream::Chain { col, .. } => Ok(WisSource::Owned(Box::new(col))),
            _ => Err(ExecError::Plan(PlanError::Unsupported(
                "join inputs must produce base records".into(),
            ))),
        }
    }

    fn aggregate_stream(&mut self, child: Stream, x: f64) -> Result<Stream, ExecError> {
        let ctx = SortContext::new(self.dev, self.layer, self.pool).with_threads(self.threads);
        let name = self.name("groups");
        let out = match child {
            Stream::Wis(src) => {
                sort_based_aggregate(src.as_col(), x, |r| r.payload(), &ctx, &name)?
            }
            Stream::Pairs { col, swapped } => {
                if swapped {
                    sort_based_aggregate(&col, x, |p| p.left.payload(), &ctx, &name)?
                } else {
                    sort_based_aggregate(&col, x, |p| p.right.payload(), &ctx, &name)?
                }
            }
            // Chain rows aggregate the last-joined relation's payload,
            // mirroring the two-way probe-side convention.
            Stream::Chain { col, tables } => {
                sort_based_aggregate(&col, x, move |r| r.attrs[tables], &ctx, &name)?
            }
            Stream::Groups(_) => {
                return Err(ExecError::Plan(PlanError::Unsupported(
                    "aggregate over aggregate".into(),
                )))
            }
        };
        Ok(Stream::Groups(out))
    }
}

/// The join whose result materializes first: descend into join children
/// in evaluation order (left before right).
fn first_executed_join(plan: &PhysicalPlan) -> &PhysicalPlan {
    if let PhysicalPlan::Join { left, right, .. } = plan {
        if matches!(**left, PhysicalPlan::Join { .. }) {
            return first_executed_join(left);
        }
        if matches!(**right, PhysicalPlan::Join { .. }) {
            return first_executed_join(right);
        }
    }
    plan
}

/// Collects the join tree's leaves outside `innermost` as re-plannable
/// logical plans with their payload slots, and `innermost`'s combined
/// slots. Returns `false` when a leaf cannot be re-planned (adaptation
/// then stays out of the way).
fn collect_remaining(
    node: &PhysicalPlan,
    slots: &[usize],
    innermost: &PhysicalPlan,
    leaves: &mut Vec<(LogicalPlan, Vec<usize>)>,
    inner_slots: &mut Vec<usize>,
) -> bool {
    if std::ptr::eq(node, innermost) {
        inner_slots.extend_from_slice(slots);
        return true;
    }
    match node {
        PhysicalPlan::Join {
            left,
            right,
            chain: Some(s),
            ..
        } => {
            collect_remaining(left, &s.left, innermost, leaves, inner_slots)
                && collect_remaining(right, &s.right, innermost, leaves, inner_slots)
        }
        PhysicalPlan::Join { .. } => false,
        leaf => match leaf_logical(leaf) {
            Some(l) => {
                leaves.push((l, slots.to_vec()));
                true
            }
            None => false,
        },
    }
}

/// A join-tree leaf as the logical plan the re-enumerator can consume.
fn leaf_logical(plan: &PhysicalPlan) -> Option<LogicalPlan> {
    match plan {
        PhysicalPlan::Scan { table, .. } => Some(LogicalPlan::scan(table.clone())),
        PhysicalPlan::Filter {
            input, predicate, ..
        } => Some(leaf_logical(input)?.filter(*predicate)),
        _ => None,
    }
}

/// A clone of `node`'s subtree with `target` replaced by a scan of the
/// pseudo-table holding its already-computed result (same cost
/// annotation, so estimates render unchanged).
fn substitute_scan(node: &PhysicalPlan, target: &PhysicalPlan, pseudo: &str) -> PhysicalPlan {
    if std::ptr::eq(node, target) {
        return PhysicalPlan::Scan {
            table: pseudo.to_string(),
            cost: *target.cost(),
        };
    }
    let mut out = node.clone();
    if let (
        PhysicalPlan::Join { left, right, .. },
        PhysicalPlan::Join {
            left: l, right: r, ..
        },
    ) = (node, &mut out)
    {
        **l = substitute_scan(left, target, pseudo);
        **r = substitute_scan(right, target, pseudo);
    }
    out
}

/// Replaces the pseudo-table scan in a re-planned subtree with the
/// subtree that produced the intermediate — the reporting form.
fn splice_scan(node: &mut PhysicalPlan, pseudo: &str, subtree: &PhysicalPlan) {
    match node {
        PhysicalPlan::Scan { table, .. } if table == pseudo => *node = subtree.clone(),
        PhysicalPlan::Join { left, right, .. } => {
            splice_scan(left, pseudo, subtree);
            splice_scan(right, pseudo, subtree);
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Aggregate { input, .. } => splice_scan(input, pseudo, subtree),
        PhysicalPlan::Scan { .. } => {}
    }
}

/// Marks every join of a re-enumerated subtree as re-planned.
fn mark_replanned(node: &mut PhysicalPlan) {
    if let PhysicalPlan::Join {
        left,
        right,
        replanned,
        ..
    } = node
    {
        *replanned = true;
        mark_replanned(left);
        mark_replanned(right);
    }
}
