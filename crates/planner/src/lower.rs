//! Lowering: physical plan → executable operator tree → measured run.
//!
//! Streaming segments (scan → filter) lower onto the Volcano operators
//! in `write_limited::exec` and are staged into persistent collections
//! at blocking boundaries with [`write_limited::exec::stage`]; blocking
//! nodes (sort, join, aggregate) then invoke the chosen algorithm on the
//! staged collections, so every cacheline the plan touches flows through
//! the counted device. Deferred filters are lowered onto the §3.1
//! runtime ([`DeferredFilter`] + [`filtered_iterate_join`]), which
//! re-filters the source per pass instead of writing the view.
//!
//! Two entry points share the machinery: [`execute_stream`] runs the
//! plan and hands back an owned [`ResultSet`] that clients drain in
//! batches (the `wl-db` facade's streaming path), while [`execute`]
//! drains it eagerly into [`OutputRows`] for tests and harnesses.

use crate::catalog::Catalog;
use crate::enumerate::{PlanError, PlannedQuery};
use crate::logical::Predicate;
use crate::physical::{ChainSlots, Materialization, PhysicalPlan};
use pmem_sim::{BufferPool, IoStats, LayerKind, Pm, PmError};
use std::sync::Arc;
use wisconsin::{Pair, Record, WisconsinRecord};
use wl_runtime::OpCtx;
use write_limited::agg::{sort_based_aggregate, GroupAgg};
use write_limited::exec::{stage, FilterOp, MapOp, ScanOp};
use write_limited::join::JoinContext;
use write_limited::pipeline::{filtered_iterate_join, DeferredFilter};
use write_limited::sort::{SortAlgorithm, SortContext};

/// A joined Wisconsin pair.
pub type WisPair = Pair<WisconsinRecord, WisconsinRecord>;

/// Builds one flat chain row from a joined pair: the join key lands in
/// `attrs[0]`, each relation's payload in its logical slot
/// (`attrs[1 + slot]`), and every other attribute is zeroed — so lowered
/// and naive n-way evaluation produce bit-identical rows.
pub(crate) fn fold_pair(
    left: &WisconsinRecord,
    l_slots: &[usize],
    right: &WisconsinRecord,
    r_slots: &[usize],
) -> WisconsinRecord {
    let mut out = WisconsinRecord {
        attrs: [0; wisconsin::WISCONSIN_ATTRS],
    };
    out.attrs[0] = left.key();
    copy_slots(&mut out, left, l_slots);
    copy_slots(&mut out, right, r_slots);
    out
}

fn copy_slots(out: &mut WisconsinRecord, rec: &WisconsinRecord, slots: &[usize]) {
    match slots {
        // A base-relation leaf still carries its payload natively.
        [slot] => out.attrs[1 + slot] = rec.payload(),
        // A chain-join child is already slotted.
        _ => {
            for &s in slots {
                out.attrs[1 + s] = rec.attrs[1 + s];
            }
        }
    }
}

/// Execution failure.
#[derive(Debug)]
pub enum ExecError {
    /// Planning-level problem discovered at lowering time.
    Plan(PlanError),
    /// A scanned table was registered without data.
    MissingData(String),
    /// The underlying algorithm rejected the setting.
    Pm(PmError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Plan(e) => write!(f, "{e}"),
            ExecError::MissingData(t) => write!(f, "table {t:?} has no bound data"),
            ExecError::Pm(e) => write!(f, "{e:?}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PmError> for ExecError {
    fn from(e: PmError) -> Self {
        ExecError::Pm(e)
    }
}

/// The rows a plan produced, drained to DRAM (uncounted) for
/// verification or client delivery. Pairs are normalized to logical
/// order (build-side swaps undone).
#[derive(Clone, Debug, PartialEq)]
pub enum OutputRows {
    /// Base records.
    Wis(Vec<WisconsinRecord>),
    /// Joined pairs in logical (left, right) order.
    Pairs(Vec<(WisconsinRecord, WisconsinRecord)>),
    /// n-way joined chain rows: `attrs[0]` is the join key,
    /// `attrs[1..=tables]` one payload per base relation in logical
    /// (SQL) join order.
    Multi {
        /// Slotted chain rows.
        rows: Vec<WisconsinRecord>,
        /// Number of base relations joined.
        tables: usize,
    },
    /// Aggregation groups.
    Groups(Vec<GroupAgg>),
}

impl OutputRows {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            OutputRows::Wis(v) => v.len(),
            OutputRows::Pairs(v) => v.len(),
            OutputRows::Multi { rows, .. } => rows.len(),
            OutputRows::Groups(v) => v.len(),
        }
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical multiset form for cross-plan equivalence: one sorted
    /// `(key, a, b)` triple per row. n-way rows keep their first two
    /// payload slots; use [`OutputRows::canonical_wide`] for the full
    /// row.
    pub fn canonical(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = match self {
            OutputRows::Wis(rows) => rows.iter().map(|r| (r.key(), r.payload(), 0)).collect(),
            OutputRows::Pairs(rows) => rows
                .iter()
                .map(|(l, r)| (l.key(), l.payload(), r.payload()))
                .collect(),
            OutputRows::Multi { rows, .. } => rows
                .iter()
                .map(|r| (r.key(), r.attrs[1], r.attrs[2]))
                .collect(),
            OutputRows::Groups(rows) => rows.iter().map(|g| (g.key, g.count, g.sum)).collect(),
        };
        v.sort_unstable();
        v
    }

    /// Expands each row into its full column values, in produced order —
    /// base: `key, payload`; pairs: `key, l.payload, r.payload`; n-way:
    /// `key, payloads…`; groups: `key, count, sum, min, max`. The one
    /// shape-to-columns mapping that result projection and the
    /// equivalence surfaces share.
    pub fn wide_rows(&self) -> Vec<Vec<u64>> {
        match self {
            OutputRows::Wis(rows) => rows.iter().map(|r| vec![r.key(), r.payload()]).collect(),
            OutputRows::Pairs(rows) => rows
                .iter()
                .map(|(l, r)| vec![l.key(), l.payload(), r.payload()])
                .collect(),
            OutputRows::Multi { rows, tables } => {
                rows.iter().map(|r| r.attrs[..=*tables].to_vec()).collect()
            }
            OutputRows::Groups(rows) => rows
                .iter()
                .map(|g| vec![g.key, g.count, g.sum, g.min, g.max])
                .collect(),
        }
    }

    /// Canonical multiset form carrying every column — the n-way
    /// equivalence surface: one sorted value vector per row.
    pub fn canonical_wide(&self) -> Vec<Vec<u64>> {
        let mut v = self.wide_rows();
        v.sort_unstable();
        v
    }

    /// The key sequence in produced order (for sortedness checks).
    pub fn keys(&self) -> Vec<u64> {
        match self {
            OutputRows::Wis(rows) => rows.iter().map(Record::key).collect(),
            OutputRows::Pairs(rows) => rows.iter().map(|(l, _)| l.key()).collect(),
            OutputRows::Multi { rows, .. } => rows.iter().map(Record::key).collect(),
            OutputRows::Groups(rows) => rows.iter().map(|g| g.key).collect(),
        }
    }
}

/// A shared-or-owned Wisconsin collection: base tables come out of the
/// catalog as shared [`Arc`] handles, intermediates are owned.
#[derive(Debug)]
enum WisSource {
    Shared(Arc<pmem_sim::PCollection<WisconsinRecord>>),
    Owned(Box<pmem_sim::PCollection<WisconsinRecord>>),
}

impl WisSource {
    fn as_col(&self) -> &pmem_sim::PCollection<WisconsinRecord> {
        match self {
            WisSource::Shared(c) => c,
            WisSource::Owned(c) => c,
        }
    }
}

/// The materialized output of one plan execution, owned (no borrows on
/// the catalog) so it can be drained incrementally after the call that
/// produced it returns.
#[derive(Debug)]
pub enum ResultSet {
    /// Base records.
    Wis(WisResult),
    /// Joined pairs; `swapped` records whether the physical build side
    /// was the logical right (undone when rows are drained).
    Pairs {
        /// The joined output collection.
        col: pmem_sim::PCollection<WisPair>,
        /// True when build and probe sides were swapped by the planner.
        swapped: bool,
    },
    /// n-way chain rows (already normalized to logical slot order).
    Multi {
        /// The folded chain-row collection.
        col: pmem_sim::PCollection<WisconsinRecord>,
        /// Number of base relations joined.
        tables: usize,
    },
    /// Aggregation groups.
    Groups(pmem_sim::PCollection<GroupAgg>),
}

/// Base-record result payload (shared base table or owned intermediate).
#[derive(Debug)]
pub struct WisResult(WisSource);

impl ResultSet {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        match self {
            ResultSet::Wis(w) => w.0.as_col().len(),
            ResultSet::Pairs { col, .. } => col.len(),
            ResultSet::Multi { col, .. } => col.len(),
            ResultSet::Groups(col) => col.len(),
        }
    }

    /// True when the result holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains rows `[start, start + max)` (clamped to the result length)
    /// into DRAM without charging reads — result delivery to the client
    /// sits outside the simulated cost model, which already charged the
    /// run that produced the collection. Returns `None` once `start` is
    /// past the end; pair rows are normalized to logical order.
    pub fn rows(&self, start: usize, max: usize) -> Option<OutputRows> {
        let len = self.len();
        if start >= len {
            return None;
        }
        let end = start.saturating_add(max).min(len);
        Some(match self {
            ResultSet::Wis(w) => OutputRows::Wis(w.0.as_col().range_to_vec_uncounted(start, end)),
            ResultSet::Pairs { col, swapped } => OutputRows::Pairs(
                col.range_to_vec_uncounted(start, end)
                    .into_iter()
                    .map(|p| {
                        if *swapped {
                            (p.right, p.left)
                        } else {
                            (p.left, p.right)
                        }
                    })
                    .collect(),
            ),
            ResultSet::Multi { col, tables } => OutputRows::Multi {
                rows: col.range_to_vec_uncounted(start, end),
                tables: *tables,
            },
            ResultSet::Groups(col) => OutputRows::Groups(col.range_to_vec_uncounted(start, end)),
        })
    }

    /// Drains every row at once (the eager path).
    pub fn all_rows(&self) -> OutputRows {
        let len = self.len();
        self.rows(0, len).unwrap_or_else(|| self.empty_rows())
    }

    /// An empty [`OutputRows`] of this result's shape.
    pub fn empty_rows(&self) -> OutputRows {
        match self {
            ResultSet::Wis(_) => OutputRows::Wis(Vec::new()),
            ResultSet::Pairs { .. } => OutputRows::Pairs(Vec::new()),
            ResultSet::Multi { tables, .. } => OutputRows::Multi {
                rows: Vec::new(),
                tables: *tables,
            },
            ResultSet::Groups(_) => OutputRows::Groups(Vec::new()),
        }
    }
}

/// One measured plan execution with the result left un-drained: the
/// streaming entry point's return value.
#[derive(Debug)]
pub struct ExecutedStream {
    /// The produced rows, owned and drainable in batches.
    pub result: ResultSet,
    /// Cacheline traffic the run charged to the device.
    pub stats: IoStats,
    /// Simulated wall-clock seconds of the run.
    pub secs: f64,
    /// Recorded span tree when the run was profiled
    /// ([`execute_stream_profiled`]); `None` otherwise.
    pub profile: Option<pmem_sim::SpanNode>,
}

/// One measured plan execution, eagerly drained.
#[derive(Clone, Debug)]
pub struct Executed {
    /// The produced rows (drained uncounted).
    pub output: OutputRows,
    /// Cacheline traffic the run charged to the device.
    pub stats: IoStats,
    /// Simulated wall-clock seconds of the run.
    pub secs: f64,
}

/// Result cardinality of an intermediate stream (profiling annotation).
fn stream_len(s: &Stream) -> usize {
    match s {
        Stream::Wis(src) => src.as_col().len(),
        Stream::Pairs { col, .. } => col.len(),
        Stream::Chain { col, .. } => col.len(),
        Stream::Groups(col) => col.len(),
    }
}

/// Intermediate result of one plan subtree.
enum Stream {
    Wis(WisSource),
    Pairs {
        col: pmem_sim::PCollection<WisPair>,
        swapped: bool,
    },
    Chain {
        col: pmem_sim::PCollection<WisconsinRecord>,
        tables: usize,
    },
    Groups(pmem_sim::PCollection<GroupAgg>),
}

/// Executes a planned query against the catalog's bound tables,
/// measuring the traffic between entry and exit, and returns the result
/// as an owned, batch-drainable [`ResultSet`].
///
/// # Errors
/// Returns [`ExecError`] when a table has no data bound or an algorithm
/// rejects its inputs.
pub fn execute_stream(
    planned: &PlannedQuery,
    catalog: &Catalog,
    dev: &Pm,
    layer: LayerKind,
    pool: &BufferPool,
) -> Result<ExecutedStream, ExecError> {
    execute_stream_inner(planned, catalog, dev, layer, pool, false)
}

/// [`execute_stream`] with profiling armed: every plan node, operator
/// phase, and worker task records a span, and the resulting tree comes
/// back in [`ExecutedStream::profile`]. The spans observe the
/// thread-local ledgers without touching the device counters, so the
/// measured traffic is bit-identical to an unprofiled run.
///
/// # Errors
/// Returns [`ExecError`] when a table has no data bound or an algorithm
/// rejects its inputs.
///
/// # Panics
/// Panics if a profile is already active on the calling thread.
pub fn execute_stream_profiled(
    planned: &PlannedQuery,
    catalog: &Catalog,
    dev: &Pm,
    layer: LayerKind,
    pool: &BufferPool,
) -> Result<ExecutedStream, ExecError> {
    execute_stream_inner(planned, catalog, dev, layer, pool, true)
}

fn execute_stream_inner(
    planned: &PlannedQuery,
    catalog: &Catalog,
    dev: &Pm,
    layer: LayerKind,
    pool: &BufferPool,
    profile: bool,
) -> Result<ExecutedStream, ExecError> {
    let mut lowerer = Lowerer {
        catalog,
        dev,
        layer,
        pool,
        threads: planned.threads,
        fresh: 0,
    };
    let before = dev.snapshot();
    if profile {
        pmem_sim::span::begin_profile("query");
    }
    let result = lowerer.eval(&planned.plan);
    // Close the root frame on success *and* error so the thread-local
    // profiling stack never leaks across queries.
    let tree = if profile {
        pmem_sim::span::end_profile()
    } else {
        None
    };
    let result = result?;
    let stats = dev.snapshot().since(&before);
    let result = match result {
        Stream::Wis(src) => ResultSet::Wis(WisResult(src)),
        Stream::Pairs { col, swapped } => ResultSet::Pairs { col, swapped },
        Stream::Chain { col, tables } => ResultSet::Multi { col, tables },
        Stream::Groups(col) => ResultSet::Groups(col),
    };
    Ok(ExecutedStream {
        result,
        secs: stats.time_secs(&dev.config().latency),
        stats,
        profile: tree,
    })
}

/// Executes a planned query and drains every row — [`execute_stream`]
/// plus an eager drain, for tests and harnesses.
///
/// # Errors
/// Returns [`ExecError`] when a table has no data bound or an algorithm
/// rejects its inputs.
pub fn execute(
    planned: &PlannedQuery,
    catalog: &Catalog,
    dev: &Pm,
    layer: LayerKind,
    pool: &BufferPool,
) -> Result<Executed, ExecError> {
    let run = execute_stream(planned, catalog, dev, layer, pool)?;
    Ok(Executed {
        output: run.result.all_rows(),
        stats: run.stats,
        secs: run.secs,
    })
}

struct Lowerer<'a> {
    catalog: &'a Catalog,
    dev: &'a Pm,
    layer: LayerKind,
    pool: &'a BufferPool,
    /// Degree of parallelism the plan was costed for; partitioned
    /// operators fan out to the same degree so prediction and run agree.
    threads: usize,
    fresh: u64,
}

impl<'a> Lowerer<'a> {
    fn name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}-{}", self.fresh)
    }

    /// Evaluates `plan` inside a span labelled like the node, recording
    /// the result cardinality — so a profiled run yields a span tree
    /// whose plan-node spans mirror the physical plan's shape (plus
    /// operator-phase and per-task spans nested below them). Inert when
    /// no profile is armed.
    fn eval(&mut self, plan: &PhysicalPlan) -> Result<Stream, ExecError> {
        let span = pmem_sim::span::span_with(|| plan.label());
        let out = self.eval_node(plan)?;
        if span.is_active() {
            pmem_sim::span::note_rows(stream_len(&out) as u64);
        }
        drop(span);
        Ok(out)
    }

    fn eval_node(&mut self, plan: &PhysicalPlan) -> Result<Stream, ExecError> {
        match plan {
            PhysicalPlan::Scan { table, .. } => {
                let col = self
                    .catalog
                    .data(table)
                    .ok_or_else(|| ExecError::MissingData(table.clone()))?;
                Ok(Stream::Wis(WisSource::Shared(Arc::clone(col))))
            }
            PhysicalPlan::Filter {
                input, predicate, ..
            } => {
                // Deferred filters are consumed by the parent join; if
                // one is evaluated directly the view semantics collapse
                // to a single materializing pass, which is identical
                // traffic-wise.
                let child = self.eval(input)?;
                self.filter_stream(child, *predicate)
            }
            PhysicalPlan::Sort { input, algo, .. } => {
                let child = self.eval(input)?;
                self.sort_stream(child, *algo)
            }
            PhysicalPlan::Join {
                left,
                right,
                algo,
                swapped,
                chain,
                ..
            } => self.join(left, right, *algo, *swapped, chain.as_ref()),
            PhysicalPlan::Aggregate { input, x, .. } => {
                let child = self.eval(input)?;
                self.aggregate_stream(child, *x)
            }
        }
    }

    /// Lowers a filter as a Volcano `scan → filter` chain staged into a
    /// fresh persistent collection.
    fn filter_stream(&mut self, child: Stream, predicate: Predicate) -> Result<Stream, ExecError> {
        fn run<R: Record>(
            col: &pmem_sim::PCollection<R>,
            predicate: Predicate,
            dev: &Pm,
            layer: LayerKind,
            name: &str,
        ) -> Result<pmem_sim::PCollection<R>, PmError> {
            let mut op = FilterOp::new(ScanOp::new(col), move |r: &R| predicate.matches(r));
            stage(&mut op, dev, layer, name)
        }
        let name = self.name("filtered");
        match child {
            Stream::Wis(src) => Ok(Stream::Wis(WisSource::Owned(Box::new(run(
                src.as_col(),
                predicate,
                self.dev,
                self.layer,
                &name,
            )?)))),
            Stream::Pairs { col, swapped } => Ok(Stream::Pairs {
                col: run(&col, predicate, self.dev, self.layer, &name)?,
                swapped,
            }),
            Stream::Chain { col, tables } => Ok(Stream::Chain {
                col: run(&col, predicate, self.dev, self.layer, &name)?,
                tables,
            }),
            Stream::Groups(col) => Ok(Stream::Groups(run(
                &col, predicate, self.dev, self.layer, &name,
            )?)),
        }
    }

    fn sort_stream(&mut self, child: Stream, algo: SortAlgorithm) -> Result<Stream, ExecError> {
        let ctx = SortContext::new(self.dev, self.layer, self.pool).with_threads(self.threads);
        let name = self.name("sorted");
        match child {
            Stream::Wis(src) => Ok(Stream::Wis(WisSource::Owned(Box::new(algo.run(
                src.as_col(),
                &ctx,
                &name,
            )?)))),
            Stream::Pairs { col, swapped } => Ok(Stream::Pairs {
                col: algo.run(&col, &ctx, &name)?,
                swapped,
            }),
            Stream::Chain { col, tables } => Ok(Stream::Chain {
                col: algo.run(&col, &ctx, &name)?,
                tables,
            }),
            Stream::Groups(col) => Ok(Stream::Groups(algo.run(&col, &ctx, &name)?)),
        }
    }

    fn join(
        &mut self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        algo: write_limited::join::JoinAlgorithm,
        swapped: bool,
        chain: Option<&ChainSlots>,
    ) -> Result<Stream, ExecError> {
        let ctx = JoinContext::new(self.dev, self.layer, self.pool).with_threads(self.threads);
        let name = self.name("joined");

        // Deferred-view build side: §3.1 runtime path.
        if let PhysicalPlan::Filter {
            input,
            predicate,
            selectivity,
            materialization: Materialization::Deferred,
            ..
        } = left
        {
            // The deferred view bypasses the Filter node's `eval` (its
            // work happens inside the iterate-join), so open its span
            // here to keep the profile tree congruent with the plan.
            let src = {
                let _fspan = pmem_sim::span::span_with(|| left.label());
                match self.eval(input)? {
                    Stream::Wis(WisSource::Shared(col)) => col,
                    _ => {
                        return Err(ExecError::Plan(PlanError::Unsupported(
                            "deferred filter over a non-base input".into(),
                        )))
                    }
                }
            };
            let probe = self.eval_to_wis(right)?;
            let mut rt = OpCtx::new(self.dev.lambda());
            let p = *predicate;
            let mut filter =
                DeferredFilter::new(&src, move |r| p.matches(r), *selectivity, &mut rt);
            let out = filtered_iterate_join(&mut filter, probe.as_col(), &ctx, &mut rt, &name)?;
            return self.finish_join(out, false, chain);
        }

        let build = self.eval_to_wis(left)?;
        let probe = self.eval_to_wis(right)?;
        let (b, p) = if swapped {
            (probe.as_col(), build.as_col())
        } else {
            (build.as_col(), probe.as_col())
        };
        let out = algo.run(b, p, &ctx, &name)?;
        self.finish_join(out, swapped, chain)
    }

    /// Delivers a join's pair output: two-way joins stream the pairs,
    /// chain joins fold them into slotted flat rows in one staged pass
    /// (the fold normalizes swapped sides back to logical order, so
    /// chain streams never carry a swap flag).
    fn finish_join(
        &mut self,
        out: pmem_sim::PCollection<WisPair>,
        swapped: bool,
        chain: Option<&ChainSlots>,
    ) -> Result<Stream, ExecError> {
        let Some(slots) = chain else {
            return Ok(Stream::Pairs { col: out, swapped });
        };
        let name = self.name("chained");
        let (ls, rs) = (slots.left.clone(), slots.right.clone());
        let mut op = MapOp::new(ScanOp::new(&out), move |p: &WisPair| {
            let (l, r) = if swapped {
                (&p.right, &p.left)
            } else {
                (&p.left, &p.right)
            };
            fold_pair(l, &ls, r, &rs)
        });
        let col = stage(&mut op, self.dev, self.layer, &name)?;
        Ok(Stream::Chain {
            col,
            tables: slots.tables(),
        })
    }

    /// Evaluates a subtree that must produce flat Wisconsin records —
    /// base records or already-folded chain rows (join inputs).
    fn eval_to_wis(&mut self, plan: &PhysicalPlan) -> Result<WisSource, ExecError> {
        match self.eval(plan)? {
            Stream::Wis(src) => Ok(src),
            Stream::Chain { col, .. } => Ok(WisSource::Owned(Box::new(col))),
            _ => Err(ExecError::Plan(PlanError::Unsupported(
                "join inputs must produce base records".into(),
            ))),
        }
    }

    fn aggregate_stream(&mut self, child: Stream, x: f64) -> Result<Stream, ExecError> {
        let ctx = SortContext::new(self.dev, self.layer, self.pool).with_threads(self.threads);
        let name = self.name("groups");
        let out = match child {
            Stream::Wis(src) => {
                sort_based_aggregate(src.as_col(), x, |r| r.payload(), &ctx, &name)?
            }
            Stream::Pairs { col, swapped } => {
                if swapped {
                    sort_based_aggregate(&col, x, |p| p.left.payload(), &ctx, &name)?
                } else {
                    sort_based_aggregate(&col, x, |p| p.right.payload(), &ctx, &name)?
                }
            }
            // Chain rows aggregate the last-joined relation's payload,
            // mirroring the two-way probe-side convention.
            Stream::Chain { col, tables } => {
                sort_based_aggregate(&col, x, move |r| r.attrs[tables], &ctx, &name)?
            }
            Stream::Groups(_) => {
                return Err(ExecError::Plan(PlanError::Unsupported(
                    "aggregate over aggregate".into(),
                )))
            }
        };
        Ok(Stream::Groups(out))
    }
}
