//! The database-wide metrics registry behind `SHOW METRICS`.
//!
//! One [`EngineMetrics`] lives in the [`crate::Database`] and aggregates
//! across every session and query: queries executed, result rows /
//! bytes / batches actually delivered to clients (the simulated device
//! never sees delivery — result drains are uncounted reads — so the
//! registry is the only place this traffic is visible), buffer-pool
//! pressure, and host wall time spent executing. Counters are atomics;
//! [`EngineMetrics::snapshot`] takes a consistent-enough point-in-time
//! copy for reporting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic engine-wide counters. All methods are `&self` and
/// lock-free; streams fold their totals in as they finish.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    queries: AtomicU64,
    result_rows: AtomicU64,
    result_bytes: AtomicU64,
    result_batches: AtomicU64,
    pool_reservations: AtomicU64,
    pool_exhausted: AtomicU64,
    pool_peak_bytes: AtomicU64,
    exec_wall_ns: AtomicU64,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    fsyncs: AtomicU64,
    recoveries: AtomicU64,
    replayed_records: AtomicU64,
}

impl EngineMetrics {
    /// Notes that a query plan started executing.
    pub fn note_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes one result batch delivered to a client. `bytes` is the
    /// projected payload size — delivery traffic the simulated device
    /// does not account (`range_to_vec_uncounted` drains are invisible
    /// to the cacheline ledger by design).
    pub fn note_delivery(&self, rows: u64, bytes: u64) {
        self.result_batches.fetch_add(1, Ordering::Relaxed);
        self.result_rows.fetch_add(rows, Ordering::Relaxed);
        self.result_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Folds a finished query's buffer-pool counters and host wall time
    /// into the registry.
    pub fn note_run(&self, reservations: u64, exhausted: u64, peak_bytes: u64, wall_ns: u64) {
        self.pool_reservations
            .fetch_add(reservations, Ordering::Relaxed);
        self.pool_exhausted.fetch_add(exhausted, Ordering::Relaxed);
        self.pool_peak_bytes
            .fetch_max(peak_bytes, Ordering::Relaxed);
        self.exec_wall_ns.fetch_add(wall_ns, Ordering::Relaxed);
    }

    /// Notes one WAL record appended (and fsynced) with its framed size.
    pub fn note_wal_append(&self, bytes: u64) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Notes one fsync issued by a durable code path (WAL or checkpoint).
    pub fn note_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a completed crash recovery that replayed `records` WAL
    /// records past the checkpoint.
    pub fn note_recovery(&self, records: u64) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        self.replayed_records.fetch_add(records, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            result_rows: self.result_rows.load(Ordering::Relaxed),
            result_bytes: self.result_bytes.load(Ordering::Relaxed),
            result_batches: self.result_batches.load(Ordering::Relaxed),
            pool_reservations: self.pool_reservations.load(Ordering::Relaxed),
            pool_exhausted: self.pool_exhausted.load(Ordering::Relaxed),
            pool_peak_bytes: self.pool_peak_bytes.load(Ordering::Relaxed),
            exec_wall_ns: self.exec_wall_ns.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            replayed_records: self.replayed_records.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the [`EngineMetrics`] counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Query plans executed (EXPLAIN variants included — they run).
    pub queries: u64,
    /// Result rows delivered to clients.
    pub result_rows: u64,
    /// Result payload bytes delivered to clients.
    pub result_bytes: u64,
    /// Result batches delivered to clients.
    pub result_batches: u64,
    /// Buffer-pool reservations granted.
    pub pool_reservations: u64,
    /// Buffer-pool reservation attempts refused (memory pressure).
    pub pool_exhausted: u64,
    /// Largest buffer-pool high-water mark any query reached, in bytes.
    pub pool_peak_bytes: u64,
    /// Host wall time spent executing and draining queries.
    pub exec_wall_ns: u64,
    /// WAL records appended (each fsynced before the statement applies).
    pub wal_appends: u64,
    /// Framed WAL bytes appended.
    pub wal_bytes: u64,
    /// fsyncs issued by durable code paths (WAL appends + checkpoints).
    pub fsyncs: u64,
    /// Crash recoveries performed by `Database::reopen`.
    pub recoveries: u64,
    /// WAL records replayed past checkpoints during recoveries.
    pub replayed_records: u64,
}

impl MetricsSnapshot {
    /// The counters as `(name, value)` rows in a stable order — the
    /// `SHOW METRICS` surface golden tests diff against.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("queries", self.queries),
            ("result_delivery_rows", self.result_rows),
            ("result_delivery_bytes", self.result_bytes),
            ("result_delivery_batches", self.result_batches),
            ("pool_reservations", self.pool_reservations),
            ("pool_exhausted", self.pool_exhausted),
            ("pool_peak_bytes", self.pool_peak_bytes),
            ("exec_wall_ns", self.exec_wall_ns),
            ("wal_appends", self.wal_appends),
            ("wal_bytes", self.wal_bytes),
            ("fsyncs", self.fsyncs),
            ("recoveries", self.recoveries),
            ("replayed_records", self.replayed_records),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_peak_takes_max() {
        let m = EngineMetrics::default();
        m.note_query();
        m.note_query();
        m.note_delivery(10, 160);
        m.note_delivery(5, 80);
        m.note_run(3, 1, 4096, 1_000);
        m.note_run(2, 0, 1024, 2_000);
        m.note_wal_append(40);
        m.note_wal_append(24);
        m.note_fsync();
        m.note_recovery(7);
        let s = m.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.result_rows, 15);
        assert_eq!(s.result_bytes, 240);
        assert_eq!(s.result_batches, 2);
        assert_eq!(s.pool_reservations, 5);
        assert_eq!(s.pool_exhausted, 1);
        assert_eq!(s.pool_peak_bytes, 4096, "peak is a max, not a sum");
        assert_eq!(s.exec_wall_ns, 3_000);
        assert_eq!(s.wal_appends, 2);
        assert_eq!(s.wal_bytes, 64);
        assert_eq!(s.fsyncs, 1);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.replayed_records, 7);
    }

    #[test]
    fn snapshot_rows_are_stable_and_complete() {
        let s = MetricsSnapshot::default();
        let names: Vec<&str> = s.rows().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "queries",
                "result_delivery_rows",
                "result_delivery_bytes",
                "result_delivery_batches",
                "pool_reservations",
                "pool_exhausted",
                "pool_peak_bytes",
                "exec_wall_ns",
                "wal_appends",
                "wal_bytes",
                "fsyncs",
                "recoveries",
                "replayed_records",
            ]
        );
    }
}
