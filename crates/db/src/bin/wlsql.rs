//! `wlsql` — a line-oriented SQL shell over the write-limited engine.
//!
//! ```text
//! wlsql [--path DIR] [--lambda N] [--threads N] [--memory RECORDS] [--batch ROWS]
//! ```
//!
//! Reads statements (terminated by `;`) from stdin and prints results to
//! stdout, streaming each result batch as it is pulled. The prompt goes
//! to stderr and only when stdin is a terminal, so scripted sessions
//! (`wlsql < session.sql`) produce clean, diffable output — the CI smoke
//! test pipes a scripted session through and compares against a golden
//! file. `\q` or end-of-input quits.
//!
//! With `--path DIR` the database is durable: DDL and inserts are
//! WAL-logged under `DIR`, `CHECKPOINT` materializes the catalog, and
//! reopening the same directory recovers the committed state (a one-line
//! recovery banner is printed so scripted reopen sessions can assert on
//! it).

use std::io::{BufRead, IsTerminal, Write};
use wl_db::{Database, DbError, Response, ResultStream};

fn main() {
    let mut builder = Database::builder();
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|&v| v > 0.0)
                .unwrap_or_else(|| {
                    eprintln!("usage: wlsql {what} <positive number>");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--lambda" => builder = builder.lambda(num("--lambda")),
            "--threads" => builder = builder.threads(num("--threads") as usize),
            "--memory" => builder = builder.dram_records(num("--memory") as usize),
            "--batch" => builder = builder.batch_rows(num("--batch") as usize),
            "--path" => {
                path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("usage: wlsql --path <directory>");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: wlsql [--path DIR] [--lambda N] [--threads N] [--memory RECORDS] \
                     [--batch ROWS]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}; see wlsql --help");
                std::process::exit(2);
            }
        }
    }

    let db = match path {
        Some(dir) => match builder.open(&dir) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("wlsql: cannot open {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => builder.build(),
    };
    // Scripted reopen sessions assert on this deterministic banner.
    if let Some(report) = db.recovery_report() {
        println!("{}", report.banner());
    }
    let mut session = db.session();
    let interactive = std::io::stdin().is_terminal();
    let stdin = std::io::stdin();
    let mut buffer = String::new();

    if interactive {
        eprintln!(
            "wlsql — write-limited SQL shell (λ = {}, layer = {})",
            db.device().lambda(),
            db.layer().label()
        );
        eprint!("wl> ");
        let _ = std::io::stderr().flush();
    }

    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == r"\q" {
            break;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // Execute every complete (;-terminated) statement in the buffer.
        while let Some(i) = statement_end(&buffer) {
            let stmt: String = buffer[..=i].to_string();
            buffer = buffer[i + 1..].to_string();
            run_statement(&mut session, &stmt);
        }
        if interactive {
            eprint!(
                "{}",
                if buffer.trim().is_empty() {
                    "wl> "
                } else {
                    "  > "
                }
            );
            let _ = std::io::stderr().flush();
        }
    }
    // A trailing statement without `;` still runs at end of input.
    if !buffer.trim().is_empty() {
        run_statement(&mut session, &buffer.clone());
    }
}

/// Byte index of the first `;` that terminates a statement — ignoring
/// semicolons inside `--` line comments and single-quoted strings, so
/// neither splits a statement in half.
fn statement_end(buffer: &str) -> Option<usize> {
    let bytes = buffer.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b';' => return Some(i),
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                i += 1; // closing quote (or end of buffer)
            }
            _ => i += 1,
        }
    }
    None
}

fn run_statement(session: &mut wl_db::Session<'_>, sql: &str) {
    if sql
        .trim_matches(|c: char| c.is_whitespace() || c == ';')
        .is_empty()
    {
        return;
    }
    match session.execute(sql) {
        Ok(Response::Created { table, rows }) => println!("created table {table} ({rows} rows)"),
        Ok(Response::Inserted { table, rows }) => {
            println!("inserted {rows} rows into {table}");
        }
        Ok(Response::Dropped { table }) => println!("dropped table {table}"),
        Ok(Response::Checkpointed { tables, rows }) => {
            println!("checkpointed {tables} tables ({rows} rows)");
        }
        Ok(Response::Tables(tables)) => {
            if tables.is_empty() {
                println!("no tables");
            }
            for (name, rows) in tables {
                println!("{name}  {rows} rows");
            }
        }
        Ok(Response::Set { knob, value }) => println!("set {knob} = {value}"),
        Ok(Response::Metrics(snapshot)) => {
            for (name, value) in snapshot.rows() {
                println!("{name}  {value}");
            }
        }
        Ok(Response::Rows(mut stream)) => {
            let timing = session.config().timing;
            if let Err(e) = print_stream(&mut stream, timing) {
                report(&e, sql);
            }
        }
        Ok(Response::Explain(mut stream)) => match stream.drain() {
            Ok(_) => print!("{}", stream.explain()),
            Err(e) => report(&e, sql),
        },
        Ok(Response::ExplainAnalyze(mut stream)) => match stream.drain() {
            Ok(_) => print!("{}", stream.analyze()),
            Err(e) => report(&e, sql),
        },
        Err(e) => report(&e, sql),
    }
}

/// Prints a result stream batch by batch, as it is pulled. The host
/// wall-time footer is opt-in (`SET timing = on`) — it varies run to
/// run, and the default footer must stay byte-stable for golden diffs.
fn print_stream(stream: &mut ResultStream, timing: bool) -> Result<(), DbError> {
    println!("{}", stream.columns().join(" | "));
    let mut batches = 0u64;
    while let Some(batch) = stream.next_batch()? {
        for row in &batch.rows {
            let cells: Vec<String> = row.iter().map(u64::to_string).collect();
            println!("{}", cells.join(" | "));
        }
        batches += 1;
        println!("-- batch {batches}: {} rows", batch.rows.len());
    }
    let stats = stream.stats().expect("stream drained");
    let host = if timing {
        format!(", {:.1}ms host", stats.elapsed_secs * 1e3)
    } else {
        String::new()
    };
    println!(
        "-- {} rows in {} batches, {:.4}s simulated, {} reads / {} writes (cachelines){host}",
        stats.rows, stats.batches, stats.secs, stats.io.cl_reads, stats.io.cl_writes
    );
    Ok(())
}

fn report(err: &DbError, sql: &str) {
    match err {
        DbError::Sql(e) => print!("{}", e.render(sql)),
        other => println!("error: {other}"),
    }
}
