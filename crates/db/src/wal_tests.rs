//! Unit tests for the WAL, split out of `wal.rs` so the shipping file
//! stays literally panic-free (`wl-audit` skips `*_tests.rs`).

use super::*;
use pmem_sim::PmDevice;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("wl-wal-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("tmpdir");
    d
}

fn sample_records() -> Vec<WalRecord> {
    vec![
        WalRecord::Create {
            name: "t".into(),
            rows: 100,
            fanout: 1,
            seed: 42,
            skew: 0.0,
        },
        WalRecord::Insert {
            table: "t".into(),
            keys: vec![100, 101, 102],
        },
        WalRecord::Drop { name: "t".into() },
    ]
}

#[test]
fn crc32_matches_known_vectors() {
    // IEEE CRC-32 check value for "123456789".
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
}

#[test]
fn le_array_zero_pads_short_input() {
    assert_eq!(le_array::<4>(&[1, 2]), [1, 2, 0, 0]);
    assert_eq!(le_array::<2>(&[7, 8]), [7, 8]);
}

#[test]
fn records_roundtrip() {
    for rec in sample_records() {
        assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
    }
}

#[test]
fn skewed_creates_roundtrip_and_legacy_layouts_decode_as_uniform() {
    let skewed = WalRecord::Create {
        name: "z".into(),
        rows: 1000,
        fanout: 4,
        seed: 7,
        skew: 1.2,
    };
    assert_eq!(WalRecord::decode(&skewed.encode()).unwrap(), skewed);
    // A uniform create encodes without the trailing field — the exact
    // bytes logs carried before the knob existed — and decodes back to
    // skew 0.
    let uniform = &sample_records()[0];
    let bytes = uniform.encode();
    assert_eq!(bytes.len(), 1 + 2 + 1 + 24, "legacy layout unchanged");
    assert_eq!(&WalRecord::decode(&bytes).unwrap(), uniform);
    // An out-of-range trailing skew is data corruption, not a panic.
    let mut bad = bytes.clone();
    bad.extend_from_slice(&(-1.0f64).to_bits().to_le_bytes());
    assert!(WalRecord::decode(&bad).unwrap_err().contains("skew"));
}

#[test]
fn decode_rejects_malformed_payloads() {
    assert!(WalRecord::decode(&[]).is_err(), "empty");
    assert!(WalRecord::decode(&[99]).is_err(), "unknown tag");
    let mut cut = sample_records()[0].encode();
    cut.truncate(cut.len() - 3);
    assert!(WalRecord::decode(&cut).is_err(), "truncated");
    let mut trailing = sample_records()[2].encode();
    trailing.push(0);
    assert!(WalRecord::decode(&trailing).is_err(), "trailing bytes");
}

#[test]
fn log_roundtrips_through_the_file() {
    let dir = tmpdir("roundtrip");
    let dev = PmDevice::paper_default();
    let mut wal = Wal::create(&dir, &dev, 5).unwrap();
    for rec in sample_records() {
        wal.append(&rec, &dev).unwrap();
    }
    assert_eq!(wal.last_lsn(), 8);
    let readout = read_wal(&dir.join(WAL_FILE)).unwrap();
    assert_eq!(readout.base_lsn, 5);
    assert_eq!(readout.records, sample_records());
    assert_eq!(readout.last_lsn(), 8);
    assert_eq!(readout.dropped_tail_bytes, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_tail_is_dropped_not_fatal() {
    let dir = tmpdir("truncated");
    let dev = PmDevice::paper_default();
    let mut wal = Wal::create(&dir, &dev, 0).unwrap();
    for rec in sample_records() {
        wal.append(&rec, &dev).unwrap();
    }
    let path = dir.join(WAL_FILE);
    let full = std::fs::read(&path).unwrap();
    // Cut mid-way into the final frame.
    std::fs::write(&path, &full[..full.len() - 5]).unwrap();
    let readout = read_wal(&path).unwrap();
    assert_eq!(readout.records.len(), 2, "last record dropped");
    assert!(readout.dropped_tail_bytes > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_crc_at_the_tail_is_dropped() {
    let dir = tmpdir("tailcrc");
    let dev = PmDevice::paper_default();
    let mut wal = Wal::create(&dir, &dev, 0).unwrap();
    for rec in sample_records() {
        wal.append(&rec, &dev).unwrap();
    }
    let path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // garble the final payload byte
    std::fs::write(&path, &bytes).unwrap();
    let readout = read_wal(&path).unwrap();
    assert_eq!(readout.records.len(), 2);
    assert!(readout.dropped_tail_bytes > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_crc_mid_log_is_a_typed_error() {
    let dir = tmpdir("midcrc");
    let dev = PmDevice::paper_default();
    let mut wal = Wal::create(&dir, &dev, 0).unwrap();
    for rec in sample_records() {
        wal.append(&rec, &dev).unwrap();
    }
    let path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[HEADER_LEN + FRAME_HEADER] ^= 0xFF; // first record's payload
    std::fs::write(&path, &bytes).unwrap();
    let err = read_wal(&path).unwrap_err();
    assert!(err.cause.contains("mid-log"), "{err}");
    assert_eq!(err.offset, Some(HEADER_LEN as u64));
    assert!(err.path.ends_with(WAL_FILE));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_log_reads_as_empty() {
    let readout = read_wal(Path::new("/nonexistent/wal.log")).unwrap();
    assert_eq!(readout.records.len(), 0);
    assert_eq!(readout.base_lsn, 0);
}

#[test]
fn bad_magic_is_a_typed_error() {
    let dir = tmpdir("magic");
    let path = dir.join(WAL_FILE);
    std::fs::write(&path, b"NOTAWAL!0000000000000000").unwrap();
    let err = read_wal(&path).unwrap_err();
    assert!(err.cause.contains("magic"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn short_header_reads_as_empty_torn_creation() {
    let dir = tmpdir("shorthdr");
    let path = dir.join(WAL_FILE);
    std::fs::write(&path, &MAGIC[..6]).unwrap();
    let readout = read_wal(&path).unwrap();
    assert!(readout.records.is_empty());
    assert_eq!(readout.dropped_tail_bytes, 6);
    std::fs::remove_dir_all(&dir).unwrap();
}
