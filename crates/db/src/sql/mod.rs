//! The SQL front-end: lexer, span-annotated AST, recursive-descent
//! parser, and the binder that lowers statements onto
//! [`planner::LogicalPlan`].

pub mod ast;
pub mod bind;
pub mod lexer;
pub mod parser;

pub use ast::{Column, Ident, Join, PredForm, Select, SelectItem, SetValue, Statement, WherePred};
pub use bind::{bind, BoundQuery, RowShape};
pub use parser::parse;
